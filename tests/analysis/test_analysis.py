"""Tests for the analysis helpers (report, histograms, overlap)."""

import numpy as np
import pytest

from repro.analysis import (
    OverlapMeasurement,
    PointerDistribution,
    format_table,
    leaf_nonleaf_ratio,
    measure_overlap,
    pointer_histogram,
    to_csv,
)
from repro.query.executor import QueryRunResult
from repro.rtree import bulkload_rtree
from repro.storage import CATEGORY_RTREE_INTERNAL, CATEGORY_RTREE_LEAF, PageStore


class TestReport:
    def test_format_table_aligns_columns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [333, 0.001]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[float("nan")], [1234567.0], [0.25]])
        assert "nan" in text
        assert "1.23e+06" in text
        assert "0.25" in text

    def test_to_csv(self):
        csv = to_csv(["a", "b"], [[1, 2], [3, 4]])
        assert csv == "a,b\n1,2\n3,4\n"


class TestHistograms:
    def test_distribution_summary(self):
        counts = np.array([10, 20, 20, 30, 40])
        dist = PointerDistribution.from_counts(counts)
        assert dist.count == 5
        assert dist.median == 20
        assert dist.max == 40
        assert dist.mean == pytest.approx(24.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PointerDistribution.from_counts(np.array([]))

    def test_histogram_buckets(self):
        hist = pointer_histogram(np.array([1, 2, 2, 9]), bin_width=1)
        assert hist == {1: 1, 2: 2, 9: 1}

    def test_histogram_wider_bins(self):
        hist = pointer_histogram(np.array([1, 2, 9, 11]), bin_width=10)
        assert hist == {0: 3, 10: 1}

    def test_bad_bin_width(self):
        with pytest.raises(ValueError):
            pointer_histogram(np.array([1]), bin_width=0)


class TestOverlap:
    def test_measure_overlap_dense_data(self):
        rng = np.random.default_rng(0)
        lo = rng.uniform(0, 20, size=(3000, 3))
        mbrs = np.concatenate([lo, lo + 3.0], axis=1)
        store = PageStore()
        tree = bulkload_rtree(store, mbrs, "str")
        points = rng.uniform(0, 20, size=(20, 3))
        m = measure_overlap(tree, store, points, "str")
        assert isinstance(m, OverlapMeasurement)
        assert m.pages_per_point_query > m.tree_height
        assert m.has_overlap

    def test_leaf_nonleaf_ratio(self):
        run = QueryRunResult(index_name="x")
        run.reads_by_category = {
            CATEGORY_RTREE_LEAF: 10,
            CATEGORY_RTREE_INTERNAL: 25,
        }
        assert leaf_nonleaf_ratio(run) == pytest.approx(2.5)

    def test_leaf_nonleaf_ratio_no_leaves(self):
        run = QueryRunResult(index_name="x")
        assert np.isnan(leaf_nonleaf_ratio(run))
