"""Tests for the disk-backed R-Tree: construction, queries, accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import boxes_intersect_box, boxes_intersect_point
from repro.storage import (
    CATEGORY_RTREE_INTERNAL,
    CATEGORY_RTREE_LEAF,
    PageStore,
)
from repro.rtree import PAPER_VARIANTS, bulkload_rtree


def random_mbrs(n, seed=0, span=100.0, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, span, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, extent, size=(n, 3))], axis=1)


def brute_force(mbrs, query):
    return np.flatnonzero(boxes_intersect_box(mbrs, query))


ALL_VARIANTS = sorted(PAPER_VARIANTS) + ["tgs"]


@pytest.fixture(params=ALL_VARIANTS)
def variant(request):
    return request.param


class TestConstruction:
    def test_structure_valid(self, variant):
        mbrs = random_mbrs(600, seed=1)
        store = PageStore()
        tree = bulkload_rtree(store, mbrs, variant)
        tree.validate(mbrs)

    def test_single_page_dataset(self, variant):
        mbrs = random_mbrs(10, seed=2)
        tree = bulkload_rtree(PageStore(), mbrs, variant)
        tree.validate(mbrs)
        assert tree.height == 1
        assert tree.leaf_count() == 1

    def test_multi_level_height(self, variant):
        # 85*73 elements would still fit a 2-level tree; force 3 levels.
        mbrs = random_mbrs(85 * 80, seed=3)
        tree = bulkload_rtree(PageStore(), mbrs, variant)
        assert tree.height >= 2
        tree.validate(mbrs)

    def test_empty_dataset_rejected(self, variant):
        with pytest.raises(ValueError):
            bulkload_rtree(PageStore(), np.empty((0, 6)), variant)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown R-Tree variant"):
            bulkload_rtree(PageStore(), random_mbrs(5), "btree")

    def test_page_categories(self, variant):
        store = PageStore()
        tree = bulkload_rtree(store, random_mbrs(300, seed=4), variant)
        assert store.pages_in(CATEGORY_RTREE_LEAF) == tree.leaf_count()
        assert store.pages_in(CATEGORY_RTREE_INTERNAL) == tree.node_count()


class TestRangeQuery:
    def test_matches_brute_force(self, variant):
        mbrs = random_mbrs(700, seed=5)
        tree = bulkload_rtree(PageStore(), mbrs, variant)
        rng = np.random.default_rng(6)
        for _ in range(25):
            lo = rng.uniform(0, 90, size=3)
            query = np.concatenate([lo, lo + rng.uniform(1, 15, size=3)])
            assert np.array_equal(tree.range_query(query), brute_force(mbrs, query))

    def test_whole_space_query_returns_everything(self, variant):
        mbrs = random_mbrs(200, seed=7)
        tree = bulkload_rtree(PageStore(), mbrs, variant)
        query = np.array([-1e6, -1e6, -1e6, 1e6, 1e6, 1e6])
        assert np.array_equal(tree.range_query(query), np.arange(200))

    def test_empty_region_returns_nothing(self, variant):
        mbrs = random_mbrs(200, seed=8)
        tree = bulkload_rtree(PageStore(), mbrs, variant)
        query = np.array([500.0, 500, 500, 501, 501, 501])
        assert len(tree.range_query(query)) == 0

    def test_reads_are_counted(self, variant):
        store = PageStore()
        mbrs = random_mbrs(700, seed=9)
        tree = bulkload_rtree(store, mbrs, variant)
        store.clear_cache()
        before = store.stats.snapshot()
        tree.range_query(np.array([0.0, 0, 0, 50, 50, 50]))
        delta = store.stats.diff(before)
        assert delta.total_reads > 0
        assert delta.reads.get(CATEGORY_RTREE_INTERNAL, 0) >= 1


class TestPointQuery:
    def test_matches_brute_force(self, variant):
        mbrs = random_mbrs(500, seed=10, extent=8.0)
        tree = bulkload_rtree(PageStore(), mbrs, variant)
        rng = np.random.default_rng(11)
        for _ in range(25):
            point = rng.uniform(0, 100, size=3)
            expected = np.flatnonzero(boxes_intersect_point(mbrs, point))
            assert np.array_equal(tree.point_query(point), expected)

    def test_page_reads_at_least_height(self, variant):
        store = PageStore()
        mbrs = random_mbrs(2000, seed=12, extent=10.0)
        tree = bulkload_rtree(store, mbrs, variant)
        store.clear_cache()
        before = store.stats.snapshot()
        tree.point_query(np.array([50.0, 50, 50]))
        delta = store.stats.diff(before)
        assert delta.total_reads >= 1  # at least the root


class TestFirstHit:
    def test_finds_element_when_result_nonempty(self, variant):
        mbrs = random_mbrs(600, seed=13)
        tree = bulkload_rtree(PageStore(), mbrs, variant)
        rng = np.random.default_rng(14)
        for _ in range(20):
            lo = rng.uniform(0, 90, size=3)
            query = np.concatenate([lo, lo + rng.uniform(2, 20, size=3)])
            expected = brute_force(mbrs, query)
            hit = tree.first_hit(query)
            if len(expected):
                assert hit is not None
                page_id, ids = hit
                assert set(ids.tolist()) <= set(expected.tolist())
            else:
                assert hit is None

    def test_empty_query_returns_none(self, variant):
        mbrs = random_mbrs(100, seed=15)
        tree = bulkload_rtree(PageStore(), mbrs, variant)
        assert tree.first_hit(np.array([900.0, 900, 900, 901, 901, 901])) is None

    def test_first_hit_cheaper_than_range_query(self):
        # The seed insight: one path vs all ambiguous paths.
        store = PageStore()
        mbrs = random_mbrs(5000, seed=16, extent=6.0)
        tree = bulkload_rtree(store, mbrs, "str")
        query = np.array([20.0, 20, 20, 80, 80, 80])

        store.clear_cache()
        before = store.stats.snapshot()
        tree.first_hit(query)
        seed_reads = store.stats.diff(before).total_reads

        store.clear_cache()
        before = store.stats.snapshot()
        tree.range_query(query)
        full_reads = store.stats.diff(before).total_reads
        assert seed_reads < full_reads


@settings(max_examples=20, deadline=None)
@given(
    st.sampled_from(ALL_VARIANTS),
    st.integers(1, 300),
    st.integers(0, 2**31),
    st.integers(0, 2**31),
)
def test_range_query_equals_brute_force_property(variant, n, data_seed, query_seed):
    mbrs = random_mbrs(n, seed=data_seed)
    tree = bulkload_rtree(PageStore(), mbrs, variant)
    rng = np.random.default_rng(query_seed)
    lo = rng.uniform(-10, 100, size=3)
    query = np.concatenate([lo, lo + rng.uniform(0, 40, size=3)])
    assert np.array_equal(tree.range_query(query), brute_force(mbrs, query))
