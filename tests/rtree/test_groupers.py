"""Shared contract tests for the bulkloading groupers (STR, Hilbert,
PR-Tree, TGS): every grouper must partition the element set into groups
of at most `capacity` with every element exactly once."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree import GROUPERS, prtree_groups, str_groups, str_sort_order, tgs_groups


def random_mbrs(n, seed=0, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 100, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, extent, size=(n, 3))], axis=1)


ALL_GROUPERS = sorted(GROUPERS)


@pytest.mark.parametrize("name", ALL_GROUPERS)
@pytest.mark.parametrize("n", [1, 5, 84, 85, 86, 170, 1000])
def test_partition_exact_cover(name, n):
    mbrs = random_mbrs(n, seed=n)
    groups = GROUPERS[name](mbrs, 85)
    concat = np.concatenate(groups)
    assert np.array_equal(np.sort(concat), np.arange(n))
    assert all(len(g) <= 85 for g in groups)
    assert all(len(g) > 0 for g in groups)


@pytest.mark.parametrize("name", ALL_GROUPERS)
def test_empty_input(name):
    assert GROUPERS[name](np.empty((0, 6)), 85) == []


@pytest.mark.parametrize("name", ALL_GROUPERS)
def test_bad_capacity_rejected(name):
    with pytest.raises(ValueError):
        GROUPERS[name](random_mbrs(10), 0)


@pytest.mark.parametrize("name", ["str", "prtree", "tgs"])
def test_bad_shape_rejected(name):
    with pytest.raises(ValueError):
        GROUPERS[name](np.zeros((4, 5)), 85)


@pytest.mark.parametrize("name", ALL_GROUPERS)
def test_group_count_near_optimal(name):
    # 100% target fill: group count should be close to ceil(n/capacity).
    n, cap = 2000, 85
    groups = GROUPERS[name](random_mbrs(n, seed=7), cap)
    optimal = -(-n // cap)
    assert optimal <= len(groups) <= int(optimal * 1.6) + 6


@settings(max_examples=25, deadline=None)
@given(
    st.sampled_from(ALL_GROUPERS),
    st.integers(1, 400),
    st.integers(1, 120),
    st.integers(0, 2**31),
)
def test_partition_property(name, n, capacity, seed):
    mbrs = random_mbrs(n, seed=seed)
    groups = GROUPERS[name](mbrs, capacity)
    concat = np.concatenate(groups)
    assert np.array_equal(np.sort(concat), np.arange(n))
    assert all(0 < len(g) <= capacity for g in groups)


class TestSTRSpecifics:
    def test_tiles_are_spatially_coherent(self):
        # A regular grid of unit boxes: STR tiles must have near-minimal
        # bounding volume compared to random assignment.
        side = 12
        axes = np.arange(side, dtype=float)
        centers = np.stack(
            np.meshgrid(axes, axes, axes, indexing="ij"), axis=-1
        ).reshape(-1, 3)
        mbrs = np.concatenate([centers, centers + 1.0], axis=1)
        groups = str_groups(mbrs, 64)
        for g in groups:
            boxes = mbrs[g]
            vol = np.prod(boxes[:, 3:].max(axis=0) - boxes[:, :3].min(axis=0))
            # A perfect 4x4x4 tile of unit cubes has volume 125 (5^3 of
            # corner span); allow generous slack for uneven splits.
            assert vol < 1000

    def test_sort_order_is_permutation(self):
        mbrs = random_mbrs(321, seed=3)
        order = str_sort_order(mbrs, 85)
        assert np.array_equal(np.sort(order), np.arange(321))

    def test_sort_order_empty(self):
        assert len(str_sort_order(np.empty((0, 6)), 85)) == 0


class TestPRTreeSpecifics:
    def test_priority_leaf_contains_extreme_element(self):
        # The element with the globally smallest xmin must land in the
        # first priority leaf extracted at the root.
        mbrs = random_mbrs(500, seed=9)
        extreme = int(np.argmin(mbrs[:, 0]))
        groups = prtree_groups(mbrs, 10)
        containing = [g for g in groups if extreme in g]
        assert len(containing) == 1
        # Its group must consist of small-xmin elements.
        xmin_rank = np.argsort(mbrs[:, 0])
        top = set(xmin_rank[:10].tolist())
        assert set(containing[0].tolist()) == top


class TestTGSSpecifics:
    def test_separated_clusters_not_mixed(self):
        # Two distant clusters of page size each: the greedy split must
        # put them in different groups.
        rng = np.random.default_rng(11)
        a_lo = rng.uniform(0, 1, size=(40, 3))
        b_lo = rng.uniform(100, 101, size=(40, 3))
        lo = np.concatenate([a_lo, b_lo])
        mbrs = np.concatenate([lo, lo + 0.1], axis=1)
        groups = tgs_groups(mbrs, 40)
        for g in groups:
            labels = set((g >= 40).tolist())
            assert len(labels) == 1
