"""Tests for the 3-D Hilbert curve implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree import (
    hilbert_decode,
    hilbert_groups,
    hilbert_keys,
    hilbert_sort_order,
    quantize_centers,
)


def full_grid(bits):
    side = 1 << bits
    axes = np.arange(side)
    return (
        np.stack(np.meshgrid(axes, axes, axes, indexing="ij"), axis=-1)
        .reshape(-1, 3)
        .astype(np.uint64)
    )


class TestBijection:
    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_keys_are_a_permutation(self, bits):
        coords = full_grid(bits)
        keys = hilbert_keys(coords, bits)
        assert len(np.unique(keys)) == len(coords)
        assert keys.min() == 0
        assert keys.max() == len(coords) - 1

    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_decode_inverts_encode(self, bits):
        coords = full_grid(bits)
        keys = hilbert_keys(coords, bits)
        back = hilbert_decode(keys, bits)
        assert np.array_equal(back, coords)


class TestCurveContinuity:
    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_consecutive_keys_are_grid_neighbors(self, bits):
        # The defining property of the Hilbert curve: walking the keys in
        # order moves exactly one grid step (L1 distance 1) at a time.
        coords = full_grid(bits)
        keys = hilbert_keys(coords, bits)
        walk = coords[np.argsort(keys)].astype(np.int64)
        steps = np.abs(np.diff(walk, axis=0)).sum(axis=1)
        assert (steps == 1).all()

    def test_origin_is_key_zero(self):
        key = hilbert_keys(np.array([[0, 0, 0]], dtype=np.uint64), 4)
        assert key[0] == 0


class TestValidation:
    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            hilbert_keys(np.zeros((4, 2), dtype=np.uint64), 4)

    def test_rejects_out_of_grid_coords(self):
        with pytest.raises(ValueError):
            hilbert_keys(np.array([[16, 0, 0]], dtype=np.uint64), 4)

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            hilbert_keys(np.zeros((1, 3), dtype=np.uint64), 0)
        with pytest.raises(ValueError):
            hilbert_decode(np.zeros(1, dtype=np.uint64), 25)

    def test_decode_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            hilbert_decode(np.zeros((2, 2), dtype=np.uint64), 4)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255)),
        min_size=1,
        max_size=50,
    )
)
def test_roundtrip_property_8bit(points):
    coords = np.array(points, dtype=np.uint64)
    keys = hilbert_keys(coords, 8)
    assert np.array_equal(hilbert_decode(keys, 8), coords)


class TestQuantizeAndOrder:
    def test_quantize_maps_to_grid_corners(self):
        mbrs = np.array(
            [[0, 0, 0, 2, 2, 2], [10, 10, 10, 12, 12, 12]], dtype=float
        )
        grid = quantize_centers(mbrs, bits=8)
        assert np.array_equal(grid[0], [0, 0, 0])
        assert np.array_equal(grid[1], [255, 255, 255])

    def test_quantize_handles_degenerate_span(self):
        # All centers identical: span is zero along every axis.
        mbrs = np.tile(np.array([[1, 1, 1, 3, 3, 3]], dtype=float), (4, 1))
        grid = quantize_centers(mbrs, bits=8)
        assert np.array_equal(grid, np.zeros((4, 3), dtype=np.uint64))

    def test_sort_order_is_permutation(self):
        rng = np.random.default_rng(0)
        lo = rng.uniform(0, 100, size=(500, 3))
        mbrs = np.concatenate([lo, lo + 1], axis=1)
        order = hilbert_sort_order(mbrs)
        assert np.array_equal(np.sort(order), np.arange(500))

    def test_sort_order_groups_nearby_elements(self):
        # Two well-separated clusters must not interleave in curve order.
        rng = np.random.default_rng(1)
        a = rng.uniform(0, 1, size=(50, 3))
        b = rng.uniform(99, 100, size=(50, 3))
        lo = np.concatenate([a, b])
        mbrs = np.concatenate([lo, lo + 0.01], axis=1)
        order = hilbert_sort_order(mbrs)
        labels = (order >= 50).astype(int)
        # one transition between the cluster blocks
        assert np.abs(np.diff(labels)).sum() == 1

    def test_groups_fill_pages_fully(self):
        rng = np.random.default_rng(2)
        lo = rng.uniform(0, 10, size=(300, 3))
        mbrs = np.concatenate([lo, lo + 0.1], axis=1)
        groups = hilbert_groups(mbrs, 85)
        sizes = [len(g) for g in groups]
        assert sizes == [85, 85, 85, 45]
        assert np.array_equal(
            np.sort(np.concatenate(groups)), np.arange(300)
        )

    def test_groups_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            hilbert_groups(np.zeros((1, 6)), 0)
