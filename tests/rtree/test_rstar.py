"""Tests for the dynamic R*-Tree."""

import numpy as np
import pytest

from repro.geometry import boxes_intersect_box
from repro.storage import (
    CATEGORY_RTREE_INTERNAL,
    CATEGORY_RTREE_LEAF,
    PageStore,
)
from repro.rtree import RStarTree, bulkload_rtree


def random_mbrs(n, seed=0, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 100, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, extent, size=(n, 3))], axis=1)


def brute_force(mbrs, query):
    return np.flatnonzero(boxes_intersect_box(mbrs, query))


class TestInsertion:
    def test_count_tracks_inserts(self):
        mbrs = random_mbrs(50)
        tree = RStarTree(mbrs)
        for i in range(50):
            tree.insert(i)
        assert len(tree) == 50

    def test_out_of_range_insert_rejected(self):
        tree = RStarTree(random_mbrs(5))
        with pytest.raises(ValueError):
            tree.insert(5)

    def test_height_grows_with_data(self):
        small = RStarTree.from_mbrs(random_mbrs(50, seed=1))
        big = RStarTree.from_mbrs(random_mbrs(1500, seed=2))
        assert small.height == 1
        assert big.height >= 2

    def test_invalid_mbr_shape_rejected(self):
        with pytest.raises(ValueError):
            RStarTree(np.zeros((4, 5)))


class TestFlushAndQuery:
    def test_flush_empty_rejected(self):
        tree = RStarTree(random_mbrs(5))
        with pytest.raises(ValueError):
            tree.flush(PageStore(), CATEGORY_RTREE_LEAF, CATEGORY_RTREE_INTERNAL)

    @pytest.mark.parametrize("n", [1, 30, 85, 86, 400, 1200])
    def test_disk_tree_structure_valid(self, n):
        mbrs = random_mbrs(n, seed=n)
        disk = bulkload_rtree(PageStore(), mbrs, "rstar")
        disk.validate(mbrs)

    def test_range_query_matches_brute_force(self):
        mbrs = random_mbrs(900, seed=3)
        disk = bulkload_rtree(PageStore(), mbrs, "rstar")
        rng = np.random.default_rng(4)
        for _ in range(20):
            lo = rng.uniform(0, 90, size=3)
            query = np.concatenate([lo, lo + rng.uniform(1, 20, size=3)])
            assert np.array_equal(disk.range_query(query), brute_force(mbrs, query))

    def test_min_fill_respected_on_disk(self):
        # R* guarantees at least 40% fill after splits (except the root
        # path); check a loose lower bound on average utilization.
        mbrs = random_mbrs(2000, seed=5)
        disk = bulkload_rtree(PageStore(), mbrs, "rstar")
        avg_fill = 2000 / (disk.leaf_count() * 85)
        assert avg_fill > 0.4

    def test_bulkloaded_str_beats_rstar_utilization(self):
        # The paper's stated reason for comparing only bulkloaded trees:
        # better page utilization.
        mbrs = random_mbrs(2000, seed=6)
        rstar = bulkload_rtree(PageStore(), mbrs, "rstar")
        packed = bulkload_rtree(PageStore(), mbrs, "str")
        assert packed.leaf_count() <= rstar.leaf_count()
