"""Unit tests for the MBR arithmetic core."""

import numpy as np
import pytest

from repro.geometry import (
    MBR,
    mbr_area_surface,
    mbr_center,
    mbr_contains_mbr,
    mbr_contains_point,
    mbr_empty,
    mbr_from_points,
    mbr_intersection,
    mbr_intersects,
    mbr_margin,
    mbr_overlap_volume,
    mbr_union,
    mbr_union_many,
    mbr_volume,
    validate_mbrs,
)


def box(lo, hi):
    return np.array(list(lo) + list(hi), dtype=np.float64)


UNIT = box((0, 0, 0), (1, 1, 1))


class TestMBRClass:
    def test_volume(self):
        assert MBR((0, 0, 0), (1, 2, 3)).volume() == pytest.approx(6.0)

    def test_degenerate_volume_is_zero(self):
        assert MBR((1, 1, 1), (1, 2, 3)).volume() == 0.0

    def test_inverted_corners_rejected(self):
        with pytest.raises(ValueError):
            MBR((1, 0, 0), (0, 1, 1))

    def test_from_array_shape_check(self):
        with pytest.raises(ValueError):
            MBR.from_array([0, 0, 0, 1, 1])

    def test_center_and_extents(self):
        m = MBR((0, 0, 0), (2, 4, 6))
        assert np.allclose(m.center(), [1, 2, 3])
        assert np.allclose(m.extents(), [2, 4, 6])

    def test_intersects_touching_faces(self):
        a = MBR((0, 0, 0), (1, 1, 1))
        b = MBR((1, 0, 0), (2, 1, 1))
        assert a.intersects(b)
        assert b.intersects(a)

    def test_disjoint(self):
        a = MBR((0, 0, 0), (1, 1, 1))
        b = MBR((1.01, 0, 0), (2, 1, 1))
        assert not a.intersects(b)

    def test_contains(self):
        outer = MBR((0, 0, 0), (10, 10, 10))
        inner = MBR((1, 1, 1), (2, 2, 2))
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert outer.contains(outer)

    def test_contains_point_boundary(self):
        m = MBR((0, 0, 0), (1, 1, 1))
        assert m.contains_point((1, 1, 1))
        assert m.contains_point((0, 0.5, 0.3))
        assert not m.contains_point((1.0001, 0.5, 0.5))

    def test_union(self):
        a = MBR((0, 0, 0), (1, 1, 1))
        b = MBR((2, 2, 2), (3, 3, 3))
        u = a.union(b)
        assert u == MBR((0, 0, 0), (3, 3, 3))

    def test_stretched_to_include_is_union(self):
        a = MBR((0, 0, 0), (1, 1, 1))
        b = MBR((0.5, 0.5, 0.5), (2, 2, 2))
        assert a.stretched_to_include(b) == a.union(b)

    def test_equality_and_hash(self):
        a = MBR((0, 0, 0), (1, 1, 1))
        b = MBR((0, 0, 0), (1, 1, 1))
        assert a == b
        assert hash(a) == hash(b)
        assert a != MBR((0, 0, 0), (1, 1, 2))

    def test_repr_round_trip_corners(self):
        m = MBR((0, -1, 2.5), (1, 0, 3.5))
        assert "MBR" in repr(m)

    def test_array_is_readonly(self):
        m = MBR((0, 0, 0), (1, 1, 1))
        with pytest.raises(ValueError):
            m.array[0] = 5.0


class TestBatchFunctions:
    def test_mbr_empty_is_union_identity(self):
        e = mbr_empty()
        assert np.array_equal(mbr_union(e, UNIT), UNIT)

    def test_mbr_from_points(self):
        pts = np.array([[0, 5, 1], [2, 1, 3], [1, 2, -1]], dtype=float)
        assert np.array_equal(mbr_from_points(pts), box((0, 1, -1), (2, 5, 3)))

    def test_mbr_from_points_rejects_empty(self):
        with pytest.raises(ValueError):
            mbr_from_points(np.empty((0, 3)))

    def test_volume_batch(self):
        batch = np.stack([UNIT, box((0, 0, 0), (2, 2, 2))])
        assert np.allclose(mbr_volume(batch), [1.0, 8.0])

    def test_margin(self):
        assert mbr_margin(box((0, 0, 0), (1, 2, 3))) == pytest.approx(6.0)

    def test_surface_area(self):
        assert mbr_area_surface(box((0, 0, 0), (1, 2, 3))) == pytest.approx(22.0)

    def test_center_batch(self):
        batch = np.stack([UNIT, box((0, 0, 0), (2, 4, 6))])
        assert np.allclose(mbr_center(batch), [[0.5, 0.5, 0.5], [1, 2, 3]])

    def test_intersects_broadcast(self):
        batch = np.stack(
            [UNIT, box((2, 2, 2), (3, 3, 3)), box((0.5, 0.5, 0.5), (0.6, 0.6, 0.6))]
        )
        mask = mbr_intersects(batch, UNIT)
        assert mask.tolist() == [True, False, True]

    def test_contains_mbr_broadcast(self):
        outer = box((0, 0, 0), (10, 10, 10))
        batch = np.stack([UNIT, box((5, 5, 5), (11, 11, 11))])
        assert mbr_contains_mbr(outer, batch).tolist() == [True, False]

    def test_contains_point_batch(self):
        batch = np.stack([UNIT, box((2, 2, 2), (3, 3, 3))])
        assert mbr_contains_point(batch, np.array([0.5, 0.5, 0.5])).tolist() == [
            True,
            False,
        ]

    def test_union_many(self):
        batch = np.stack([UNIT, box((-1, 0, 0), (0.5, 2, 0.5))])
        assert np.array_equal(mbr_union_many(batch), box((-1, 0, 0), (1, 2, 1)))

    def test_union_many_rejects_empty(self):
        with pytest.raises(ValueError):
            mbr_union_many(np.empty((0, 6)))

    def test_intersection_box(self):
        a = box((0, 0, 0), (2, 2, 2))
        b = box((1, 1, 1), (3, 3, 3))
        assert np.array_equal(mbr_intersection(a, b), box((1, 1, 1), (2, 2, 2)))

    def test_overlap_volume_disjoint_is_zero(self):
        a = box((0, 0, 0), (1, 1, 1))
        b = box((5, 5, 5), (6, 6, 6))
        assert mbr_overlap_volume(a, b) == 0.0

    def test_overlap_volume_partial(self):
        a = box((0, 0, 0), (2, 2, 2))
        b = box((1, 1, 1), (3, 3, 3))
        assert mbr_overlap_volume(a, b) == pytest.approx(1.0)


class TestValidate:
    def test_valid_batch_passes(self):
        batch = np.stack([UNIT, box((1, 2, 3), (4, 5, 6))])
        out = validate_mbrs(batch)
        assert out.flags["C_CONTIGUOUS"]
        assert out.dtype == np.float64

    def test_wrong_shape(self):
        with pytest.raises(ValueError):
            validate_mbrs(np.zeros((3, 5)))

    def test_nan_rejected(self):
        bad = np.stack([UNIT])
        bad[0, 0] = np.nan
        with pytest.raises(ValueError):
            validate_mbrs(bad)

    def test_inverted_rejected_with_index(self):
        bad = np.stack([UNIT, box((0, 0, 0), (1, 1, 1))])
        bad[1, 3] = -1.0
        with pytest.raises(ValueError, match="MBR 1"):
            validate_mbrs(bad)
