"""Unit tests for the vectorized intersection predicates."""

import numpy as np

from repro.geometry import (
    boxes_contained_in_box,
    boxes_intersect_box,
    boxes_intersect_point,
    pairwise_intersects,
)


def box(lo, hi):
    return np.array(list(lo) + list(hi), dtype=np.float64)


QUERY = box((0, 0, 0), (10, 10, 10))


class TestBoxesIntersectBox:
    def test_basic_mask(self):
        batch = np.stack(
            [
                box((1, 1, 1), (2, 2, 2)),       # inside
                box((9, 9, 9), (12, 12, 12)),    # straddles corner
                box((10, 0, 0), (11, 1, 1)),     # touches face
                box((11, 11, 11), (12, 12, 12)), # outside
            ]
        )
        assert boxes_intersect_box(batch, QUERY).tolist() == [True, True, True, False]

    def test_empty_batch(self):
        assert boxes_intersect_box(np.empty((0, 6)), QUERY).shape == (0,)

    def test_disjoint_on_single_axis_only(self):
        b = box((2, 2, 11), (3, 3, 12))  # overlaps x and y, not z
        assert not boxes_intersect_box(np.stack([b]), QUERY)[0]


class TestBoxesContainedInBox:
    def test_containment_mask(self):
        batch = np.stack(
            [
                box((1, 1, 1), (2, 2, 2)),
                box((0, 0, 0), (10, 10, 10)),  # equal => contained
                box((-1, 1, 1), (2, 2, 2)),    # pokes out
            ]
        )
        assert boxes_contained_in_box(batch, QUERY).tolist() == [True, True, False]


class TestBoxesIntersectPoint:
    def test_point_mask(self):
        batch = np.stack([box((0, 0, 0), (1, 1, 1)), box((2, 2, 2), (3, 3, 3))])
        mask = boxes_intersect_point(batch, np.array([1.0, 1.0, 1.0]))
        assert mask.tolist() == [True, False]


class TestPairwise:
    def test_matches_broadcast_definition(self):
        rng = np.random.default_rng(3)
        lo_a = rng.uniform(0, 8, size=(12, 3))
        a = np.concatenate([lo_a, lo_a + rng.uniform(0.1, 3, size=(12, 3))], axis=1)
        lo_b = rng.uniform(0, 8, size=(9, 3))
        b = np.concatenate([lo_b, lo_b + rng.uniform(0.1, 3, size=(9, 3))], axis=1)
        mat = pairwise_intersects(a, b)
        assert mat.shape == (12, 9)
        for i in range(12):
            assert np.array_equal(mat[i], boxes_intersect_box(b, a[i]))

    def test_symmetry_on_self(self):
        rng = np.random.default_rng(5)
        lo = rng.uniform(0, 5, size=(10, 3))
        batch = np.concatenate([lo, lo + 1.0], axis=1)
        mat = pairwise_intersects(batch, batch)
        assert np.array_equal(mat, mat.T)
        assert mat.diagonal().all()
