"""Unit tests for shape → MBR constructors."""

import numpy as np
import pytest

from repro.geometry import (
    Box,
    Cylinder,
    MBR,
    Sphere,
    Triangle,
    boxes_from_centers,
    cylinders_to_mbrs,
    spheres_to_mbrs,
    triangles_to_mbrs,
)


class TestCylinder:
    def test_axis_aligned_cylinder(self):
        c = Cylinder(p0=(0, 0, 0), p1=(0, 0, 10), r0=1.0, r1=1.0)
        assert c.mbr() == MBR((-1, -1, -1), (1, 1, 11))

    def test_tapered_cylinder_uses_per_end_radius(self):
        c = Cylinder(p0=(0, 0, 0), p1=(0, 0, 10), r0=1.0, r1=3.0)
        m = c.mbr()
        assert np.allclose(m.lo, [-3, -3, -1])
        assert np.allclose(m.hi, [3, 3, 13])

    def test_oblique_cylinder_contains_both_caps(self):
        c = Cylinder(p0=(1, 2, 3), p1=(4, 6, 8), r0=0.5, r1=0.25)
        m = c.mbr()
        assert m.contains_point((1, 2, 3))
        assert m.contains_point((4, 6, 8))
        assert m.contains_point((0.5, 1.5, 2.5))

    def test_zero_length_cylinder_is_sphere_box(self):
        c = Cylinder(p0=(0, 0, 0), p1=(0, 0, 0), r0=2.0, r1=2.0)
        assert c.mbr() == MBR((-2, -2, -2), (2, 2, 2))


class TestTriangleSphereBox:
    def test_triangle_mbr(self):
        t = Triangle((0, 0, 0), (1, 0, 2), (0, 3, 1))
        assert t.mbr() == MBR((0, 0, 0), (1, 3, 2))

    def test_sphere_mbr(self):
        s = Sphere((1, 1, 1), 0.5)
        assert s.mbr() == MBR((0.5, 0.5, 0.5), (1.5, 1.5, 1.5))

    def test_box_mbr_is_identity(self):
        b = Box((0, 1, 2), (3, 4, 5))
        assert b.mbr() == MBR((0, 1, 2), (3, 4, 5))


class TestBatchConstructors:
    def test_cylinders_batch_matches_scalar(self):
        rng = np.random.default_rng(7)
        p0 = rng.uniform(-5, 5, size=(20, 3))
        p1 = rng.uniform(-5, 5, size=(20, 3))
        r0 = rng.uniform(0.1, 2.0, size=20)
        r1 = rng.uniform(0.1, 2.0, size=20)
        batch = cylinders_to_mbrs(p0, p1, r0, r1)
        for i in range(20):
            scalar = Cylinder(tuple(p0[i]), tuple(p1[i]), r0[i], r1[i]).mbr()
            assert np.allclose(batch[i], scalar.array)

    def test_cylinders_shape_validation(self):
        with pytest.raises(ValueError):
            cylinders_to_mbrs(np.zeros((3, 2)), np.zeros((3, 2)), np.ones(3), np.ones(3))

    def test_triangles_batch_matches_scalar(self):
        rng = np.random.default_rng(11)
        verts = rng.uniform(-1, 1, size=(15, 3, 3))
        batch = triangles_to_mbrs(verts)
        for i in range(15):
            scalar = Triangle(*map(tuple, verts[i])).mbr()
            assert np.allclose(batch[i], scalar.array)

    def test_triangles_shape_validation(self):
        with pytest.raises(ValueError):
            triangles_to_mbrs(np.zeros((4, 2, 3)))

    def test_spheres_scalar_radius_broadcast(self):
        centers = np.array([[0, 0, 0], [1, 1, 1]], dtype=float)
        batch = spheres_to_mbrs(centers, 0.5)
        assert np.allclose(batch[0], [-0.5, -0.5, -0.5, 0.5, 0.5, 0.5])
        assert np.allclose(batch[1], [0.5, 0.5, 0.5, 1.5, 1.5, 1.5])

    def test_spheres_shape_validation(self):
        with pytest.raises(ValueError):
            spheres_to_mbrs(np.zeros((5, 2)), 1.0)

    def test_boxes_from_centers(self):
        centers = np.array([[0, 0, 0]], dtype=float)
        extents = np.array([[2, 4, 6]], dtype=float)
        batch = boxes_from_centers(centers, extents)
        assert np.allclose(batch[0], [-1, -2, -3, 1, 2, 3])

    def test_boxes_from_centers_rejects_negative_extent(self):
        with pytest.raises(ValueError):
            boxes_from_centers(np.zeros((1, 3)), -np.ones((1, 3)))

    def test_boxes_from_centers_rejects_mismatch(self):
        with pytest.raises(ValueError):
            boxes_from_centers(np.zeros((2, 3)), np.ones((3, 3)))
