"""Property-based tests (hypothesis) for the geometry kernel."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry import (
    mbr_contains_mbr,
    mbr_intersection,
    mbr_intersects,
    mbr_overlap_volume,
    mbr_union,
    mbr_volume,
)

coord = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=64)


@st.composite
def mbrs(draw):
    lo = np.array(draw(st.tuples(coord, coord, coord)), dtype=np.float64)
    ext = np.array(
        draw(
            st.tuples(
                st.floats(0, 1e3), st.floats(0, 1e3), st.floats(0, 1e3)
            )
        ),
        dtype=np.float64,
    )
    return np.concatenate([lo, lo + ext])


@given(mbrs(), mbrs())
def test_intersects_is_symmetric(a, b):
    assert mbr_intersects(a, b) == mbr_intersects(b, a)


@given(mbrs())
def test_box_intersects_itself(a):
    assert mbr_intersects(a, a)


@given(mbrs(), mbrs())
def test_union_contains_both(a, b):
    u = mbr_union(a, b)
    assert mbr_contains_mbr(u, a)
    assert mbr_contains_mbr(u, b)


@given(mbrs(), mbrs())
def test_union_is_commutative(a, b):
    assert np.array_equal(mbr_union(a, b), mbr_union(b, a))


@given(mbrs(), mbrs(), mbrs())
def test_union_is_associative(a, b, c):
    left = mbr_union(mbr_union(a, b), c)
    right = mbr_union(a, mbr_union(b, c))
    assert np.allclose(left, right)


@given(mbrs(), mbrs())
def test_intersection_contained_in_both_when_intersecting(a, b):
    if mbr_intersects(a, b):
        inter = mbr_intersection(a, b)
        assert mbr_contains_mbr(a, inter)
        assert mbr_contains_mbr(b, inter)


@given(mbrs(), mbrs())
def test_overlap_volume_zero_iff_volume_disjoint(a, b):
    v = mbr_overlap_volume(a, b)
    assert v >= 0.0
    if not mbr_intersects(a, b):
        assert v == 0.0


@given(mbrs(), mbrs())
def test_containment_implies_intersection(a, b):
    if mbr_contains_mbr(a, b):
        assert mbr_intersects(a, b)


@given(mbrs(), mbrs())
def test_union_volume_at_least_max(a, b):
    u = mbr_union(a, b)
    assert mbr_volume(u) >= max(mbr_volume(a), mbr_volume(b)) - 1e-9


@settings(max_examples=50)
@given(
    hnp.arrays(
        np.float64,
        shape=st.tuples(st.integers(1, 30)),
        elements=st.floats(-100, 100),
    )
)
def test_volume_batch_consistent_with_scalar(xs):
    # Build degenerate boxes [x, x, x, x+1, x+1, x+1]; batch volume must
    # equal elementwise scalar volume.
    lo = np.stack([xs, xs, xs], axis=1)
    batch = np.concatenate([lo, lo + 1.0], axis=1)
    vols = mbr_volume(batch)
    for i in range(len(xs)):
        assert vols[i] == mbr_volume(batch[i])
