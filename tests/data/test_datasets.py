"""Tests for microcircuit, uniform, n-body, mesh and registry generators."""

import numpy as np
import pytest

from repro.data import (
    DATASET_ORDER,
    NBodyConfig,
    PAPER_DENSITY_STEPS,
    build_microcircuit,
    dataset_mbrs,
    deformed_sphere_mesh,
    density_sweep,
    mesh_mbrs,
    nbody_points,
    space_box,
    uniform_aspect_boxes,
    uniform_cubes,
)
from repro.geometry import mbr_volume


class TestMicrocircuit:
    def test_exact_element_count(self):
        circuit = build_microcircuit(5000, seed=0)
        assert len(circuit) == 5000
        assert circuit.mbrs().shape == (5000, 6)

    def test_constant_volume_density_sweep(self):
        sizes = []
        for n, circuit in density_sweep([1000, 2000, 3000], seed=0):
            assert len(circuit) == n
            assert np.array_equal(circuit.space_mbr, space_box())
            sizes.append(n)
        assert sizes == [1000, 2000, 3000]

    def test_paper_density_steps_shape(self):
        assert PAPER_DENSITY_STEPS == (50, 100, 150, 200, 250, 300, 350, 400, 450)

    def test_elements_stay_in_volume(self):
        circuit = build_microcircuit(3000, seed=1)
        space = circuit.space_mbr
        mbrs = circuit.mbrs()
        # Centers must be inside; MBRs may poke out by a radius.
        centers = (mbrs[:, :3] + mbrs[:, 3:]) / 2
        assert (centers >= space[:3] - 2).all()
        assert (centers <= space[3:] + 2).all()

    def test_density_actually_increases(self):
        # Same volume, more elements => more elements per sub-box.
        sparse = build_microcircuit(1000, seed=2).mbrs()
        dense = build_microcircuit(8000, seed=2).mbrs()
        probe = np.array([100.0, 100, 100, 180, 180, 180])
        from repro.geometry import boxes_intersect_box

        assert boxes_intersect_box(dense, probe).sum() > boxes_intersect_box(
            sparse, probe
        ).sum()

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            build_microcircuit(0)

    def test_invalid_side_rejected(self):
        with pytest.raises(ValueError):
            space_box(-1.0)


class TestUniform:
    def test_cubes_have_requested_volume(self):
        mbrs = uniform_cubes(500, edge=3.0, seed=0)
        assert np.allclose(mbr_volume(mbrs), 27.0)

    def test_cube_positions_fixed_across_edge_change(self):
        small = uniform_cubes(100, edge=1.0, seed=5)
        big = uniform_cubes(100, edge=5.0, seed=5)
        assert np.allclose(
            (small[:, :3] + small[:, 3:]) / 2, (big[:, :3] + big[:, 3:]) / 2
        )

    def test_aspect_boxes_constant_volume(self):
        mbrs = uniform_aspect_boxes(800, target_volume=18.0, seed=1)
        assert np.allclose(mbr_volume(mbrs), 18.0, rtol=1e-9)

    def test_aspect_boxes_vary_aspect(self):
        mbrs = uniform_aspect_boxes(800, target_volume=18.0, seed=2)
        ext = mbrs[:, 3:] - mbrs[:, :3]
        ratios = ext.max(axis=1) / ext.min(axis=1)
        assert ratios.max() > 3.0  # genuinely anisotropic

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_cubes(0, edge=1.0)
        with pytest.raises(ValueError):
            uniform_cubes(10, edge=-1.0)
        with pytest.raises(ValueError):
            uniform_aspect_boxes(10, target_volume=0)
        with pytest.raises(ValueError):
            uniform_aspect_boxes(10, length_range=(5.0, 1.0))


class TestNBody:
    def test_point_count_and_bounds(self):
        cfg = NBodyConfig(n_points=4000, side=1000.0)
        pts = nbody_points(cfg, seed=0)
        assert pts.shape == (4000, 3)
        assert (pts >= 0).all() and (pts <= 1000).all()

    def test_clustering_is_real(self):
        # Clustered snapshots concentrate many points in small balls;
        # compare the 99th percentile local density against uniform.
        cfg = NBodyConfig(n_points=5000, side=1000.0, clustered_fraction=0.9)
        clustered = nbody_points(cfg, seed=1)
        rng = np.random.default_rng(2)
        uniform = rng.uniform(0, 1000, size=(5000, 3))

        def max_ball_count(pts):
            # Count points near the densest sampled point.
            sample = pts[rng.integers(0, len(pts), size=200)]
            dist = np.linalg.norm(pts[None, :, :] - sample[:, None, :], axis=2)
            return (dist < 20.0).sum(axis=1).max()

        assert max_ball_count(clustered) > 3 * max_ball_count(uniform)

    def test_validation(self):
        with pytest.raises(ValueError):
            NBodyConfig(n_points=0)
        with pytest.raises(ValueError):
            NBodyConfig(n_points=10, clustered_fraction=1.5)
        with pytest.raises(ValueError):
            NBodyConfig(n_points=10, softening=0)


class TestMesh:
    def test_triangle_count_close_to_request(self):
        tris = deformed_sphere_mesh(2000, seed=0)
        assert 0.5 * 2000 <= len(tris) <= 2.0 * 2000

    def test_mesh_is_hollow(self):
        # A surface mesh has no triangles near the centroid.
        tris = deformed_sphere_mesh(3000, radius=100.0, deformation=0.1, seed=1)
        centers = tris.mean(axis=1)
        centroid = centers.mean(axis=0)
        dist = np.linalg.norm(centers - centroid, axis=1)
        assert dist.min() > 30.0

    def test_mbrs_shape(self):
        mbrs = mesh_mbrs(1500, seed=2)
        assert mbrs.shape[1] == 6
        assert (mbrs[:, :3] <= mbrs[:, 3:]).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            deformed_sphere_mesh(2)
        with pytest.raises(ValueError):
            deformed_sphere_mesh(100, radius=0)
        with pytest.raises(ValueError):
            deformed_sphere_mesh(100, deformation=-1)


class TestRegistry:
    def test_all_named_datasets_generate(self):
        for name in DATASET_ORDER:
            mbrs = dataset_mbrs(name, scale=0.05, seed=0)
            assert mbrs.shape[1] == 6
            assert len(mbrs) >= 100

    def test_relative_sizes_preserved(self):
        dm = dataset_mbrs("nuage_dark_matter", scale=0.1)
        stars = dataset_mbrs("nuage_stars", scale=0.1)
        lucy = dataset_mbrs("lucy_statue", scale=0.1)
        assert len(stars) < len(dm) < len(lucy)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            dataset_mbrs("andromeda")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            dataset_mbrs("nuage_gas", scale=0)
