"""Tests for the neuron morphology generator."""

import numpy as np
import pytest

from repro.data import MorphologyConfig, grow_neurons, space_box


def grow(n_neurons=5, side=285.0, seed=0, **overrides):
    config = MorphologyConfig(**overrides)
    rng = np.random.default_rng(seed)
    space = space_box(side)
    somata = rng.uniform(space[:3], space[3:], size=(n_neurons, 3))
    return grow_neurons(somata, config, space, rng), config, space


class TestConfig:
    def test_defaults_valid(self):
        config = MorphologyConfig()
        assert config.segments_per_neuron == (
            config.branches_per_neuron * config.segments_per_branch
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"branches_per_neuron": 0},
            {"segments_per_branch": 0},
            {"direction_persistence": 1.5},
            {"radius_base": 0},
            {"radius_tip": -1},
            {"segment_length_mean": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MorphologyConfig(**kwargs)


class TestGrowth:
    def test_segment_count(self):
        cylinders, config, _space = grow(n_neurons=7)
        assert len(cylinders) == 7 * config.segments_per_neuron

    def test_all_vertices_inside_volume(self):
        cylinders, _config, space = grow(n_neurons=10, seed=1)
        for pts in (cylinders.p0, cylinders.p1):
            assert (pts >= space[:3] - 1e-9).all()
            assert (pts <= space[3:] + 1e-9).all()

    def test_branches_are_connected_chains(self):
        # Within a branch, segment i's end is segment i+1's start.
        cylinders, config, _space = grow(n_neurons=2, seed=2)
        k = config.segments_per_branch
        p0 = cylinders.p0.reshape(-1, k, 3)
        p1 = cylinders.p1.reshape(-1, k, 3)
        assert np.allclose(p1[:, :-1], p0[:, 1:])

    def test_radii_taper(self):
        cylinders, config, _space = grow(n_neurons=1, seed=3)
        k = config.segments_per_branch
        r0 = cylinders.r0.reshape(-1, k)
        assert np.allclose(r0[:, 0], config.radius_base)
        assert (np.diff(r0, axis=1) < 0).all()

    def test_deterministic_for_same_seed(self):
        a, _c, _s = grow(n_neurons=3, seed=42)
        b, _c, _s = grow(n_neurons=3, seed=42)
        assert np.array_equal(a.p0, b.p0)
        assert np.array_equal(a.p1, b.p1)

    def test_different_seeds_differ(self):
        a, _c, _s = grow(n_neurons=3, seed=1)
        b, _c, _s = grow(n_neurons=3, seed=2)
        assert not np.array_equal(a.p0, b.p0)

    def test_mbrs_well_formed(self):
        cylinders, _config, _space = grow(n_neurons=4, seed=4)
        mbrs = cylinders.mbrs()
        assert mbrs.shape == (len(cylinders), 6)
        assert (mbrs[:, :3] <= mbrs[:, 3:]).all()

    def test_fiber_locality(self):
        # Consecutive segments along a fiber must be close together —
        # the spatial correlation that makes brain data crawlable.
        cylinders, config, _space = grow(n_neurons=3, seed=5)
        seg_centers = (cylinders.p0 + cylinders.p1) / 2
        k = config.segments_per_branch
        per_branch = seg_centers.reshape(-1, k, 3)
        step = np.linalg.norm(np.diff(per_branch, axis=1), axis=2)
        # Bounded by segment length scale (reflection can double a step).
        assert step.mean() < 3 * config.segment_length_mean

    def test_invalid_somata_shape(self):
        config = MorphologyConfig()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            grow_neurons(np.zeros((3, 2)), config, space_box(), rng)
