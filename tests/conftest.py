"""Shared pytest configuration: Hypothesis profiles.

The "ci" profile — selected by exporting ``HYPOTHESIS_PROFILE=ci``, as
the GitHub workflow does — drops the per-example deadline (shared CI
runners stall unpredictably, and a deadline flake fails the build),
derandomizes so every run replays the same examples, and pins the
example budget so suite time stays stable.  Local runs keep Hypothesis's
default randomized profile.
"""

import os

from hypothesis import settings

settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    max_examples=60,
    print_blob=True,
)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
