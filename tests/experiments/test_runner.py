"""Tests for the experiments CLI."""

import os

import pytest

from repro.experiments.runner import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.exp is None
        assert not args.small
        assert not args.full
        assert not args.depth_matched

    def test_exp_accumulates(self):
        args = build_parser().parse_args(["--exp", "fig02", "--exp", "fig20"])
        assert args.exp == ["fig02", "fig20"]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--exp", "fig99"])

    def test_scale_flags_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--small", "--full"])


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig02" in out
        assert "fig23" in out

    def test_run_one_experiment_small(self, capsys):
        # sec7e-vol runs off uniform data only: quick at --small.
        rc = main(["--small", "--exp", "sec7e-vol"])
        out = capsys.readouterr().out
        assert "[sec7e-vol]" in out
        assert rc in (0, 1)  # shape checks may legitimately vary at tiny scale

    def test_csv_output(self, tmp_path, capsys):
        target = str(tmp_path / "csv")
        main(["--small", "--exp", "sec7e-vol", "--csv", target])
        capsys.readouterr()
        assert os.path.exists(os.path.join(target, "sec7e-vol.csv"))
