"""Smoke + structure tests for every figure experiment (tiny config)."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments import registry
from repro.experiments.base import ExperimentResult

#: Tiny but dense enough that the headline shapes are visible.
TINY = ExperimentConfig(
    density_steps=(2_000, 4_000, 6_000),
    volume_side=13.0,
    query_count=12,
    point_query_count=12,
    node_fanout=7,
    dataset_scale=0.08,
)

ALL_IDS = sorted(registry.EXPERIMENTS)


class TestRegistry:
    def test_expected_experiment_ids(self):
        expected = {
            "fig02", "fig03", "fig04", "fig10", "fig11", "fig12", "fig13",
            "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
            "fig21", "fig22", "fig23", "sec7e-vol", "sec7e-ar", "sec7e2",
        }
        assert set(registry.EXPERIMENTS) == expected

    def test_titles_are_nonempty(self):
        for title, fn in registry.EXPERIMENTS.values():
            assert title
            assert callable(fn)


@pytest.mark.parametrize("experiment_id", ALL_IDS)
def test_every_experiment_runs_and_is_well_formed(experiment_id):
    _title, fn = registry.EXPERIMENTS[experiment_id]
    result = fn(TINY)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    assert result.rows, "experiment produced no rows"
    width = len(result.headers)
    assert all(len(row) == width for row in result.rows)
    assert result.checks, "experiment defines no shape checks"
    # Rendering must never crash.
    table = result.table()
    assert experiment_id in table
    csv = result.csv()
    assert csv.count("\n") == len(result.rows) + 1


def test_density_figures_have_one_row_per_step():
    for experiment_id in ["fig02", "fig11", "fig12", "fig15", "fig16", "fig19"]:
        _title, fn = registry.EXPERIMENTS[experiment_id]
        result = fn(TINY)
        assert len(result.rows) == len(TINY.density_steps)


def test_dataset_tables_have_one_row_per_dataset():
    for experiment_id in ["fig22", "fig23"]:
        _title, fn = registry.EXPERIMENTS[experiment_id]
        result = fn(TINY)
        assert len(result.rows) == 5
