"""Tests for the shared density-sweep engine (tiny configuration)."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.sweeps import (
    FLAT,
    cached_sweep,
    clear_sweep_cache,
    run_density_sweep,
)

TINY = ExperimentConfig(
    density_steps=(1_500, 3_000),
    volume_side=9.0,
    query_count=8,
    point_query_count=8,
    node_fanout=7,
    dataset_scale=0.05,
)


@pytest.fixture(scope="module")
def sweep():
    return run_density_sweep(TINY)


class TestSweepStructure:
    def test_one_step_per_density(self, sweep):
        assert [s.n_elements for s in sweep.steps] == [1_500, 3_000]

    def test_every_index_measured(self, sweep):
        for step in sweep.steps:
            assert set(step.indexes) == {FLAT, "hilbert", "str", "prtree"}

    def test_all_runs_populated(self, sweep):
        for step in sweep.steps:
            for obs in step.indexes.values():
                assert obs.point_run.query_count == 8
                assert obs.sn_run.query_count == 8
                assert obs.lss_run.query_count == 8
                assert obs.build_seconds > 0
                assert obs.total_bytes > 0

    def test_flat_has_breakdown_and_pointers(self, sweep):
        for step in sweep.steps:
            flat = step.indexes[FLAT]
            assert set(flat.build_breakdown) == {
                "partitioning",
                "finding_neighbors",
                "packing",
            }
            assert len(flat.pointer_counts) > 0

    def test_identical_results_across_indexes(self, sweep):
        # All four indexes must return the same result counts per query —
        # the correctness backbone of every comparison figure.
        for step in sweep.steps:
            reference = step.indexes[FLAT].sn_run.per_query_results
            for name, obs in step.indexes.items():
                assert obs.sn_run.per_query_results == reference, name
                assert (
                    obs.lss_run.per_query_results
                    == step.indexes[FLAT].lss_run.per_query_results
                )

    def test_payload_vs_hierarchy_partition(self, sweep):
        for step in sweep.steps:
            for obs in step.indexes.values():
                assert obs.payload_bytes() + obs.hierarchy_bytes() == obs.total_bytes

    def test_series_helper(self, sweep):
        series = list(sweep.series("str"))
        assert [n for n, _obs in series] == [1_500, 3_000]


class TestSweepCache:
    def test_cached_sweep_reuses_result(self):
        clear_sweep_cache()
        first = cached_sweep(TINY)
        second = cached_sweep(TINY)
        assert first is second
        clear_sweep_cache()
        third = cached_sweep(TINY)
        assert third is not first
        clear_sweep_cache()

    def test_different_config_different_sweep(self):
        clear_sweep_cache()
        a = cached_sweep(TINY)
        b = cached_sweep(TINY.with_overrides(query_count=4))
        assert a is not b
        clear_sweep_cache()
