"""Tests for experiment configuration."""

import pytest

from repro.experiments import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    FULL_CONFIG,
    SMALL_CONFIG,
)
from repro.experiments.config import DEPTH_MATCHED_CONFIG
from repro.storage import NODE_FANOUT


class TestExperimentConfig:
    def test_default_has_nine_density_steps(self):
        # The paper sweeps nine densities (50M..450M); the scaled
        # default preserves the nine-step design.
        assert len(DEFAULT_CONFIG.density_steps) == 9
        assert len(FULL_CONFIG.density_steps) == 9

    def test_default_steps_are_evenly_spaced(self):
        steps = DEFAULT_CONFIG.density_steps
        diffs = {b - a for a, b in zip(steps, steps[1:])}
        assert len(diffs) == 1

    def test_small_config_is_smaller(self):
        assert max(SMALL_CONFIG.density_steps) < min(DEFAULT_CONFIG.density_steps)
        assert SMALL_CONFIG.query_count < DEFAULT_CONFIG.query_count

    def test_default_uses_full_page_fanout(self):
        assert DEFAULT_CONFIG.node_fanout == NODE_FANOUT

    def test_depth_matched_lowers_fanout(self):
        assert DEPTH_MATCHED_CONFIG.node_fanout < NODE_FANOUT

    def test_query_fraction_ratio_is_paper_1000x(self):
        assert DEFAULT_CONFIG.lss_fraction / DEFAULT_CONFIG.sn_fraction == pytest.approx(
            1000.0
        )

    def test_with_overrides(self):
        cfg = DEFAULT_CONFIG.with_overrides(query_count=5)
        assert cfg.query_count == 5
        assert cfg.density_steps == DEFAULT_CONFIG.density_steps
        assert DEFAULT_CONFIG.query_count == 200  # original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(density_steps=())
        with pytest.raises(ValueError):
            ExperimentConfig(density_steps=(0,))
        with pytest.raises(ValueError):
            ExperimentConfig(query_count=0)
