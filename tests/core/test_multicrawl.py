"""Differential guarantee: the multi-query joint crawl equals the
serial crawl — per-query ids byte-identical, per-query cold page-read
accounting byte-identical — on memory stores and on restored
mmap-backed file stores, duplicates and empty-result queries included.

Decode counters are *not* pinned: the joint BFS decodes each touched
page once per group, which is the optimization.
"""

import numpy as np
import pytest

from repro.core import FLATIndex, restore_index, snapshot_index
from repro.query import run_queries, run_queries_grouped
from repro.query.workload import random_range_queries
from repro.storage import PageStore

SPACE = np.array([0.0, 0.0, 0.0, 100.0, 100.0, 100.0])


def random_mbrs(n, seed=0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 100, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, 2, size=(n, 3))], axis=1)


@pytest.fixture(scope="module")
def setup():
    store = PageStore()
    flat = FLATIndex.build(store, random_mbrs(4000, seed=2))
    queries = random_range_queries(SPACE, 0.0008, 40, seed=9)
    # Guarantee at least one certainly-empty query in the workload.
    empty = np.array([[300.0, 300, 300, 301, 301, 301]])
    queries = np.vstack([queries, empty])
    serial = [flat.range_query(q) for q in queries]
    return flat, store, queries, serial


def cold_reads(flat, store, queries):
    """Per-category reads of the serial cold-cache loop."""
    store.clear_cache()
    before = store.stats.snapshot()
    for query in queries:
        store.clear_cache()
        flat.range_query(query)
    return dict(store.stats.diff(before).reads)


class TestResultsIdentical:
    def test_per_query_ids_match_serial(self, setup):
        flat, _store, queries, serial = setup
        batched = flat.range_query_multi(queries)
        assert len(batched) == len(serial)
        for got, want in zip(batched, serial):
            assert np.array_equal(got, want)

    def test_includes_empty_result_queries(self, setup):
        flat, _store, queries, serial = setup
        batched = flat.range_query_multi(queries)
        assert len(batched[-1]) == 0
        assert batched[-1].dtype == np.int64

    def test_warm_mode_same_ids(self, setup):
        flat, _store, queries, serial = setup
        batched = flat.range_query_multi(queries, cold=False)
        for got, want in zip(batched, serial):
            assert np.array_equal(got, want)

    def test_empty_group(self, setup):
        flat, _store, _queries, _serial = setup
        assert flat.range_query_multi(np.empty((0, 6))) == []

    def test_single_query_group(self, setup):
        flat, _store, queries, serial = setup
        batched = flat.range_query_multi(queries[:1])
        assert len(batched) == 1
        assert np.array_equal(batched[0], serial[0])


class TestColdAccountingIdentical:
    def test_reads_match_serial_cold_loop(self, setup):
        flat, store, queries, _serial = setup
        want = cold_reads(flat, store, queries)
        before = store.stats.snapshot()
        flat.range_query_multi(queries)
        got = dict(store.stats.diff(before).reads)
        assert got == want

    def test_duplicate_queries_each_charged(self, setup):
        # Two identical queries in one group must charge every touched
        # page twice — the paper's metric is per-query, and a batch of
        # clones is the worst case for physical sharing.
        flat, store, queries, _serial = setup
        single = queries[:1]
        want_single = cold_reads(flat, store, single)
        doubled = np.vstack([single, single])
        before = store.stats.snapshot()
        flat.range_query_multi(doubled)
        got = dict(store.stats.diff(before).reads)
        assert got == {k: 2 * v for k, v in want_single.items() if v}

    def test_warm_mode_reads_fewer_pages(self, setup):
        flat, store, queries, _serial = setup
        want_cold = sum(cold_reads(flat, store, queries).values())
        store.clear_cache()
        before = store.stats.snapshot()
        flat.range_query_multi(queries, cold=False)
        got_warm = sum(store.stats.diff(before).reads.values())
        assert 0 < got_warm < want_cold


class TestFileStore:
    def test_restored_store_ids_and_reads_match(self, setup, tmp_path):
        flat, _store, queries, serial = setup
        snapshot_index(flat, tmp_path)
        restored = restore_index(tmp_path)
        want = cold_reads(restored, restored.store, queries)
        before = restored.store.stats.snapshot()
        batched = restored.range_query_multi(queries)
        got = dict(restored.store.stats.diff(before).reads)
        for a, b in zip(batched, serial):
            assert np.array_equal(a, b)
        assert got == want
        restored.store.close()


class TestGroupedHarness:
    @pytest.mark.parametrize("group_size", [1, 7, 1000])
    def test_matches_serial_harness(self, setup, group_size):
        flat, store, queries, _serial = setup
        serial_run = run_queries(flat, store, queries, "serial")
        grouped = run_queries_grouped(flat, store, queries, group_size, "grouped")
        assert grouped.query_count == serial_run.query_count
        assert grouped.per_query_results == serial_run.per_query_results
        assert grouped.result_elements == serial_run.result_elements
        assert grouped.reads_by_category == serial_run.reads_by_category

    def test_grouping_cuts_decodes_on_overlapping_queries(self, setup):
        # The whole point of the joint crawl: pages touched by several
        # queries of one group decode once.  A denser workload (queries
        # overlap heavily) makes the amortization visible; reads still
        # stay byte-identical to the serial loop.
        flat, store, _queries, _serial = setup
        dense = random_range_queries(SPACE, 0.01, 30, seed=4)
        serial_run = run_queries(flat, store, dense, "serial")
        grouped = run_queries_grouped(flat, store, dense, 30, "grouped")
        assert grouped.reads_by_category == serial_run.reads_by_category
        assert grouped.total_page_decodes < serial_run.total_page_decodes

    def test_rejects_bad_group_size(self, setup):
        flat, store, queries, _serial = setup
        with pytest.raises(ValueError, match="group_size"):
            run_queries_grouped(flat, store, queries, 0)
