"""Tests for FLAT's build knobs: metadata grouping and seed fanout.

Both knobs exist for the ablation benchmarks; they must never change
query *results*, only I/O counts.
"""

import numpy as np
import pytest

from repro.core import FLATIndex
from repro.storage import CATEGORY_METADATA, NODE_FANOUT, PageStore


def random_mbrs(n, seed=0, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 40, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, extent, size=(n, 3))], axis=1)


def queries(count, seed=1):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 35, size=(count, 3))
    return np.concatenate([lo, lo + rng.uniform(1, 6, size=(count, 3))], axis=1)


class TestMetadataGrouping:
    def test_both_groupings_answer_identically(self):
        mbrs = random_mbrs(5000, seed=2)
        spatial = FLATIndex.build(PageStore(), mbrs, spatial_metadata_grouping=True)
        linear = FLATIndex.build(PageStore(), mbrs, spatial_metadata_grouping=False)
        for q in queries(20):
            assert np.array_equal(spatial.range_query(q), linear.range_query(q))

    def test_spatial_grouping_reads_fewer_metadata_pages(self):
        # The locality effect needs enough metadata pages to matter, so
        # use a dense microcircuit (many partitions, fat neighbor lists).
        from repro.data import build_microcircuit
        from repro.query import random_range_queries

        circuit = build_microcircuit(20_000, side=18.0, seed=5)
        mbrs = circuit.mbrs()
        qs = random_range_queries(circuit.space_mbr, 5e-6, 30, seed=6)
        reads = {}
        for spatial in (True, False):
            store = PageStore()
            index = FLATIndex.build(
                store,
                mbrs,
                space_mbr=circuit.space_mbr,
                spatial_metadata_grouping=spatial,
            )
            total = 0
            for q in qs:
                store.clear_cache()
                before = store.stats.snapshot()
                index.range_query(q)
                total += store.stats.diff(before).reads.get(CATEGORY_METADATA, 0)
            reads[spatial] = total
        assert reads[True] < reads[False]

    def test_record_round_trip_with_linear_grouping(self):
        mbrs = random_mbrs(2000, seed=5)
        index = FLATIndex.build(PageStore(), mbrs, spatial_metadata_grouping=False)
        seed = index.seed_index
        for record in seed.iter_records():
            fetched = seed.fetch_record(record.record_id)
            assert fetched.object_page_id == record.object_page_id
            assert fetched.neighbor_ids == record.neighbor_ids


class TestSeedFanout:
    @pytest.mark.parametrize("fanout", [3, 9, NODE_FANOUT])
    def test_results_independent_of_fanout(self, fanout):
        mbrs = random_mbrs(4000, seed=6)
        index = FLATIndex.build(PageStore(), mbrs, seed_fanout=fanout)
        reference = FLATIndex.build(PageStore(), mbrs)
        for q in queries(15, seed=7):
            assert np.array_equal(index.range_query(q), reference.range_query(q))

    def test_lower_fanout_deepens_seed_tree(self):
        mbrs = random_mbrs(20_000, seed=8)
        shallow = FLATIndex.build(PageStore(), mbrs)
        deep = FLATIndex.build(PageStore(), mbrs, seed_fanout=4)
        assert deep.seed_index.height > shallow.seed_index.height

    def test_invalid_fanout_rejected(self):
        with pytest.raises(ValueError):
            FLATIndex.build(PageStore(), random_mbrs(500), seed_fanout=1)
        with pytest.raises(ValueError):
            FLATIndex.build(
                PageStore(), random_mbrs(500), seed_fanout=NODE_FANOUT + 1
            )
