"""Snapshot/restore round-trip guarantees for FLAT.

The acceptance bar: an index built in memory, snapshotted to a
directory and restored over the mmap-backed file store must return
byte-identical query results *and* page-read counts — pinned here on
the Fig. 13 SN workload (the microcircuit structural-neighborhood
benchmark) and on uniform data.
"""

import json

import numpy as np
import pytest

from repro.core import FLATIndex, restore_index, snapshot_index
from repro.core.snapshot import index_arrays_filename, index_meta_filename
from repro.data.microcircuit import build_microcircuit
from repro.query import BenchmarkSpec, SCALED_SN_FRACTION, run_queries
from repro.storage import FilePageStore, PageStore, PageStoreError, SnapshotError


def random_mbrs(n, seed=0, span=100.0, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, span, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, extent, size=(n, 3))], axis=1)


@pytest.fixture(scope="module")
def sn_round_trip(tmp_path_factory):
    """One built + restored index pair on the Fig. 13 SN workload."""
    circuit = build_microcircuit(8000, side=15.0, seed=3)
    store = PageStore()
    flat = FLATIndex.build(store, circuit.mbrs(), space_mbr=circuit.space_mbr)
    queries = BenchmarkSpec("SN", SCALED_SN_FRACTION, 40).queries(
        circuit.space_mbr, seed=11
    )
    directory = tmp_path_factory.mktemp("snapshots") / "sn"
    flat.snapshot(directory)
    restored = FLATIndex.restore(directory)
    yield flat, store, restored, queries, directory
    restored.store.close()


class TestFig13SNEquivalence:
    def test_byte_identical_results(self, sn_round_trip):
        flat, store, restored, queries, _ = sn_round_trip
        for query in queries:
            store.clear_cache()
            restored.store.clear_cache()
            expected = flat.range_query(query)
            got = restored.range_query(query)
            assert got.dtype == expected.dtype
            assert np.array_equal(got, expected)

    def test_identical_page_read_counts(self, sn_round_trip):
        flat, store, restored, queries, _ = sn_round_trip
        built = run_queries(flat, store, queries, "built")
        reopened = run_queries(restored, restored.store, queries, "restored")
        assert reopened.per_query_results == built.per_query_results
        assert reopened.per_query_reads == built.per_query_reads
        assert reopened.reads_by_category == built.reads_by_category
        assert reopened.decodes_by_kind == built.decodes_by_kind

    def test_restored_pages_byte_identical(self, sn_round_trip):
        flat, store, restored, _, _ = sn_round_trip
        assert len(restored.store) == len(store)
        for page_id in range(len(store)):
            assert restored.store.read_silent(page_id) == store.read_silent(page_id)
            assert restored.store.category(page_id) == store.category(page_id)

    def test_restored_store_is_mmap_backed(self, sn_round_trip):
        _, _, restored, _, _ = sn_round_trip
        assert isinstance(restored.store, FilePageStore)
        assert not restored.store.backend.writable


class TestRestoredDirectories:
    def test_directories_match(self, sn_round_trip):
        flat, _, restored, _, _ = sn_round_trip
        assert restored.element_count == flat.element_count
        assert restored.object_page_count == flat.object_page_count
        seed, restored_seed = flat.seed_index, restored.seed_index
        assert restored_seed.root_id == seed.root_id
        assert restored_seed.height == seed.height
        assert restored_seed.leaf_page_ids == seed.leaf_page_ids
        assert np.array_equal(restored_seed.record_page, seed.record_page)
        assert np.array_equal(restored_seed.record_slot, seed.record_slot)
        for page_id, ids in seed.leaf_record_ids.items():
            assert np.array_equal(restored_seed.leaf_record_ids[page_id], ids)
        for page_id, ids in flat.object_page_element_ids.items():
            assert np.array_equal(restored.object_page_element_ids[page_id], ids)

    def test_build_report_round_trips(self, sn_round_trip):
        flat, _, restored, _, _ = sn_round_trip
        assert restored.build_report.partition_count == (
            flat.build_report.partition_count
        )
        assert np.array_equal(
            restored.build_report.pointer_counts, flat.build_report.pointer_counts
        )
        assert restored.pointer_count_histogram() == flat.pointer_count_histogram()

    def test_snapshot_files_present(self, sn_round_trip):
        *_, directory = sn_round_trip
        assert (directory / index_arrays_filename(0)).exists()
        meta = json.loads((directory / index_meta_filename(0)).read_text())
        assert meta["index"] == "FLAT"


class TestSnapshotErrors:
    def test_restore_missing_directory(self, tmp_path):
        with pytest.raises(PageStoreError):
            restore_index(tmp_path / "missing")

    def test_restore_bad_format_version(self, tmp_path):
        flat = FLATIndex.build(PageStore(), random_mbrs(200, seed=1))
        snapshot_index(flat, tmp_path / "snap")
        meta_path = tmp_path / "snap" / index_meta_filename(0)
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(PageStoreError):
            restore_index(tmp_path / "snap")


class TestGenerations:
    """Versioned snapshots of a mutable, file-backed index."""

    def test_mutate_publish_restore_each_generation(self, tmp_path):
        mbrs = random_mbrs(300, seed=6)
        store = FilePageStore.create(tmp_path / "idx")
        flat = FLATIndex.build(store, mbrs, page_capacity=16)
        query = np.array([20.0, 20, 20, 70, 70, 70])
        assert flat.snapshot_generation() == 0
        expected_gen0 = flat.range_query(query)

        extra = random_mbrs(80, seed=7, span=120.0)
        flat.insert(extra)
        flat.delete(np.arange(0, 100))
        assert flat.snapshot_generation() == 1
        expected_gen1 = flat.range_query(query)
        store.close()

        gen0 = FLATIndex.restore(tmp_path / "idx", generation=0)
        latest = FLATIndex.restore(tmp_path / "idx")
        try:
            assert np.array_equal(gen0.range_query(query), expected_gen0)
            assert np.array_equal(latest.range_query(query), expected_gen1)
            assert latest.element_count == 280
        finally:
            gen0.store.close()
            latest.store.close()

    def test_generations_share_unchanged_pages(self, tmp_path):
        from repro.storage.filestore import PAGES_FILENAME

        mbrs = random_mbrs(300, seed=8)
        store = FilePageStore.create(tmp_path / "idx")
        flat = FLATIndex.build(store, mbrs, page_capacity=16)
        flat.snapshot_generation()
        size_after_first = (tmp_path / "idx" / PAGES_FILENAME).stat().st_size
        flat.delete([0])  # touches one object page + metadata
        flat.snapshot_generation()
        size_after_second = (tmp_path / "idx" / PAGES_FILENAME).stat().st_size
        store.close()
        grown_pages = (size_after_second - size_after_first) // 4096
        # Copy-on-write: far fewer new physical pages than the store holds.
        assert 0 < grown_pages < len(flat.store) // 2

    def test_restore_skips_store_only_generations(self, tmp_path):
        # close() after unmanifested mutations publishes a store-only
        # generation; the default restore must fall back to the newest
        # generation that carries index files instead of failing.
        mbrs = random_mbrs(200, seed=14)
        store = FilePageStore.create(tmp_path / "idx")
        flat = FLATIndex.build(store, mbrs, page_capacity=16)
        flat.snapshot_generation()  # generation 0, with index files
        query = np.array([10.0, 10, 10, 80, 80, 80])
        expected = flat.range_query(query)
        flat.insert(random_mbrs(20, seed=15))
        store.close()  # publishes store generation 1, no index files
        restored = FLATIndex.restore(tmp_path / "idx")
        try:
            assert restored.store.generation == 0
            assert np.array_equal(restored.range_query(query), expected)
        finally:
            restored.store.close()

    def test_fork_copies_maintenance_state(self):
        flat = FLATIndex.build(PageStore(), random_mbrs(200, seed=16),
                               page_capacity=16)
        flat.delete([0, 1])  # builds the maintenance directories
        fork = flat.fork()
        # The fork starts from a copy instead of an O(index) rebuild...
        assert fork._mut is not None
        # ...and the copy is independent of the base.
        fork.delete([2])
        assert 2 in flat._mut.element_page
        assert 2 not in fork._mut.element_page

    def test_snapshot_generation_requires_writable_file_store(self):
        flat = FLATIndex.build(PageStore(), random_mbrs(100, seed=9))
        with pytest.raises(PageStoreError, match="writable"):
            flat.snapshot_generation()

    def test_export_into_own_directory_rejected(self, tmp_path):
        store = FilePageStore.create(tmp_path / "idx")
        flat = FLATIndex.build(store, random_mbrs(100, seed=10))
        with pytest.raises(PageStoreError, match="own directory"):
            flat.snapshot(tmp_path / "idx")
        store.close()

    def test_mutated_memory_index_exports_dead_records(self, tmp_path):
        # Merges leave retired record slots; the export/restore pair
        # must round-trip them (restored leaf directory skips them).
        mbrs = random_mbrs(400, seed=11)
        flat = FLATIndex.build(PageStore(), mbrs, page_capacity=12)
        flat.delete(np.arange(0, 350))
        assert int(flat._mut.live.sum()) < flat.seed_index.record_count
        flat.snapshot(tmp_path / "snap")
        restored = FLATIndex.restore(tmp_path / "snap")
        try:
            query = np.array([-10.0, -10, -10, 120, 120, 120])
            assert np.array_equal(
                restored.range_query(query), flat.range_query(query)
            )
            fork = restored.fork()
            fork.insert(random_mbrs(30, seed=12))
            assert fork.element_count == 80
        finally:
            restored.store.close()


class TestIndexSnapshotRobustness:
    def _exported(self, tmp_path):
        flat = FLATIndex.build(PageStore(), random_mbrs(150, seed=13))
        snapshot_index(flat, tmp_path / "snap")
        return tmp_path / "snap"

    def test_corrupt_index_manifest(self, tmp_path):
        directory = self._exported(tmp_path)
        path = directory / index_meta_filename(0)
        path.write_text(path.read_text()[:25])
        with pytest.raises(SnapshotError, match="truncated or not valid JSON"):
            restore_index(directory)

    def test_missing_array_bundle(self, tmp_path):
        directory = self._exported(tmp_path)
        (directory / index_arrays_filename(0)).unlink()
        with pytest.raises(SnapshotError, match="missing index array bundle"):
            restore_index(directory)

    def test_missing_index_manifest_for_generation(self, tmp_path):
        directory = self._exported(tmp_path)
        (directory / index_meta_filename(0)).unlink()
        # Explicitly requested generations fail loudly...
        with pytest.raises(SnapshotError, match="no index manifest"):
            restore_index(directory, generation=0)
        # ...and the default path reports no restorable index at all.
        with pytest.raises(SnapshotError, match="no index snapshot generations"):
            restore_index(directory)


class TestWithStore:
    def test_clone_over_view_matches_original(self):
        store = PageStore()
        flat = FLATIndex.build(store, random_mbrs(2000, seed=2))
        clone = flat.with_store(store.view())
        rng = np.random.default_rng(5)
        for _ in range(10):
            lo = rng.uniform(-5, 105, size=3)
            query = np.concatenate([lo, lo + rng.uniform(0.5, 20, size=3)])
            store.clear_cache()
            expected = flat.range_query(query)
            clone.store.clear_cache()
            assert np.array_equal(clone.range_query(query), expected)
            # Stats accumulate on the view, not on the original store.
            assert clone.store.stats.total_reads > 0
        assert store.stats.total_reads > 0  # original's own queries

    def test_clone_stats_isolated(self):
        store = PageStore()
        flat = FLATIndex.build(store, random_mbrs(800, seed=4))
        before = store.stats.snapshot()
        clone = flat.with_store(store.view())
        clone.range_query(np.array([10.0, 10, 10, 40, 40, 40]))
        assert store.stats.diff(before).total_reads == 0
        assert clone.store.stats.total_reads > 0
