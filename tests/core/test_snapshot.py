"""Snapshot/restore round-trip guarantees for FLAT.

The acceptance bar: an index built in memory, snapshotted to a
directory and restored over the mmap-backed file store must return
byte-identical query results *and* page-read counts — pinned here on
the Fig. 13 SN workload (the microcircuit structural-neighborhood
benchmark) and on uniform data.
"""

import json

import numpy as np
import pytest

from repro.core import FLATIndex, restore_index, snapshot_index
from repro.core.snapshot import INDEX_ARRAYS_FILENAME, INDEX_META_FILENAME
from repro.data.microcircuit import build_microcircuit
from repro.query import BenchmarkSpec, SCALED_SN_FRACTION, run_queries
from repro.storage import FilePageStore, PageStore, PageStoreError


def random_mbrs(n, seed=0, span=100.0, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, span, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, extent, size=(n, 3))], axis=1)


@pytest.fixture(scope="module")
def sn_round_trip(tmp_path_factory):
    """One built + restored index pair on the Fig. 13 SN workload."""
    circuit = build_microcircuit(8000, side=15.0, seed=3)
    store = PageStore()
    flat = FLATIndex.build(store, circuit.mbrs(), space_mbr=circuit.space_mbr)
    queries = BenchmarkSpec("SN", SCALED_SN_FRACTION, 40).queries(
        circuit.space_mbr, seed=11
    )
    directory = tmp_path_factory.mktemp("snapshots") / "sn"
    flat.snapshot(directory)
    restored = FLATIndex.restore(directory)
    yield flat, store, restored, queries, directory
    restored.store.close()


class TestFig13SNEquivalence:
    def test_byte_identical_results(self, sn_round_trip):
        flat, store, restored, queries, _ = sn_round_trip
        for query in queries:
            store.clear_cache()
            restored.store.clear_cache()
            expected = flat.range_query(query)
            got = restored.range_query(query)
            assert got.dtype == expected.dtype
            assert np.array_equal(got, expected)

    def test_identical_page_read_counts(self, sn_round_trip):
        flat, store, restored, queries, _ = sn_round_trip
        built = run_queries(flat, store, queries, "built")
        reopened = run_queries(restored, restored.store, queries, "restored")
        assert reopened.per_query_results == built.per_query_results
        assert reopened.per_query_reads == built.per_query_reads
        assert reopened.reads_by_category == built.reads_by_category
        assert reopened.decodes_by_kind == built.decodes_by_kind

    def test_restored_pages_byte_identical(self, sn_round_trip):
        flat, store, restored, _, _ = sn_round_trip
        assert len(restored.store) == len(store)
        for page_id in range(len(store)):
            assert restored.store.read_silent(page_id) == store.read_silent(page_id)
            assert restored.store.category(page_id) == store.category(page_id)

    def test_restored_store_is_mmap_backed(self, sn_round_trip):
        _, _, restored, _, _ = sn_round_trip
        assert isinstance(restored.store, FilePageStore)
        assert not restored.store.backend.writable


class TestRestoredDirectories:
    def test_directories_match(self, sn_round_trip):
        flat, _, restored, _, _ = sn_round_trip
        assert restored.element_count == flat.element_count
        assert restored.object_page_count == flat.object_page_count
        seed, restored_seed = flat.seed_index, restored.seed_index
        assert restored_seed.root_id == seed.root_id
        assert restored_seed.height == seed.height
        assert restored_seed.leaf_page_ids == seed.leaf_page_ids
        assert np.array_equal(restored_seed.record_page, seed.record_page)
        assert np.array_equal(restored_seed.record_slot, seed.record_slot)
        for page_id, ids in seed.leaf_record_ids.items():
            assert np.array_equal(restored_seed.leaf_record_ids[page_id], ids)
        for page_id, ids in flat.object_page_element_ids.items():
            assert np.array_equal(restored.object_page_element_ids[page_id], ids)

    def test_build_report_round_trips(self, sn_round_trip):
        flat, _, restored, _, _ = sn_round_trip
        assert restored.build_report.partition_count == (
            flat.build_report.partition_count
        )
        assert np.array_equal(
            restored.build_report.pointer_counts, flat.build_report.pointer_counts
        )
        assert restored.pointer_count_histogram() == flat.pointer_count_histogram()

    def test_snapshot_files_present(self, sn_round_trip):
        *_, directory = sn_round_trip
        assert (directory / INDEX_ARRAYS_FILENAME).exists()
        meta = json.loads((directory / INDEX_META_FILENAME).read_text())
        assert meta["index"] == "FLAT"


class TestSnapshotErrors:
    def test_restore_missing_directory(self, tmp_path):
        with pytest.raises(PageStoreError):
            restore_index(tmp_path / "missing")

    def test_restore_bad_format_version(self, tmp_path):
        flat = FLATIndex.build(PageStore(), random_mbrs(200, seed=1))
        snapshot_index(flat, tmp_path / "snap")
        meta_path = tmp_path / "snap" / INDEX_META_FILENAME
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(PageStoreError):
            restore_index(tmp_path / "snap")


class TestWithStore:
    def test_clone_over_view_matches_original(self):
        store = PageStore()
        flat = FLATIndex.build(store, random_mbrs(2000, seed=2))
        clone = flat.with_store(store.view())
        rng = np.random.default_rng(5)
        for _ in range(10):
            lo = rng.uniform(-5, 105, size=3)
            query = np.concatenate([lo, lo + rng.uniform(0.5, 20, size=3)])
            store.clear_cache()
            expected = flat.range_query(query)
            clone.store.clear_cache()
            assert np.array_equal(clone.range_query(query), expected)
            # Stats accumulate on the view, not on the original store.
            assert clone.store.stats.total_reads > 0
        assert store.stats.total_reads > 0  # original's own queries

    def test_clone_stats_isolated(self):
        store = PageStore()
        flat = FLATIndex.build(store, random_mbrs(800, seed=4))
        before = store.stats.snapshot()
        clone = flat.with_store(store.view())
        clone.range_query(np.array([10.0, 10, 10, 40, 40, 40]))
        assert store.stats.diff(before).total_reads == 0
        assert clone.store.stats.total_reads > 0
