"""Tests for neighbor discovery over the partition MBRs."""

import numpy as np

from repro.core import compute_neighbors, compute_partitions, neighbor_counts
from repro.geometry import pairwise_intersects


def random_mbrs(n, seed=0, span=100.0, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, span, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, extent, size=(n, 3))], axis=1)


def build_parts(n, seed=0, capacity=40):
    parts = compute_partitions(random_mbrs(n, seed=seed), capacity)
    compute_neighbors(parts)
    return parts


class TestNeighborRelation:
    def test_matches_brute_force_intersection(self):
        parts = build_parts(800, seed=1)
        boxes = np.stack([p.partition_mbr for p in parts])
        matrix = pairwise_intersects(boxes, boxes)
        for i, p in enumerate(parts):
            expected = set(np.flatnonzero(matrix[i]).tolist()) - {i}
            assert set(p.neighbors) == expected

    def test_symmetric(self):
        parts = build_parts(600, seed=2)
        for i, p in enumerate(parts):
            for j in p.neighbors:
                assert i in parts[j].neighbors

    def test_no_self_loops(self):
        parts = build_parts(600, seed=3)
        for i, p in enumerate(parts):
            assert i not in p.neighbors

    def test_gap_free_tiling_connects_graph(self):
        # Partitions tile the space, so the adjacency graph over all
        # partitions must be connected — even for concave (two-cluster)
        # data, which is why FLAT can crawl across holes.
        rng = np.random.default_rng(4)
        a = rng.uniform(0, 10, size=(200, 3))
        b = rng.uniform(80, 90, size=(200, 3))
        lo = np.concatenate([a, b])
        mbrs = np.concatenate([lo, lo + 0.4], axis=1)
        parts = compute_partitions(mbrs, 40)
        compute_neighbors(parts)

        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for nb in parts[node].neighbors:
                if nb not in seen:
                    seen.add(nb)
                    frontier.append(nb)
        assert seen == set(range(len(parts)))

    def test_single_partition_has_no_neighbors(self):
        parts = compute_partitions(random_mbrs(10, seed=5), 85)
        compute_neighbors(parts)
        assert len(parts) == 1
        assert parts[0].neighbors == []

    def test_neighbor_counts_helper(self):
        parts = build_parts(500, seed=6)
        counts = neighbor_counts(parts)
        assert len(counts) == len(parts)
        assert (counts == np.array([len(p.neighbors) for p in parts])).all()
