"""Sharded FLAT: differential pins against the monolithic index.

The acceptance bar of the sharding layer: for every query in the SN
and LSS workloads, :class:`ShardedFLATIndex` (any shard count) returns
exactly the element ids of the monolithic :class:`FLATIndex`, and a
snapshotted + restored shard set returns byte-identical results *and*
page-read counts on the Fig. 13 SN workload (mirroring the monolithic
pin of PR 2).
"""

import json

import numpy as np
import pytest

from repro.core import FLATIndex, ShardedFLATIndex
from repro.core.sharded import SHARD_ARRAYS_FILENAME, SHARD_META_FILENAME
from repro.data.microcircuit import build_microcircuit
from repro.geometry import boxes_intersect_box, mbr_contains_mbr
from repro.query import (
    BenchmarkSpec,
    SCALED_LSS_FRACTION,
    SCALED_SN_FRACTION,
    run_point_queries,
    run_queries,
)
from repro.storage import PageStore, PageStoreError, PageStoreGroup


def random_mbrs(n, seed=0, span=100.0, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, span, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, extent, size=(n, 3))], axis=1)


@pytest.fixture(scope="module")
def sn_lss_setup():
    """Monolithic FLAT plus the SN and LSS workloads on a microcircuit."""
    circuit = build_microcircuit(6000, side=15.0, seed=3)
    mbrs = circuit.mbrs()
    store = PageStore()
    flat = FLATIndex.build(store, mbrs, space_mbr=circuit.space_mbr)
    sn = BenchmarkSpec("SN", SCALED_SN_FRACTION, 30).queries(
        circuit.space_mbr, seed=11
    )
    lss = BenchmarkSpec("LSS", SCALED_LSS_FRACTION, 15).queries(
        circuit.space_mbr, seed=12
    )
    return circuit, mbrs, flat, store, sn, lss


class TestDifferentialPin:
    @pytest.mark.parametrize("shard_count", [1, 2, 4, 9])
    def test_sn_and_lss_results_identical(self, sn_lss_setup, shard_count):
        circuit, mbrs, flat, _store, sn, lss = sn_lss_setup
        sharded = ShardedFLATIndex.build(
            mbrs, shard_count, space_mbr=circuit.space_mbr
        )
        for query in np.concatenate([sn, lss]):
            expected = flat.range_query(query)
            got = sharded.range_query(query)
            assert got.dtype == expected.dtype
            assert np.array_equal(got, expected)

    def test_point_queries_identical(self, sn_lss_setup):
        circuit, mbrs, flat, _store, *_ = sn_lss_setup
        sharded = ShardedFLATIndex.build(mbrs, 4, space_mbr=circuit.space_mbr)
        rng = np.random.default_rng(9)
        for point in rng.uniform(circuit.space_mbr[:3], circuit.space_mbr[3:], (20, 3)):
            assert np.array_equal(
                sharded.point_query(point), flat.point_query(point)
            )

    def test_results_match_brute_force(self, sn_lss_setup):
        circuit, mbrs, _flat, _store, sn, _lss = sn_lss_setup
        sharded = ShardedFLATIndex.build(mbrs, 4, space_mbr=circuit.space_mbr)
        for query in sn[:10]:
            expected = np.flatnonzero(boxes_intersect_box(mbrs, query))
            assert np.array_equal(sharded.range_query(query), expected)


class TestShardStructure:
    def test_shards_partition_the_elements(self):
        mbrs = random_mbrs(3000, seed=1)
        sharded = ShardedFLATIndex.build(mbrs, 5)
        all_ids = np.sort(
            np.concatenate([shard.element_ids for shard in sharded.shards])
        )
        assert np.array_equal(all_ids, np.arange(len(mbrs)))
        assert sum(sharded.shard_element_counts()) == len(mbrs)

    def test_shard_boxes_enclose_their_elements(self):
        mbrs = random_mbrs(2000, seed=2)
        sharded = ShardedFLATIndex.build(mbrs, 4)
        for shard in sharded.shards:
            assert np.all(mbr_contains_mbr(shard.mbr, mbrs[shard.element_ids]))

    def test_element_ids_sorted_per_shard(self):
        # Sorted ids keep local (distance, id) tie-breaks equal to
        # global ones — the kNN merge relies on it.
        sharded = ShardedFLATIndex.build(random_mbrs(1500, seed=3), 4)
        for shard in sharded.shards:
            assert np.all(np.diff(shard.element_ids) > 0)

    def test_store_facade_covers_all_shards(self):
        sharded = ShardedFLATIndex.build(random_mbrs(1200, seed=4), 3)
        assert isinstance(sharded.store, PageStoreGroup)
        assert len(sharded.store) == sum(len(s.store) for s in sharded.shards)

    def test_plan_recorded_per_query(self):
        sharded = ShardedFLATIndex.build(random_mbrs(2000, seed=5), 8)
        sharded.range_query(np.array([1.0, 1, 1, 3, 3, 3]))
        plan = sharded.last_plan
        assert plan.shard_count == sharded.shard_count
        assert 1 <= len(plan.shards_selected) < sharded.shard_count
        assert plan.shards_pruned == plan.shard_count - len(plan.shards_selected)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardedFLATIndex.build(random_mbrs(100), 0)


class TestPrunedAccounting:
    def test_small_queries_touch_few_shards(self, sn_lss_setup):
        circuit, mbrs, flat, store, sn, _lss = sn_lss_setup
        sharded = ShardedFLATIndex.build(mbrs, 8, space_mbr=circuit.space_mbr)
        run = run_queries(sharded, sharded.store, sn, "sharded")
        mono = run_queries(flat, store, sn, "mono")
        assert run.per_query_results == mono.per_query_results
        assert run.per_query_shards  # planner-aware harness collected plans
        assert run.mean_shards_touched < sharded.shard_count
        # Pruned shards read nothing: the sharded crawl never reads more
        # object pages than the monolithic one on SN boxes.
        assert run.total_page_reads <= mono.total_page_reads * 1.5

    def test_point_harness_collects_plans(self, sn_lss_setup):
        circuit, mbrs, _flat, _store, *_ = sn_lss_setup
        sharded = ShardedFLATIndex.build(mbrs, 4, space_mbr=circuit.space_mbr)
        rng = np.random.default_rng(13)
        points = rng.uniform(circuit.space_mbr[:3], circuit.space_mbr[3:], (8, 3))
        run = run_point_queries(sharded, sharded.store, points, "sharded")
        assert len(run.per_query_shards) == len(points)


@pytest.fixture(scope="module")
def sharded_round_trip(sn_lss_setup, tmp_path_factory):
    """Built + restored shard set on the Fig. 13 SN workload."""
    circuit, mbrs, _flat, _store, sn, _lss = sn_lss_setup
    sharded = ShardedFLATIndex.build(mbrs, 4, space_mbr=circuit.space_mbr)
    directory = tmp_path_factory.mktemp("shard-snapshots") / "sn"
    sharded.snapshot(directory)
    restored = ShardedFLATIndex.restore(directory)
    yield sharded, restored, sn, directory
    restored.close()


class TestSnapshotRestoreEquivalence:
    def test_byte_identical_results(self, sharded_round_trip):
        sharded, restored, sn, _ = sharded_round_trip
        for query in sn:
            sharded.store.clear_cache()
            restored.store.clear_cache()
            expected = sharded.range_query(query)
            got = restored.range_query(query)
            assert got.dtype == expected.dtype
            assert np.array_equal(got, expected)

    def test_identical_page_read_counts(self, sharded_round_trip):
        sharded, restored, sn, _ = sharded_round_trip
        built = run_queries(sharded, sharded.store, sn, "built")
        reopened = run_queries(restored, restored.store, sn, "restored")
        assert reopened.per_query_results == built.per_query_results
        assert reopened.per_query_reads == built.per_query_reads
        assert reopened.reads_by_category == built.reads_by_category
        assert reopened.decodes_by_kind == built.decodes_by_kind
        assert reopened.per_query_shards == built.per_query_shards

    def test_restored_knn_identical(self, sharded_round_trip):
        sharded, restored, _sn, _ = sharded_round_trip
        rng = np.random.default_rng(21)
        for point in rng.uniform(0, 15, size=(10, 3)):
            assert np.array_equal(
                restored.knn_query(point, 7), sharded.knn_query(point, 7)
            )

    def test_manifest_and_shard_dirs(self, sharded_round_trip):
        sharded, restored, _sn, directory = sharded_round_trip
        meta = json.loads((directory / SHARD_META_FILENAME).read_text())
        assert meta["index"] == "ShardedFLAT"
        assert meta["shard_count"] == sharded.shard_count
        assert (directory / SHARD_ARRAYS_FILENAME).exists()
        for shard in sharded.shards:
            assert (directory / f"shard-{shard.shard_id:04d}" / "pages.dat").exists()
        assert restored.shard_count == sharded.shard_count
        for original, reopened in zip(sharded.shards, restored.shards):
            assert np.array_equal(original.element_ids, reopened.element_ids)
            assert np.array_equal(original.mbr, reopened.mbr)

    def test_restore_missing_directory(self, tmp_path):
        with pytest.raises(PageStoreError):
            ShardedFLATIndex.restore(tmp_path / "missing")

    def test_restore_bad_format_version(self, tmp_path):
        sharded = ShardedFLATIndex.build(random_mbrs(300, seed=6), 2)
        sharded.snapshot(tmp_path / "snap")
        meta_path = tmp_path / "snap" / SHARD_META_FILENAME
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(PageStoreError):
            ShardedFLATIndex.restore(tmp_path / "snap")


class TestWithViews:
    def test_views_match_and_isolate_stats(self):
        mbrs = random_mbrs(2000, seed=7)
        sharded = ShardedFLATIndex.build(mbrs, 4)
        clone = sharded.with_views()
        before = sharded.store.stats.snapshot()
        query = np.array([10.0, 10, 10, 40, 40, 40])
        expected = np.flatnonzero(boxes_intersect_box(mbrs, query))
        assert np.array_equal(clone.range_query(query), expected)
        assert clone.store.stats.total_reads > 0
        assert sharded.store.stats.diff(before).total_reads == 0
