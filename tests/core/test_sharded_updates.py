"""Write path of the sharded index: routing, widening, fork, restore.

Updates route to shards by element centroid; an insert whose MBR falls
outside every shard box widens the routed shard's box (and the
planner's copy) so pruning stays exact.  The differential bar matches
the monolithic one: after any tested interleaving, query answers are
byte-identical to a scratch-rebuilt index over the surviving elements.
"""

import numpy as np
import pytest

from repro.core import ShardedFLATIndex
from repro.geometry.intersect import boxes_intersect_box
from repro.geometry.mbr import mbr_center, mbr_contains_mbr, mbr_distance_to_point


def random_mbrs(n, seed=0, span=100.0, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, span, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, extent, size=(n, 3))], axis=1)


def random_queries(count, seed, lo=-60.0, hi=260.0):
    rng = np.random.default_rng(seed)
    corners = rng.uniform(lo, hi, size=(count, 3))
    return np.concatenate(
        [corners, corners + rng.uniform(2.0, 60.0, size=(count, 3))], axis=1
    )


def assert_exact(index, live, query_seed):
    ids = np.fromiter(sorted(live), dtype=np.int64, count=len(live))
    boxes = np.stack([live[int(i)] for i in ids])
    for query in random_queries(12, query_seed):
        assert np.array_equal(
            index.range_query(query), ids[boxes_intersect_box(boxes, query)]
        )
    point = boxes[0, :3]
    dists = mbr_distance_to_point(boxes, point)
    k = min(8, len(ids))
    assert np.array_equal(
        index.knn_query(point, k), ids[np.lexsort((ids, dists))[:k]]
    )


class TestRouting:
    def test_insert_routes_to_containing_shard(self):
        mbrs = random_mbrs(600, seed=1)
        index = ShardedFLATIndex.build(mbrs, shard_count=4, page_capacity=16)
        target = index.shards[2]
        center = mbr_center(target.mbr[None, :])[0]
        element = np.concatenate([center - 0.05, center + 0.05])
        before = len(target.element_ids)
        (gid,) = index.insert(element[None, :])
        assert len(target.element_ids) == before + 1
        assert int(target.element_ids[-1]) == int(gid)

    def test_outlier_insert_widens_shard_and_planner(self):
        mbrs = random_mbrs(600, seed=2)
        index = ShardedFLATIndex.build(mbrs, shard_count=4, page_capacity=16)
        outlier = np.array([[500.0, 500, 500, 504, 504, 504]])
        (gid,) = index.insert(outlier)
        routed = index._element_shard[int(gid)]
        shard = index.shards[routed]
        assert bool(mbr_contains_mbr(shard.mbr, outlier[0]))
        assert bool(mbr_contains_mbr(index.planner.shard_mbrs[routed], outlier[0]))
        # Pruning stays exact: a query at the outlier finds it.
        hit = index.range_query(np.array([499.0, 499, 499, 505, 505, 505]))
        assert np.array_equal(hit, np.array([gid]))

    def test_every_element_stays_inside_its_shard_box(self):
        mbrs = random_mbrs(500, seed=3)
        index = ShardedFLATIndex.build(mbrs, shard_count=4, page_capacity=16)
        index.insert(random_mbrs(200, seed=4, span=300.0))
        index.delete(list(range(0, 150)))
        live = dict(index._routing_directory())
        for gid, pos in live.items():
            shard = index.shards[pos]
            local = int(np.searchsorted(shard.element_ids, gid))
            assert int(shard.element_ids[local]) == gid

    def test_delete_unknown_id_raises(self):
        index = ShardedFLATIndex.build(random_mbrs(100, seed=5), shard_count=2)
        with pytest.raises(KeyError, match="unknown element ids"):
            index.delete([100])
        index.delete([4])
        with pytest.raises(KeyError, match="unknown element ids"):
            index.delete([4])

    def test_failed_delete_batch_mutates_nothing(self):
        # A bad id must not strand valid ids half-removed from routing.
        index = ShardedFLATIndex.build(random_mbrs(100, seed=6), shard_count=2)
        with pytest.raises(KeyError, match=r"unknown element ids: \[999\]"):
            index.delete([7, 8, 999])
        assert index.element_count == 100
        index.delete([7, 8])  # still deletable after the failed batch
        assert index.element_count == 98
        with pytest.raises(ValueError, match="duplicate element id"):
            index.delete([9, 9])


class TestShardedDifferential:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_interleaving_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        mbrs = random_mbrs(800, seed=seed + 10)
        index = ShardedFLATIndex.build(mbrs, shard_count=5, page_capacity=16)
        live = {i: mbrs[i] for i in range(len(mbrs))}
        for step in range(5):
            if rng.random() < 0.55 or len(live) < 100:
                new = random_mbrs(
                    int(rng.integers(40, 120)),
                    seed=100 * seed + step,
                    span=float(rng.uniform(80, 260)),
                )
                for gid, mbr in zip(index.insert(new), new):
                    live[int(gid)] = mbr
            else:
                pool = np.fromiter(sorted(live), dtype=np.int64, count=len(live))
                victims = rng.choice(
                    pool, size=int(rng.integers(50, len(pool) // 2)), replace=False
                )
                index.delete(victims)
                for gid in victims:
                    del live[int(gid)]
            assert_exact(index, live, query_seed=7 * seed + step)
        assert index.element_count == len(live)

    def test_matches_scratch_rebuilt_sharded_index(self):
        mbrs = random_mbrs(600, seed=20)
        index = ShardedFLATIndex.build(mbrs, shard_count=4, page_capacity=16)
        new = random_mbrs(150, seed=21, span=200.0)
        new_ids = index.insert(new)
        index.delete(list(range(0, 200)))
        live = {i: mbrs[i] for i in range(200, len(mbrs))}
        for gid, mbr in zip(new_ids, new):
            live[int(gid)] = mbr
        ids = np.fromiter(sorted(live), dtype=np.int64, count=len(live))
        boxes = np.stack([live[int(i)] for i in ids])
        rebuilt = ShardedFLATIndex.build(boxes, shard_count=4, page_capacity=16)
        for query in random_queries(15, seed=22):
            assert np.array_equal(
                index.range_query(query), ids[rebuilt.range_query(query)]
            )


class TestShardedForkAndRestore:
    def test_fork_isolation_including_widening(self):
        mbrs = random_mbrs(500, seed=30)
        index = ShardedFLATIndex.build(mbrs, shard_count=3, page_capacity=16)
        planner_boxes = index.planner.shard_mbrs.copy()
        fork = index.fork()
        fork.insert(np.array([[900.0, 900, 900, 901, 901, 901]]))
        fork.delete([0, 1])
        # The base's planner and shard boxes are untouched.
        assert np.array_equal(index.planner.shard_mbrs, planner_boxes)
        assert index.element_count == 500
        assert fork.element_count == 499
        far = np.array([899.0, 899, 899, 902, 902, 902])
        assert len(index.range_query(far)) == 0
        assert len(fork.range_query(far)) == 1

    def test_restored_fork_rejects_previously_deleted_ids(self, tmp_path):
        # The routing directory is rebuilt after restore; ids deleted
        # before the snapshot must not resurface as deletable (a stale
        # entry would pass validation and corrupt the batch).
        mbrs = random_mbrs(300, seed=40)
        index = ShardedFLATIndex.build(mbrs, shard_count=3, page_capacity=16)
        index.delete([5, 6, 7])
        index.snapshot(tmp_path / "sh")
        restored = ShardedFLATIndex.restore(tmp_path / "sh")
        try:
            fork = restored.fork()
            with pytest.raises(KeyError, match=r"unknown element ids: \[5\]"):
                fork.delete([10, 5])
            # The failed batch left everything intact.
            assert fork.element_count == 297
            fork.delete([10])
            assert fork.element_count == 296
            assert sum(fork.shard_element_counts()) == 296
        finally:
            restored.close()

    def test_restored_index_rejects_direct_mutation(self, tmp_path):
        index = ShardedFLATIndex.build(random_mbrs(200, seed=41), shard_count=2)
        index.snapshot(tmp_path / "sh")
        restored = ShardedFLATIndex.restore(tmp_path / "sh")
        try:
            from repro.storage import PageStoreError

            with pytest.raises(PageStoreError, match="fork"):
                restored.insert(random_mbrs(1, seed=42))
            with pytest.raises(PageStoreError, match="fork"):
                restored.delete([0])
            # Nothing was half-applied: the fork can still delete 0.
            fork = restored.fork()
            fork.delete([0])
            assert fork.element_count == 199
        finally:
            restored.close()

    def test_mutated_snapshot_round_trip_and_watermark(self, tmp_path):
        mbrs = random_mbrs(400, seed=31)
        index = ShardedFLATIndex.build(mbrs, shard_count=3, page_capacity=16)
        index.insert(random_mbrs(80, seed=32, span=150.0))
        index.delete(list(range(0, 120)))
        index.snapshot(tmp_path / "sharded")
        restored = ShardedFLATIndex.restore(tmp_path / "sharded")
        try:
            for query in random_queries(10, seed=33):
                assert np.array_equal(
                    restored.range_query(query), index.range_query(query)
                )
            fork = restored.fork()
            (gid,) = fork.insert(random_mbrs(1, seed=34))
            assert int(gid) == index._next_id  # deleted ids never reused
        finally:
            restored.close()
