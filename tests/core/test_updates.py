"""Differential pin for the mutable FLAT write path.

The acceptance bar of the write path: after *any* tested interleaving
of inserts and deletes — including ones forcing object-page splits,
page merges and space growth past the build's box — range, point and
kNN queries must answer byte-identically to a FLAT index rebuilt from
scratch on the same surviving element set, on both the memory and the
file-backed store.
"""

import numpy as np
import pytest

from repro.core import FLATIndex
from repro.geometry.intersect import boxes_intersect_box
from repro.geometry.mbr import mbr_distance_to_point
from repro.storage import FilePageStore, PageStore, PageStoreError

PAGE_CAPACITY = 12


def random_mbrs(n, seed=0, span=100.0, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, span, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, extent, size=(n, 3))], axis=1)


def random_queries(count, seed, lo=-30.0, hi=160.0):
    rng = np.random.default_rng(seed)
    corners = rng.uniform(lo, hi, size=(count, 3))
    extents = rng.uniform(1.0, 45.0, size=(count, 3))
    return np.concatenate([corners, corners + extents], axis=1)


class Oracle:
    """Tracks the live element set and answers queries three ways."""

    def __init__(self, mbrs):
        self.live = {i: mbrs[i] for i in range(len(mbrs))}

    def insert(self, ids, mbrs):
        for eid, mbr in zip(ids, mbrs):
            self.live[int(eid)] = mbr

    def delete(self, ids):
        for eid in ids:
            del self.live[int(eid)]

    def arrays(self):
        ids = np.fromiter(sorted(self.live), dtype=np.int64, count=len(self.live))
        boxes = (
            np.stack([self.live[int(i)] for i in ids])
            if len(ids)
            else np.empty((0, 6))
        )
        return ids, boxes

    def rebuilt(self):
        """A from-scratch FLAT over the live set (local ids = positions)."""
        ids, boxes = self.arrays()
        if not len(ids):
            return ids, None
        return ids, FLATIndex.build(PageStore(), boxes, page_capacity=PAGE_CAPACITY)

    def assert_equivalent(self, flat, query_seed):
        ids, rebuilt = self.rebuilt()
        queries = random_queries(12, query_seed)
        for query in queries:
            got = flat.range_query(query)
            if rebuilt is None:
                assert len(got) == 0
                continue
            # Pin against the scratch rebuild (ids mapped to global)...
            scratch = ids[rebuilt.range_query(query)]
            assert np.array_equal(got, scratch)
            # ...and against brute force, so a shared blind spot in the
            # crawl cannot hide behind the rebuild.
            _, boxes = self.arrays()
            assert np.array_equal(got, ids[boxes_intersect_box(boxes, query)])
        if rebuilt is not None:
            point = queries[0][:3]
            assert np.array_equal(
                flat.point_query(point), ids[rebuilt.point_query(point)]
            )
            k = min(9, len(ids))
            assert np.array_equal(flat.knn_query(point, k),
                                  ids[rebuilt.knn_query(point, k)])


@pytest.fixture(params=["memory", "file"])
def make_store(request, tmp_path):
    counter = iter(range(1000))

    def factory():
        if request.param == "memory":
            return PageStore()
        return FilePageStore.create(tmp_path / f"store-{next(counter)}")

    return factory


class TestDifferentialInterleavings:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_interleaving_matches_rebuild(self, make_store, seed):
        rng = np.random.default_rng(seed)
        mbrs = random_mbrs(400, seed=seed)
        flat = FLATIndex.build(make_store(), mbrs, page_capacity=PAGE_CAPACITY)
        oracle = Oracle(mbrs)
        for step in range(6):
            if rng.random() < 0.55 or len(oracle.live) < 50:
                new = random_mbrs(
                    int(rng.integers(20, 90)),
                    seed=1000 * seed + step,
                    span=float(rng.uniform(80, 180)),
                )
                oracle.insert(flat.insert(new), new)
            else:
                pool = np.fromiter(sorted(oracle.live), dtype=np.int64,
                                   count=len(oracle.live))
                victims = rng.choice(
                    pool, size=int(rng.integers(20, len(pool) // 2)), replace=False
                )
                flat.delete(victims)
                oracle.delete(victims)
            oracle.assert_equivalent(flat, query_seed=31 * seed + step)

    def test_split_storm_into_one_region(self, make_store):
        # Hammer one partition until it splits repeatedly.
        mbrs = random_mbrs(150, seed=3)
        flat = FLATIndex.build(make_store(), mbrs, page_capacity=PAGE_CAPACITY)
        oracle = Oracle(mbrs)
        records_before = flat.seed_index.record_count
        rng = np.random.default_rng(4)
        for step in range(3):
            lo = np.full((60, 3), 50.0) + rng.uniform(0, 0.5, size=(60, 3))
            clustered = np.concatenate([lo, lo + 0.1], axis=1)
            oracle.insert(flat.insert(clustered), clustered)
            oracle.assert_equivalent(flat, query_seed=50 + step)
        assert flat.seed_index.record_count > records_before

    def test_delete_storm_forces_merges(self, make_store):
        mbrs = random_mbrs(500, seed=5)
        flat = FLATIndex.build(make_store(), mbrs, page_capacity=PAGE_CAPACITY)
        oracle = Oracle(mbrs)
        rng = np.random.default_rng(6)
        survivors = set(rng.choice(len(mbrs), size=40, replace=False).tolist())
        victims = [i for i in range(len(mbrs)) if i not in survivors]
        for chunk in np.array_split(np.asarray(victims), 4):
            flat.delete(chunk)
            oracle.delete(chunk)
            oracle.assert_equivalent(flat, query_seed=int(chunk[0]))
        live = flat._mut.live
        assert int(live.sum()) < len(live)  # records actually retired

    def test_outlier_inserts_grow_the_space(self, make_store):
        # Elements far outside the build box, in opposite directions:
        # the covered space must grow so the crawl can reach both.
        mbrs = random_mbrs(200, seed=7, span=10.0)
        flat = FLATIndex.build(make_store(), mbrs, page_capacity=PAGE_CAPACITY)
        oracle = Oracle(mbrs)
        far = np.array(
            [
                [200.0, 200, 200, 201, 201, 201],
                [-300.0, -300, -300, -299, -299, -299],
                [200.0, -300, 5, 201, -299, 6],
            ]
        )
        oracle.insert(flat.insert(far), far)
        oracle.assert_equivalent(flat, query_seed=70)
        # A giant query touching both outliers sees them all.
        got = flat.range_query(np.array([-400.0, -400, -400, 400, 400, 400]))
        assert len(got) == len(oracle.live)

    def test_wipe_and_reinsert(self, make_store):
        mbrs = random_mbrs(120, seed=8)
        flat = FLATIndex.build(make_store(), mbrs, page_capacity=PAGE_CAPACITY)
        flat.delete(np.arange(len(mbrs)))
        assert flat.element_count == 0
        everything = np.array([-50.0, -50, -50, 200, 200, 200])
        assert len(flat.range_query(everything)) == 0
        assert len(flat.knn_query(np.zeros(3), 5)) == 0
        fresh = random_mbrs(60, seed=9)
        new_ids = flat.insert(fresh)
        # Deleted ids are never reused.
        assert new_ids.min() == len(mbrs)
        oracle = Oracle(np.empty((0, 6)))
        oracle.insert(new_ids, fresh)
        oracle.assert_equivalent(flat, query_seed=90)


class TestUpdateApi:
    def test_insert_returns_monotonic_ids(self):
        flat = FLATIndex.build(PageStore(), random_mbrs(100, seed=1),
                               page_capacity=PAGE_CAPACITY)
        first = flat.insert(random_mbrs(10, seed=2))
        second = flat.insert(random_mbrs(10, seed=3))
        assert np.array_equal(first, np.arange(100, 110))
        assert np.array_equal(second, np.arange(110, 120))
        assert flat.element_count == 120

    def test_empty_batches_are_noops(self):
        flat = FLATIndex.build(PageStore(), random_mbrs(50, seed=1))
        assert len(flat.insert(np.empty((0, 6)))) == 0
        flat.delete(np.empty(0, dtype=np.int64))
        assert flat.element_count == 50

    def test_delete_unknown_id_raises(self):
        flat = FLATIndex.build(PageStore(), random_mbrs(50, seed=1))
        with pytest.raises(KeyError, match="unknown element ids"):
            flat.delete([50])
        flat.delete([7])
        with pytest.raises(KeyError, match="unknown element ids"):
            flat.delete([7])  # double delete

    def test_delete_unknown_ids_are_all_named(self):
        flat = FLATIndex.build(PageStore(), random_mbrs(50, seed=1))
        with pytest.raises(KeyError, match=r"unknown element ids: \[77, 99\]"):
            flat.delete([3, 99, 4, 77])

    def test_failed_delete_batch_mutates_nothing(self):
        # One bad id must not leave the batch's valid ids half-removed.
        mbrs = random_mbrs(200, seed=2)
        flat = FLATIndex.build(PageStore(), mbrs, page_capacity=PAGE_CAPACITY)
        everything = np.array([-10.0, -10, -10, 120, 120, 120])
        with pytest.raises(KeyError, match="unknown element ids"):
            flat.delete([3, 4, 999])
        assert flat.element_count == 200
        assert len(flat.range_query(everything)) == 200
        flat.delete([3, 4])  # the valid ids are still deletable
        assert flat.element_count == 198

    def test_duplicate_ids_in_delete_batch_raise(self):
        flat = FLATIndex.build(PageStore(), random_mbrs(50, seed=1))
        with pytest.raises(ValueError, match="duplicate element id"):
            flat.delete([5, 5])
        assert flat.element_count == 50

    def test_restored_index_is_read_only(self, tmp_path):
        flat = FLATIndex.build(PageStore(), random_mbrs(80, seed=1))
        flat.snapshot(tmp_path / "snap")
        restored = FLATIndex.restore(tmp_path / "snap")
        try:
            with pytest.raises(PageStoreError, match="fork"):
                restored.insert(random_mbrs(1, seed=2))
            with pytest.raises(PageStoreError, match="fork"):
                restored.delete([5])
            # The rejection happened before any state was touched: a
            # fork can still delete the id the failed call named.
            fork0 = restored.fork()
            fork0.delete([5])
            assert fork0.element_count == 79
            fork = restored.fork()  # the supported mutation route
            fork.insert(random_mbrs(5, seed=3))
            assert fork.element_count == 85
            assert restored.element_count == 80
        finally:
            restored.store.close()


class TestForkIsolation:
    def test_fork_never_perturbs_base(self):
        mbrs = random_mbrs(300, seed=10)
        flat = FLATIndex.build(PageStore(), mbrs, page_capacity=PAGE_CAPACITY)
        queries = random_queries(10, seed=11)
        baseline = [flat.range_query(q) for q in queries]
        fork = flat.fork()
        fork.insert(random_mbrs(120, seed=12, span=200.0))
        fork.delete(np.arange(0, 150))
        for query, expected in zip(queries, baseline):
            assert np.array_equal(flat.range_query(query), expected)
        oracle = Oracle(mbrs)
        oracle.insert(np.arange(300, 420), random_mbrs(120, seed=12, span=200.0))
        oracle.delete(np.arange(0, 150))
        oracle.assert_equivalent(fork, query_seed=13)

    def test_chained_forks(self):
        flat = FLATIndex.build(PageStore(), random_mbrs(100, seed=14),
                               page_capacity=PAGE_CAPACITY)
        fork1 = flat.fork()
        fork1.delete([0, 1, 2])
        fork2 = fork1.fork()
        fork2.insert(random_mbrs(30, seed=15))
        assert flat.element_count == 100
        assert fork1.element_count == 97
        assert fork2.element_count == 127

    def test_knn_directories_rebuilt_after_mutation(self):
        mbrs = random_mbrs(200, seed=16)
        flat = FLATIndex.build(PageStore(), mbrs, page_capacity=PAGE_CAPACITY)
        point = np.array([50.0, 50, 50])
        flat.knn_query(point, 5)  # populate the kNN directories
        new = random_mbrs(40, seed=17)
        new_ids = flat.insert(new)
        ids = np.concatenate([np.arange(len(mbrs)), new_ids])
        boxes = np.concatenate([mbrs, new], axis=0)
        dists = mbr_distance_to_point(boxes, point)
        expected = ids[np.lexsort((ids, dists))[:5]]
        assert np.array_equal(flat.knn_query(point, 5), expected)
