"""End-to-end tests for FLAT: correctness against brute force, crawl
behaviour, accounting and the paper's structural claims."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FLATIndex
from repro.geometry import boxes_intersect_box
from repro.storage import (
    CATEGORY_METADATA,
    CATEGORY_OBJECT,
    CATEGORY_SEED_INTERNAL,
    PageStore,
)
from repro.rtree import bulkload_rtree


def random_mbrs(n, seed=0, span=100.0, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, span, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, extent, size=(n, 3))], axis=1)


def brute_force(mbrs, query):
    return np.flatnonzero(boxes_intersect_box(mbrs, query))


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 50, 85, 86, 800, 3000])
    def test_range_query_matches_brute_force(self, n):
        mbrs = random_mbrs(n, seed=n)
        index = FLATIndex.build(PageStore(), mbrs)
        rng = np.random.default_rng(n + 1)
        for _ in range(15):
            lo = rng.uniform(-5, 105, size=3)
            query = np.concatenate([lo, lo + rng.uniform(0.5, 30, size=3)])
            assert np.array_equal(index.range_query(query), brute_force(mbrs, query))

    def test_matches_rtree_results(self):
        mbrs = random_mbrs(1200, seed=9)
        flat = FLATIndex.build(PageStore(), mbrs)
        rtree = bulkload_rtree(PageStore(), mbrs, "str")
        rng = np.random.default_rng(10)
        for _ in range(20):
            lo = rng.uniform(0, 90, size=3)
            query = np.concatenate([lo, lo + rng.uniform(1, 20, size=3)])
            assert np.array_equal(flat.range_query(query), rtree.range_query(query))

    def test_point_query(self):
        mbrs = random_mbrs(800, seed=11, extent=6.0)
        index = FLATIndex.build(PageStore(), mbrs)
        rng = np.random.default_rng(12)
        from repro.geometry import boxes_intersect_point

        for _ in range(15):
            point = rng.uniform(0, 100, size=3)
            expected = np.flatnonzero(boxes_intersect_point(mbrs, point))
            assert np.array_equal(index.point_query(point), expected)

    def test_empty_query(self):
        mbrs = random_mbrs(300, seed=13)
        index = FLATIndex.build(PageStore(), mbrs)
        out = index.range_query(np.array([500.0, 500, 500, 510, 510, 510]))
        assert len(out) == 0
        assert index.last_crawl_stats.seeded is False

    def test_whole_space_query(self):
        mbrs = random_mbrs(500, seed=14)
        index = FLATIndex.build(PageStore(), mbrs)
        query = np.array([-1e5, -1e5, -1e5, 1e5, 1e5, 1e5])
        assert np.array_equal(index.range_query(query), np.arange(500))

    def test_concave_data_crawled_across_hole(self):
        # Two clusters separated by empty space; one query spanning both.
        # DLS-style crawling would stop at the hole, FLAT must not.
        rng = np.random.default_rng(15)
        a = rng.uniform(0, 10, size=(300, 3))
        b = rng.uniform(60, 70, size=(300, 3))
        lo = np.concatenate([a, b])
        mbrs = np.concatenate([lo, lo + 0.5], axis=1)
        index = FLATIndex.build(PageStore(), mbrs)
        query = np.array([-1.0, -1, -1, 71, 71, 71])
        assert len(index.range_query(query)) == 600

    def test_partition_only_cycle_terminates(self):
        # Regression for the documented Algorithm 2 pseudocode issue:
        # records whose partition MBR intersects the query but whose page
        # MBR does not must not cause re-enqueue loops.  A thin query
        # plane through tile boundaries exercises exactly this.
        mbrs = random_mbrs(2000, seed=16, extent=0.2)
        index = FLATIndex.build(PageStore(), mbrs)
        query = np.array([0.0, 0, 49.999, 100, 100, 50.001])
        result = index.range_query(query)
        assert np.array_equal(result, brute_force(mbrs, query))
        # Every record is dequeued at most once.
        assert index.last_crawl_stats.records_dequeued <= index.object_page_count


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 400), st.integers(0, 2**31), st.integers(0, 2**31))
def test_flat_equals_brute_force_property(n, data_seed, query_seed):
    mbrs = random_mbrs(n, seed=data_seed)
    index = FLATIndex.build(PageStore(), mbrs)
    rng = np.random.default_rng(query_seed)
    lo = rng.uniform(-10, 100, size=3)
    query = np.concatenate([lo, lo + rng.uniform(0, 40, size=3)])
    assert np.array_equal(index.range_query(query), brute_force(mbrs, query))


class TestAccounting:
    def test_build_report_phases_populated(self):
        index = FLATIndex.build(PageStore(), random_mbrs(1000, seed=17))
        report = index.build_report
        assert report.partition_count == index.object_page_count
        assert report.partitioning_seconds >= 0
        assert report.finding_neighbors_seconds >= 0
        assert report.total_seconds > 0
        assert len(report.pointer_counts) == report.partition_count

    def test_query_reads_split_by_category(self):
        store = PageStore()
        mbrs = random_mbrs(3000, seed=18)
        index = FLATIndex.build(store, mbrs)
        store.clear_cache()
        before = store.stats.snapshot()
        index.range_query(np.array([10.0, 10, 10, 60, 60, 60]))
        delta = store.stats.diff(before)
        assert delta.reads.get(CATEGORY_OBJECT, 0) > 0
        assert delta.reads.get(CATEGORY_METADATA, 0) > 0
        assert delta.reads.get(CATEGORY_SEED_INTERNAL, 0) >= 1

    def test_crawl_stats_bookkeeping(self):
        index = FLATIndex.build(PageStore(), random_mbrs(2000, seed=19))
        result = index.range_query(np.array([20.0, 20, 20, 70, 70, 70]))
        stats = index.last_crawl_stats
        assert stats.seeded
        assert stats.result_count == len(result)
        assert stats.object_pages_read >= 1
        assert stats.max_queue_length >= 1
        assert stats.visited_bytes == stats.records_dequeued * 8
        assert stats.bookkeeping_bytes == stats.max_queue_length * 8
        assert stats.total_bookkeeping_bytes == (
            stats.bookkeeping_bytes + stats.visited_bytes
        )

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FLATIndex.build(PageStore(), random_mbrs(100), page_capacity=999)

    def test_object_pages_match_rtree_leaf_pages(self):
        # Fig. 11: "the total size of the leaf pages of the R-Trees is
        # the same as the size of FLAT's object pages" (same packing).
        mbrs = random_mbrs(2000, seed=20)
        flat = FLATIndex.build(PageStore(), mbrs)
        rtree = bulkload_rtree(PageStore(), mbrs, "str")
        assert flat.object_page_count == rtree.leaf_count()
