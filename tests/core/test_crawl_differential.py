"""Differential guarantee: the batched crawl equals the scalar crawl.

The frontier-batched BFS in ``FLATIndex.range_query`` must read exactly
the same set of pages and return exactly the same element ids as the
record-at-a-time reference crawl (``range_query_scalar``), on every
dataset and query.  These tests pin that property on random uniform
data, on the microcircuit generator, and through the batch record API
itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FLATIndex
from repro.data.microcircuit import build_microcircuit
from repro.storage import DECODE_METADATA, PageStore


def random_mbrs(n, seed=0, span=100.0, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, span, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, extent, size=(n, 3))], axis=1)


def traced_pages(store, fn, query):
    """Run ``fn(query)`` cold-cached, recording every page id read."""
    pages = []
    original_read = store.read

    def read(page_id):
        pages.append(page_id)
        return original_read(page_id)

    store.clear_cache()
    store.read = read
    try:
        result = fn(query)
    finally:
        store.read = original_read
    return result, pages


def assert_crawls_identical(flat, store, query):
    new_result, new_pages = traced_pages(store, flat.range_query, query)
    old_result, old_pages = traced_pages(store, flat.range_query_scalar, query)
    assert np.array_equal(new_result, old_result)
    assert set(new_pages) == set(old_pages)


class TestDifferentialUniform:
    @pytest.mark.parametrize("n", [40, 500, 2500])
    def test_random_queries_read_same_pages(self, n):
        store = PageStore()
        flat = FLATIndex.build(store, random_mbrs(n, seed=n))
        rng = np.random.default_rng(n + 1)
        for _ in range(12):
            lo = rng.uniform(-5, 105, size=3)
            query = np.concatenate([lo, lo + rng.uniform(0.5, 30, size=3)])
            assert_crawls_identical(flat, store, query)

    def test_physical_read_counters_match(self):
        store = PageStore()
        flat = FLATIndex.build(store, random_mbrs(3000, seed=1))
        query = np.array([20.0, 20, 20, 70, 70, 70])

        store.clear_cache()
        before = store.stats.snapshot()
        flat.range_query(query)
        new_reads = store.stats.diff(before).reads

        store.clear_cache()
        before = store.stats.snapshot()
        flat.range_query_scalar(query)
        old_reads = store.stats.diff(before).reads
        assert new_reads == old_reads

    def test_batched_crawl_decodes_fewer_metadata_pages(self):
        store = PageStore()
        flat = FLATIndex.build(store, random_mbrs(4000, seed=2))
        query = np.array([10.0, 10, 10, 80, 80, 80])

        store.clear_cache()
        before = store.stats.snapshot()
        flat.range_query(query)
        batched = store.stats.diff(before).decodes_in(DECODE_METADATA)

        store.clear_cache()
        before = store.stats.snapshot()
        flat.range_query_scalar(query)
        scalar = store.stats.diff(before).decodes_in(DECODE_METADATA)
        assert batched < scalar
        # The batched engine decodes each touched metadata page once.
        assert batched <= flat.metadata_page_count


class TestDifferentialMicrocircuit:
    def test_sn_style_queries(self):
        circuit = build_microcircuit(6000, side=15.0, seed=3)
        store = PageStore()
        flat = FLATIndex.build(store, circuit.mbrs(), space_mbr=circuit.space_mbr)
        rng = np.random.default_rng(4)
        space = circuit.space_mbr
        span = space[3:] - space[:3]
        for frac in (5e-6, 5e-3):
            side = span * frac ** (1 / 3)
            for _ in range(8):
                lo = space[:3] + rng.uniform(0, 1, size=3) * (span - side)
                query = np.concatenate([lo, lo + side])
                assert_crawls_identical(flat, store, query)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 300), st.integers(0, 2**31), st.integers(0, 2**31))
def test_differential_property(n, data_seed, query_seed):
    store = PageStore()
    flat = FLATIndex.build(store, random_mbrs(n, seed=data_seed))
    rng = np.random.default_rng(query_seed)
    lo = rng.uniform(-10, 100, size=3)
    query = np.concatenate([lo, lo + rng.uniform(0, 40, size=3)])
    assert_crawls_identical(flat, store, query)


class TestRecordBatchAPI:
    def test_batch_matches_scalar_fetch(self):
        store = PageStore()
        flat = FLATIndex.build(store, random_mbrs(1500, seed=5))
        seed = flat.seed_index
        rng = np.random.default_rng(6)
        ids = rng.choice(seed.record_count, size=min(60, seed.record_count),
                         replace=False)
        batch = seed.fetch_records_batch(ids)
        assert np.array_equal(batch.record_ids, ids)
        for pos, record_id in enumerate(ids):
            record = seed.fetch_record(int(record_id))
            assert np.array_equal(batch.page_mbrs[pos], record.page_mbr)
            assert np.array_equal(batch.partition_mbrs[pos], record.partition_mbr)
            assert batch.object_page_ids[pos] == record.object_page_id
            start, end = batch.neighbor_offsets[pos], batch.neighbor_offsets[pos + 1]
            assert tuple(batch.neighbor_ids[start:end]) == record.neighbor_ids

    def test_batch_decodes_each_leaf_once(self):
        store = PageStore()
        flat = FLATIndex.build(store, random_mbrs(2000, seed=7))
        seed = flat.seed_index
        store.clear_cache()
        before = store.stats.snapshot()
        seed.fetch_records_batch(np.arange(seed.record_count))
        delta = store.stats.diff(before)
        assert delta.decodes_in(DECODE_METADATA) == flat.metadata_page_count

    def test_empty_batch(self):
        store = PageStore()
        flat = FLATIndex.build(store, random_mbrs(100, seed=8))
        batch = flat.seed_index.fetch_records_batch(np.empty(0, dtype=np.int64))
        assert len(batch) == 0
        assert batch.neighbors_of(np.empty(0, dtype=bool)).size == 0

    def test_out_of_range_batch_rejected(self):
        store = PageStore()
        flat = FLATIndex.build(store, random_mbrs(100, seed=9))
        with pytest.raises(ValueError):
            flat.seed_index.fetch_records_batch([flat.seed_index.record_count])

    def test_neighbors_of_gathers_selected_rows(self):
        store = PageStore()
        flat = FLATIndex.build(store, random_mbrs(1200, seed=10))
        seed = flat.seed_index
        ids = np.arange(min(30, seed.record_count))
        batch = seed.fetch_records_batch(ids)
        mask = np.zeros(len(batch), dtype=bool)
        mask[::3] = True
        expected = np.concatenate(
            [
                np.asarray(seed.fetch_record(int(i)).neighbor_ids, dtype=np.int64)
                for i in ids[mask]
            ]
            or [np.empty(0, dtype=np.int64)]
        )
        assert np.array_equal(batch.neighbors_of(mask), expected)


class TestResultCountRegression:
    def test_result_count_zero_when_crawl_finds_nothing(self):
        # A query that seeds but yields no intersecting elements must
        # still leave result_count == 0 (it was previously left unset on
        # the early-return path).  Force the situation via a query that
        # misses everything: seeding fails, crawl returns empty.
        store = PageStore()
        flat = FLATIndex.build(store, random_mbrs(300, seed=11))
        out = flat.range_query(np.array([500.0, 500, 500, 501, 501, 501]))
        assert len(out) == 0
        assert flat.last_crawl_stats.result_count == 0

        out = flat.range_query_scalar(np.array([500.0, 500, 500, 501, 501, 501]))
        assert len(out) == 0
        assert flat.last_crawl_stats.result_count == 0

    def test_result_count_always_matches_result_length(self):
        store = PageStore()
        mbrs = random_mbrs(800, seed=12)
        flat = FLATIndex.build(store, mbrs)
        rng = np.random.default_rng(13)
        for _ in range(20):
            lo = rng.uniform(-20, 110, size=3)
            query = np.concatenate([lo, lo + rng.uniform(0.1, 15, size=3)])
            out = flat.range_query(query)
            assert flat.last_crawl_stats.result_count == len(out)
