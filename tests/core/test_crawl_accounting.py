"""Regression: ``CrawlStats.object_pages_read`` counts unique pages.

The seed phase already reads (and decodes) every object page it probes;
the crawl then revisits the seed record and used to count its page a
second time.  On a cold cache the buffer pool absorbs the duplicate
physical read, so the authoritative count is the query's object-category
buffer-miss reads in ``IOStats`` — these tests pin the two together for
both crawl engines.
"""

import numpy as np
import pytest

from repro.core import FLATIndex
from repro.data.microcircuit import build_microcircuit
from repro.query import BenchmarkSpec, SCALED_LSS_FRACTION, SCALED_SN_FRACTION
from repro.storage import CATEGORY_OBJECT, PageStore


def random_mbrs(n, seed=0, span=100.0, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, span, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, extent, size=(n, 3))], axis=1)


def object_reads_for(flat, store, crawl, query):
    """(CrawlStats.object_pages_read, IOStats object reads) for one cold query."""
    store.clear_cache()
    before = store.stats.snapshot()
    crawl(query)
    delta = store.stats.diff(before)
    return flat.last_crawl_stats.object_pages_read, delta.reads.get(CATEGORY_OBJECT, 0)


ENGINES = ["batched", "scalar"]


def crawl_of(flat, engine):
    return flat.range_query if engine == "batched" else flat.range_query_scalar


class TestObjectPagesReadPinnedToIOStats:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_uniform_random_queries(self, engine):
        store = PageStore()
        flat = FLATIndex.build(store, random_mbrs(3000, seed=1))
        rng = np.random.default_rng(2)
        checked = 0
        for _ in range(25):
            lo = rng.uniform(-5, 105, size=3)
            query = np.concatenate([lo, lo + rng.uniform(0.5, 30, size=3)])
            counted, physical = object_reads_for(
                flat, store, crawl_of(flat, engine), query
            )
            assert counted == physical
            checked += counted > 0
        assert checked > 0  # the workload actually exercised object reads

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("fraction", [SCALED_SN_FRACTION, SCALED_LSS_FRACTION])
    def test_microcircuit_benchmark_queries(self, engine, fraction):
        circuit = build_microcircuit(6000, side=15.0, seed=3)
        store = PageStore()
        flat = FLATIndex.build(store, circuit.mbrs(), space_mbr=circuit.space_mbr)
        queries = BenchmarkSpec("W", fraction, 15).queries(circuit.space_mbr, seed=4)
        for query in queries:
            counted, physical = object_reads_for(
                flat, store, crawl_of(flat, engine), query
            )
            assert counted == physical

    def test_seed_page_not_double_counted(self):
        # A query hitting exactly one object page: the seed phase reads
        # it, the crawl revisits it — the stat must stay 1, not 2.
        store = PageStore()
        flat = FLATIndex.build(store, random_mbrs(500, seed=5))
        rng = np.random.default_rng(6)
        found = False
        for _ in range(50):
            lo = rng.uniform(0, 100, size=3)
            query = np.concatenate([lo, lo + 0.3])
            counted, physical = object_reads_for(
                flat, store, flat.range_query, query
            )
            if physical == 1:
                assert counted == 1
                found = True
        assert found

    @pytest.mark.parametrize("engine", ENGINES)
    def test_unseeded_query_counts_probe_reads(self, engine):
        # Seeding can probe object pages (page MBR intersects, no element
        # does) and still fail; those physical reads are part of the
        # per-query object-read metric.
        store = PageStore()
        flat = FLATIndex.build(store, random_mbrs(800, seed=7))
        rng = np.random.default_rng(8)
        for _ in range(40):
            lo = rng.uniform(-10, 110, size=3)
            query = np.concatenate([lo, lo + rng.uniform(0.05, 2, size=3)])
            counted, physical = object_reads_for(
                flat, store, crawl_of(flat, engine), query
            )
            assert counted == physical

    def test_both_engines_agree(self):
        store = PageStore()
        flat = FLATIndex.build(store, random_mbrs(2500, seed=9))
        rng = np.random.default_rng(10)
        for _ in range(15):
            lo = rng.uniform(-5, 105, size=3)
            query = np.concatenate([lo, lo + rng.uniform(1, 25, size=3)])
            batched, _ = object_reads_for(flat, store, flat.range_query, query)
            scalar, _ = object_reads_for(flat, store, flat.range_query_scalar, query)
            assert batched == scalar
