"""The in-memory delta layer: memtable semantics and the rebuild pin.

Two bars.  First, ``DeltaIndex`` itself behaves like a tiny index:
watermarked monotonic ids, atomic delete validation (``KeyError``
naming every unknown id), exact overlay arithmetic.  Second — the
differential pin the whole LSM-style write path rests on — *any*
interleaving of delta-absorbed batches, generation-boundary merges and
queries answers byte-identically to a scratch-rebuilt index over the
surviving elements, on memory stores and on restored file stores, and
attaching a delta never changes the committed crawl's page accounting.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeltaIndex, FLATIndex
from repro.geometry.intersect import boxes_intersect_box
from repro.geometry.mbr import mbr_distance_to_point
from repro.storage import PageStore


def random_mbrs(n, seed=0, span=100.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, span, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, 2.0, size=(n, 3))], axis=1)


def random_queries(count, seed, lo=-20.0, hi=220.0):
    rng = np.random.default_rng(seed)
    corners = rng.uniform(lo, hi, size=(count, 3))
    return np.concatenate(
        [corners, corners + rng.uniform(3.0, 40.0, size=(count, 3))], axis=1
    )


def live_arrays(live):
    ids = np.fromiter(sorted(live), dtype=np.int64, count=len(live))
    boxes = np.stack([live[int(i)] for i in ids])
    return ids, boxes


class TestDeltaIndex:
    def test_insert_assigns_watermarked_monotonic_ids(self):
        delta = DeltaIndex(next_id=40)
        first = delta.insert(random_mbrs(3, seed=1))
        second = delta.insert(random_mbrs(2, seed=2))
        assert np.array_equal(first, np.array([40, 41, 42]))
        assert np.array_equal(second, np.array([43, 44]))
        assert delta.next_id == 45
        assert delta.pending_inserts == 5

    def test_delete_splits_memtable_kills_from_tombstones(self):
        delta = DeltaIndex(next_id=10)
        ids = delta.insert(random_mbrs(4, seed=3))
        base_live = lambda ids: np.asarray(ids) < 10  # noqa: E731
        delta.delete([int(ids[1]), 5], base_live)
        assert delta.pending_inserts == 3
        assert delta.tombstone_count == 1
        assert delta.size == 4
        assert delta.element_delta == 2
        # The killed memtable row never resurfaces in hits or drains.
        everywhere = np.array([-1e9, -1e9, -1e9, 1e9, 1e9, 1e9])
        assert int(ids[1]) not in delta.range_hits(everywhere)
        drain_ids, drain_mbrs, drain_deletes, next_id = delta.drain()
        assert int(ids[1]) not in drain_ids
        assert len(drain_ids) == len(drain_mbrs) == 3
        assert np.array_equal(drain_deletes, np.array([5]))
        assert next_id == 14

    def test_delete_validation_is_atomic_and_names_unknown_ids(self):
        delta = DeltaIndex(next_id=10)
        delta.insert(random_mbrs(2, seed=4))
        base_live = lambda ids: np.asarray(ids) < 10  # noqa: E731
        with pytest.raises(KeyError, match=r"unknown element ids: \[77, 99\]"):
            delta.delete([10, 99, 3, 77], base_live)
        # Nothing was half-applied.
        assert delta.pending_inserts == 2
        assert delta.tombstone_count == 0
        with pytest.raises(ValueError, match="duplicate element id"):
            delta.delete([3, 3], base_live)
        # A tombstoned id is no longer deletable.
        delta.delete([3], base_live)
        with pytest.raises(KeyError, match=r"unknown element ids: \[3\]"):
            delta.delete([3], base_live)

    def test_overlay_masks_and_merges_sorted(self):
        delta = DeltaIndex(next_id=100)
        mbrs = np.array(
            [[0.0, 0, 0, 1, 1, 1], [50.0, 50, 50, 51, 51, 51]]
        )
        delta.insert(mbrs)
        delta.delete([7], lambda ids: np.ones(len(ids), dtype=bool))
        query = np.array([-1.0, -1, -1, 2, 2, 2])
        out = delta.overlay(np.array([3, 7, 120], dtype=np.int64), query)
        assert np.array_equal(out, np.array([3, 100, 120]))
        assert out.dtype == np.int64

    def test_copy_is_independent(self):
        delta = DeltaIndex(next_id=0)
        delta.insert(random_mbrs(2, seed=5))
        clone = delta.copy()
        clone.insert(random_mbrs(1, seed=6))
        clone.delete([0], lambda ids: np.zeros(len(ids), dtype=bool))
        assert delta.pending_inserts == 2
        assert delta.next_id == 2
        assert clone.pending_inserts == 2  # one inserted, one killed
        assert clone.next_id == 3

    def test_empty_delta_overlay_is_passthrough(self):
        delta = DeltaIndex(next_id=9)
        assert delta.is_empty
        base = np.array([1, 2, 3], dtype=np.int64)
        out = delta.overlay(base, np.array([0.0, 0, 0, 1, 1, 1]))
        assert np.array_equal(out, base)


class TestDeltaOverlayOnFLAT:
    def test_attached_delta_corrects_all_query_kinds(self):
        mbrs = random_mbrs(500, seed=10)
        index = FLATIndex.build(PageStore(), mbrs, page_capacity=16)
        delta = DeltaIndex(next_id=index.next_element_id)
        new = random_mbrs(60, seed=11, span=150.0)
        new_ids = delta.insert(new)
        delta.delete(list(range(0, 80)), index.contains_elements)
        served = index.with_delta(delta)

        live = {i: mbrs[i] for i in range(80, len(mbrs))}
        for gid, mbr in zip(new_ids, new):
            live[int(gid)] = mbr
        ids, boxes = live_arrays(live)
        assert served.live_element_count == len(live)
        for query in random_queries(15, seed=12):
            assert np.array_equal(
                served.range_query(query), ids[boxes_intersect_box(boxes, query)]
            )
        point = boxes[0, :3]
        contains = np.all(
            (boxes[:, :3] <= point) & (point <= boxes[:, 3:]), axis=1
        )
        assert np.array_equal(served.point_query(point), ids[contains])
        dists = mbr_distance_to_point(boxes, point)
        for k in (1, 8, 40):
            assert np.array_equal(
                served.knn_query(point, k), ids[np.lexsort((ids, dists))[:k]]
            )

    def test_delta_never_touches_page_accounting(self):
        mbrs = random_mbrs(800, seed=13)
        store = PageStore()
        index = FLATIndex.build(store, mbrs, page_capacity=16)
        queries = random_queries(10, seed=14, lo=0.0, hi=100.0)

        def per_query_reads(engine):
            out = []
            for query in queries:
                store.clear_cache()
                before = store.stats.snapshot()
                engine.range_query(query)
                out.append(dict(store.stats.diff(before).reads))
            return out

        bare = per_query_reads(index)
        delta = DeltaIndex(next_id=index.next_element_id)
        delta.insert(random_mbrs(50, seed=15))
        delta.delete(list(range(0, 40)), index.contains_elements)
        assert per_query_reads(index.with_delta(delta)) == bare


# -- the interleaving pin ------------------------------------------------


def _assert_matches_brute_force(served, live, query_seed):
    ids, boxes = live_arrays(live)
    for query in random_queries(6, query_seed):
        assert np.array_equal(
            served.range_query(query), ids[boxes_intersect_box(boxes, query)]
        )
    point = boxes[0, :3]
    dists = mbr_distance_to_point(boxes, point)
    k = min(6, len(ids))
    assert np.array_equal(
        served.knn_query(point, k), ids[np.lexsort((ids, dists))[:k]]
    )


def _drive_interleaving(index, mbrs, seed, ops):
    """Replay *ops* through delta absorption + boundary merges, checking
    the served view against brute force after every step, and finally
    against a scratch-rebuilt index (the byte-identical pin)."""
    rng = np.random.default_rng(seed)
    live = {i: mbrs[i] for i in range(len(mbrs))}
    delta = DeltaIndex(next_id=index.next_element_id)
    for step, op in enumerate(ops):
        if op == "delete" and len(live) > 60:
            pool = np.fromiter(sorted(live), dtype=np.int64, count=len(live))
            victims = rng.choice(
                pool, size=int(rng.integers(5, 40)), replace=False
            )
            delta.delete(victims, index.contains_elements)
            for gid in victims:
                del live[int(gid)]
        elif op == "merge":
            drain_ids, drain_mbrs, drain_deletes, next_id = delta.drain()
            fork = index.fork()
            fork.apply_batch(
                insert_mbrs=drain_mbrs,
                delete_ids=drain_deletes,
                insert_ids=drain_ids,
                next_id=next_id,
            )
            index = fork
            delta = DeltaIndex(next_id=index.next_element_id)
        else:  # insert (also the fallback when too few elements remain)
            new = random_mbrs(
                int(rng.integers(5, 35)),
                seed=1000 * seed % (2**31) + step,
                span=float(rng.uniform(80, 200)),
            )
            for gid, mbr in zip(delta.insert(new), new):
                live[int(gid)] = mbr
        _assert_matches_brute_force(
            index.with_delta(delta), live, query_seed=(seed + step) % (2**31)
        )
    # Final bar: a scratch rebuild over the surviving elements answers
    # byte-identically (local rebuild ids map positionally to ours).
    ids, boxes = live_arrays(live)
    rebuilt = FLATIndex.build(PageStore(), boxes, page_capacity=16)
    served = index.with_delta(delta)
    for query in random_queries(8, seed % (2**31)):
        assert np.array_equal(
            served.range_query(query), ids[rebuilt.range_query(query)]
        )


_OPS = st.lists(
    st.sampled_from(["insert", "delete", "merge"]), min_size=1, max_size=6
)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31), ops=_OPS)
def test_interleavings_pin_to_scratch_rebuild_memory_store(seed, ops):
    mbrs = random_mbrs(300, seed=seed % 97)
    index = FLATIndex.build(PageStore(), mbrs, page_capacity=16)
    _drive_interleaving(index, mbrs, seed, ops)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2**31), ops=_OPS)
def test_interleavings_pin_to_scratch_rebuild_file_store(seed, ops):
    mbrs = random_mbrs(300, seed=seed % 89)
    with tempfile.TemporaryDirectory() as tmp:
        FLATIndex.build(PageStore(), mbrs, page_capacity=16).snapshot(
            Path(tmp) / "snap"
        )
        restored = FLATIndex.restore(Path(tmp) / "snap")
        try:
            _drive_interleaving(restored, mbrs, seed, ops)
        finally:
            restored.store.close()
