"""Tests for Algorithm 1's partitioning and its two required properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compute_partitions, coverage_gaps_exist
from repro.geometry import mbr_contains_mbr, mbr_union_many


def random_mbrs(n, seed=0, span=100.0, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, span, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, extent, size=(n, 3))], axis=1)


class TestPartitioning:
    @pytest.mark.parametrize("n", [1, 10, 85, 86, 500, 2000])
    def test_every_element_in_exactly_one_partition(self, n):
        mbrs = random_mbrs(n, seed=n)
        parts = compute_partitions(mbrs, 85)
        all_ids = np.sort(np.concatenate([p.element_ids for p in parts]))
        assert np.array_equal(all_ids, np.arange(n))

    @pytest.mark.parametrize("n", [85, 500, 2000])
    def test_capacity_respected(self, n):
        parts = compute_partitions(random_mbrs(n, seed=n), 85)
        assert all(1 <= len(p.element_ids) <= 85 for p in parts)

    def test_page_mbr_encloses_elements(self):
        mbrs = random_mbrs(600, seed=1)
        for p in compute_partitions(mbrs, 85):
            enclosing = mbr_union_many(mbrs[p.element_ids])
            assert np.allclose(p.page_mbr, enclosing)

    def test_property2_partition_mbr_encloses_page_mbr(self):
        # Sec. V-B: "each partition MBR must enclose the MBR of the
        # corresponding page" — otherwise queries can miss pages (Fig 9).
        mbrs = random_mbrs(1200, seed=2, extent=8.0)
        for p in compute_partitions(mbrs, 85):
            assert mbr_contains_mbr(p.partition_mbr, p.page_mbr)

    def test_property1_no_empty_space(self):
        # Sec. V-B: the union of all partitions must cover the space.
        mbrs = random_mbrs(1500, seed=3)
        space = mbr_union_many(mbrs)
        parts = compute_partitions(mbrs, 85, space_mbr=space)
        assert not coverage_gaps_exist(parts, space, samples=8192)

    def test_no_empty_space_with_wider_declared_space(self):
        mbrs = random_mbrs(800, seed=4)
        space = np.array([-50.0, -50, -50, 200, 200, 200])
        parts = compute_partitions(mbrs, 85, space_mbr=space)
        assert not coverage_gaps_exist(parts, space, samples=8192)

    def test_space_smaller_than_data_is_grown(self):
        # A declared space that does not cover the data must be expanded,
        # otherwise property 1 would fail silently.
        mbrs = random_mbrs(400, seed=5)
        space = np.array([40.0, 40, 40, 60, 60, 60])
        parts = compute_partitions(mbrs, 85, space_mbr=space)
        union = mbr_union_many(np.stack([p.partition_mbr for p in parts]))
        assert mbr_contains_mbr(union, mbr_union_many(mbrs))

    def test_clustered_data_with_holes(self):
        # Concave data (two clusters with a gap): partitions must still
        # tile across the hole — this is FLAT's whole point vs crawling
        # approaches that require connectivity.
        rng = np.random.default_rng(6)
        a = rng.uniform(0, 10, size=(300, 3))
        b = rng.uniform(90, 100, size=(300, 3))
        lo = np.concatenate([a, b])
        mbrs = np.concatenate([lo, lo + 0.5], axis=1)
        space = mbr_union_many(mbrs)
        parts = compute_partitions(mbrs, 85, space_mbr=space)
        assert not coverage_gaps_exist(parts, space, samples=8192)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            compute_partitions(np.empty((0, 6)), 85)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            compute_partitions(random_mbrs(10), 0)

    def test_partition_count_near_optimal(self):
        n = 3000
        parts = compute_partitions(random_mbrs(n, seed=7), 85)
        optimal = -(-n // 85)
        assert optimal <= len(parts) <= int(optimal * 1.7) + 6

    def test_identical_centers_handled(self):
        # All elements stacked at one point: partitioning must not crash
        # and must still cover and enclose.
        mbrs = np.tile(np.array([[5.0, 5, 5, 6, 6, 6]]), (200, 1))
        parts = compute_partitions(mbrs, 85)
        total = sum(len(p.element_ids) for p in parts)
        assert total == 200
        for p in parts:
            assert mbr_contains_mbr(p.partition_mbr, p.page_mbr)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 600), st.integers(1, 120), st.integers(0, 2**31))
def test_partition_invariants_property(n, capacity, seed):
    mbrs = random_mbrs(n, seed=seed)
    parts = compute_partitions(mbrs, capacity)
    ids = np.sort(np.concatenate([p.element_ids for p in parts]))
    assert np.array_equal(ids, np.arange(n))
    for p in parts:
        assert len(p.element_ids) <= capacity
        assert mbr_contains_mbr(p.partition_mbr, p.page_mbr)
