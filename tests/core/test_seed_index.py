"""Tests for metadata record packing and the seed index."""

import numpy as np
import pytest

from repro.core import FLATIndex, SeedIndex, pack_records_into_pages
from repro.storage import (
    CATEGORY_METADATA,
    CATEGORY_OBJECT,
    CATEGORY_SEED_INTERNAL,
    PAGE_SIZE,
    PageStore,
)
from repro.storage.serial import metadata_record_bytes


def random_mbrs(n, seed=0, span=100.0, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, span, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, extent, size=(n, 3))], axis=1)


class TestRecordPacking:
    def test_all_records_assigned_in_order(self):
        sizes = [100] * 100
        ranges = pack_records_into_pages(sizes)
        flat = [i for start, end in ranges for i in range(start, end)]
        assert flat == list(range(100))

    def test_pages_not_overfilled(self):
        rng = np.random.default_rng(0)
        sizes = [metadata_record_bytes(int(k)) for k in rng.integers(0, 60, size=500)]
        budget = PAGE_SIZE - 16
        for start, end in pack_records_into_pages(sizes):
            assert sum(sizes[start:end]) <= budget

    def test_oversized_record_rejected(self):
        with pytest.raises(ValueError):
            pack_records_into_pages([PAGE_SIZE])

    def test_empty_input(self):
        assert pack_records_into_pages([]) == []

    def test_greedy_fills_pages(self):
        # 20 records of ~200 bytes: 20 per page would be 4000 < 4080, so
        # they all fit on one page.
        sizes = [200] * 20
        assert len(pack_records_into_pages(sizes)) == 1


def build_flat(n=1500, seed=0, extent=2.0):
    store = PageStore()
    mbrs = random_mbrs(n, seed=seed, extent=extent)
    return FLATIndex.build(store, mbrs), mbrs, store


class TestSeedIndexStructure:
    def test_requires_records(self):
        with pytest.raises(ValueError):
            SeedIndex.build(PageStore(), [])

    def test_record_round_trip(self):
        index, _mbrs, _store = build_flat()
        seed = index.seed_index
        for record in seed.iter_records():
            fetched = seed.fetch_record(record.record_id)
            assert fetched.record_id == record.record_id
            assert np.array_equal(fetched.page_mbr, record.page_mbr)
            assert np.array_equal(fetched.partition_mbr, record.partition_mbr)
            assert fetched.object_page_id == record.object_page_id
            assert fetched.neighbor_ids == record.neighbor_ids

    def test_fetch_out_of_range(self):
        index, _mbrs, _store = build_flat(200)
        with pytest.raises(ValueError):
            index.seed_index.fetch_record(index.seed_index.record_count)

    def test_page_categories_accounted(self):
        index, _mbrs, store = build_flat()
        assert store.pages_in(CATEGORY_OBJECT) == index.object_page_count
        assert store.pages_in(CATEGORY_METADATA) == index.metadata_page_count
        assert store.pages_in(CATEGORY_SEED_INTERNAL) == index.seed_internal_page_count

    def test_records_reference_valid_object_pages(self):
        index, mbrs, store = build_flat()
        for record in index.seed_index.iter_records():
            assert store.category(record.object_page_id) == CATEGORY_OBJECT

    def test_neighbor_ids_are_valid_records(self):
        index, _mbrs, _store = build_flat()
        n = index.seed_index.record_count
        for record in index.seed_index.iter_records():
            assert all(0 <= nid < n for nid in record.neighbor_ids)
            assert record.record_id not in record.neighbor_ids


class TestSeedQuery:
    def test_seed_finds_record_iff_query_nonempty(self):
        index, mbrs, store = build_flat(1000, seed=3)
        rng = np.random.default_rng(4)
        from repro.geometry import boxes_intersect_box

        for _ in range(30):
            lo = rng.uniform(-10, 110, size=3)
            query = np.concatenate([lo, lo + rng.uniform(0.5, 25, size=3)])
            expected_nonempty = boxes_intersect_box(mbrs, query).any()
            got = index.seed_index.seed_query(query)
            if expected_nonempty:
                assert got is not None
                record, slots = got
                page_mbrs = mbrs[index.object_page_element_ids[record.object_page_id]]
                assert boxes_intersect_box(page_mbrs[slots], query).all()
            else:
                assert got is None

    def test_seed_cost_near_tree_height(self):
        # The seed phase follows essentially one path: its page reads
        # must be far below the total number of pages.
        index, _mbrs, store = build_flat(4000, seed=5)
        store.clear_cache()
        before = store.stats.snapshot()
        center = np.array([45.0, 45, 45, 60, 60, 60])
        assert index.seed_index.seed_query(center) is not None
        delta = store.stats.diff(before)
        assert delta.total_reads <= 12  # height + a couple of probes
