"""kNN across every engine, pinned to a brute-force baseline.

``knn_query(point, k)`` must return the k elements with the smallest
MBR distance to the point, ordered by ``(distance, id)`` — on FLAT
(expanding-radius crawl), the bulkloaded R-Tree variants (best-first
search), the sharded index (MINDIST-ordered shard walk) and the DLS
baseline (expanding-radius connectivity crawl on connected data).
"""

import numpy as np
import pytest

from repro.baselines.dls import ConnectivityCrawler
from repro.core import FLATIndex, ShardedFLATIndex
from repro.geometry import mbr_distance_to_point
from repro.query import CallableEngine, run_knn_queries
from repro.rtree import bulkload_rtree
from repro.storage import CATEGORY_OBJECT, PageStore


def random_mbrs(n, seed=0, span=100.0, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, span, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, extent, size=(n, 3))], axis=1)


def brute_force_knn(mbrs, point, k):
    dists = mbr_distance_to_point(mbrs, point)
    order = np.lexsort((np.arange(len(mbrs)), dists))[:k]
    return order, dists[order]


@pytest.fixture(scope="module")
def dataset():
    mbrs = random_mbrs(3000, seed=0)
    rng = np.random.default_rng(1)
    # Points inside, near the edge of, and outside the data space.
    points = np.concatenate(
        [
            rng.uniform(0, 100, size=(12, 3)),
            rng.uniform(-30, 130, size=(6, 3)),
        ]
    )
    return mbrs, points


class TestFlatKnn:
    @pytest.mark.parametrize("k", [1, 5, 23])
    def test_matches_brute_force(self, dataset, k):
        mbrs, points = dataset
        flat = FLATIndex.build(PageStore(), mbrs)
        for point in points:
            expected, expected_d = brute_force_knn(mbrs, point, k)
            ids, dists = flat.knn_query(point, k, return_distances=True)
            assert np.array_equal(ids, expected)
            assert np.allclose(dists, expected_d)
            assert flat.last_knn_rounds >= 1

    def test_k_larger_than_dataset_returns_all(self):
        mbrs = random_mbrs(120, seed=2)
        flat = FLATIndex.build(PageStore(), mbrs)
        ids = flat.knn_query(np.array([50.0, 50, 50]), 500)
        assert len(ids) == len(mbrs)
        assert np.array_equal(np.sort(ids), np.arange(len(mbrs)))

    def test_invalid_k(self, dataset):
        mbrs, _points = dataset
        flat = FLATIndex.build(PageStore(), mbrs)
        with pytest.raises(ValueError):
            flat.knn_query(np.zeros(3), 0)

    def test_crawl_stats_populated(self, dataset):
        mbrs, points = dataset
        store = PageStore()
        flat = FLATIndex.build(store, mbrs)
        store.clear_cache()
        flat.knn_query(points[0], 8)
        stats = flat.last_crawl_stats
        assert stats.result_count == 8
        assert stats.object_pages_read > 0

    def test_far_point_converges(self, dataset):
        mbrs, _points = dataset
        flat = FLATIndex.build(PageStore(), mbrs)
        point = np.array([5000.0, -5000.0, 5000.0])
        expected, _ = brute_force_knn(mbrs, point, 3)
        assert np.array_equal(flat.knn_query(point, 3), expected)


class TestRTreeKnn:
    @pytest.mark.parametrize("variant", ["str", "hilbert", "prtree"])
    def test_matches_brute_force(self, dataset, variant):
        mbrs, points = dataset
        tree = bulkload_rtree(PageStore(), mbrs, variant)
        for point in points:
            expected, expected_d = brute_force_knn(mbrs, point, 9)
            ids, dists = tree.knn_query(point, 9, return_distances=True)
            assert np.array_equal(ids, expected)
            assert np.allclose(dists, expected_d)

    def test_best_first_reads_fewer_pages_than_full_scan(self, dataset):
        mbrs, points = dataset
        store = PageStore()
        tree = bulkload_rtree(store, mbrs, "str")
        store.clear_cache()
        before = store.stats.snapshot()
        tree.knn_query(points[0], 5)
        delta = store.stats.diff(before)
        assert 0 < delta.total_reads < tree.leaf_count()

    def test_invalid_k(self, dataset):
        mbrs, _points = dataset
        tree = bulkload_rtree(PageStore(), mbrs, "str")
        with pytest.raises(ValueError):
            tree.knn_query(np.zeros(3), -1)


class TestShardedKnn:
    @pytest.mark.parametrize("shard_count", [1, 3, 8])
    def test_matches_brute_force(self, dataset, shard_count):
        mbrs, points = dataset
        sharded = ShardedFLATIndex.build(mbrs, shard_count)
        for point in points:
            expected, expected_d = brute_force_knn(mbrs, point, 11)
            ids, dists = sharded.knn_query(point, 11, return_distances=True)
            assert np.array_equal(ids, expected)
            assert np.allclose(dists, expected_d)

    def test_distant_shards_pruned(self, dataset):
        mbrs, _points = dataset
        sharded = ShardedFLATIndex.build(mbrs, 8)
        sharded.knn_query(np.array([1.0, 1.0, 1.0]), 3)
        assert len(sharded.last_plan.shards_selected) < sharded.shard_count


class TestDlsKnn:
    def test_matches_brute_force_on_complete_adjacency(self):
        # With complete adjacency every element intersecting a crawl box
        # is reachable from the seed, so the expanding-radius kNN must
        # equal brute force; sparse (concave) connectivity inherits
        # range_query's documented under-reporting instead.
        mbrs = random_mbrs(150, seed=4)
        everyone = list(range(len(mbrs)))
        adjacency = [[j for j in everyone if j != i] for i in everyone]
        dls = ConnectivityCrawler(mbrs, adjacency)
        for point in (np.array([50.0, 50, 50]), np.array([-20.0, 110, 4])):
            expected, _ = brute_force_knn(mbrs, point, 5)
            assert np.array_equal(dls.knn_query(point, 5), expected)


class TestCallableEngineKnn:
    def test_delegates_to_source(self, dataset):
        mbrs, points = dataset
        flat = FLATIndex.build(PageStore(), mbrs)
        engine = CallableEngine(flat.range_query_scalar, flat)
        assert np.array_equal(
            engine.knn_query(points[0], 4), flat.knn_query(points[0], 4)
        )

    def test_raises_without_source(self):
        engine = CallableEngine(lambda q: np.empty(0, dtype=np.int64))
        with pytest.raises(NotImplementedError):
            engine.knn_query(np.zeros(3), 3)


class TestKnnHarness:
    def test_cold_cache_accounting(self, dataset):
        mbrs, points = dataset
        store = PageStore()
        flat = FLATIndex.build(store, mbrs)
        run = run_knn_queries(flat, store, points, 6, "flat-knn")
        assert run.query_count == len(points)
        assert run.result_elements == 6 * len(points)
        assert run.reads_by_category.get(CATEGORY_OBJECT, 0) > 0
        assert len(run.bookkeeping_bytes) == len(points)

    def test_engines_read_comparable_accounting(self, dataset):
        mbrs, points = dataset
        runs = {}
        for name, build in {
            "flat": lambda s: FLATIndex.build(s, mbrs),
            "str": lambda s: bulkload_rtree(s, mbrs, "str"),
        }.items():
            store = PageStore()
            engine = build(store)
            runs[name] = run_knn_queries(engine, store, points, 6, name)
        assert (
            runs["flat"].per_query_results == runs["str"].per_query_results
        )

    def test_shape_and_k_validation(self, dataset):
        mbrs, _points = dataset
        store = PageStore()
        flat = FLATIndex.build(store, mbrs)
        with pytest.raises(ValueError):
            run_knn_queries(flat, store, np.zeros((3, 6)), 5)
        with pytest.raises(ValueError):
            run_knn_queries(flat, store, np.zeros((3, 3)), 0)
