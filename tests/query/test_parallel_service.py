"""Process-mode and batched serving pinned to the serial harness.

The contract: whichever execution mode and query grouping serve a
batch, results (ids, tie-breaks) and cold per-query page-read totals
are byte-identical to the single-threaded harness — on memory stores
and on restored mmap-backed file stores — and reports are
deterministic regardless of worker scheduling.  Decode counters are
pinned only for the legacy thread/batch=1 path (in test_service.py);
batched paths legitimately decode less.
"""

import numpy as np
import pytest

from repro.core import FLATIndex, ShardedFLATIndex, restore_index, snapshot_index
from repro.query import (
    MODE_PROCESS,
    MODE_THREAD,
    QueryService,
    run_knn_queries,
    run_queries,
)
from repro.query.workload import random_points, random_range_queries
from repro.storage import PageStore

SPACE = np.array([0.0, 0.0, 0.0, 100.0, 100.0, 100.0])


def random_mbrs(n, seed=0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 100, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, 2.0, size=(n, 3))], axis=1)


@pytest.fixture(scope="module")
def setup():
    store = PageStore()
    flat = FLATIndex.build(store, random_mbrs(3000, seed=1))
    queries = random_range_queries(SPACE, 0.001, 24, seed=7)
    serial = run_queries(flat, store, queries, "serial")
    serial_ids = [flat.range_query(q) for q in queries]
    return flat, store, queries, serial, serial_ids


@pytest.fixture(scope="module")
def file_setup(tmp_path_factory, setup):
    flat, _store, queries, _serial, _ids = setup
    directory = tmp_path_factory.mktemp("snapshot")
    snapshot_index(flat, directory)
    restored = restore_index(directory)
    serial = run_queries(restored, restored.store, queries, "serial-file")
    yield restored, directory, queries, serial
    restored.store.close()


def assert_pinned(report, serial):
    assert report.per_query_results == serial.per_query_results
    assert report.result_elements == serial.result_elements
    assert report.reads_by_category == serial.reads_by_category
    assert report.total_page_reads == serial.total_page_reads


class TestProcessModePinned:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_memory_store_matches_serial(self, setup, workers):
        flat, _store, queries, serial, _ids = setup
        with QueryService(flat, workers=workers, mode=MODE_PROCESS) as service:
            report = service.run(queries)
        assert report.execution_mode == MODE_PROCESS
        assert_pinned(report, serial)

    def test_file_store_matches_serial(self, file_setup):
        restored, _directory, queries, serial = file_setup
        with QueryService(restored, workers=2, mode=MODE_PROCESS) as service:
            report = service.run(queries)
        assert_pinned(report, serial)

    def test_submit_returns_exact_ids(self, setup):
        flat, _store, queries, _serial, serial_ids = setup
        with QueryService(flat, workers=2, mode=MODE_PROCESS) as service:
            futures = [service.submit(q) for q in queries]
            for future, want in zip(futures, serial_ids):
                assert np.array_equal(future.result(), want)
            assert service.workers_started >= 1
            assert service.aggregate_stats().total_reads > 0

    def test_knn_matches_serial_harness(self, setup):
        flat, store, _queries, _serial, _ids = setup
        points = random_points(SPACE, 10, seed=3)
        serial = run_knn_queries(flat, store, points, k=5, index_name="serial")
        with QueryService(flat, workers=2, mode=MODE_PROCESS) as service:
            report = service.run_knn(points, k=5)
        assert report.per_query_results == serial.per_query_results
        assert report.reads_by_category == serial.reads_by_category
        assert len(report.latencies_seconds) == len(points)

    def test_warm_serving_reads_fewer_pages(self, setup):
        flat, _store, queries, serial, _ids = setup
        with QueryService(
            flat, workers=1, mode=MODE_PROCESS, clear_cache_per_query=False
        ) as service:
            report = service.run(queries)
        assert report.per_query_results == serial.per_query_results
        assert report.total_page_reads < serial.total_page_reads


class TestBatchedPinned:
    @pytest.mark.parametrize("mode", [MODE_THREAD, MODE_PROCESS])
    @pytest.mark.parametrize("batch", [4, 100])
    def test_batched_matches_serial(self, setup, mode, batch):
        flat, _store, queries, serial, _ids = setup
        with QueryService(
            flat, workers=2, mode=mode, batch_queries=batch
        ) as service:
            report = service.run(queries)
        assert report.batch_queries == batch
        assert_pinned(report, serial)

    def test_batched_file_store_matches_serial(self, file_setup):
        restored, _directory, queries, serial = file_setup
        with QueryService(
            restored, workers=2, mode=MODE_PROCESS, batch_queries=8
        ) as service:
            report = service.run(queries)
        assert_pinned(report, serial)


class TestDeterminism:
    @pytest.mark.parametrize("mode", [MODE_THREAD, MODE_PROCESS])
    def test_repeated_runs_identical(self, setup, mode):
        # Deltas merge in submission order, never completion order, and
        # report dicts carry sorted keys — two runs of the same batch
        # compare equal field by field, key order included.
        flat, _store, queries, _serial, _ids = setup
        with QueryService(
            flat, workers=2, mode=mode, batch_queries=6
        ) as service:
            first = service.run(queries)
            second = service.run(queries)
        assert first.per_query_results == second.per_query_results
        assert first.reads_by_category == second.reads_by_category
        assert list(first.reads_by_category) == sorted(first.reads_by_category)
        assert first.decodes_by_kind == second.decodes_by_kind
        assert list(first.decodes_by_kind) == sorted(first.decodes_by_kind)
        assert first.cache_hits == second.cache_hits

    def test_latencies_tracked_per_query(self, setup):
        flat, _store, queries, _serial, _ids = setup
        with QueryService(flat, workers=2, batch_queries=5) as service:
            report = service.run(queries)
        assert len(report.latencies_seconds) == len(queries)
        assert all(lat > 0 for lat in report.latencies_seconds)
        percentiles = report.latency_percentiles()
        assert set(percentiles) == {"p50", "p95", "p99"}
        assert percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]


class TestUpdatesAcrossProcesses:
    # Each test gets its own snapshot directory: generation publishing
    # is single-writer per directory, so two services must never share
    # one (the second would be rejected as a stale publisher — see
    # append_overlay_generation).

    @pytest.fixture()
    def own_snapshot(self, setup, tmp_path):
        flat, _store, queries, _serial, _ids = setup
        snapshot_index(flat, tmp_path)
        restored = restore_index(tmp_path)
        yield restored, tmp_path, queries
        restored.store.close()

    def test_commit_publishes_generation_workers_restore(self, own_snapshot):
        restored, directory, queries = own_snapshot
        inserts = random_mbrs(150, seed=11)
        with QueryService(
            restored, workers=2, mode=MODE_PROCESS, batch_queries=4
        ) as service:
            update = service.apply_updates(
                inserts=inserts, delete_ids=np.arange(40)
            )
            assert update.version == 1
            report = service.run(queries)
        oracle = restore_index(directory)
        want = run_queries(oracle, oracle.store, queries, "oracle")
        oracle.store.close()
        assert_pinned(report, want)

    def test_pre_commit_tasks_see_old_generation(self, own_snapshot):
        # Tasks capture (version, spec) at submit time: queries already
        # queued when a commit lands still answer from the generation
        # they were submitted against — snapshot isolation across
        # address spaces.
        restored, directory, queries = own_snapshot
        old_ids = [restored.range_query(q) for q in queries]
        with QueryService(restored, workers=1, mode=MODE_PROCESS) as service:
            futures = [service.submit(q) for q in queries]
            service.apply_updates(inserts=random_mbrs(80, seed=13))
            for future, want in zip(futures, old_ids):
                assert np.array_equal(future.result(), want)
            post = service.run(queries)
        oracle = restore_index(directory)
        want_post = run_queries(oracle, oracle.store, queries, "oracle")
        oracle.store.close()
        assert_pinned(post, want_post)

    def test_successive_commits_advance_generations(self, own_snapshot):
        # Overlays are cumulative, so a service that publishes twice
        # stays the single writer: commit 2 builds on commit 1's
        # generation, and every generation stays restorable.
        restored, directory, queries = own_snapshot
        with QueryService(
            restored, workers=2, mode=MODE_PROCESS, batch_queries=4
        ) as service:
            first = service.apply_updates(inserts=random_mbrs(60, seed=29))
            second = service.apply_updates(delete_ids=np.arange(30))
            assert (first.version, second.version) == (1, 2)
            report = service.run(queries)
        oracle = restore_index(directory, generation=2)
        want = run_queries(oracle, oracle.store, queries, "oracle")
        oracle.store.close()
        assert_pinned(report, want)

    def test_stale_base_publisher_rejected(self, own_snapshot):
        # A second service committing from a generation the directory
        # has already moved past must be refused, not silently fork the
        # lineage.
        restored, directory, _queries = own_snapshot
        with QueryService(restored, workers=1, mode=MODE_PROCESS) as service:
            service.apply_updates(inserts=random_mbrs(20, seed=19))
        stale = restore_index(directory, generation=0)
        with QueryService(stale, workers=1, mode=MODE_PROCESS) as service:
            with pytest.raises(Exception, match="publish"):
                service.apply_updates(inserts=random_mbrs(20, seed=23))
        stale.store.close()

    def test_memory_store_updates_rejected(self, setup):
        flat, _store, _queries, _serial, _ids = setup
        with QueryService(flat, workers=1, mode=MODE_PROCESS) as service:
            with pytest.raises(RuntimeError, match="snapshot"):
                service.apply_updates(inserts=random_mbrs(5, seed=17))


class TestValidation:
    def test_sharded_process_mode_rejected(self):
        sharded = ShardedFLATIndex.build(random_mbrs(600, seed=5), shard_count=2)
        with pytest.raises(ValueError, match="thread workers only"):
            QueryService(sharded, mode=MODE_PROCESS)

    def test_sharded_batching_rejected(self):
        sharded = ShardedFLATIndex.build(random_mbrs(600, seed=5), shard_count=2)
        with pytest.raises(ValueError, match="monolithic"):
            QueryService(sharded, batch_queries=4)

    def test_bad_mode_rejected(self, setup):
        flat, _store, _queries, _serial, _ids = setup
        with pytest.raises(ValueError, match="mode"):
            QueryService(flat, mode="fibers")

    def test_bad_batch_rejected(self, setup):
        flat, _store, _queries, _serial, _ids = setup
        with pytest.raises(ValueError, match="batch_queries"):
            QueryService(flat, batch_queries=0)

    def test_engine_without_multi_crawl_rejected(self, setup):
        flat, _store, _queries, _serial, _ids = setup

        class Plain:
            store = flat.store

            def range_query(self, query):
                return np.empty(0, dtype=np.int64)

        with pytest.raises(ValueError, match="range_query_multi"):
            QueryService(Plain(), batch_queries=2)
