"""Serving under the LSM-style write path: absorb, merge, flush.

With ``delta_threshold > 0`` the service buffers update batches in an
in-RAM delta attached to the committed base index and merges into
pages only at generation boundaries.  The contract under test: every
commit — absorbed or merged — is a full snapshot-isolated version
whose served answers are exactly the surviving element set, across
thread and process modes, monolithic and sharded indexes, and across
the absorb→merge boundary itself.
"""

import time

import numpy as np
import pytest

from repro.core import FLATIndex, ShardedFLATIndex, restore_index, snapshot_index
from repro.geometry.intersect import boxes_intersect_box
from repro.query import MODE_PROCESS, QueryService
from repro.storage import PageStore


def random_mbrs(n, seed=0, span=100.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, span, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, 2.0, size=(n, 3))], axis=1)


def random_queries(count, seed):
    rng = np.random.default_rng(seed)
    corners = rng.uniform(-10, 160, size=(count, 3))
    return np.concatenate(
        [corners, corners + rng.uniform(5.0, 30.0, size=(count, 3))], axis=1
    )


def expected(live, query):
    ids = np.fromiter(sorted(live), dtype=np.int64, count=len(live))
    boxes = np.stack([live[int(i)] for i in ids])
    return ids[boxes_intersect_box(boxes, query)]


def assert_serving_exact(service, live, queries):
    for query in queries:
        assert np.array_equal(service.submit(query).result(), expected(live, query))


@pytest.fixture(params=["flat", "sharded"])
def served_index(request):
    mbrs = random_mbrs(1200, seed=1)
    if request.param == "flat":
        index = FLATIndex.build(PageStore(), mbrs, page_capacity=32)
    else:
        index = ShardedFLATIndex.build(mbrs, shard_count=3, page_capacity=32)
    return index, mbrs


class TestAbsorbAndMerge:
    def test_small_batches_absorb_until_threshold(self, served_index):
        index, mbrs = served_index
        queries = random_queries(6, seed=2)
        live = {i: mbrs[i] for i in range(len(mbrs))}
        with QueryService(index, workers=3, delta_threshold=200) as service:
            for round_number in range(1, 4):
                inserts = random_mbrs(30, seed=round_number, span=140.0)
                deletes = list(range(10 * round_number, 10 * round_number + 10))
                report = service.apply_updates(
                    inserts=inserts, delete_ids=deletes
                )
                assert report.version == round_number
                assert not report.merged
                for gid, mbr in zip(report.inserted_ids, inserts):
                    live[int(gid)] = mbr
                for gid in deletes:
                    del live[gid]
                assert report.delta_elements == service.delta_size > 0
                assert report.element_count == len(live)
                assert_serving_exact(service, live, queries)
            # The threshold crossing merges everything buffered.
            big = random_mbrs(200, seed=9, span=140.0)
            report = service.apply_updates(inserts=big)
            assert report.merged
            assert report.delta_elements == 0
            assert service.delta_size == 0
            for gid, mbr in zip(report.inserted_ids, big):
                live[int(gid)] = mbr
            assert report.element_count == len(live)
            assert_serving_exact(service, live, queries)

    def test_flush_delta_forces_a_generation_boundary(self, served_index):
        index, mbrs = served_index
        live = {i: mbrs[i] for i in range(len(mbrs))}
        with QueryService(index, workers=2, delta_threshold=10_000) as service:
            assert service.flush_delta() is None  # nothing buffered
            inserts = random_mbrs(25, seed=3, span=120.0)
            absorbed = service.apply_updates(
                inserts=inserts, delete_ids=list(range(0, 5))
            )
            assert not absorbed.merged
            for gid, mbr in zip(absorbed.inserted_ids, inserts):
                live[int(gid)] = mbr
            for gid in range(5):
                del live[gid]
            flushed = service.flush_delta()
            assert flushed is not None and flushed.merged
            assert flushed.version == absorbed.version + 1
            assert flushed.update_count == 0  # the flush itself adds nothing
            assert flushed.element_count == len(live)
            assert service.delta_size == 0
            assert_serving_exact(service, live, random_queries(8, seed=4))

    def test_merge_interval_triggers_boundary(self, served_index):
        index, _mbrs = served_index
        with QueryService(
            index, workers=2, delta_threshold=10_000,
            merge_interval_seconds=0.05,
        ) as service:
            first = service.apply_updates(inserts=random_mbrs(5, seed=5))
            time.sleep(0.06)
            second = service.apply_updates(inserts=random_mbrs(5, seed=6))
            assert second.merged
            assert service.delta_size == 0
            # first may or may not have merged depending on timing of
            # service construction; the interval bound is what matters.
            assert first.version == 1 and second.version == 2

    def test_threshold_zero_is_legacy_immediate_merge(self, served_index):
        index, _mbrs = served_index
        with QueryService(index, workers=2) as service:
            report = service.apply_updates(inserts=random_mbrs(3, seed=7))
            assert report.merged
            assert report.delta_elements == 0
            assert service.delta_size == 0

    def test_absorbed_deletes_validate_atomically(self, served_index):
        index, _mbrs = served_index
        with QueryService(index, workers=2, delta_threshold=1000) as service:
            service.apply_updates(inserts=random_mbrs(10, seed=8))
            version = service.current_version
            size = service.delta_size
            with pytest.raises(KeyError, match=r"unknown element ids: \[9999\]"):
                service.apply_updates(delete_ids=[3, 9999])
            assert service.current_version == version
            assert service.delta_size == size
            # Ids inserted through the delta are deletable through it.
            service.apply_updates(delete_ids=[3])
            assert service.current_version == version + 1

    def test_delta_visible_to_knn(self, served_index):
        index, _mbrs = served_index
        with QueryService(index, workers=2, delta_threshold=1000) as service:
            outlier = np.array([[400.0, 400, 400, 401, 401, 401]])
            report = service.apply_updates(inserts=outlier)
            assert not report.merged
            (gid,) = report.inserted_ids
            knn = service.run_knn(np.array([[400.5, 400.5, 400.5]]), k=1)
            assert knn.per_query_results == [1]
            got = service.submit(np.array([399.0, 399, 399, 402, 402, 402]))
            assert np.array_equal(got.result(), np.array([gid]))

    def test_ctor_rejects_bad_delta_parameters(self, served_index):
        index, _mbrs = served_index
        with pytest.raises(ValueError, match="delta_threshold"):
            QueryService(index, delta_threshold=-1)
        with pytest.raises(ValueError, match="merge_interval_seconds"):
            QueryService(index, merge_interval_seconds=0.0)


class TestInterleavedStream:
    def test_random_stream_stays_exact_across_boundaries(self, served_index):
        # The service-level differential pin: a random stream of small
        # batches absorbs and merges as the threshold dictates, and
        # after every commit the served answers equal brute force.
        index, mbrs = served_index
        rng = np.random.default_rng(11)
        live = {i: mbrs[i] for i in range(len(mbrs))}
        queries = random_queries(5, seed=12)
        merges = 0
        with QueryService(index, workers=3, delta_threshold=120) as service:
            for step in range(12):
                if rng.random() < 0.7 or len(live) < 200:
                    new = random_mbrs(
                        int(rng.integers(10, 60)), seed=100 + step, span=150.0
                    )
                    report = service.apply_updates(inserts=new)
                    for gid, mbr in zip(report.inserted_ids, new):
                        live[int(gid)] = mbr
                else:
                    pool = np.fromiter(
                        sorted(live), dtype=np.int64, count=len(live)
                    )
                    victims = rng.choice(
                        pool, size=int(rng.integers(10, 50)), replace=False
                    )
                    report = service.apply_updates(delete_ids=victims)
                    for gid in victims:
                        del live[int(gid)]
                merges += report.merged
                assert report.element_count == len(live)
                assert_serving_exact(service, live, queries)
            final = service.flush_delta()
            if final is not None:
                merges += 1
            assert merges >= 1  # the stream crossed at least one boundary
            assert service.delta_size == 0
            assert_serving_exact(service, live, queries)


class TestProcessModeDelta:
    def test_absorbed_and_merged_commits_across_processes(self, tmp_path):
        mbrs = random_mbrs(800, seed=20)
        flat = FLATIndex.build(PageStore(), mbrs, page_capacity=32)
        snapshot_index(flat, tmp_path / "snap")
        restored = restore_index(tmp_path / "snap")
        live = {i: mbrs[i] for i in range(len(mbrs))}
        queries = random_queries(6, seed=21)
        try:
            with QueryService(
                restored, workers=2, mode=MODE_PROCESS, delta_threshold=500
            ) as service:
                assert_serving_exact(service, live, queries)
                inserts = random_mbrs(40, seed=22, span=130.0)
                report = service.apply_updates(
                    inserts=inserts, delete_ids=list(range(0, 30))
                )
                assert not report.merged
                for gid, mbr in zip(report.inserted_ids, inserts):
                    live[int(gid)] = mbr
                for gid in range(30):
                    del live[gid]
                # Worker processes restore the unchanged base generation
                # and attach the shipped delta.
                assert_serving_exact(service, live, queries)
                flushed = service.flush_delta()
                assert flushed is not None and flushed.merged
                assert_serving_exact(service, live, queries)
                more = random_mbrs(10, seed=23, span=130.0)
                report = service.apply_updates(inserts=more)
                assert not report.merged
                for gid, mbr in zip(report.inserted_ids, more):
                    live[int(gid)] = mbr
                assert_serving_exact(service, live, queries)
        finally:
            restored.store.close()

    def test_absorbed_commit_requires_snapshot_directory(self):
        flat = FLATIndex.build(PageStore(), random_mbrs(300, seed=24))
        with QueryService(
            flat, workers=1, mode=MODE_PROCESS, delta_threshold=100
        ) as service:
            with pytest.raises(RuntimeError, match="snapshot directory"):
                service.apply_updates(inserts=random_mbrs(2, seed=25))
