"""Tests for the cold-cache query executor."""

import numpy as np
import pytest

from repro.core import FLATIndex
from repro.query import random_range_queries, run_point_queries, run_queries
from repro.rtree import bulkload_rtree
from repro.storage import (
    CATEGORY_OBJECT,
    CATEGORY_RTREE_INTERNAL,
    CATEGORY_RTREE_LEAF,
    DiskModel,
    PageStore,
)

SPACE = np.array([0.0, 0, 0, 100, 100, 100])


def random_mbrs(n, seed=0, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 100, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, extent, size=(n, 3))], axis=1)


@pytest.fixture(scope="module")
def rtree_setup():
    store = PageStore()
    mbrs = random_mbrs(3000, seed=0)
    tree = bulkload_rtree(store, mbrs, "str")
    return store, mbrs, tree


@pytest.fixture(scope="module")
def flat_setup():
    store = PageStore()
    mbrs = random_mbrs(3000, seed=0)
    index = FLATIndex.build(store, mbrs)
    return store, mbrs, index


class TestRunQueries:
    def test_aggregates_result_counts(self, rtree_setup):
        store, mbrs, tree = rtree_setup
        queries = random_range_queries(SPACE, 1e-3, 20, seed=1)
        run = run_queries(tree, store, queries, "str")
        from repro.geometry import boxes_intersect_box

        expected = sum(boxes_intersect_box(mbrs, q).sum() for q in queries)
        assert run.result_elements == expected
        assert run.query_count == 20
        assert len(run.per_query_reads) == 20
        assert len(run.per_query_results) == 20

    def test_reads_by_category_populated(self, rtree_setup):
        store, _mbrs, tree = rtree_setup
        queries = random_range_queries(SPACE, 1e-3, 5, seed=2)
        run = run_queries(tree, store, queries, "str")
        assert run.reads_by_category.get(CATEGORY_RTREE_LEAF, 0) > 0
        assert run.reads_by_category.get(CATEGORY_RTREE_INTERNAL, 0) > 0
        assert run.total_page_reads == run.hierarchy_reads + run.payload_reads

    def test_cold_cache_rereads_root(self, rtree_setup):
        store, _mbrs, tree = rtree_setup
        queries = random_range_queries(SPACE, 1e-4, 10, seed=3)
        cold = run_queries(tree, store, queries, "str", clear_cache_between=True)
        warm = run_queries(tree, store, queries, "str", clear_cache_between=False)
        # Warm run never pays the root again after the first query.
        assert warm.total_page_reads < cold.total_page_reads

    def test_flat_bookkeeping_collected(self, flat_setup):
        store, _mbrs, index = flat_setup
        queries = random_range_queries(SPACE, 1e-3, 8, seed=4)
        run = run_queries(index, store, queries, "FLAT")
        assert len(run.bookkeeping_bytes) == 8
        assert run.reads_by_category.get(CATEGORY_OBJECT, 0) > 0

    def test_pages_per_result(self, flat_setup):
        store, _mbrs, index = flat_setup
        queries = random_range_queries(SPACE, 1e-2, 5, seed=5)
        run = run_queries(index, store, queries, "FLAT")
        assert run.pages_per_result == pytest.approx(
            run.total_page_reads / run.result_elements
        )

    def test_pages_per_result_nan_when_empty(self, rtree_setup):
        store, _mbrs, tree = rtree_setup
        queries = np.array([[500.0, 500, 500, 501, 501, 501]])
        run = run_queries(tree, store, queries, "str")
        assert np.isnan(run.pages_per_result)

    def test_simulated_seconds_positive(self, rtree_setup):
        store, _mbrs, tree = rtree_setup
        queries = random_range_queries(SPACE, 1e-3, 5, seed=6)
        run = run_queries(tree, store, queries, "str")
        assert run.simulated_seconds(DiskModel()) > 0
        assert run.cpu_seconds > 0

    def test_query_shape_validation(self, rtree_setup):
        store, _mbrs, tree = rtree_setup
        with pytest.raises(ValueError):
            run_queries(tree, store, np.zeros((5, 4)))


class TestRunPointQueries:
    def test_point_queries_match_degenerate_boxes(self, rtree_setup):
        store, mbrs, tree = rtree_setup
        rng = np.random.default_rng(7)
        points = rng.uniform(0, 100, size=(10, 3))
        run = run_point_queries(tree, store, points, "str")
        from repro.geometry import boxes_intersect_point

        expected = sum(boxes_intersect_point(mbrs, p).sum() for p in points)
        assert run.result_elements == expected

    def test_drives_the_engines_point_query(self, flat_setup):
        # The harness must call point_query itself (not convert to
        # degenerate boxes), so engines with specialized point paths
        # get their own accounting.
        store, _mbrs, index = flat_setup

        class SpyEngine:
            def __init__(self, inner):
                self.inner = inner
                self.point_calls = 0

            def range_query(self, query):
                raise AssertionError("harness must not fall back to range_query")

            def point_query(self, point):
                self.point_calls += 1
                return self.inner.point_query(point)

        spy = SpyEngine(index)
        points = np.random.default_rng(9).uniform(0, 100, size=(6, 3))
        run = run_point_queries(spy, store, points, "spy")
        assert spy.point_calls == 6
        assert run.query_count == 6
        assert run.total_page_reads > 0

    def test_point_cold_cache_accounting_matches_range(self, flat_setup):
        store, _mbrs, index = flat_setup
        from repro.geometry import point_as_box

        points = np.random.default_rng(10).uniform(0, 100, size=(8, 3))
        point_run = run_point_queries(index, store, points, "points")
        box_run = run_queries(index, store, point_as_box(points), "boxes")
        assert point_run.per_query_results == box_run.per_query_results
        assert point_run.reads_by_category == box_run.reads_by_category

    def test_point_shape_validation(self, rtree_setup):
        store, _mbrs, tree = rtree_setup
        with pytest.raises(ValueError):
            run_point_queries(tree, store, np.zeros((5, 6)))

    def test_flat_and_rtree_agree(self, rtree_setup, flat_setup):
        store_r, mbrs, tree = rtree_setup
        store_f, _mbrs, flat = flat_setup
        queries = random_range_queries(SPACE, 1e-3, 10, seed=8)
        run_r = run_queries(tree, store_r, queries, "str")
        run_f = run_queries(flat, store_f, queries, "FLAT")
        assert run_r.per_query_results == run_f.per_query_results
