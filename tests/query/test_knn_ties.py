"""Property test: kNN tie-breaking is ``(distance, id)``-stable everywhere.

Data sets drawn from a tiny integer grid guarantee many elements with
*identical* coordinates — so many candidates tie exactly on distance —
and every engine (FLAT's expanding-radius crawl, the bulkloaded
R-Trees' best-first search, DLS's connectivity crawl, the sharded
MINDIST shard walk) must break those ties by ascending element id,
byte-identically to the brute-force baseline.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dls import ConnectivityCrawler
from repro.core import FLATIndex, ShardedFLATIndex
from repro.geometry import mbr_distance_to_point
from repro.rtree import bulkload_rtree
from repro.storage import PageStore

#: A 3x3x3 lattice of possible corners: any draw of >27 elements is
#: guaranteed duplicate coordinates, and small draws still collide
#: often.
grid_coord = st.integers(min_value=0, max_value=2)


@st.composite
def duplicate_heavy_dataset(draw):
    n = draw(st.integers(min_value=8, max_value=48))
    corners = np.array(
        [draw(st.tuples(grid_coord, grid_coord, grid_coord)) for _ in range(n)],
        dtype=np.float64,
    )
    # Degenerate (point) boxes: equal corners mean exactly equal
    # distances for every co-located element.
    return np.concatenate([corners, corners], axis=1)


def brute_force(mbrs, point, k):
    dists = mbr_distance_to_point(mbrs, point)
    order = np.lexsort((np.arange(len(mbrs)), dists))[:k]
    return order


@settings(max_examples=20, deadline=None)
@given(
    mbrs=duplicate_heavy_dataset(),
    point=st.tuples(grid_coord, grid_coord, grid_coord),
    k=st.integers(min_value=1, max_value=12),
)
def test_all_engines_break_distance_ties_by_id(mbrs, point, k):
    point = np.asarray(point, dtype=np.float64)
    expected = brute_force(mbrs, point, k)

    engines = {
        "flat": FLATIndex.build(PageStore(), mbrs, page_capacity=8),
        "rtree-str": bulkload_rtree(PageStore(), mbrs, "str"),
        "dls": ConnectivityCrawler(
            mbrs, [[j for j in range(len(mbrs)) if j != i] for i in range(len(mbrs))]
        ),
        "sharded": ShardedFLATIndex.build(mbrs, shard_count=2, page_capacity=8),
    }
    for name, engine in engines.items():
        got = engine.knn_query(point, k)
        assert np.array_equal(got, expected), (
            f"{name}: got {got}, expected {expected}"
        )


@settings(max_examples=10, deadline=None)
@given(k=st.integers(min_value=1, max_value=27))
def test_fully_identical_dataset_returns_lowest_ids(k):
    # The extreme case: every element at the same point — the result is
    # purely the id tie-break.
    mbrs = np.tile(np.array([1.0, 1, 1, 1, 1, 1]), (27, 1))
    point = np.array([0.0, 0, 0])
    for engine in (
        FLATIndex.build(PageStore(), mbrs, page_capacity=8),
        bulkload_rtree(PageStore(), mbrs, "hilbert"),
        ShardedFLATIndex.build(mbrs, shard_count=2, page_capacity=8),
    ):
        assert np.array_equal(engine.knn_query(point, k), np.arange(k))
