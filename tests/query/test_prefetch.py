"""Trajectory prefetching: model gating, staging, and the accounting law.

The load-bearing property is the **accounting identity**: prefetching
only ever moves reads earlier, so for any query sequence and *any*
interleaving of prefetch crawls with demand queries,

    demand_reads[c] + prefetch_hits[c] == reads[c] of a prefetch-free run

per page category, with byte-identical results — on the in-memory
backend and the mmap-backed file store alike.  A hypothesis test pins
that law under arbitrary interleavings; deterministic tests pin the
model's confidence gating and the service/session integration in
thread, process and sharded modes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FLATIndex, ShardedFLATIndex
from repro.query import (
    MODE_PROCESS,
    PrefetchArea,
    PrefetchConfig,
    Prefetcher,
    QueryService,
    TrajectoryModel,
    trajectory_range_queries,
)
from repro.storage import PageStore

SPACE = np.array([0.0, 0.0, 0.0, 102.0, 102.0, 102.0])


def build_flat(n=3000, seed=0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 100, size=(n, 3))
    mbrs = np.concatenate([lo, lo + rng.uniform(0.01, 2, size=(n, 3))], axis=1)
    store = PageStore()
    return FLATIndex.build(store, mbrs), store


def walk_boxes(count=10, start=(20.0, 20.0, 20.0), step=(3.0, 2.0, 1.0),
               edge=6.0):
    """A perfectly straight query walk — always above the gates."""
    centers = np.asarray(start) + np.outer(np.arange(count), np.asarray(step))
    half = edge / 2.0
    return np.concatenate([centers - half, centers + half], axis=1)


# -- the staging area ----------------------------------------------------


class TestPrefetchArea:
    def test_take_is_non_consuming(self):
        area = PrefetchArea()
        area.stage(7)
        area.stage_decoded(7, "metadata", "decoded")
        assert area.take(7) == {"metadata": "decoded"}
        assert area.take(7) == {"metadata": "decoded"}

    def test_consumed_counts_distinct_pages(self):
        area = PrefetchArea()
        for page in (1, 2, 3):
            area.stage(page)
        area.take(1)
        area.take(1)
        area.take(2)
        area.take(99)  # never staged
        assert area.counters() == {"staged": 3, "consumed": 2}

    def test_stage_is_idempotent(self):
        area = PrefetchArea()
        area.stage(5)
        area.stage(5)
        assert area.counters()["staged"] == 1
        assert len(area) == 1

    def test_lru_eviction_past_capacity(self):
        area = PrefetchArea(capacity=2)
        area.stage(1)
        area.stage(2)
        area.take(1)
        area.stage(3)  # evicts page 1 (LRU)
        assert 1 not in area
        assert area.take(1) is None
        assert area.counters() == {"staged": 3, "consumed": 1}

    def test_stage_decoded_noop_when_unstaged(self):
        area = PrefetchArea()
        area.stage_decoded(4, "metadata", "decoded")
        assert area.take(4) is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PrefetchArea(capacity=0)


# -- the trajectory model ------------------------------------------------


class TestTrajectoryModel:
    def test_too_little_history_predicts_nothing(self):
        model = TrajectoryModel()
        for box in walk_boxes(2):
            model.observe(box)
        assert model.observed == 2
        assert model.predict() is None

    def test_straight_walk_prediction_covers_next_box(self):
        boxes = walk_boxes(6)
        model = TrajectoryModel()
        for box in boxes[:5]:
            model.observe(box)
        predicted = model.predict()
        assert predicted is not None
        assert np.all(predicted[:3] <= boxes[5][:3])
        assert np.all(predicted[3:] >= boxes[5][3:])

    def test_erratic_session_is_gated_off(self):
        rng = np.random.default_rng(11)
        model = TrajectoryModel()
        for _ in range(5):
            lo = rng.uniform(0, 90, size=3)
            model.observe(np.concatenate([lo, lo + 5.0]))
        assert model.predict() is None

    def test_teleporting_speed_is_gated_off(self):
        model = TrajectoryModel()
        # Same direction, but one step is 50x the others.
        for x in (0.0, 1.0, 2.0, 102.0):
            model.observe(np.array([x, 0, 0, x + 4, 4, 4]))
        assert model.predict() is None

    def test_stationary_session_predicts_the_same_spot(self):
        box = np.array([10.0, 10, 10, 16, 16, 16])
        model = TrajectoryModel()
        for _ in range(4):
            model.observe(box)
        predicted = model.predict()
        assert predicted is not None
        assert np.all(predicted[:3] <= box[:3])
        assert np.all(predicted[3:] >= box[3:])

    def test_lookahead_window_contains_single_step(self):
        model = TrajectoryModel()
        for box in walk_boxes(5):
            model.observe(box)
        one = model.predict()
        window = model.predict(lookahead=3)
        assert np.all(window[:3] <= one[:3])
        assert np.all(window[3:] >= one[3:])
        assert np.any(window[3:] > one[3:])  # genuinely wider downstream

    def test_lookahead_validation(self):
        with pytest.raises(ValueError):
            TrajectoryModel().predict(lookahead=0)

    @pytest.mark.parametrize("kwargs", [
        {"history": 1},
        {"min_history": 6, "history": 5},
        {"min_alignment": 2.0},
        {"max_speed_ratio": 0.5},
        {"inflate": 0.9},
        {"lookahead": 0},
    ])
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            PrefetchConfig(**kwargs)


# -- staging crawl + accounting identity ---------------------------------


@pytest.fixture(scope="module")
def backed_indexes(tmp_path_factory):
    """The same index over the memory backend and the mmap file store."""
    flat, _store = build_flat(n=2000, seed=3)
    snap = tmp_path_factory.mktemp("prefetch-snap")
    flat.snapshot(snap)
    restored = FLATIndex.restore(snap)
    yield {"memory": flat, "file": restored}
    restored.store.close()


def run_cold_baseline(index, queries):
    """Per-query results and physical reads of a prefetch-free clone."""
    store = index.store.view()
    engine = index.with_store(store)
    results, reads = [], []
    for query in queries:
        store.clear_cache()
        before = store.stats.snapshot()
        results.append(engine.range_query(query))
        reads.append(dict(store.stats.diff(before).reads))
    return results, reads


box_strategy = st.tuples(
    st.floats(0.0, 95.0), st.floats(0.0, 95.0), st.floats(0.0, 95.0),
    st.floats(0.5, 8.0),
).map(lambda t: np.array([t[0], t[1], t[2],
                          t[0] + t[3], t[1] + t[3], t[2] + t[3]]))


class TestAccountingIdentity:
    @pytest.mark.parametrize("backing", ["memory", "file"])
    @settings(max_examples=20, deadline=None)
    @given(
        queries=st.lists(box_strategy, min_size=2, max_size=5),
        prefetch_plan=st.lists(
            st.lists(box_strategy, max_size=2), min_size=5, max_size=5
        ),
    )
    def test_any_interleaving_is_read_exact(self, backed_indexes, backing,
                                            queries, prefetch_plan):
        """Arbitrary prefetches interleaved with arbitrary queries
        change neither the results nor the per-category read law."""
        index = backed_indexes[backing]
        base_results, base_reads = run_cold_baseline(index, queries)

        prefetcher = Prefetcher(index)
        store = index.store.view()
        engine = index.with_store(store)
        prefetcher.attach_store(store)
        for query, base_ids, base_read, boxes in zip(
            queries, base_results, base_reads, prefetch_plan
        ):
            for box in boxes:
                prefetcher.prefetch(box)
            store.clear_cache()
            before = store.stats.snapshot()
            got = engine.range_query(query)
            diff = store.stats.diff(before)
            assert np.array_equal(got, base_ids)
            categories = (
                set(base_read) | set(diff.reads) | set(diff.prefetch_hits)
            )
            for c in categories:
                assert (
                    diff.reads.get(c, 0) + diff.prefetch_hits.get(c, 0)
                    == base_read.get(c, 0)
                ), f"category {c} violates the accounting identity"

    @pytest.mark.parametrize("backing", ["memory", "file"])
    def test_prefetching_the_query_box_absorbs_reads(self, backed_indexes,
                                                     backing):
        index = backed_indexes[backing]
        query = walk_boxes(1)[0]
        base_results, base_reads = run_cold_baseline(index, [query])

        prefetcher = Prefetcher(index)
        store = index.store.view()
        engine = index.with_store(store)
        prefetcher.attach_store(store)
        assert prefetcher.prefetch(query) > 0
        store.clear_cache()
        before = store.stats.snapshot()
        got = engine.range_query(query)
        diff = store.stats.diff(before)
        assert np.array_equal(got, base_results[0])
        # The staging crawl covers a superset of the demand page set, so
        # every demand read is absorbed.
        assert diff.total_reads == 0
        assert sum(diff.prefetch_hits.values()) == sum(base_reads[0].values())
        counters = prefetcher.counters()
        assert counters["consumed"] > 0
        assert counters["staged"] >= counters["consumed"]


# -- service integration -------------------------------------------------


@pytest.fixture(scope="module")
def session_setup():
    flat, store = build_flat(n=4000, seed=2)
    queries = trajectory_range_queries(SPACE, 5e-5, 25, seed=9)
    expected = [flat.range_query(q) for q in queries]
    return flat, queries, expected


def run_session_reports(index, queries, prefetch, **kwargs):
    with QueryService(
        index, workers=1, clear_cache_per_query=True, prefetch=prefetch,
        **kwargs,
    ) as service:
        return service.run_session(queries, "walker", "prefetch-test")


class TestServiceSessions:
    def test_thread_session_results_identical(self, session_setup):
        flat, queries, expected = session_setup
        with QueryService(
            flat, workers=1, clear_cache_per_query=True, prefetch=True
        ) as service:
            for query, want in zip(queries, expected):
                got = service.submit(query, session_id="walker").result()
                assert np.array_equal(got, want)
            assert service.prefetch_failures == 0

    def test_thread_session_accounting_identity(self, session_setup):
        flat, queries, _expected = session_setup
        baseline = run_session_reports(flat, queries, prefetch=False)
        prefetched = run_session_reports(flat, queries, prefetch=True)
        assert prefetched.session_id == "walker"
        assert prefetched.prefetch_enabled
        assert not baseline.prefetch_enabled
        assert prefetched.total_prefetch_hits > 0
        assert 0.0 < prefetched.prefetch_hit_rate <= 1.0
        categories = (
            set(baseline.reads_by_category)
            | set(prefetched.reads_by_category)
            | set(prefetched.prefetch_hits_by_category)
        )
        for c in categories:
            assert (
                prefetched.reads_by_category.get(c, 0)
                + prefetched.prefetch_hits_by_category.get(c, 0)
                == baseline.reads_by_category.get(c, 0)
            )
        assert prefetched.prefetch_staged >= prefetched.prefetch_consumed

    def test_process_session_accounting_identity(self, session_setup):
        flat, queries, expected = session_setup
        baseline = run_session_reports(
            flat, queries, prefetch=False, mode=MODE_PROCESS
        )
        prefetched = run_session_reports(
            flat, queries, prefetch=True, mode=MODE_PROCESS
        )
        assert prefetched.total_prefetch_hits > 0
        categories = (
            set(baseline.reads_by_category)
            | set(prefetched.reads_by_category)
            | set(prefetched.prefetch_hits_by_category)
        )
        for c in categories:
            assert (
                prefetched.reads_by_category.get(c, 0)
                + prefetched.prefetch_hits_by_category.get(c, 0)
                == baseline.reads_by_category.get(c, 0)
            )

    def test_sharded_session_results_identical(self):
        rng = np.random.default_rng(4)
        lo = rng.uniform(0, 100, size=(3000, 3))
        mbrs = np.concatenate(
            [lo, lo + rng.uniform(0.01, 2, size=(3000, 3))], axis=1
        )
        sharded = ShardedFLATIndex.build(mbrs, 3, space_mbr=SPACE)
        queries = trajectory_range_queries(SPACE, 5e-5, 20, seed=21)
        expected = [sharded.range_query(q) for q in queries]
        with QueryService(
            sharded, workers=2, clear_cache_per_query=True, prefetch=True
        ) as service:
            for query, want in zip(queries, expected):
                got = service.submit(query, session_id="walker").result()
                assert np.array_equal(got, want)
            assert service.prefetch_failures == 0

    def test_uncorrelated_session_never_stages(self, session_setup):
        flat, _queries, _expected = session_setup
        rng = np.random.default_rng(5)
        lo = rng.uniform(0, 90, size=(10, 3))
        random_queries = np.concatenate([lo, lo + 5.0], axis=1)
        report = run_session_reports(flat, random_queries, prefetch=True)
        assert report.total_prefetch_hits == 0
        assert report.prefetch_staged == 0
        assert report.total_prefetch_reads == 0

    def test_prefetch_config_requires_prefetch_flag(self, session_setup):
        flat, _queries, _expected = session_setup
        with pytest.raises(ValueError):
            QueryService(flat, workers=1, prefetch_config=PrefetchConfig())
