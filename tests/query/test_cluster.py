"""The distributed serving tier pinned to the monolithic oracle.

Every answer the cluster gives — scattered range/point/kNN batches,
delta-overlaid gathers, queries racing a rolling update, queries after
a server was killed — must be byte-identical to the same query against
the in-process :class:`~repro.core.sharded.ShardedFLATIndex`.  The
shard servers are real processes talking over sockets; the tests keep
the fleets small (3 shards) so the suite stays fast.
"""

import numpy as np
import pytest

from repro.core import DeltaIndex, ShardedFLATIndex
from repro.query import ClusterError, ClusterRouter
from repro.query.workload import (
    random_points,
    random_range_queries,
    trajectory_range_queries,
)

SPACE = np.array([0.0, 0.0, 0.0, 100.0, 100.0, 100.0])
SHARDS = 3


def random_mbrs(n, seed=0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 100, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, 2.0, size=(n, 3))], axis=1)


@pytest.fixture(scope="module")
def snapshot_root(tmp_path_factory):
    """A sharded snapshot root plus its in-RAM oracle and a query mix.

    Shared read-only across the module — tests that publish new
    generations (rolling updates) build their own private roots.
    """
    oracle = ShardedFLATIndex.build(random_mbrs(2500, seed=1), SHARDS,
                                    space_mbr=SPACE)
    assert oracle.shard_count == SHARDS
    root = tmp_path_factory.mktemp("cluster-root")
    oracle.snapshot(root)
    queries = random_range_queries(SPACE, 0.001, 16, seed=7)
    points = random_points(SPACE, 8, seed=3)
    return root, oracle, queries, points


@pytest.fixture()
def cluster(snapshot_root, tmp_path):
    root, _oracle, _queries, _points = snapshot_root
    with ClusterRouter.launch(root, replica_root=tmp_path / "replicas") as router:
        yield router


@pytest.fixture()
def cluster_no_replicas(snapshot_root):
    root, _oracle, _queries, _points = snapshot_root
    with ClusterRouter.launch(root) as router:
        yield router


class TestClusterPinnedToOracle:
    def test_range_queries_byte_identical(self, snapshot_root, cluster_no_replicas):
        _root, oracle, queries, _points = snapshot_root
        for query in queries:
            got = cluster_no_replicas.range_query(query)
            assert np.array_equal(got, oracle.range_query(query))
            assert got.dtype == np.int64

    def test_point_queries_byte_identical(self, snapshot_root, cluster_no_replicas):
        _root, oracle, _queries, points = snapshot_root
        for point in points:
            assert np.array_equal(
                cluster_no_replicas.point_query(point),
                oracle.point_query(point),
            )

    def test_knn_byte_identical_with_distances(self, snapshot_root,
                                               cluster_no_replicas):
        _root, oracle, _queries, points = snapshot_root
        for point in points:
            ids, dists = cluster_no_replicas.knn_query(
                point, 9, return_distances=True
            )
            want_ids, want_dists = oracle.knn_query(
                point, 9, return_distances=True
            )
            assert np.array_equal(ids, want_ids)
            assert np.array_equal(dists, want_dists)

    def test_batch_run_matches_and_reports_scatter(self, snapshot_root,
                                                   cluster_no_replicas):
        _root, oracle, queries, _points = snapshot_root
        results, report = cluster_no_replicas.run(queries)
        for got, query in zip(results, queries):
            assert np.array_equal(got, oracle.range_query(query))
        assert report.query_count == len(queries)
        assert report.per_query_results == [len(ids) for ids in results]
        assert report.shard_requests + report.shards_pruned == len(queries) * SHARDS
        assert report.total_page_reads > 0
        assert report.servers_lost == 0
        assert report.throughput_qps > 0

    def test_planner_prunes_before_any_request(self, snapshot_root,
                                               cluster_no_replicas):
        _root, oracle, queries, _points = snapshot_root
        cluster_no_replicas.range_query(queries[0])
        oracle.range_query(queries[0])
        assert (cluster_no_replicas.last_plan.shards_selected
                == oracle.last_plan.shards_selected)

    def test_status_reports_fleet(self, cluster_no_replicas):
        status = cluster_no_replicas.status()
        assert [entry["shard"] for entry in status] == list(range(SHARDS))
        assert all(entry["generation"] == 0 for entry in status)
        assert all(entry["element_count"] > 0 for entry in status)
        # Every shard server is its own process.
        assert len({entry["pid"] for entry in status}) == SHARDS

    def test_server_error_is_surfaced_not_fatal(self, snapshot_root,
                                                cluster_no_replicas):
        _root, oracle, queries, _points = snapshot_root
        with pytest.raises(ClusterError, match="server error"):
            cluster_no_replicas._request_one(0, ("knn", np.zeros(3), 0, True))
        # The server survived the bad request and keeps serving.
        assert np.array_equal(
            cluster_no_replicas.range_query(queries[0]),
            oracle.range_query(queries[0]),
        )

    def test_unknown_request_rejected(self, cluster_no_replicas):
        with pytest.raises(ClusterError, match="unknown cluster request"):
            cluster_no_replicas._request_one(0, ("frobnicate",))


class TestTrajectorySessions:
    def test_session_prefetches_and_keeps_accounting_exact(
        self, snapshot_root, cluster_no_replicas
    ):
        """Session ids survive the scatter path: servers prefetch along
        the trajectory, results stay byte-identical, and demand reads +
        prefetch hits equal the session-free run's reads per category.

        The baseline batch runs first: a server attaches its staging
        area on the first request carrying a session id, so ordering
        keeps the baseline genuinely prefetch-free.
        """
        _root, oracle, _queries, _points = snapshot_root
        walk = trajectory_range_queries(SPACE, 2e-5, 24, seed=13)
        baseline_results, baseline = cluster_no_replicas.run(walk)
        assert baseline.session_id is None
        assert baseline.total_prefetch_hits == 0
        results, report = cluster_no_replicas.run(walk, session_id="tracer")
        assert report.session_id == "tracer"
        for got, base, query in zip(results, baseline_results, walk):
            assert np.array_equal(got, base)
            assert np.array_equal(got, oracle.range_query(query))
        assert report.total_prefetch_hits > 0
        categories = (
            set(baseline.reads_by_category)
            | set(report.reads_by_category)
            | set(report.prefetch_hits_by_category)
        )
        for c in categories:
            assert (
                report.reads_by_category.get(c, 0)
                + report.prefetch_hits_by_category.get(c, 0)
                == baseline.reads_by_category.get(c, 0)
            ), f"category {c} violates the accounting identity"

    def test_single_query_accepts_session_id(self, snapshot_root,
                                             cluster_no_replicas):
        _root, oracle, queries, _points = snapshot_root
        got = cluster_no_replicas.range_query(queries[0], session_id="solo")
        assert np.array_equal(got, oracle.range_query(queries[0]))


class TestDeltaOverlayAtGather:
    def test_range_and_knn_with_delta(self, snapshot_root, cluster_no_replicas):
        _root, oracle, queries, points = snapshot_root
        delta = DeltaIndex(next_id=oracle.next_element_id)
        delta.insert(random_mbrs(40, seed=9))
        delta.delete(np.arange(0, 30, 3), oracle.contains_elements)
        overlaid = oracle.with_delta(delta)
        cluster_no_replicas.delta = delta
        assert cluster_no_replicas.live_element_count == overlaid.live_element_count
        for query in queries:
            assert np.array_equal(
                cluster_no_replicas.range_query(query),
                overlaid.range_query(query),
            )
        for point in points:
            assert np.array_equal(
                cluster_no_replicas.knn_query(point, 9),
                overlaid.knn_query(point, 9),
            )


class TestFailover:
    def test_replica_takes_over_dead_primary(self, snapshot_root, cluster):
        _root, oracle, queries, points = snapshot_root
        cluster.kill_server(1, "primary")
        results, report = cluster.run(queries)
        for got, query in zip(results, queries):
            assert np.array_equal(got, oracle.range_query(query))
        # The death is discovered lazily, by the first failed request.
        assert cluster.servers_lost == 1
        for point in points:
            assert np.array_equal(
                cluster.knn_query(point, 5), oracle.knn_query(point, 5)
            )

    def test_shard_loss_raises_instead_of_partial_results(self, cluster):
        cluster.kill_server(0, "primary")
        cluster.kill_server(0, "replica")
        with pytest.raises(ClusterError, match="no live server"):
            # Full-space box: guaranteed to touch shard 0.
            cluster.range_query(SPACE)

    def test_no_replica_shard_loss_raises(self, snapshot_root,
                                          cluster_no_replicas):
        cluster_no_replicas.kill_server(2, "primary")
        with pytest.raises(ClusterError, match="no live server"):
            cluster_no_replicas.range_query(SPACE)

    def test_launch_ships_full_copy_once(self, cluster):
        log = cluster.replication_log
        assert len(log) == SHARDS
        assert all(entry["full_copy"] for entry in log)
        assert all(entry["pages_sent"] > 0 for entry in log)


class TestRollingUpdate:
    def _batch(self, oracle, seed):
        rng = np.random.default_rng(seed)
        inserts = random_mbrs(60, seed=seed + 1)
        live = np.flatnonzero(
            oracle.contains_elements(np.arange(oracle.next_element_id))
        )
        deletes = rng.choice(live, size=40, replace=False).astype(np.int64)
        return inserts, deletes

    def _private_cluster(self, tmp_path, n_elements=1500, seed=5,
                         replicas=True):
        oracle = ShardedFLATIndex.build(random_mbrs(n_elements, seed=seed),
                                        SHARDS, space_mbr=SPACE)
        root = tmp_path / "root"
        oracle.snapshot(root)
        replica_root = (tmp_path / "replicas") if replicas else None
        return oracle, ClusterRouter.launch(root, replica_root=replica_root)

    def test_mid_roll_queries_match_mixed_oracle(self, tmp_path):
        oracle, cluster = self._private_cluster(tmp_path)
        queries = random_range_queries(SPACE, 0.001, 12, seed=7)
        with cluster:
            inserts, deletes = self._batch(oracle, seed=11)
            new_oracle = oracle.fork()
            new_ids = new_oracle.apply_batch(
                insert_mbrs=inserts, delete_ids=deletes
            )
            done = []

            def on_shard(pos, generation):
                done.append(pos)
                # The fleet state right now: rolled shards serve the new
                # generation, the rest the old one, under the (grow-only)
                # widened planner — exactly this mixed oracle.
                mixed = ShardedFLATIndex(
                    [new_oracle.shards[i] if i in done else oracle.shards[i]
                     for i in range(oracle.shard_count)],
                    new_oracle.planner,
                    new_oracle.element_count,
                )
                for query in queries:
                    assert np.array_equal(
                        cluster.range_query(query), mixed.range_query(query)
                    )

            report = cluster.apply_updates(
                insert_mbrs=inserts, delete_ids=deletes,
                on_shard_updated=on_shard,
            )
            assert np.array_equal(report.inserted_ids, new_ids)
            assert report.shards_updated == done
            assert report.element_count == new_oracle.element_count
            # After the roll: the whole fleet answers from the new state.
            results, _ = cluster.run(queries)
            for got, query in zip(results, queries):
                assert np.array_equal(got, new_oracle.range_query(query))

    def test_roll_ships_only_increments_to_replicas(self, tmp_path):
        oracle, cluster = self._private_cluster(tmp_path, seed=13)
        with cluster:
            inserts, deletes = self._batch(oracle, seed=13)
            fork = oracle.fork()
            fork.apply_batch(insert_mbrs=inserts, delete_ids=deletes)
            report = cluster.apply_updates(
                insert_mbrs=inserts, delete_ids=deletes
            )
            assert report.shipping, "replicated cluster must ship every roll"
            assert [e["shard"] for e in report.shipping] == report.shards_updated
            for entry in report.shipping:
                assert not entry["full_copy"]
                # Strictly fewer pages than the new generation holds in
                # total — unchanged pages never travel again.
                total_pages = len(fork.shards[entry["shard"]].index.store)
                assert 0 < entry["pages_sent"] < total_pages

    def test_repeated_rolls_and_fresh_restore(self, tmp_path):
        """Two successive rolls, then a from-scratch restore of the root.

        Uses a private snapshot root: the rolls publish generations into
        the directory, which must not leak into the shared fixtures.
        """
        oracle = ShardedFLATIndex.build(random_mbrs(1200, seed=21), SHARDS,
                                        space_mbr=SPACE)
        root = tmp_path / "root"
        oracle.snapshot(root)
        queries = random_range_queries(SPACE, 0.001, 10, seed=23)
        current = oracle
        with ClusterRouter.launch(root) as router:
            for seed in (31, 37):
                inserts, deletes = self._batch(current, seed=seed)
                fork = current.fork()
                fork.apply_batch(insert_mbrs=inserts, delete_ids=deletes)
                router.apply_updates(insert_mbrs=inserts, delete_ids=deletes)
                current = fork
                results, _ = router.run(queries)
                for got, query in zip(results, queries):
                    assert np.array_equal(got, current.range_query(query))
            assert router.shard_generations() == {
                pos: 2 for pos in range(SHARDS)
            }
        restored = ShardedFLATIndex.restore(root)
        try:
            assert restored.element_count == current.element_count
            for query in queries:
                assert np.array_equal(
                    restored.range_query(query), current.range_query(query)
                )
        finally:
            restored.close()

    def test_update_during_failover_keeps_serving(self, tmp_path):
        """A roll with a dead primary lands on the replica and serves."""
        oracle = ShardedFLATIndex.build(random_mbrs(1200, seed=41), SHARDS,
                                        space_mbr=SPACE)
        root = tmp_path / "root"
        oracle.snapshot(root)
        queries = random_range_queries(SPACE, 0.001, 10, seed=43)
        with ClusterRouter.launch(root,
                                  replica_root=tmp_path / "replicas") as router:
            router.kill_server(0, "primary")
            # Discover the death before the roll so the roll skips it.
            router.run(queries)
            inserts, deletes = self._batch(oracle, seed=47)
            fork = oracle.fork()
            fork.apply_batch(insert_mbrs=inserts, delete_ids=deletes)
            router.apply_updates(insert_mbrs=inserts, delete_ids=deletes)
            results, _ = router.run(queries)
            for got, query in zip(results, queries):
                assert np.array_equal(got, fork.range_query(query))


class TestLifecycle:
    def test_closed_cluster_rejects_queries(self, snapshot_root):
        root, _oracle, queries, _points = snapshot_root
        router = ClusterRouter.launch(root)
        router.close()
        with pytest.raises(ClusterError, match="closed"):
            router.range_query(queries[0])
        router.close()  # idempotent

    def test_close_reaps_every_server_process(self, snapshot_root, tmp_path):
        root, _oracle, queries, _points = snapshot_root
        router = ClusterRouter.launch(root, replica_root=tmp_path / "replicas")
        router.range_query(queries[0])
        processes = [h.process for h in router._primaries
                     + [r for r in router._replicas if r is not None]]
        router.close()
        assert all(not process.is_alive() for process in processes)
