"""Tests for query workload generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import mbr_contains_mbr, mbr_volume
from repro.query import (
    lss_benchmark,
    random_points,
    random_range_queries,
    sn_benchmark,
)

SPACE = np.array([0.0, 0, 0, 285, 285, 285])

#: The paper's Sec. VII-A invariant: every query has *exactly* the target
#: volume — including on anisotropic spaces, where naive per-axis
#: clamping used to shrink it silently.
SPACES = {
    "isotropic": np.array([0.0, 0, 0, 100, 100, 100]),
    "slab": np.array([0.0, 0, 0, 100, 100, 1]),
    "needle": np.array([0.0, 0, 0, 1000, 1, 1]),
    "offset_slab": np.array([-50.0, 20, 3, 150, 220, 4]),
}


class TestRandomRangeQueries:
    def test_count_and_shape(self):
        q = random_range_queries(SPACE, 1e-4, 50, seed=0)
        assert q.shape == (50, 6)

    def test_volume_is_fixed(self):
        q = random_range_queries(SPACE, 1e-4, 100, seed=1)
        target = 1e-4 * 285.0**3
        assert np.allclose(mbr_volume(q), target, rtol=1e-9)

    def test_queries_inside_space(self):
        q = random_range_queries(SPACE, 1e-3, 100, seed=2)
        for box in q:
            assert mbr_contains_mbr(SPACE, box)

    def test_aspect_ratio_varies_but_bounded(self):
        q = random_range_queries(SPACE, 1e-4, 200, seed=3, max_aspect=4.0)
        ext = q[:, 3:] - q[:, :3]
        ratio = ext.max(axis=1) / ext.min(axis=1)
        assert ratio.max() > 1.5
        assert ratio.max() <= 16.0 + 1e-9  # (4/0.25)

    def test_deterministic_by_seed(self):
        a = random_range_queries(SPACE, 1e-4, 10, seed=7)
        b = random_range_queries(SPACE, 1e-4, 10, seed=7)
        assert np.array_equal(a, b)

    def test_offset_space(self):
        space = np.array([100.0, 200, 300, 200, 300, 400])
        q = random_range_queries(space, 1e-3, 50, seed=4)
        for box in q:
            assert mbr_contains_mbr(space, box)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_range_queries(SPACE, 0.0, 10)
        with pytest.raises(ValueError):
            random_range_queries(SPACE, 1e-4, 0)
        with pytest.raises(ValueError):
            random_range_queries(SPACE, 1e-4, 10, max_aspect=0.5)
        with pytest.raises(ValueError):
            random_range_queries(np.array([0.0, 0, 0, 0, 1, 1]), 1e-4, 10)


class TestFixedVolumeInvariant:
    """Property-style checks of the fixed-volume workload contract."""

    @pytest.mark.parametrize("space_name", sorted(SPACES))
    @pytest.mark.parametrize("fraction", [1e-6, 1e-3, 0.05, 0.5, 1.0])
    def test_volume_exact_on_every_space_shape(self, space_name, fraction):
        space = SPACES[space_name]
        q = random_range_queries(space, fraction, 100, seed=17)
        span = space[3:] - space[:3]
        target = fraction * float(np.prod(span))
        assert np.allclose(mbr_volume(q), target, rtol=1e-6)

    @pytest.mark.parametrize("space_name", sorted(SPACES))
    @pytest.mark.parametrize("fraction", [1e-3, 0.05, 1.0])
    def test_boxes_inside_space(self, space_name, fraction):
        space = SPACES[space_name]
        q = random_range_queries(space, fraction, 100, seed=18)
        for box in q:
            assert mbr_contains_mbr(space, box)

    def test_slab_regression_volume_within_tolerance(self):
        # The exact anisotropic case from the original bug report: a
        # 100 x 100 x 1 slab at 5% volume used to generate volumes
        # between 20 and 186 instead of 500.
        slab = np.array([0.0, 0, 0, 100, 100, 1])
        q = random_range_queries(slab, 0.05, 200, seed=19)
        assert np.abs(mbr_volume(q) / 500.0 - 1.0).max() < 1e-6

    def test_unclamped_extents_respect_aspect_bounds(self):
        # Tiny fractions never clamp.  Raw aspect factors live in
        # [1/max_aspect, max_aspect]; normalizing their product to one
        # shifts each log factor by at most a third of the range, so
        # per-axis extents stay within edge * max_aspect^(±4/3) and the
        # widest pairwise ratio within max_aspect^2.
        space = SPACES["isotropic"]
        fraction, max_aspect = 1e-5, 4.0
        q = random_range_queries(space, fraction, 200, seed=20, max_aspect=max_aspect)
        edge = (fraction * 100.0**3) ** (1 / 3)
        ext = q[:, 3:] - q[:, :3]
        bound = max_aspect ** (4 / 3)
        assert (ext >= edge / bound - 1e-12).all()
        assert (ext <= edge * bound + 1e-12).all()
        ratio = ext.max(axis=1) / ext.min(axis=1)
        assert ratio.max() <= max_aspect**2 + 1e-9

    def test_clamped_axes_pinned_to_span(self):
        # On the needle space at 50% the long axis must carry the whole
        # spread; the two thin axes are pinned to their span.
        needle = SPACES["needle"]
        q = random_range_queries(needle, 0.5, 50, seed=21)
        ext = q[:, 3:] - q[:, :3]
        assert np.allclose(ext[:, 1], 1.0)
        assert np.allclose(ext[:, 2], 1.0)
        assert np.allclose(ext[:, 0], 500.0)

    def test_full_volume_fills_the_space(self):
        for space in SPACES.values():
            q = random_range_queries(space, 1.0, 5, seed=22)
            span = space[3:] - space[:3]
            assert np.allclose(q[:, 3:] - q[:, :3], span)

    def test_fraction_above_one_rejected(self):
        with pytest.raises(ValueError):
            random_range_queries(SPACE, 1.0000001, 10)
        with pytest.raises(ValueError):
            random_range_queries(SPACES["slab"], 2.0, 10)

    @settings(max_examples=60, deadline=None)
    @given(
        log_span=st.tuples(
            st.floats(-2, 4), st.floats(-2, 4), st.floats(-2, 4)
        ),
        log_fraction=st.floats(-9, 0),
        seed=st.integers(0, 2**31),
    )
    def test_property_volume_and_containment(self, log_span, log_fraction, seed):
        span = np.asarray([10.0**s for s in log_span])
        space = np.concatenate([np.zeros(3), span])
        fraction = 10.0**log_fraction
        q = random_range_queries(space, fraction, 20, seed=seed)
        target = fraction * float(np.prod(span))
        assert np.allclose(mbr_volume(q), target, rtol=1e-6)
        assert (q[:, :3] >= space[:3] - 1e-9 * span).all()
        assert (q[:, 3:] <= space[3:] + 1e-9 * span).all()


class TestRandomPoints:
    def test_points_inside_space(self):
        pts = random_points(SPACE, 100, seed=0)
        assert pts.shape == (100, 3)
        assert (pts >= 0).all() and (pts <= 285).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            random_points(SPACE, 0)


class TestBenchmarkSpecs:
    def test_sn_lss_fraction_ratio_matches_paper(self):
        # LSS volume is 1000x the SN volume in the paper; the scaled
        # defaults preserve that ratio.
        sn = sn_benchmark()
        lss = lss_benchmark()
        assert lss.volume_fraction / sn.volume_fraction == pytest.approx(1000.0)

    def test_default_query_count_is_200(self):
        assert sn_benchmark().query_count == 200
        assert lss_benchmark().query_count == 200

    def test_spec_materializes_queries(self):
        spec = sn_benchmark()
        q = spec.queries(SPACE, seed=5)
        assert q.shape == (200, 6)
        target = spec.volume_fraction * 285.0**3
        assert np.allclose(mbr_volume(q), target, rtol=1e-9)
