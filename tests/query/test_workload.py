"""Tests for query workload generation."""

import numpy as np
import pytest

from repro.geometry import mbr_contains_mbr, mbr_volume
from repro.query import (
    lss_benchmark,
    random_points,
    random_range_queries,
    sn_benchmark,
)

SPACE = np.array([0.0, 0, 0, 285, 285, 285])


class TestRandomRangeQueries:
    def test_count_and_shape(self):
        q = random_range_queries(SPACE, 1e-4, 50, seed=0)
        assert q.shape == (50, 6)

    def test_volume_is_fixed(self):
        q = random_range_queries(SPACE, 1e-4, 100, seed=1)
        target = 1e-4 * 285.0**3
        assert np.allclose(mbr_volume(q), target, rtol=1e-9)

    def test_queries_inside_space(self):
        q = random_range_queries(SPACE, 1e-3, 100, seed=2)
        for box in q:
            assert mbr_contains_mbr(SPACE, box)

    def test_aspect_ratio_varies_but_bounded(self):
        q = random_range_queries(SPACE, 1e-4, 200, seed=3, max_aspect=4.0)
        ext = q[:, 3:] - q[:, :3]
        ratio = ext.max(axis=1) / ext.min(axis=1)
        assert ratio.max() > 1.5
        assert ratio.max() <= 16.0 + 1e-9  # (4/0.25)

    def test_deterministic_by_seed(self):
        a = random_range_queries(SPACE, 1e-4, 10, seed=7)
        b = random_range_queries(SPACE, 1e-4, 10, seed=7)
        assert np.array_equal(a, b)

    def test_offset_space(self):
        space = np.array([100.0, 200, 300, 200, 300, 400])
        q = random_range_queries(space, 1e-3, 50, seed=4)
        for box in q:
            assert mbr_contains_mbr(space, box)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_range_queries(SPACE, 0.0, 10)
        with pytest.raises(ValueError):
            random_range_queries(SPACE, 1e-4, 0)
        with pytest.raises(ValueError):
            random_range_queries(SPACE, 1e-4, 10, max_aspect=0.5)
        with pytest.raises(ValueError):
            random_range_queries(np.array([0.0, 0, 0, 0, 1, 1]), 1e-4, 10)


class TestRandomPoints:
    def test_points_inside_space(self):
        pts = random_points(SPACE, 100, seed=0)
        assert pts.shape == (100, 3)
        assert (pts >= 0).all() and (pts <= 285).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            random_points(SPACE, 0)


class TestBenchmarkSpecs:
    def test_sn_lss_fraction_ratio_matches_paper(self):
        # LSS volume is 1000x the SN volume in the paper; the scaled
        # defaults preserve that ratio.
        sn = sn_benchmark()
        lss = lss_benchmark()
        assert lss.volume_fraction / sn.volume_fraction == pytest.approx(1000.0)

    def test_default_query_count_is_200(self):
        assert sn_benchmark().query_count == 200
        assert lss_benchmark().query_count == 200

    def test_spec_materializes_queries(self):
        spec = sn_benchmark()
        q = spec.queries(SPACE, seed=5)
        assert q.shape == (200, 6)
        target = spec.volume_fraction * 285.0**3
        assert np.allclose(mbr_volume(q), target, rtol=1e-9)
