"""Tests for the QueryEngine protocol and its uniform harness behaviour."""

import numpy as np

from repro.baselines.dls import ConnectivityCrawler, chain_adjacency
from repro.core import FLATIndex, ShardedFLATIndex
from repro.query import CallableEngine, QueryEngine, random_range_queries, run_queries
from repro.rtree import bulkload_rtree
from repro.storage import DECODE_ELEMENT, DECODE_METADATA, PageStore

SPACE = np.array([0.0, 0, 0, 100, 100, 100])


def random_mbrs(n, seed=0, extent=2.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 100, size=(n, 3))
    return np.concatenate([lo, lo + extent], axis=1)


class TestProtocolConformance:
    def test_all_indexes_are_query_engines(self):
        mbrs = random_mbrs(600)
        flat = FLATIndex.build(PageStore(), mbrs)
        rtree = bulkload_rtree(PageStore(), mbrs, "str")
        dls = ConnectivityCrawler(mbrs, chain_adjacency(len(mbrs), 10))
        sharded = ShardedFLATIndex.build(mbrs, 2)
        engines = (flat, rtree, dls, sharded, CallableEngine(flat.range_query_scalar))
        for engine in engines:
            assert isinstance(engine, QueryEngine)
            # The protocol now includes the kNN surface.
            assert callable(engine.knn_query)

    def test_engines_agree_on_results(self):
        mbrs = random_mbrs(1500, seed=1)
        store_f, store_r = PageStore(), PageStore()
        flat = FLATIndex.build(store_f, mbrs)
        rtree = bulkload_rtree(store_r, mbrs, "str")
        queries = random_range_queries(SPACE, 1e-3, 10, seed=2)
        run_f = run_queries(flat, store_f, queries, "flat")
        run_r = run_queries(rtree, store_r, queries, "str")
        assert run_f.per_query_results == run_r.per_query_results

    def test_dls_point_query_is_degenerate_range(self):
        mbrs = random_mbrs(200, seed=3, extent=5.0)
        dls = ConnectivityCrawler(mbrs, chain_adjacency(len(mbrs), 200))
        point = mbrs[17, :3] + 0.1
        assert np.array_equal(
            dls.point_query(point),
            dls.range_query(np.concatenate([point, point])),
        )

    def test_callable_engine_forwards_and_exposes_stats(self):
        mbrs = random_mbrs(800, seed=4)
        store = PageStore()
        flat = FLATIndex.build(store, mbrs)
        engine = CallableEngine(flat.range_query_scalar, flat)
        query = np.array([10.0, 10, 10, 50, 50, 50])
        out = engine.range_query(query)
        assert np.array_equal(out, flat.range_query(query))
        assert engine.last_crawl_stats is flat.last_crawl_stats
        point = mbrs[3, :3] + 0.05
        assert np.array_equal(
            engine.point_query(point), flat.point_query(point)
        )


class TestDecodeAccounting:
    def test_run_queries_reports_decode_counters(self):
        mbrs = random_mbrs(2000, seed=5)
        store = PageStore()
        flat = FLATIndex.build(store, mbrs)
        queries = random_range_queries(SPACE, 1e-3, 8, seed=6)
        run = run_queries(flat, store, queries, "flat")
        assert run.decodes_in(DECODE_METADATA) > 0
        assert run.decodes_in(DECODE_ELEMENT) > 0
        assert run.total_page_decodes == sum(run.decodes_by_kind.values())
        # Batched crawl: at most one decode per physical page read.
        assert run.total_page_decodes <= run.total_page_reads

    def test_rtree_leaf_decodes_counted(self):
        mbrs = random_mbrs(2000, seed=7)
        store = PageStore()
        rtree = bulkload_rtree(store, mbrs, "str")
        queries = random_range_queries(SPACE, 1e-3, 8, seed=8)
        run = run_queries(rtree, store, queries, "str")
        assert run.decodes_in(DECODE_ELEMENT) > 0

    def test_scalar_crawl_decodes_more_than_batched(self):
        mbrs = random_mbrs(3000, seed=9)
        store = PageStore()
        flat = FLATIndex.build(store, mbrs)
        queries = random_range_queries(SPACE, 5e-3, 6, seed=10)
        scalar = run_queries(
            CallableEngine(flat.range_query_scalar, flat), store, queries, "scalar"
        )
        batched = run_queries(flat, store, queries, "batched")
        assert scalar.per_query_results == batched.per_query_results
        assert scalar.reads_by_category == batched.reads_by_category
        assert batched.decodes_in(DECODE_METADATA) < scalar.decodes_in(
            DECODE_METADATA
        )
