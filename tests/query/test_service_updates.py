"""Snapshot-isolated serving: queries keep answering during commits.

``QueryService.apply_updates`` mutates a copy-on-write fork and swaps
it in atomically.  The contract under test: every served query reflects
exactly one committed generation — the full pre-update state or the
full post-update state, never a torn mix — and queries racing a commit
keep completing.
"""

import threading

import numpy as np
import pytest

from repro.core import FLATIndex, ShardedFLATIndex
from repro.geometry.intersect import boxes_intersect_box
from repro.query.service import QueryService
from repro.rtree import bulkload_rtree
from repro.storage import PageStore


def random_mbrs(n, seed=0, span=100.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, span, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, 2.0, size=(n, 3))], axis=1)


def random_queries(count, seed):
    rng = np.random.default_rng(seed)
    corners = rng.uniform(-10, 110, size=(count, 3))
    return np.concatenate(
        [corners, corners + rng.uniform(5.0, 30.0, size=(count, 3))], axis=1
    )


def expected(live, query):
    ids = np.fromiter(sorted(live), dtype=np.int64, count=len(live))
    boxes = np.stack([live[int(i)] for i in ids])
    return ids[boxes_intersect_box(boxes, query)]


@pytest.fixture(params=["flat", "sharded"])
def served_index(request):
    mbrs = random_mbrs(1500, seed=1)
    if request.param == "flat":
        index = FLATIndex.build(PageStore(), mbrs, page_capacity=32)
    else:
        index = ShardedFLATIndex.build(mbrs, shard_count=3, page_capacity=32)
    return index, mbrs


class TestApplyUpdates:
    def test_commit_swaps_results_atomically(self, served_index):
        index, mbrs = served_index
        queries = random_queries(8, seed=2)
        inserts = random_mbrs(200, seed=3, span=120.0)
        deletes = np.arange(0, 400)
        pre = {i: mbrs[i] for i in range(len(mbrs))}
        post = {i: mbrs[i] for i in range(400, len(mbrs))}
        for offset, mbr in enumerate(inserts):
            post[len(mbrs) + offset] = mbr

        with QueryService(index, workers=3) as service:
            before = service.run(queries, "pre")
            assert before.per_query_results == [
                len(expected(pre, q)) for q in queries
            ]
            report = service.apply_updates(inserts=inserts, delete_ids=deletes)
            assert report.version == 1
            assert service.current_version == 1
            assert np.array_equal(
                report.inserted_ids,
                np.arange(len(mbrs), len(mbrs) + len(inserts)),
            )
            assert report.deleted_count == len(deletes)
            assert report.element_count == len(post)
            assert report.update_count == len(inserts) + len(deletes)
            for query in queries:
                assert np.array_equal(
                    service.submit(query).result(), expected(post, query)
                )

    def test_queries_racing_a_commit_see_one_generation(self, served_index):
        index, mbrs = served_index
        queries = random_queries(6, seed=4)
        inserts = random_mbrs(150, seed=5, span=130.0)
        deletes = np.arange(0, 300)
        pre = {i: mbrs[i] for i in range(len(mbrs))}
        post = {i: mbrs[i] for i in range(300, len(mbrs))}
        for offset, mbr in enumerate(inserts):
            post[len(mbrs) + offset] = mbr
        pre_expected = {i: expected(pre, q) for i, q in enumerate(queries)}
        post_expected = {i: expected(post, q) for i, q in enumerate(queries)}

        torn: list = []
        with QueryService(index, workers=4) as service:

            def storm():
                for _round in range(8):
                    futures = [service.submit(q) for q in queries]
                    for i, future in enumerate(futures):
                        got = future.result()
                        if not (
                            np.array_equal(got, pre_expected[i])
                            or np.array_equal(got, post_expected[i])
                        ):
                            torn.append((i, got))

            reader = threading.Thread(target=storm)
            reader.start()
            service.apply_updates(inserts=inserts, delete_ids=deletes)
            reader.join()
            assert not torn
            # After the storm every query sees the committed state.
            for i, query in enumerate(queries):
                assert np.array_equal(
                    service.submit(query).result(), post_expected[i]
                )

    def test_sequential_commits_bump_versions(self, served_index):
        index, _mbrs = served_index
        with QueryService(index, workers=2) as service:
            for round_number in range(1, 4):
                report = service.apply_updates(
                    inserts=random_mbrs(20, seed=round_number)
                )
                assert report.version == round_number
            assert service.current_version == 3

    def test_worker_accounting_survives_many_commits(self, served_index):
        # Clones of superseded generations are retired, but neither the
        # distinct-thread count nor the lifetime I/O totals may drift.
        index, _mbrs = served_index
        queries = random_queries(4, seed=20)
        service = QueryService(index, workers=2)
        try:
            for round_number in range(8):
                service.run(queries, "round")
                service.apply_updates(inserts=random_mbrs(5, seed=round_number))
            service.run(queries, "final")
            assert service.workers_started <= 2
            total = service.aggregate_stats()
            assert total.total_reads > 0
            with service._states_lock:
                # 2 threads x at most _KEPT_VERSIONS live generations.
                assert len(service._worker_states) <= 2 * service._KEPT_VERSIONS
        finally:
            service.close()

    def test_concurrent_updaters_conflict_cleanly(self, served_index):
        index, _mbrs = served_index
        with QueryService(index, workers=2) as service:
            first_forked = threading.Event()
            second_done = threading.Event()
            original_fork = index.fork

            def stalling_fork():
                fork = original_fork()
                first_forked.set()
                assert second_done.wait(timeout=10)
                return fork

            index.fork = stalling_fork
            try:
                errors: list = []

                def slow_updater():
                    try:
                        service.apply_updates(inserts=random_mbrs(5, seed=1))
                    except RuntimeError as exc:
                        errors.append(exc)

                slow = threading.Thread(target=slow_updater)
                slow.start()
                assert first_forked.wait(timeout=10)
                index.fork = original_fork  # the racer forks normally
                service.apply_updates(inserts=random_mbrs(5, seed=2))
                second_done.set()
                slow.join()
                # The slower commit must refuse to overwrite the faster
                # one instead of silently dropping its updates.
                assert len(errors) == 1
                assert "concurrent apply_updates" in str(errors[0])
                assert service.current_version == 1
            finally:
                index.fork = original_fork
                second_done.set()

    def test_engine_without_fork_is_rejected(self):
        tree = bulkload_rtree(PageStore(), random_mbrs(200, seed=6), "str")
        with QueryService(tree, workers=1) as service:
            with pytest.raises(RuntimeError, match="does not support updates"):
                service.apply_updates(inserts=random_mbrs(1, seed=7))

    def test_updates_on_restored_snapshot(self, tmp_path):
        # A read-only mmap-backed snapshot serves updates through the
        # in-RAM overlay fork.
        mbrs = random_mbrs(600, seed=8)
        FLATIndex.build(PageStore(), mbrs, page_capacity=32).snapshot(
            tmp_path / "snap"
        )
        restored = FLATIndex.restore(tmp_path / "snap")
        try:
            queries = random_queries(5, seed=9)
            live = {i: mbrs[i] for i in range(len(mbrs))}
            with QueryService(restored, workers=2) as service:
                service.run(queries, "cold")
                inserts = random_mbrs(50, seed=10, span=140.0)
                report = service.apply_updates(
                    inserts=inserts, delete_ids=np.arange(0, 100)
                )
                for gid, mbr in zip(report.inserted_ids, inserts):
                    live[int(gid)] = mbr
                for gid in range(100):
                    del live[gid]
                for query in queries:
                    assert np.array_equal(
                        service.submit(query).result(), expected(live, query)
                    )
        finally:
            restored.store.close()

    def test_updates_visible_to_knn_and_range(self, served_index):
        index, _mbrs = served_index
        with QueryService(index, workers=2) as service:
            outlier = np.array([[400.0, 400, 400, 401, 401, 401]])
            report = service.apply_updates(inserts=outlier)
            (gid,) = report.inserted_ids
            got = service.submit(
                np.array([399.0, 399, 399, 402, 402, 402])
            ).result()
            assert np.array_equal(got, np.array([gid]))
            knn = service.run_knn(np.array([[400.5, 400.5, 400.5]]), k=1)
            assert knn.query_count == 1
            assert knn.per_query_results == [1]
