"""Tests for the concurrent QueryService."""

import numpy as np
import pytest

from repro.core import FLATIndex
from repro.query import (
    BenchmarkSpec,
    QueryService,
    SCALED_SN_FRACTION,
    run_queries,
)
from repro.storage import PageStore


def build_flat(n=3000, seed=0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 100, size=(n, 3))
    mbrs = np.concatenate([lo, lo + rng.uniform(0.01, 2, size=(n, 3))], axis=1)
    store = PageStore()
    return FLATIndex.build(store, mbrs), store


@pytest.fixture(scope="module")
def served_setup():
    flat, store = build_flat()
    space = np.array([0.0, 0, 0, 102, 102, 102])
    queries = BenchmarkSpec("SN", SCALED_SN_FRACTION, 30).queries(space, seed=1)
    serial = run_queries(flat, store, queries, "serial")
    return flat, store, queries, serial


class TestServedResults:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_results_match_serial_harness(self, served_setup, workers):
        flat, _store, queries, serial = served_setup
        with QueryService(flat, workers=workers) as service:
            report = service.run(queries, "served")
        assert report.per_query_results == serial.per_query_results
        assert report.result_elements == serial.result_elements
        assert report.query_count == serial.query_count

    def test_cold_page_reads_match_serial_harness(self, served_setup):
        # Cold-cache serving reproduces the paper's accounting exactly,
        # no matter how many workers split the batch.
        flat, _store, queries, serial = served_setup
        with QueryService(flat, workers=4) as service:
            report = service.run(queries)
        assert report.reads_by_category == serial.reads_by_category
        assert report.decodes_by_kind == serial.decodes_by_kind

    def test_warm_serving_reads_fewer_pages(self, served_setup):
        flat, _store, queries, serial = served_setup
        with QueryService(flat, workers=1, clear_cache_per_query=False) as service:
            report = service.run(queries)
        assert report.per_query_results == serial.per_query_results
        assert report.total_page_reads < serial.total_page_reads
        assert report.cache_hits > 0

    def test_submit_single_queries(self, served_setup):
        flat, _store, queries, serial = served_setup
        with QueryService(flat, workers=2) as service:
            futures = [service.submit(q) for q in queries[:5]]
            lengths = [len(f.result()) for f in futures]
        assert lengths == serial.per_query_results[:5]


class TestWorkerIsolation:
    def test_main_store_stats_untouched(self, served_setup):
        flat, store, queries, _serial = served_setup
        before = store.stats.snapshot()
        with QueryService(flat, workers=2) as service:
            service.run(queries)
        assert store.stats.diff(before).total_reads == 0

    def test_report_counts_workers_used(self, served_setup):
        flat, _store, queries, _serial = served_setup
        with QueryService(flat, workers=2) as service:
            report = service.run(queries)
            assert 1 <= report.workers_used <= 2
            assert service.workers_started == report.workers_used

    def test_aggregate_stats_accumulate_across_runs(self, served_setup):
        flat, _store, queries, serial = served_setup
        with QueryService(flat, workers=2) as service:
            service.run(queries)
            service.run(queries)
            total = service.aggregate_stats()
        assert total.total_reads == 2 * serial.total_page_reads

    def test_successive_runs_report_only_their_own_io(self, served_setup):
        flat, _store, queries, serial = served_setup
        with QueryService(flat, workers=2) as service:
            first = service.run(queries)
            second = service.run(queries)
        assert first.reads_by_category == serial.reads_by_category
        assert second.reads_by_category == serial.reads_by_category


class TestServiceLifecycle:
    def test_closed_service_rejects_work(self, served_setup):
        flat, _store, queries, _serial = served_setup
        service = QueryService(flat, workers=1)
        service.close()
        with pytest.raises(RuntimeError):
            service.run(queries)
        with pytest.raises(RuntimeError):
            service.submit(queries[0])
        service.close()  # idempotent

    def test_invalid_worker_count(self, served_setup):
        flat, *_ = served_setup
        with pytest.raises(ValueError):
            QueryService(flat, workers=0)

    def test_invalid_query_shape(self, served_setup):
        flat, *_ = served_setup
        with QueryService(flat, workers=1) as service:
            with pytest.raises(ValueError):
                service.run(np.zeros((4, 3)))

    def test_throughput_reported(self, served_setup):
        flat, _store, queries, _serial = served_setup
        with QueryService(flat, workers=2) as service:
            report = service.run(queries)
        assert report.throughput_qps > 0
        assert report.wall_seconds > 0
