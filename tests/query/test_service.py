"""Tests for the concurrent QueryService (monolithic and scatter–gather)."""

import threading

import numpy as np
import pytest

from repro.core import FLATIndex, ShardedFLATIndex
from repro.query import (
    BenchmarkSpec,
    QueryService,
    SCALED_SN_FRACTION,
    run_knn_queries,
    run_queries,
)
from repro.storage import PageStore


def build_flat(n=3000, seed=0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 100, size=(n, 3))
    mbrs = np.concatenate([lo, lo + rng.uniform(0.01, 2, size=(n, 3))], axis=1)
    store = PageStore()
    return FLATIndex.build(store, mbrs), store


@pytest.fixture(scope="module")
def served_setup():
    flat, store = build_flat()
    space = np.array([0.0, 0, 0, 102, 102, 102])
    queries = BenchmarkSpec("SN", SCALED_SN_FRACTION, 30).queries(space, seed=1)
    serial = run_queries(flat, store, queries, "serial")
    return flat, store, queries, serial


class TestServedResults:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_results_match_serial_harness(self, served_setup, workers):
        flat, _store, queries, serial = served_setup
        with QueryService(flat, workers=workers) as service:
            report = service.run(queries, "served")
        assert report.per_query_results == serial.per_query_results
        assert report.result_elements == serial.result_elements
        assert report.query_count == serial.query_count

    def test_cold_page_reads_match_serial_harness(self, served_setup):
        # Cold-cache serving reproduces the paper's accounting exactly,
        # no matter how many workers split the batch.
        flat, _store, queries, serial = served_setup
        with QueryService(flat, workers=4) as service:
            report = service.run(queries)
        assert report.reads_by_category == serial.reads_by_category
        assert report.decodes_by_kind == serial.decodes_by_kind

    def test_warm_serving_reads_fewer_pages(self, served_setup):
        flat, _store, queries, serial = served_setup
        with QueryService(flat, workers=1, clear_cache_per_query=False) as service:
            report = service.run(queries)
        assert report.per_query_results == serial.per_query_results
        assert report.total_page_reads < serial.total_page_reads
        assert report.cache_hits > 0

    def test_submit_single_queries(self, served_setup):
        flat, _store, queries, serial = served_setup
        with QueryService(flat, workers=2) as service:
            futures = [service.submit(q) for q in queries[:5]]
            lengths = [len(f.result()) for f in futures]
        assert lengths == serial.per_query_results[:5]


class TestWorkerIsolation:
    def test_main_store_stats_untouched(self, served_setup):
        flat, store, queries, _serial = served_setup
        before = store.stats.snapshot()
        with QueryService(flat, workers=2) as service:
            service.run(queries)
        assert store.stats.diff(before).total_reads == 0

    def test_report_counts_workers_used(self, served_setup):
        flat, _store, queries, _serial = served_setup
        with QueryService(flat, workers=2) as service:
            report = service.run(queries)
            assert 1 <= report.workers_used <= 2
            assert service.workers_started == report.workers_used

    def test_aggregate_stats_accumulate_across_runs(self, served_setup):
        flat, _store, queries, serial = served_setup
        with QueryService(flat, workers=2) as service:
            service.run(queries)
            service.run(queries)
            total = service.aggregate_stats()
        assert total.total_reads == 2 * serial.total_page_reads

    def test_successive_runs_report_only_their_own_io(self, served_setup):
        flat, _store, queries, serial = served_setup
        with QueryService(flat, workers=2) as service:
            first = service.run(queries)
            second = service.run(queries)
        assert first.reads_by_category == serial.reads_by_category
        assert second.reads_by_category == serial.reads_by_category


@pytest.fixture(scope="module")
def sharded_setup():
    rng = np.random.default_rng(2)
    lo = rng.uniform(0, 100, size=(3000, 3))
    mbrs = np.concatenate([lo, lo + rng.uniform(0.01, 2, size=(3000, 3))], axis=1)
    sharded = ShardedFLATIndex.build(mbrs, 4)
    space = np.array([0.0, 0, 0, 102, 102, 102])
    queries = BenchmarkSpec("SN", SCALED_SN_FRACTION, 24).queries(space, seed=3)
    serial = run_queries(sharded, sharded.store, queries, "serial")
    return sharded, queries, serial


class TestScatterGather:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_results_match_planner_harness(self, sharded_setup, workers):
        sharded, queries, serial = sharded_setup
        with QueryService(sharded, workers=workers) as service:
            report = service.run(queries, "served")
        assert report.per_query_results == serial.per_query_results
        assert report.result_elements == serial.result_elements

    def test_cold_reads_match_planner_harness(self, sharded_setup):
        sharded, queries, serial = sharded_setup
        with QueryService(sharded, workers=4) as service:
            report = service.run(queries)
        assert report.reads_by_category == serial.reads_by_category
        assert report.decodes_by_kind == serial.decodes_by_kind

    def test_one_task_per_touched_shard(self, sharded_setup):
        sharded, queries, serial = sharded_setup
        with QueryService(sharded, workers=2) as service:
            report = service.run(queries)
        assert report.shard_tasks == sum(serial.per_query_shards)
        assert report.shards_pruned == (
            len(queries) * sharded.shard_count - report.shard_tasks
        )
        assert report.shards_pruned > 0

    def test_submit_gathers_shards(self, sharded_setup):
        sharded, queries, _serial = sharded_setup
        with QueryService(sharded, workers=2) as service:
            futures = [service.submit(q) for q in queries[:5]]
            results = [f.result() for f in futures]
        for query, got in zip(queries[:5], results):
            assert np.array_equal(got, sharded.range_query(query))

    def test_source_stores_untouched(self, sharded_setup):
        sharded, queries, _serial = sharded_setup
        before = sharded.store.stats.snapshot()
        with QueryService(sharded, workers=2) as service:
            service.run(queries)
        assert sharded.store.stats.diff(before).total_reads == 0

    def test_served_knn_matches_direct(self, sharded_setup):
        sharded, _queries, _serial = sharded_setup
        rng = np.random.default_rng(7)
        points = rng.uniform(0, 100, size=(9, 3))
        expected = [sharded.knn_query(p, 6) for p in points]
        with QueryService(sharded, workers=3) as service:
            report = service.run_knn(points, 6, "knn")
        assert report.query_count == len(points)
        assert report.per_query_results == [len(ids) for ids in expected]
        knn_serial = run_knn_queries(sharded, sharded.store, points, 6)
        assert report.reads_by_category == knn_serial.reads_by_category
        # The MINDIST walk's pruning is reported, not just the range path's.
        assert report.shard_tasks == sum(knn_serial.per_query_shards)
        assert report.shards_pruned == (
            len(points) * sharded.shard_count - report.shard_tasks
        )
        assert report.shards_pruned > 0

    def test_gather_future_timeout_is_overall(self, sharded_setup):
        sharded, queries, _serial = sharded_setup
        with QueryService(sharded, workers=2) as service:
            future = service.submit(queries[0])
            # Generous overall deadline: must resolve well within it.
            assert isinstance(future.result(timeout=30.0), np.ndarray)
            assert future.done()


class TestServedKnnMonolithic:
    def test_served_knn_matches_harness(self, served_setup):
        flat, store, _queries, _serial = served_setup
        rng = np.random.default_rng(8)
        points = rng.uniform(0, 100, size=(8, 3))
        knn_serial = run_knn_queries(flat, store, points, 5)
        with QueryService(flat, workers=2) as service:
            report = service.run_knn(points, 5)
        assert report.per_query_results == knn_serial.per_query_results
        assert report.reads_by_category == knn_serial.reads_by_category

    def test_run_knn_validation(self, served_setup):
        flat, *_ = served_setup
        with QueryService(flat, workers=1) as service:
            with pytest.raises(ValueError):
                service.run_knn(np.zeros((4, 6)), 5)
            with pytest.raises(ValueError):
                service.run_knn(np.zeros((4, 3)), 0)


class TestServiceLifecycle:
    def test_closed_service_rejects_work(self, served_setup):
        flat, _store, queries, _serial = served_setup
        service = QueryService(flat, workers=1)
        service.close()
        assert service.closed
        with pytest.raises(RuntimeError, match="closed"):
            service.run(queries)
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(queries[0])
        with pytest.raises(RuntimeError, match="closed"):
            service.run_knn(queries[:, :3], 3)
        service.close()  # idempotent

    def test_close_is_idempotent_and_thread_safe(self, served_setup):
        flat, _store, queries, serial = served_setup
        service = QueryService(flat, workers=2)
        report = service.run(queries)
        assert report.per_query_results == serial.per_query_results
        threads = [threading.Thread(target=service.close) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.close()
        assert service.closed

    def test_close_waits_for_inflight_queries(self, served_setup):
        flat, _store, queries, serial = served_setup
        service = QueryService(flat, workers=2)
        futures = [service.submit(q) for q in queries]
        service.close()  # shutdown(wait=True): all futures completed
        assert [len(f.result()) for f in futures] == serial.per_query_results

    def test_invalid_worker_count(self, served_setup):
        flat, *_ = served_setup
        with pytest.raises(ValueError):
            QueryService(flat, workers=0)

    def test_invalid_query_shape(self, served_setup):
        flat, *_ = served_setup
        with QueryService(flat, workers=1) as service:
            with pytest.raises(ValueError):
                service.run(np.zeros((4, 3)))

    def test_throughput_reported(self, served_setup):
        flat, _store, queries, _serial = served_setup
        with QueryService(flat, workers=2) as service:
            report = service.run(queries)
        assert report.throughput_qps > 0
        assert report.wall_seconds > 0
