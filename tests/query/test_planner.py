"""Tests for the scatter–gather QueryPlanner."""

import numpy as np
import pytest

from repro.query import QueryPlan, QueryPlanner

#: A 2x2 grid of shard boxes on the xy-plane (z shared).
GRID = np.array(
    [
        [0.0, 0, 0, 5, 5, 10],
        [5.0, 0, 0, 10, 5, 10],
        [0.0, 5, 0, 5, 10, 10],
        [5.0, 5, 0, 10, 10, 10],
    ]
)


class TestRouting:
    def test_box_selects_only_intersecting_shards(self):
        planner = QueryPlanner(GRID)
        assert planner.shards_for_box(np.array([1.0, 1, 1, 2, 2, 2])).tolist() == [0]
        assert planner.shards_for_box(
            np.array([4.0, 1, 1, 6, 2, 2])
        ).tolist() == [0, 1]
        assert planner.shards_for_box(
            np.array([-5.0, -5, -5, 20, 20, 20])
        ).tolist() == [0, 1, 2, 3]

    def test_disjoint_box_selects_nothing(self):
        planner = QueryPlanner(GRID)
        assert len(planner.shards_for_box(np.array([50.0, 50, 50, 60, 60, 60]))) == 0

    def test_touching_boundary_counts_as_intersecting(self):
        planner = QueryPlanner(GRID)
        # The shared x=5 face belongs to both columns (closed intervals),
        # matching the gap-free crawl semantics.
        assert planner.shards_for_box(
            np.array([5.0, 1, 1, 5.0, 2, 2])
        ).tolist() == [0, 1]

    def test_point_routing(self):
        planner = QueryPlanner(GRID)
        assert planner.shards_for_point(np.array([7.0, 7, 5])).tolist() == [3]
        assert len(planner.shards_for_point(np.array([70.0, 7, 5]))) == 0

    def test_shards_by_distance_orders_by_mindist(self):
        planner = QueryPlanner(GRID)
        order, dists = planner.shards_by_distance(np.array([1.0, 1, 5]))
        assert order[0] == 0 and dists[0] == 0.0
        assert np.all(np.diff(dists) >= 0)
        assert sorted(order.tolist()) == [0, 1, 2, 3]

    def test_distance_ties_break_by_shard_id(self):
        planner = QueryPlanner(GRID)
        # The grid center is distance 0 from every shard.
        order, dists = planner.shards_by_distance(np.array([5.0, 5, 5]))
        assert order.tolist() == [0, 1, 2, 3]
        assert np.allclose(dists, 0.0)


class TestMergeAndPlan:
    def test_merge_sorted_ids(self):
        parts = [np.array([3, 9]), np.empty(0, dtype=np.int64), np.array([1, 7])]
        merged = QueryPlanner.merge_sorted_ids(parts)
        assert merged.tolist() == [1, 3, 7, 9]
        assert merged.dtype == np.int64

    def test_merge_empty(self):
        merged = QueryPlanner.merge_sorted_ids([])
        assert merged.dtype == np.int64 and len(merged) == 0

    def test_plan_pruned_count(self):
        plan = QueryPlan(shard_count=8, shards_selected=[1, 4])
        assert plan.shards_pruned == 6

    def test_empty_planner_rejected(self):
        with pytest.raises(ValueError):
            QueryPlanner(np.empty((0, 6)))
