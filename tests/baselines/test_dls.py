"""Tests reproducing the paper's Sec. II claim about crawling baselines:
connectivity crawls are exact on connected data but *miss results* on
concave data — FLAT's motivating failure mode."""

import numpy as np
import pytest

from repro import FLATIndex, PageStore
from repro.baselines import ConnectivityCrawler, chain_adjacency, mesh_adjacency
from repro.data import deformed_sphere_mesh
from repro.geometry import boxes_intersect_box, triangles_to_mbrs


def chain_mbrs(n_chains, chain_length, spacing=1.0, seed=0):
    """Connected chains of unit boxes laid out as parallel fibers."""
    rng = np.random.default_rng(seed)
    boxes = []
    for c in range(n_chains):
        origin = rng.uniform(0, 10, size=3)
        direction = np.array([1.0, 0.0, 0.0])
        for k in range(chain_length):
            lo = origin + k * spacing * direction
            boxes.append(np.concatenate([lo, lo + 1.0]))
    return np.stack(boxes)


class TestAdjacencyBuilders:
    def test_chain_adjacency_structure(self):
        adj = chain_adjacency(6, chain_length=3)
        assert adj[0] == [1]
        assert adj[1] == [0, 2]
        assert adj[2] == [1]
        assert adj[3] == [4]  # new chain starts

    def test_chain_adjacency_validation(self):
        with pytest.raises(ValueError):
            chain_adjacency(5, 0)

    def test_mesh_adjacency_sphere_is_connected(self):
        tris = deformed_sphere_mesh(300, deformation=0.0, seed=0)
        adj = mesh_adjacency(tris)
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for nb in adj[node]:
                if nb not in seen:
                    seen.add(nb)
                    frontier.append(nb)
        assert len(seen) == len(tris)

    def test_mesh_adjacency_validation(self):
        with pytest.raises(ValueError):
            mesh_adjacency(np.zeros((4, 2, 3)))


class TestCrawlerOnConnectedData:
    def test_exact_on_single_chain(self):
        mbrs = chain_mbrs(1, 30, seed=1)
        crawler = ConnectivityCrawler(mbrs, chain_adjacency(30, 30))
        query = np.array([0.0, 0, 0, 100, 100, 100])
        expected = np.flatnonzero(boxes_intersect_box(mbrs, query))
        assert np.array_equal(crawler.range_query(query), expected)
        assert len(crawler.misses(query)) == 0

    def test_exact_on_connected_mesh(self):
        tris = deformed_sphere_mesh(400, radius=50.0, deformation=0.1, seed=2)
        mbrs = triangles_to_mbrs(tris)
        crawler = ConnectivityCrawler(mbrs, mesh_adjacency(tris))
        # A band around the equator: connected on the surface.
        query = np.array([-60.0, -60.0, -10.0, 60.0, 60.0, 10.0])
        expected = np.flatnonzero(boxes_intersect_box(mbrs, query))
        assert np.array_equal(crawler.range_query(query), expected)

    def test_empty_query(self):
        mbrs = chain_mbrs(1, 10, seed=3)
        crawler = ConnectivityCrawler(mbrs, chain_adjacency(10, 10))
        query = np.array([500.0, 500, 500, 501, 501, 501])
        assert len(crawler.range_query(query)) == 0

    def test_adjacency_length_validated(self):
        with pytest.raises(ValueError):
            ConnectivityCrawler(chain_mbrs(1, 5), [[]] * 4)


class TestConcaveFailure:
    """The paper's claim: concave regions split the result into parts
    the crawl cannot bridge — FLAT must bridge them."""

    def setup_method(self):
        # Two parallel fibers far apart; one query box spanning both.
        # The gap between them is the 'hole' (concave region).
        a = chain_mbrs(1, 20, seed=4)                  # around y ~ [0,10]
        b = chain_mbrs(1, 20, seed=5) + np.array([0, 50, 0, 0, 50, 0])
        self.mbrs = np.concatenate([a, b])
        self.adjacency = chain_adjacency(40, 20)
        self.query = np.array([-100.0, -100, -100, 200, 200, 200])

    def test_crawler_misses_the_disconnected_part(self):
        crawler = ConnectivityCrawler(self.mbrs, self.adjacency)
        found = crawler.range_query(self.query)
        missed = crawler.misses(self.query)
        assert len(found) == 20       # only the seed's fiber
        assert len(missed) == 20      # the other fiber is unreachable

    def test_flat_bridges_the_hole(self):
        flat = FLATIndex.build(PageStore(), self.mbrs)
        assert len(flat.range_query(self.query)) == 40

    def test_crawler_exact_if_started_in_each_component(self):
        # Sanity: the failure is purely a connectivity property, not a
        # bug in the crawl — each component is fully found from within.
        crawler = ConnectivityCrawler(self.mbrs, self.adjacency)
        first = crawler.range_query(self.query, start=0)
        second = crawler.range_query(self.query, start=20)
        union = np.union1d(first, second)
        expected = np.flatnonzero(boxes_intersect_box(self.mbrs, self.query))
        assert np.array_equal(union, expected)
