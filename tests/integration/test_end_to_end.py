"""End-to-end integration tests across the whole stack.

These exercise the realistic paths the experiments rely on: generated
data sets, every index on a shared workload, cold-cache accounting, and
the invariants that make figure comparisons meaningful.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FLATIndex, PageStore, bulkload_rtree
from repro.data import (
    build_microcircuit,
    dataset_mbrs,
    mesh_mbrs,
    uniform_aspect_boxes,
)
from repro.geometry import boxes_intersect_box
from repro.query import (
    lss_benchmark,
    random_range_queries,
    run_queries,
    sn_benchmark,
)

ALL_INDEXES = ("flat", "str", "hilbert", "prtree", "tgs", "rstar")


def build_index(name, store, mbrs, space=None):
    if name == "flat":
        return FLATIndex.build(store, mbrs, space_mbr=space)
    return bulkload_rtree(store, mbrs, name)


class TestCrossIndexAgreement:
    @pytest.fixture(scope="class")
    def circuit(self):
        circuit = build_microcircuit(6_000, side=13.0, seed=21)
        return circuit, circuit.mbrs()

    @pytest.mark.parametrize("name", ALL_INDEXES)
    def test_index_matches_brute_force_on_microcircuit(self, circuit, name):
        circuit_obj, mbrs = circuit
        store = PageStore()
        index = build_index(name, store, mbrs, circuit_obj.space_mbr)
        queries = random_range_queries(circuit_obj.space_mbr, 2e-3, 15, seed=3)
        for q in queries:
            expected = np.flatnonzero(boxes_intersect_box(mbrs, q))
            assert np.array_equal(index.range_query(q), expected), name

    def test_all_indexes_agree_on_mesh_data(self):
        mbrs = mesh_mbrs(4_000, radius=80.0, deformation=0.4, seed=22)
        space = np.concatenate([mbrs[:, :3].min(axis=0), mbrs[:, 3:].max(axis=0)])
        queries = random_range_queries(space, 1e-3, 10, seed=23)
        results = {}
        for name in ("flat", "str", "prtree"):
            index = build_index(name, PageStore(), mbrs, space)
            results[name] = [index.range_query(q).tolist() for q in queries]
        assert results["flat"] == results["str"] == results["prtree"]

    def test_all_indexes_agree_on_anisotropic_data(self):
        mbrs = uniform_aspect_boxes(3_000, target_volume=50.0, seed=24)
        space = np.concatenate([mbrs[:, :3].min(axis=0), mbrs[:, 3:].max(axis=0)])
        queries = random_range_queries(space, 5e-4, 10, seed=25)
        flat = build_index("flat", PageStore(), mbrs, space)
        tree = build_index("hilbert", PageStore(), mbrs, space)
        for q in queries:
            assert np.array_equal(flat.range_query(q), tree.range_query(q))


class TestBenchmarkPipeline:
    def test_sn_and_lss_runs_are_consistent(self):
        circuit = build_microcircuit(8_000, side=14.0, seed=26)
        mbrs = circuit.mbrs()
        store = PageStore()
        flat = FLATIndex.build(store, mbrs, space_mbr=circuit.space_mbr)

        sn = run_queries(
            flat, store, sn_benchmark(query_count=25).queries(circuit.space_mbr, 1)
        )
        lss = run_queries(
            flat, store, lss_benchmark(query_count=25).queries(circuit.space_mbr, 1)
        )
        # LSS queries are 1000x the volume: more results and more reads.
        assert lss.result_elements > sn.result_elements
        assert lss.total_page_reads > sn.total_page_reads
        # Accounting identities.
        for run in (sn, lss):
            assert run.total_page_reads == sum(run.per_query_reads)
            assert run.result_elements == sum(run.per_query_results)
            assert run.hierarchy_reads + run.payload_reads == run.total_page_reads

    def test_registry_dataset_round_trip(self):
        mbrs = dataset_mbrs("nuage_stars", scale=0.05, seed=1)
        space = np.concatenate([mbrs[:, :3].min(axis=0), mbrs[:, 3:].max(axis=0)])
        flat = FLATIndex.build(PageStore(), mbrs, space_mbr=space)
        whole = flat.range_query(space)
        assert len(whole) == len(mbrs)


class TestColdVsWarm:
    def test_cache_clearing_changes_io_not_results(self):
        circuit = build_microcircuit(5_000, side=12.0, seed=27)
        store = PageStore()
        flat = FLATIndex.build(store, circuit.mbrs(), space_mbr=circuit.space_mbr)
        queries = random_range_queries(circuit.space_mbr, 2e-3, 12, seed=28)
        cold = run_queries(flat, store, queries, clear_cache_between=True)
        warm = run_queries(flat, store, queries, clear_cache_between=False)
        assert cold.per_query_results == warm.per_query_results
        assert warm.total_page_reads < cold.total_page_reads


@settings(max_examples=10, deadline=None)
@given(st.integers(500, 3000), st.integers(0, 2**31))
def test_flat_equals_str_tree_on_random_microcircuits(n, seed):
    circuit = build_microcircuit(n, side=11.0, seed=seed % 1000)
    mbrs = circuit.mbrs()
    flat = FLATIndex.build(PageStore(), mbrs, space_mbr=circuit.space_mbr)
    tree = bulkload_rtree(PageStore(), mbrs, "str")
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 9, size=3)
    q = np.concatenate([lo, lo + rng.uniform(0.5, 4, size=3)])
    assert np.array_equal(flat.range_query(q), tree.range_query(q))
