"""Tests for the SAS disk timing model."""

import pytest

from repro.storage import DiskModel


class TestDiskModel:
    def test_random_read_latency_dominated_by_seek_and_rotation(self):
        model = DiskModel()
        assert model.random_read_ms == pytest.approx(4.5 + 3.0, abs=0.1)

    def test_io_seconds_scales_linearly(self):
        model = DiskModel()
        assert model.io_seconds(200) == pytest.approx(2 * model.io_seconds(100))

    def test_zero_reads_zero_time(self):
        assert DiskModel().io_seconds(0) == 0.0

    def test_sequential_fraction_reduces_time(self):
        model = DiskModel()
        assert model.io_seconds(100, sequential_fraction=0.9) < model.io_seconds(100)

    def test_io_bound_share_high_for_many_reads(self):
        model = DiskModel()
        # 10k page reads vs 1s of CPU: I/O clearly dominates, like the
        # paper's 97.8-98.8% measurement.
        share = model.io_bound_share(page_reads=10_000, cpu_seconds=1.0)
        assert share > 0.95

    def test_total_seconds_adds_cpu(self):
        model = DiskModel()
        assert model.total_seconds(100, cpu_seconds=1.0) == pytest.approx(
            model.io_seconds(100) + 1.0
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DiskModel(seek_ms=-1)
        with pytest.raises(ValueError):
            DiskModel(transfer_mb_per_s=0)
        with pytest.raises(ValueError):
            DiskModel().io_seconds(-5)
        with pytest.raises(ValueError):
            DiskModel().io_seconds(10, sequential_fraction=1.5)
        with pytest.raises(ValueError):
            DiskModel().total_seconds(10, cpu_seconds=-1)
