"""Incremental snapshot shipping — the cluster's replication primitive.

``pages.dat`` is append-only and generations are copy-on-write, so a
replica that already holds generation *g* needs only the data-file tail
to reach *g+n*.  These tests pin the contract: the shipped directory
restores byte-identical to the source at every generation, repeat ships
move only the changed pages, and diverged lineages are refused rather
than silently merged.
"""

import numpy as np
import pytest

from repro.core import (
    FLATIndex,
    publish_fork_generation,
    restore_index,
    ship_index_generation,
    snapshot_index,
)
from repro.storage import (
    PAGE_SIZE,
    PageStore,
    SnapshotError,
    list_generations,
    ship_store_generation,
)


def random_mbrs(n, seed=0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 100, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, 2.0, size=(n, 3))], axis=1)


def publish_next_generation(directory, seed):
    """Fork the latest generation, mutate it, publish the next one."""
    base = restore_index(directory)
    fork = base.fork()
    fork.insert(random_mbrs(25, seed=seed))
    # Disjoint per-seed id ranges: successive generations never try to
    # re-delete an element an earlier generation already removed.
    fork.delete(np.arange(seed * 10, seed * 10 + 10))
    _dir, generation = publish_fork_generation(fork)
    base.store.close()
    return generation


def assert_stores_byte_identical(source_dir, dest_dir, generation):
    src = restore_index(source_dir, generation=generation)
    dst = restore_index(dest_dir, generation=generation)
    try:
        assert len(dst.store) == len(src.store)
        for page_id in range(len(src.store)):
            assert dst.store.read_silent(page_id) == src.store.read_silent(
                page_id
            )
            assert dst.store.category(page_id) == src.store.category(page_id)
        query = np.array([10.0, 10, 10, 80, 80, 80])
        assert np.array_equal(dst.range_query(query), src.range_query(query))
        assert dst.element_count == src.element_count
    finally:
        src.store.close()
        dst.store.close()


@pytest.fixture()
def source_dir(tmp_path):
    flat = FLATIndex.build(PageStore(), random_mbrs(5000, seed=1))
    directory = tmp_path / "source"
    snapshot_index(flat, directory)
    return directory


class TestIncrementalShipping:
    def test_fresh_replica_gets_one_full_copy(self, source_dir, tmp_path):
        replica = tmp_path / "replica"
        report = ship_index_generation(source_dir, replica)
        assert report.full_copy
        assert not report.incremental
        assert report.generation == 0
        # Default codec is raw: the data tail is exactly page-sized.
        assert report.pages_sent * PAGE_SIZE <= report.bytes_sent
        assert report.index_bytes_sent > 0
        assert report.as_dict()["pages_sent"] == report.pages_sent
        assert_stores_byte_identical(source_dir, replica, 0)

    def test_overlay_generations_ship_only_changed_pages(self, source_dir,
                                                         tmp_path):
        """Several CoW generations; each ship moves only the new tail."""
        replica = tmp_path / "replica"
        full = ship_index_generation(source_dir, replica)
        for seed in (3, 5, 7):
            generation = publish_next_generation(source_dir, seed)
            report = ship_index_generation(source_dir, replica, generation)
            assert report.generation == generation
            assert not report.full_copy
            assert report.incremental
            # The increment is a strict fraction of the store — the
            # committed prefix never travels again.
            assert 0 < report.pages_sent < full.pages_sent
            assert report.bytes_sent < full.bytes_sent
            assert_stores_byte_identical(source_dir, replica, generation)
        assert list_generations(replica) == list_generations(source_dir)

    def test_replica_can_skip_generations(self, source_dir, tmp_path):
        """A lagging replica catches up straight to the latest generation."""
        replica = tmp_path / "replica"
        ship_index_generation(source_dir, replica)
        for seed in (4, 6, 8):
            publish_next_generation(source_dir, seed)
        report = ship_index_generation(source_dir, replica)  # latest = 3
        assert report.generation == 3
        assert not report.full_copy
        assert_stores_byte_identical(source_dir, replica, 3)
        # The skipped intermediate manifests were never shipped.
        assert list_generations(replica) == [0, 3]

    def test_earlier_generations_stay_restorable_on_replica(self, source_dir,
                                                            tmp_path):
        replica = tmp_path / "replica"
        ship_index_generation(source_dir, replica)
        before = restore_index(source_dir, generation=0)
        query = np.array([10.0, 10, 10, 80, 80, 80])
        want = before.range_query(query)
        before.store.close()
        generation = publish_next_generation(source_dir, 9)
        ship_index_generation(source_dir, replica, generation)
        # The append-only discipline holds on the replica too: shipping
        # the new tail never disturbed generation 0's pages.
        old = restore_index(replica, generation=0)
        assert np.array_equal(old.range_query(query), want)
        old.store.close()


class TestShippingRefusals:
    def test_older_or_equal_generation_refused(self, source_dir, tmp_path):
        replica = tmp_path / "replica"
        ship_index_generation(source_dir, replica)
        with pytest.raises(SnapshotError, match="older-or-equal"):
            ship_store_generation(source_dir, replica, 0)

    def test_split_brain_lineage_refused(self, source_dir, tmp_path):
        """Both directories published their own generation 1: refuse.

        Shipping onto a replica whose history diverged would graft the
        source's tail onto foreign pages — the byte-compare of the
        replica's latest manifest against the source's same-generation
        manifest catches it.
        """
        replica = tmp_path / "replica"
        ship_index_generation(source_dir, replica)
        # Rogue writer on the replica: its own, different generation 1.
        base = restore_index(replica)
        rogue = base.fork()
        rogue.insert(random_mbrs(60, seed=23))
        publish_fork_generation(rogue, expected_base=0)
        base.store.close()
        publish_next_generation(source_dir, 11)
        publish_next_generation(source_dir, 13)
        with pytest.raises(SnapshotError, match="diverged lineage"):
            ship_store_generation(source_dir, replica, 2)

    def test_empty_source_refused(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(SnapshotError, match="no page-store manifest"):
            ship_store_generation(tmp_path / "empty", tmp_path / "replica")
