"""Direct coverage for :class:`repro.storage.pagestore.PageStoreGroup`.

The facade was previously exercised only through the sharded serving
stack; these tests pin its contract in isolation: counter merging,
cache/close fan-out, and category arithmetic with overlapping
category sets.
"""

import numpy as np
import pytest

from repro.storage import (
    CATEGORY_METADATA,
    CATEGORY_OBJECT,
    CATEGORY_SEED_INTERNAL,
    FilePageStore,
    PAGE_SIZE,
    PageStore,
    PageStoreError,
    PageStoreGroup,
)
from repro.storage.serial import encode_element_page


def make_page(seed=0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 1, size=(4, 3))
    return encode_element_page(np.concatenate([lo, lo + 1], axis=1))


@pytest.fixture
def group():
    stores = [PageStore(), PageStore(), PageStore()]
    # Store 0: 2 object pages; store 1: 1 object + 2 metadata;
    # store 2: 1 seed-internal page.
    stores[0].allocate(make_page(0), CATEGORY_OBJECT)
    stores[0].allocate(make_page(1), CATEGORY_OBJECT)
    stores[1].allocate(make_page(2), CATEGORY_OBJECT)
    stores[1].allocate(make_page(3), CATEGORY_METADATA)
    stores[1].allocate(make_page(4), CATEGORY_METADATA)
    stores[2].allocate(make_page(5), CATEGORY_SEED_INTERNAL)
    return stores, PageStoreGroup(stores)


class TestConstruction:
    def test_empty_group_rejected(self):
        with pytest.raises(PageStoreError):
            PageStoreGroup([])


class TestStatsAggregation:
    def test_merges_counters_across_members(self, group):
        stores, facade = group
        stores[0].read(0)
        stores[0].read(0)  # buffered: cache hit on member 0
        stores[1].read(1)  # metadata read on member 1
        stores[1].read_elements(0)  # object read + decode on member 1
        merged = facade.stats
        assert merged.reads == {CATEGORY_OBJECT: 2, CATEGORY_METADATA: 1}
        assert merged.cache_hits == 1
        assert merged.total_decodes == 1

    def test_merged_stats_support_snapshot_diff(self, group):
        stores, facade = group
        stores[2].read(0)
        before = facade.stats.snapshot()
        stores[0].read(1)
        delta = facade.stats.diff(before)
        assert delta.reads == {CATEGORY_OBJECT: 1}
        assert delta.total_reads == 1

    def test_pruned_members_contribute_zero(self, group):
        stores, facade = group
        before = facade.stats.snapshot()
        stores[1].read(0)  # only member 1 serves this "query"
        delta = facade.stats.diff(before)
        assert delta.total_reads == 1


class TestFanOut:
    def test_clear_cache_reaches_every_member(self, group):
        stores, facade = group
        for store in stores:
            store.read(0)
            assert len(store.buffer) == 1
        facade.clear_cache()
        for store in stores:
            assert len(store.buffer) == 0

    def test_close_reaches_closable_members(self, tmp_path):
        file_store = FilePageStore.create(tmp_path / "s")
        file_store.allocate(make_page(9), CATEGORY_OBJECT)
        memory_store = PageStore()  # has no close(); must be tolerated
        facade = PageStoreGroup([file_store, memory_store])
        facade.close()
        with pytest.raises(PageStoreError):
            file_store.read(0)


class TestCategoryArithmetic:
    def test_pages_in_single_category(self, group):
        _stores, facade = group
        assert facade.pages_in(CATEGORY_OBJECT) == 3
        assert facade.pages_in(CATEGORY_METADATA) == 2
        assert facade.pages_in(CATEGORY_SEED_INTERNAL) == 1

    def test_pages_in_overlapping_categories(self, group):
        _stores, facade = group
        # Categories spanning several members sum without double count.
        assert facade.pages_in(CATEGORY_OBJECT, CATEGORY_METADATA) == 5
        assert (
            facade.pages_in(
                CATEGORY_OBJECT, CATEGORY_METADATA, CATEGORY_SEED_INTERNAL
            )
            == 6
        )
        # Repeating a category must not double-count pages either.
        assert facade.pages_in(CATEGORY_OBJECT, CATEGORY_OBJECT) == 3

    def test_bytes_in_matches_pages_in(self, group):
        _stores, facade = group
        assert facade.bytes_in(CATEGORY_OBJECT) == 3 * PAGE_SIZE
        assert (
            facade.bytes_in(CATEGORY_OBJECT, CATEGORY_METADATA) == 5 * PAGE_SIZE
        )

    def test_len_and_size_bytes(self, group):
        stores, facade = group
        assert len(facade) == sum(len(s) for s in stores) == 6
        assert facade.size_bytes == 6 * PAGE_SIZE
