"""Tests for the LRU buffer pool, including bounded-capacity behaviour."""

import numpy as np
import pytest

from repro.core import FLATIndex
from repro.storage import BufferPool, PageStore


class TestBufferPoolCounters:
    def test_lookups_counts_hits_and_misses(self):
        pool = BufferPool()
        assert pool.lookups == 0
        pool.get(0)  # miss
        pool.put(0, b"a")
        pool.get(0)  # hit
        pool.get(1)  # miss
        assert pool.hits == 1
        assert pool.misses == 2
        assert pool.lookups == 3
        assert pool.hit_rate == pytest.approx(1 / 3)

    def test_repr_reports_state(self):
        pool = BufferPool(capacity=2)
        pool.put(0, b"a")
        pool.get(0)
        text = repr(pool)
        assert "capacity=2" in text
        assert "size=1" in text
        assert "hits=1" in text
        assert "misses=0" in text
        assert "evictions=0" in text
        assert "unbounded" in repr(BufferPool())

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(capacity=0)


class TestBoundedCapacity:
    def test_lru_eviction_order_and_counter(self):
        pool = BufferPool(capacity=2)
        pool.put(0, b"a")
        pool.put(1, b"b")
        pool.get(0)  # 1 is now least recently used
        pool.put(2, b"c")
        assert pool.evictions == 1
        assert 1 not in pool
        assert 0 in pool and 2 in pool
        assert len(pool) == 2

    def test_reinsert_does_not_evict(self):
        pool = BufferPool(capacity=2)
        pool.put(0, b"a")
        pool.put(1, b"b")
        pool.put(0, b"a2")
        assert pool.evictions == 0
        assert pool.get(0) == b"a2"

    def test_cache_sensitivity_of_query_io(self):
        # The same query workload on the same index: an unbounded pool
        # absorbs every repeated read within a query, a tiny pool must
        # evict (counted) and re-read pages, so physical I/O can only
        # grow and the decoded result must stay identical.
        rng = np.random.default_rng(21)
        lo = rng.uniform(0, 100, size=(2500, 3))
        mbrs = np.concatenate([lo, lo + 1.5], axis=1)
        query = np.array([10.0, 10, 10, 70, 70, 70])

        unbounded_store = PageStore()
        flat = FLATIndex.build(unbounded_store, mbrs)
        unbounded_store.clear_cache()
        before = unbounded_store.stats.snapshot()
        expected = flat.range_query(query)
        unbounded_reads = unbounded_store.stats.diff(before).total_reads

        tiny = BufferPool(capacity=2)
        tiny_store = PageStore(buffer=tiny)
        flat_tiny = FLATIndex.build(tiny_store, mbrs)
        tiny_store.clear_cache()
        before = tiny_store.stats.snapshot()
        out = flat_tiny.range_query(query)
        tiny_reads = tiny_store.stats.diff(before).total_reads

        assert np.array_equal(out, expected)
        assert tiny.evictions > 0
        assert tiny.lookups > 0
        assert len(tiny) <= 2
        assert tiny_reads >= unbounded_reads
