"""Physical page codecs: every blob must decode bit-for-bit.

The codec layer's single contract is ``decode(encode(page)) == page``
for *arbitrary* 4 KiB payloads — the structured delta paths are an
optimization, never a requirement, so pathological coordinates
(``-0.0``, subnormals, infinities, NaN payloads, foreign bytes) must
round-trip through the fallback modes bit-identically.  These tests
drive that contract through every registered codec, plus the stream
primitives (zigzag, vectorized varints), the file-store integration
(format v3, v2 back-compat), and the byte-budgeted buffer pool that
turns smaller blobs into more resident pages.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    BufferPool,
    CATEGORY_METADATA,
    CATEGORY_OBJECT,
    CATEGORY_RTREE_INTERNAL,
    CATEGORY_RTREE_LEAF,
    CATEGORY_SEED_INTERNAL,
    DEFAULT_CODEC,
    FilePageStore,
    MemoryPageBackend,
    NODE_FANOUT,
    OBJECT_PAGE_CAPACITY,
    PAGE_SIZE,
    PageStore,
    SnapshotError,
    available_codecs,
    get_codec,
)
from repro.storage.codec import (
    CodecError,
    Delta64Codec,
    _unzigzag,
    _zigzag,
    decode_varints,
    encode_varints,
)
from repro.storage.filestore import manifest_filename
from repro.storage.serial import (
    encode_element_page,
    encode_metadata_page,
    encode_node_page,
)

ALL_CATEGORIES = (
    CATEGORY_OBJECT,
    CATEGORY_METADATA,
    CATEGORY_SEED_INTERNAL,
    CATEGORY_RTREE_LEAF,
    CATEGORY_RTREE_INTERNAL,
)

#: The dataset generator's coordinate grid (microcircuit.py snaps to
#: 2**-16 µm); grid-exact coordinates are the codec's design target.
GRID = 2.0**-16


def all_codecs():
    return [get_codec(name) for name in available_codecs()]


def grid_mbrs(n, seed=0, spread=100.0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, spread, size=(n, 3))
    hi = lo + rng.uniform(0, 5.0, size=(n, 3))
    mbrs = np.concatenate([lo, hi], axis=1)
    return np.round(mbrs / GRID) * GRID


def assert_roundtrip(payload, category):
    """*payload* survives every registered codec bit-for-bit."""
    assert len(payload) == PAGE_SIZE
    for codec in all_codecs():
        blob = codec.encode(payload, category)
        assert len(blob) <= PAGE_SIZE + 1, codec.name
        assert codec.decode(blob, category) == payload, codec.name


finite_or_weird = st.floats(
    allow_nan=True,
    allow_infinity=True,
    allow_subnormal=True,
    width=64,
)


class TestRegistry:
    def test_raw_and_delta64_registered(self):
        assert "raw" in available_codecs()
        assert "delta64" in available_codecs()
        assert DEFAULT_CODEC == "raw"

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="unknown page codec"):
            get_codec("zstd-paged")

    def test_instance_passthrough(self):
        codec = Delta64Codec()
        assert get_codec(codec) is codec


class TestStreamPrimitives:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(-(2**63), 2**63 - 1), max_size=200))
    def test_zigzag_roundtrip(self, values):
        signed = np.array(values, dtype=np.int64)
        assert np.array_equal(_unzigzag(_zigzag(signed)), signed)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 2**64 - 1), max_size=200))
    def test_varint_roundtrip(self, values):
        u = np.array(values, dtype=np.uint64)
        stream = encode_varints(u)
        assert np.array_equal(decode_varints(stream, len(values)), u)

    def test_varint_small_values_one_byte(self):
        assert len(encode_varints(np.arange(128, dtype=np.uint64))) == 128

    def test_varint_wrong_count_rejected(self):
        stream = encode_varints(np.array([1, 2, 3], dtype=np.uint64))
        with pytest.raises(CodecError):
            decode_varints(stream, 2)
        with pytest.raises(CodecError):
            decode_varints(stream + b"\x01", 3)
        with pytest.raises(CodecError):
            decode_varints(b"", 1)


class TestRoundTripPathological:
    """Named edge cases, then the Hypothesis sweep below."""

    def test_empty_pages(self):
        assert_roundtrip(
            encode_element_page(np.empty((0, 6))), CATEGORY_OBJECT
        )
        empty_node = encode_node_page(
            np.empty(0, dtype=np.uint64), np.empty((0, 6)), False
        )
        assert_roundtrip(empty_node, CATEGORY_SEED_INTERNAL)
        assert_roundtrip(encode_metadata_page([]), CATEGORY_METADATA)

    def test_max_capacity_element_page(self):
        assert_roundtrip(
            encode_element_page(grid_mbrs(OBJECT_PAGE_CAPACITY)),
            CATEGORY_OBJECT,
        )

    def test_full_fanout_node_page(self):
        page = encode_node_page(
            np.arange(NODE_FANOUT, dtype=np.uint64),
            grid_mbrs(NODE_FANOUT),
            True,
        )
        assert_roundtrip(page, CATEGORY_RTREE_INTERNAL)

    def test_negative_zero(self):
        mbrs = grid_mbrs(10)
        mbrs[3, 2] = -0.0
        assert_roundtrip(encode_element_page(mbrs), CATEGORY_OBJECT)

    def test_subnormals(self):
        mbrs = grid_mbrs(10)
        mbrs[0, 0] = 5e-324  # smallest subnormal
        mbrs[1, 1] = -4.9e-324
        assert_roundtrip(encode_element_page(mbrs), CATEGORY_RTREE_LEAF)

    def test_infinities_and_nan(self):
        mbrs = grid_mbrs(10)
        mbrs[0, 0] = np.inf
        mbrs[1, 1] = -np.inf
        mbrs[2, 2] = np.nan
        assert_roundtrip(encode_element_page(mbrs), CATEGORY_OBJECT)
        page = encode_node_page(np.arange(10, dtype=np.uint64), mbrs, False)
        assert_roundtrip(page, CATEGORY_SEED_INTERNAL)

    def test_mixed_subnormal_and_huge(self):
        # No common grid exponent fits 2**53 steps — must fall back.
        mbrs = grid_mbrs(4)
        mbrs[0, 0] = 5e-324
        mbrs[1, 1] = 1e308
        assert_roundtrip(encode_element_page(mbrs), CATEGORY_OBJECT)

    def test_metadata_neighbors_extremes(self):
        records = [
            (grid_mbrs(1)[0], grid_mbrs(1, seed=9)[0], 2**63, []),
            (
                -grid_mbrs(1, seed=2)[0],
                grid_mbrs(1, seed=3)[0],
                0,
                [0, 2**32 - 1, 1, 2**32 - 2],
            ),
        ]
        assert_roundtrip(encode_metadata_page(records), CATEGORY_METADATA)

    def test_arbitrary_bytes_in_every_category(self):
        rng = np.random.default_rng(17)
        noise = rng.integers(0, 256, size=PAGE_SIZE, dtype=np.uint8).tobytes()
        for category in ALL_CATEGORIES:
            assert_roundtrip(noise, category)
        assert_roundtrip(b"\x00" * PAGE_SIZE, CATEGORY_OBJECT)

    def test_wrong_size_payload_rejected(self):
        with pytest.raises(ValueError):
            Delta64Codec().encode(b"abc", CATEGORY_OBJECT)

    def test_corrupt_blob_rejected(self):
        codec = Delta64Codec()
        with pytest.raises(CodecError):
            codec.decode(b"", CATEGORY_OBJECT)
        with pytest.raises(CodecError):
            codec.decode(bytes([250]) + b"x" * 40, CATEGORY_OBJECT)
        blob = codec.encode(encode_element_page(grid_mbrs(20)), CATEGORY_OBJECT)
        with pytest.raises(CodecError):
            codec.decode(blob[:-7], CATEGORY_OBJECT)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.lists(finite_or_weird, min_size=6, max_size=6),
        max_size=OBJECT_PAGE_CAPACITY,
    )
)
def test_element_page_roundtrip_property(rows):
    mbrs = np.array(rows, dtype=np.float64).reshape(len(rows), 6)
    assert_roundtrip(encode_element_page(mbrs), CATEGORY_OBJECT)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.lists(finite_or_weird, min_size=6, max_size=6),
            st.integers(0, 2**64 - 1),
        ),
        max_size=NODE_FANOUT,
    ),
    st.booleans(),
)
def test_node_page_roundtrip_property(entries, leaf):
    ids = np.array([e[1] for e in entries], dtype=np.uint64)
    mbrs = np.array([e[0] for e in entries], dtype=np.float64).reshape(
        len(entries), 6
    )
    page = encode_node_page(ids, mbrs, leaf)
    assert_roundtrip(page, CATEGORY_SEED_INTERNAL)
    assert_roundtrip(page, CATEGORY_RTREE_INTERNAL)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.lists(finite_or_weird, min_size=12, max_size=12),
            st.integers(0, 2**64 - 1),
            st.lists(st.integers(0, 2**32 - 1), max_size=12),
        ),
        max_size=12,
    )
)
def test_metadata_page_roundtrip_property(raw_records):
    records = [
        (
            np.array(coords[:6], dtype=np.float64),
            np.array(coords[6:], dtype=np.float64),
            opid,
            neighbors,
        )
        for coords, opid, neighbors in raw_records
    ]
    assert_roundtrip(encode_metadata_page(records), CATEGORY_METADATA)


@settings(max_examples=40, deadline=None)
@given(st.binary(max_size=256), st.integers(0, PAGE_SIZE - 1))
def test_foreign_bytes_roundtrip_property(prefix, offset):
    page = bytearray(PAGE_SIZE)
    chunk = prefix[: PAGE_SIZE - offset]
    page[offset:offset + len(chunk)] = chunk
    payload = bytes(page)
    for category in (CATEGORY_OBJECT, CATEGORY_METADATA):
        assert_roundtrip(payload, category)


class TestCompressionRatio:
    def test_grid_snapped_element_pages_shrink_2x(self):
        """The headline claim at page granularity: grid-snapped
        coordinate pages compress >= 2x under delta64."""
        codec = get_codec("delta64")
        raw_total = blob_total = 0
        for seed in range(40):
            page = encode_element_page(grid_mbrs(OBJECT_PAGE_CAPACITY, seed))
            raw_total += len(page)
            blob_total += len(codec.encode(page, CATEGORY_OBJECT))
        assert raw_total >= 2.0 * blob_total

    def test_structured_modes_chosen_for_grid_data(self):
        codec = get_codec("delta64")
        page = encode_element_page(grid_mbrs(OBJECT_PAGE_CAPACITY))
        assert codec.encode(page, CATEGORY_OBJECT)[0] == 2  # _MODE_ELEMENT


class TestMemoryBackendCodec:
    def test_compressed_in_memory_pages(self):
        backend = MemoryPageBackend(codec="delta64")
        payload = encode_element_page(grid_mbrs(OBJECT_PAGE_CAPACITY))
        pid = backend.append(payload, CATEGORY_OBJECT)
        assert backend.payload(pid) == payload
        assert backend.stored_bytes(pid) < PAGE_SIZE // 2

    def test_raw_is_identity(self):
        backend = MemoryPageBackend()
        payload = encode_element_page(grid_mbrs(3))
        pid = backend.append(payload, CATEGORY_OBJECT)
        assert backend.stored_bytes(pid) == PAGE_SIZE


class TestFileStoreCodecs:
    def pages(self, n=12):
        out = []
        for i in range(n):
            if i % 3 == 2:
                records = [
                    (
                        grid_mbrs(1, seed=i)[0],
                        grid_mbrs(1, seed=i + 100)[0],
                        i,
                        [i, i + 1, i + 7],
                    )
                ]
                out.append((encode_metadata_page(records), CATEGORY_METADATA))
            else:
                out.append((
                    encode_element_page(grid_mbrs(30, seed=i)),
                    CATEGORY_OBJECT,
                ))
        return out

    @pytest.mark.parametrize("codec", ["raw", "delta64"])
    def test_create_commit_reopen_byte_identical(self, tmp_path, codec):
        pages = self.pages()
        with FilePageStore.create(tmp_path / "s", codec=codec) as store:
            assert store.codec == codec
            for payload, category in pages:
                store.allocate(payload, category)
        with FilePageStore.open(tmp_path / "s") as reopened:
            assert reopened.codec == codec
            for pid, (payload, category) in enumerate(pages):
                assert reopened.read(pid) == payload
                assert reopened.category(pid) == category

    def test_delta64_data_file_smaller(self, tmp_path):
        pages = self.pages(30)
        with FilePageStore.create(tmp_path / "raw", codec="raw") as store:
            for payload, category in pages:
                store.allocate(payload, category)
        with FilePageStore.create(tmp_path / "d64", codec="delta64") as store:
            for payload, category in pages:
                store.allocate(payload, category)
        raw_size = (tmp_path / "raw" / "pages.dat").stat().st_size
        d64_size = (tmp_path / "d64" / "pages.dat").stat().st_size
        assert raw_size == len(pages) * PAGE_SIZE
        assert d64_size * 2 <= raw_size

    def test_manifest_is_v3_with_codec_and_segments(self, tmp_path):
        with FilePageStore.create(tmp_path / "s", codec="delta64") as store:
            for payload, category in self.pages(4):
                store.allocate(payload, category)
        manifest = json.loads(
            (tmp_path / "s" / manifest_filename(0)).read_text()
        )
        assert manifest["format_version"] == 3
        assert manifest["codec"] == "delta64"
        assert len(manifest["segments"]) == manifest["physical_page_count"]
        assert manifest["data_bytes"] == sum(
            length for _off, length in manifest["segments"]
        )

    def test_v2_manifest_opens_as_raw(self, tmp_path):
        """Pre-codec directories (format v2) restore without migration."""
        pages = self.pages(6)
        with FilePageStore.create(tmp_path / "s", codec="raw") as store:
            for payload, category in pages:
                store.allocate(payload, category)
        path = tmp_path / "s" / manifest_filename(0)
        manifest = json.loads(path.read_text())
        manifest["format_version"] = 2
        for key in ("codec", "segments", "data_bytes"):
            del manifest[key]
        path.write_text(json.dumps(manifest) + "\n")
        with FilePageStore.open(tmp_path / "s") as reopened:
            assert reopened.codec == "raw"
            for pid, (payload, category) in enumerate(pages):
                assert reopened.read(pid) == payload

    def test_unknown_codec_in_manifest_rejected(self, tmp_path):
        with FilePageStore.create(tmp_path / "s", codec="delta64") as store:
            store.allocate(encode_element_page(grid_mbrs(2)), CATEGORY_OBJECT)
        path = tmp_path / "s" / manifest_filename(0)
        manifest = json.loads(path.read_text())
        manifest["codec"] = "lzma-paged"
        path.write_text(json.dumps(manifest) + "\n")
        with pytest.raises(SnapshotError, match="lzma-paged"):
            FilePageStore.open(tmp_path / "s")

    def test_delta64_store_pickles_as_spec(self, tmp_path):
        """The codec rides the worker spec: a pickled read-only store
        reattaches under the manifest's codec, bytes identical."""
        import pickle

        pages = self.pages(6)
        with FilePageStore.create(tmp_path / "s", codec="delta64") as store:
            for payload, category in pages:
                store.allocate(payload, category)
        with FilePageStore.open(tmp_path / "s") as reopened:
            clone = pickle.loads(pickle.dumps(reopened))
            try:
                assert clone.codec == "delta64"
                for pid, (payload, _category) in enumerate(pages):
                    assert clone.read(pid) == payload
            finally:
                clone.close()

    def test_stored_bytes_and_drop_os_cache(self, tmp_path):
        with FilePageStore.create(tmp_path / "s", codec="delta64") as store:
            store.allocate(
                encode_element_page(grid_mbrs(OBJECT_PAGE_CAPACITY)),
                CATEGORY_OBJECT,
            )
        with FilePageStore.open(tmp_path / "s") as reopened:
            assert reopened.backend.stored_bytes(0) < PAGE_SIZE
            reopened.backend.drop_os_cache()  # must not raise
            assert reopened.read(0)[:8] != b""


class TestByteBudgetedBuffer:
    def test_byte_budget_evicts_lru(self):
        pool = BufferPool(byte_capacity=10)
        pool.put(1, b"aaaa", cost=4)
        pool.put(2, b"bbbb", cost=4)
        pool.put(3, b"cccc", cost=4)  # evicts 1
        assert pool.get(1) is None
        assert pool.get(2) == b"bbbb"
        assert pool.resident_bytes == 8

    def test_compressed_pages_pack_denser(self):
        """The larger-than-RAM mechanism: the same byte budget holds
        more pages when the backend stores compressed blobs."""
        budget = 10 * PAGE_SIZE
        fat = BufferPool(byte_capacity=budget)
        thin = BufferPool(byte_capacity=budget)
        for pid in range(30):
            fat.put(pid, b"x", cost=PAGE_SIZE)
            thin.put(pid, b"x", cost=PAGE_SIZE // 3)
        assert len(fat) == 10
        assert len(thin) == 30

    def test_store_read_charges_stored_bytes(self, tmp_path):
        with FilePageStore.create(tmp_path / "s", codec="delta64") as store:
            for i in range(8):
                store.allocate(
                    encode_element_page(grid_mbrs(OBJECT_PAGE_CAPACITY, i)),
                    CATEGORY_OBJECT,
                )
        reopened = FilePageStore.open(
            tmp_path / "s", buffer=BufferPool(byte_capacity=4 * PAGE_SIZE)
        )
        try:
            for i in range(8):
                reopened.read(i)
            # Compressed blobs are ~3x smaller, so all 8 stay resident
            # in a 4-page byte budget.
            assert len(reopened.buffer) == 8
            assert reopened.buffer.resident_bytes <= 4 * PAGE_SIZE
        finally:
            reopened.close()
