"""Tests for the PageStore, BufferPool and IOStats."""

import numpy as np
import pytest

from repro.storage import (
    BufferPool,
    CATEGORY_OBJECT,
    CATEGORY_RTREE_INTERNAL,
    CATEGORY_RTREE_LEAF,
    IOStats,
    PAGE_SIZE,
    PageStore,
    PageStoreError,
)
from repro.storage.serial import encode_element_page


def make_page(seed=0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 1, size=(5, 3))
    return encode_element_page(np.concatenate([lo, lo + 1], axis=1))


class TestAllocation:
    def test_sequential_ids(self):
        store = PageStore()
        assert store.allocate(make_page(0), CATEGORY_OBJECT) == 0
        assert store.allocate(make_page(1), CATEGORY_OBJECT) == 1
        assert len(store) == 2

    def test_wrong_size_rejected(self):
        store = PageStore()
        with pytest.raises(PageStoreError):
            store.allocate(b"short", CATEGORY_OBJECT)

    def test_unknown_category_rejected(self):
        store = PageStore()
        with pytest.raises(PageStoreError):
            store.allocate(make_page(), "mystery")

    def test_size_accounting(self):
        store = PageStore()
        store.allocate(make_page(0), CATEGORY_OBJECT)
        store.allocate(make_page(1), CATEGORY_RTREE_LEAF)
        store.allocate(make_page(2), CATEGORY_RTREE_INTERNAL)
        assert store.size_bytes == 3 * PAGE_SIZE
        assert store.pages_in(CATEGORY_OBJECT) == 1
        assert store.bytes_in(CATEGORY_RTREE_LEAF, CATEGORY_RTREE_INTERNAL) == 2 * PAGE_SIZE


class TestReadAccounting:
    def test_read_counts_category(self):
        store = PageStore()
        pid = store.allocate(make_page(), CATEGORY_OBJECT)
        store.read(pid)
        assert store.stats.reads == {CATEGORY_OBJECT: 1}

    def test_repeated_read_served_from_buffer(self):
        store = PageStore()
        pid = store.allocate(make_page(), CATEGORY_OBJECT)
        store.read(pid)
        store.read(pid)
        store.read(pid)
        assert store.stats.total_reads == 1
        assert store.stats.cache_hits == 2

    def test_clear_cache_forces_physical_read(self):
        store = PageStore()
        pid = store.allocate(make_page(), CATEGORY_OBJECT)
        store.read(pid)
        store.clear_cache()
        store.read(pid)
        assert store.stats.total_reads == 2

    def test_no_buffer_counts_every_read(self):
        store = PageStore(buffer=None)
        store.buffer = None
        pid = store.allocate(make_page(), CATEGORY_OBJECT)
        store.read(pid)
        store.read(pid)
        assert store.stats.total_reads == 2

    def test_read_silent_is_free(self):
        store = PageStore()
        pid = store.allocate(make_page(), CATEGORY_OBJECT)
        store.read_silent(pid)
        assert store.stats.total_reads == 0

    def test_out_of_range_read(self):
        store = PageStore()
        with pytest.raises(PageStoreError):
            store.read(0)

    def test_category_lookup(self):
        store = PageStore()
        pid = store.allocate(make_page(), CATEGORY_RTREE_LEAF)
        assert store.category(pid) == CATEGORY_RTREE_LEAF

    def test_read_returns_allocated_payload(self):
        store = PageStore()
        payload = make_page(42)
        pid = store.allocate(payload, CATEGORY_OBJECT)
        assert store.read(pid) == payload


class TestBufferPool:
    def test_lru_eviction_order(self):
        pool = BufferPool(capacity=2)
        pool.put(1, b"a")
        pool.put(2, b"b")
        pool.get(1)  # refresh 1; 2 is now LRU
        pool.put(3, b"c")
        assert 1 in pool
        assert 2 not in pool
        assert 3 in pool
        assert pool.evictions == 1

    def test_unbounded_never_evicts(self):
        pool = BufferPool()
        for i in range(1000):
            pool.put(i, b"x")
        assert len(pool) == 1000
        assert pool.evictions == 0

    def test_hit_rate(self):
        pool = BufferPool()
        pool.put(1, b"a")
        pool.get(1)
        pool.get(2)
        assert pool.hit_rate == pytest.approx(0.5)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(capacity=0)

    def test_put_existing_updates(self):
        pool = BufferPool(capacity=1)
        pool.put(1, b"a")
        pool.put(1, b"b")
        assert pool.get(1) == b"b"
        assert pool.evictions == 0

    def test_clear(self):
        pool = BufferPool()
        pool.put(1, b"a")
        pool.clear()
        assert 1 not in pool


class TestIOStats:
    def test_snapshot_diff(self):
        stats = IOStats()
        stats.record_read(CATEGORY_OBJECT, 5)
        before = stats.snapshot()
        stats.record_read(CATEGORY_OBJECT, 3)
        stats.record_read(CATEGORY_RTREE_LEAF)
        delta = stats.diff(before)
        assert delta.reads == {CATEGORY_OBJECT: 3, CATEGORY_RTREE_LEAF: 1}

    def test_merge(self):
        a = IOStats()
        a.record_read(CATEGORY_OBJECT, 2)
        b = IOStats()
        b.record_read(CATEGORY_OBJECT, 1)
        b.record_read(CATEGORY_RTREE_LEAF, 4)
        b.record_cache_hit()
        a.merge(b)
        assert a.reads == {CATEGORY_OBJECT: 3, CATEGORY_RTREE_LEAF: 4}
        assert a.cache_hits == 1

    def test_bytes_read(self):
        stats = IOStats()
        stats.record_read(CATEGORY_OBJECT, 2)
        assert stats.total_bytes_read == 2 * PAGE_SIZE
        assert stats.bytes_read_in(CATEGORY_OBJECT) == 2 * PAGE_SIZE
        assert stats.bytes_read_in(CATEGORY_RTREE_LEAF) == 0

    def test_reads_in_multiple_categories(self):
        stats = IOStats()
        stats.record_read(CATEGORY_OBJECT, 2)
        stats.record_read(CATEGORY_RTREE_LEAF, 3)
        assert stats.reads_in(CATEGORY_OBJECT, CATEGORY_RTREE_LEAF) == 5

    def test_reset(self):
        stats = IOStats()
        stats.record_read(CATEGORY_OBJECT)
        stats.record_cache_hit()
        stats.reset()
        assert stats.total_reads == 0
        assert stats.cache_hits == 0

    def test_repr_readable(self):
        stats = IOStats()
        stats.record_read(CATEGORY_OBJECT)
        assert "object" in repr(stats)
