"""Cross-process plumbing of the file store.

Two properties carry process-mode serving:

* a *read-only* mmap-backed backend pickles as its ``(directory,
  generation)`` spec and reattaches by remapping — page payloads never
  cross a pipe, every process shares the OS page cache;
* ``append_overlay_generation`` publishes a fork's changes
  copy-on-write — the data file grows only by the pages that actually
  changed, and every earlier generation stays restorable byte-for-byte.
"""

import pickle

import numpy as np
import pytest

from repro.core import FLATIndex, publish_fork_generation, restore_index, snapshot_index
from repro.storage import (
    PAGE_SIZE,
    FilePageBackend,
    FilePageStore,
    PageStore,
    PageStoreError,
    list_generations,
)


def random_mbrs(n, seed=0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 100, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0.01, 2.0, size=(n, 3))], axis=1)


@pytest.fixture()
def snapshot_dir(tmp_path):
    flat = FLATIndex.build(PageStore(), random_mbrs(1200, seed=3))
    snapshot_index(flat, tmp_path)
    return tmp_path


class TestBackendPickle:
    def test_read_only_backend_round_trips(self, snapshot_dir):
        backend = FilePageBackend.open(snapshot_dir)
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.directory == backend.directory
        assert clone.generation == backend.generation
        assert len(clone) == len(backend)
        for page_id in range(len(backend)):
            assert clone.payload(page_id) == backend.payload(page_id)
            assert clone.category(page_id) == backend.category(page_id)
        clone.close()
        backend.close()

    def test_read_only_store_round_trips(self, snapshot_dir):
        store = FilePageStore.open(snapshot_dir)
        clone = pickle.loads(pickle.dumps(store))
        for page_id in range(len(store)):
            assert clone.read_silent(page_id) == store.read_silent(page_id)
        # The clone's caches and stats start fresh — stat isolation is
        # what lets worker processes report clean per-task deltas.
        assert clone.stats.total_reads == 0
        clone.close()
        store.close()

    def test_restored_index_round_trips(self, snapshot_dir):
        restored = restore_index(snapshot_dir)
        clone = pickle.loads(pickle.dumps(restored))
        query = np.array([20.0, 20, 20, 60, 60, 60])
        assert np.array_equal(clone.range_query(query), restored.range_query(query))
        clone.store.close()
        restored.store.close()

    def test_writable_backend_refuses_pickle(self, tmp_path):
        backend = FilePageBackend.create(tmp_path)
        backend.append(bytes(PAGE_SIZE), "object")
        with pytest.raises(PageStoreError, match="writable"):
            pickle.dumps(backend)
        backend.commit_generation()
        backend.close()


class TestCopyOnWritePublish:
    def test_file_grows_only_by_changed_pages(self, snapshot_dir):
        data_file = snapshot_dir / "pages.dat"
        size_before = data_file.stat().st_size
        restored = restore_index(snapshot_dir)
        page_count = len(restored.store)

        fork = restored.fork()
        fork.insert(random_mbrs(30, seed=5))
        changed = len(fork.store.backend.overrides) + len(
            fork.store.backend.tail_pages()
        )
        directory, generation = publish_fork_generation(fork, expected_base=0)
        assert (directory, generation) == (snapshot_dir, 1)

        grown = data_file.stat().st_size - size_before
        assert grown % PAGE_SIZE == 0
        tail_count = len(fork.store.backend.tail_pages())
        # Strict copy-on-write: at most the dirtied pages were appended
        # (fewer, if a rewrite restored identical bytes) — never a full
        # copy of the committed store alongside the new tail.
        assert 0 < grown // PAGE_SIZE <= changed
        assert grown // PAGE_SIZE < page_count + tail_count
        restored.store.close()

    def test_old_generation_stays_restorable(self, snapshot_dir):
        restored = restore_index(snapshot_dir)
        query = np.array([10.0, 10, 10, 70, 70, 70])
        want = restored.range_query(query)
        pre_bytes = [
            restored.store.read_silent(pid) for pid in range(len(restored.store))
        ]

        fork = restored.fork()
        fork.insert(random_mbrs(40, seed=7))
        fork.delete(np.arange(25))
        publish_fork_generation(fork, expected_base=0)
        fork_ids = fork.range_query(query)
        restored.store.close()

        assert list_generations(snapshot_dir)[-1] == 1
        old = restore_index(snapshot_dir, generation=0)
        assert np.array_equal(old.range_query(query), want)
        for pid, payload in enumerate(pre_bytes):
            assert old.store.read_silent(pid) == payload
        old.store.close()

        new = restore_index(snapshot_dir, generation=1)
        assert np.array_equal(new.range_query(query), fork_ids)
        new.store.close()

    def test_publish_requires_overlay_over_file_store(self, snapshot_dir):
        memory_index = FLATIndex.build(PageStore(), random_mbrs(300, seed=9))
        fork = memory_index.fork()
        with pytest.raises(PageStoreError, match="restored snapshot"):
            publish_fork_generation(fork)
