"""Tests for the file-backed page store, generations, and store views."""

import json

import numpy as np
import pytest

from repro.storage import (
    CATEGORY_METADATA,
    CATEGORY_OBJECT,
    FilePageStore,
    OverlayPageBackend,
    PAGE_SIZE,
    PageStore,
    PageStoreError,
    SnapshotError,
    write_store_snapshot,
)
from repro.storage.filestore import (
    CATEGORIES_FILENAME,
    PAGES_FILENAME,
    list_generations,
    manifest_filename,
)
from repro.storage.serial import encode_element_page


def make_page(seed=0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 1, size=(5, 3))
    return encode_element_page(np.concatenate([lo, lo + 1], axis=1))


class TestCreateAndReopen:
    def test_round_trip_payloads_and_categories(self, tmp_path):
        with FilePageStore.create(tmp_path / "store") as store:
            payloads = [make_page(i) for i in range(5)]
            for i, payload in enumerate(payloads):
                category = CATEGORY_OBJECT if i % 2 == 0 else CATEGORY_METADATA
                assert store.allocate(payload, category) == i

        with FilePageStore.open(tmp_path / "store") as reopened:
            assert len(reopened) == 5
            for i, payload in enumerate(payloads):
                assert reopened.read(i) == payload
            assert reopened.category(0) == CATEGORY_OBJECT
            assert reopened.category(1) == CATEGORY_METADATA

    def test_directory_layout(self, tmp_path):
        with FilePageStore.create(tmp_path / "s") as store:
            store.allocate(make_page(), CATEGORY_OBJECT)
        assert (tmp_path / "s" / PAGES_FILENAME).stat().st_size == PAGE_SIZE
        assert (tmp_path / "s" / CATEGORIES_FILENAME).stat().st_size == 1
        assert (tmp_path / "s" / manifest_filename(0)).exists()

    def test_writable_store_reads_back_its_pages(self, tmp_path):
        store = FilePageStore.create(tmp_path / "s")
        payload = make_page(3)
        pid = store.allocate(payload, CATEGORY_OBJECT)
        assert store.read(pid) == payload
        assert store.read_silent(pid) == payload
        store.close()

    def test_read_accounting_matches_memory_store(self, tmp_path):
        with FilePageStore.create(tmp_path / "s") as store:
            store.allocate(make_page(), CATEGORY_OBJECT)
        with FilePageStore.open(tmp_path / "s") as reopened:
            reopened.read(0)
            reopened.read(0)
            assert reopened.stats.reads == {CATEGORY_OBJECT: 1}
            assert reopened.stats.cache_hits == 1
            reopened.clear_cache()
            reopened.read(0)
            assert reopened.stats.reads == {CATEGORY_OBJECT: 2}


class TestReadOnlyAndErrors:
    def test_reopened_store_rejects_allocation(self, tmp_path):
        with FilePageStore.create(tmp_path / "s") as store:
            store.allocate(make_page(), CATEGORY_OBJECT)
        with FilePageStore.open(tmp_path / "s") as reopened:
            with pytest.raises(PageStoreError):
                reopened.allocate(make_page(1), CATEGORY_OBJECT)

    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(PageStoreError):
            FilePageStore.open(tmp_path / "nope")

    def test_out_of_range_read(self, tmp_path):
        with FilePageStore.create(tmp_path / "s") as store:
            store.allocate(make_page(), CATEGORY_OBJECT)
        with FilePageStore.open(tmp_path / "s") as reopened:
            with pytest.raises(PageStoreError):
                reopened.read(1)

    def test_truncated_data_file_rejected(self, tmp_path):
        with FilePageStore.create(tmp_path / "s") as store:
            store.allocate(make_page(), CATEGORY_OBJECT)
        pages = tmp_path / "s" / PAGES_FILENAME
        pages.write_bytes(pages.read_bytes()[: PAGE_SIZE // 2])
        with pytest.raises(PageStoreError):
            FilePageStore.open(tmp_path / "s")

    def test_closed_store_rejects_reads(self, tmp_path):
        with FilePageStore.create(tmp_path / "s") as store:
            store.allocate(make_page(), CATEGORY_OBJECT)
        reopened = FilePageStore.open(tmp_path / "s")
        reopened.close()
        with pytest.raises(PageStoreError):
            reopened.read(0)
        reopened.close()  # idempotent


class TestSnapshotCopy:
    def test_write_store_snapshot_copies_everything(self, tmp_path):
        source = PageStore()
        payloads = [make_page(i) for i in range(7)]
        for i, payload in enumerate(payloads):
            source.allocate(
                payload, CATEGORY_OBJECT if i < 4 else CATEGORY_METADATA
            )
        write_store_snapshot(source, tmp_path / "snap")
        with FilePageStore.open(tmp_path / "snap") as reopened:
            assert len(reopened) == len(source)
            for i, payload in enumerate(payloads):
                assert reopened.read_silent(i) == payload
                assert reopened.category(i) == source.category(i)
            assert reopened.pages_in(CATEGORY_OBJECT) == 4

    def test_snapshot_copy_is_not_charged_as_io(self, tmp_path):
        source = PageStore()
        source.allocate(make_page(), CATEGORY_OBJECT)
        write_store_snapshot(source, tmp_path / "snap")
        assert source.stats.total_reads == 0

    def test_aborted_snapshot_is_not_openable(self, tmp_path):
        # A copy that dies mid-way must not publish a manifest that
        # makes the truncated directory look like a valid store.
        source = PageStore()
        for i in range(3):
            source.allocate(make_page(i), CATEGORY_OBJECT)
        boom = RuntimeError("disk died")
        original = source.read_silent

        def failing_read(page_id):
            if page_id == 2:
                raise boom
            return original(page_id)

        source.read_silent = failing_read
        with pytest.raises(RuntimeError):
            write_store_snapshot(source, tmp_path / "snap")
        with pytest.raises(PageStoreError):
            FilePageStore.open(tmp_path / "snap")

    def test_snapshot_into_own_directory_rejected(self, tmp_path):
        # Re-snapshotting a file-backed store in place would truncate
        # the very pages.dat it is mmapping (SIGBUS + data loss).
        source = PageStore()
        source.allocate(make_page(), CATEGORY_OBJECT)
        write_store_snapshot(source, tmp_path / "snap")
        with FilePageStore.open(tmp_path / "snap") as reopened:
            with pytest.raises(PageStoreError, match="own directory"):
                write_store_snapshot(reopened, tmp_path / "snap")
            # The store is untouched and still readable.
            assert reopened.read_silent(0) == source.read_silent(0)

    def test_exception_inside_create_context_discards(self, tmp_path):
        with pytest.raises(RuntimeError):
            with FilePageStore.create(tmp_path / "s") as store:
                store.allocate(make_page(), CATEGORY_OBJECT)
                raise RuntimeError("abort build")
        with pytest.raises(PageStoreError):
            FilePageStore.open(tmp_path / "s")


class TestRewriteAndGenerations:
    def test_rewrite_is_append_redirect(self, tmp_path):
        old, new = make_page(1), make_page(2)
        with FilePageStore.create(tmp_path / "s") as store:
            store.allocate(old, CATEGORY_OBJECT)
            store.snapshot()
            store.rewrite(0, new)
            store.snapshot()
        # The data file holds both physical pages; the logical page
        # count stays 1.
        assert (tmp_path / "s" / PAGES_FILENAME).stat().st_size == 2 * PAGE_SIZE
        with FilePageStore.open(tmp_path / "s") as reopened:
            assert len(reopened) == 1
            assert reopened.read(0) == new
            assert reopened.category(0) == CATEGORY_OBJECT

    def test_old_generations_stay_restorable(self, tmp_path):
        payloads = [make_page(i) for i in range(3)]
        with FilePageStore.create(tmp_path / "s") as store:
            store.allocate(payloads[0], CATEGORY_OBJECT)
            assert store.snapshot() == 0
            store.rewrite(0, payloads[1])
            store.allocate(payloads[2], CATEGORY_METADATA)
            assert store.snapshot() == 1
        assert list_generations(tmp_path / "s") == [0, 1]
        with FilePageStore.open(tmp_path / "s", generation=0) as gen0:
            assert len(gen0) == 1
            assert gen0.read(0) == payloads[0]
        with FilePageStore.open(tmp_path / "s") as latest:
            assert latest.backend.generation == 1
            assert len(latest) == 2
            assert latest.read(0) == payloads[1]
            assert latest.read(1) == payloads[2]

    def test_close_without_changes_publishes_nothing_new(self, tmp_path):
        with FilePageStore.create(tmp_path / "s") as store:
            store.allocate(make_page(), CATEGORY_OBJECT)
        assert list_generations(tmp_path / "s") == [0]
        # Reopening read-only and closing again adds no generation.
        with FilePageStore.open(tmp_path / "s"):
            pass
        assert list_generations(tmp_path / "s") == [0]

    def test_uncommitted_tail_is_invisible(self, tmp_path):
        with FilePageStore.create(tmp_path / "s") as store:
            store.allocate(make_page(1), CATEGORY_OBJECT)
            store.snapshot()
            store.allocate(make_page(2), CATEGORY_OBJECT)
            store.discard()  # crash before the second snapshot
        with FilePageStore.open(tmp_path / "s") as reopened:
            assert len(reopened) == 1

    def test_create_refuses_published_directory(self, tmp_path):
        with FilePageStore.create(tmp_path / "s") as store:
            store.allocate(make_page(), CATEGORY_OBJECT)
        with pytest.raises(PageStoreError, match="already holds"):
            FilePageStore.create(tmp_path / "s")

    def test_rewrite_rejected_on_read_only_store(self, tmp_path):
        with FilePageStore.create(tmp_path / "s") as store:
            store.allocate(make_page(), CATEGORY_OBJECT)
        with FilePageStore.open(tmp_path / "s") as reopened:
            with pytest.raises(PageStoreError):
                reopened.rewrite(0, make_page(1))

    def test_memory_rewrite_invalidates_caches(self):
        store = PageStore()
        pid = store.allocate(make_page(1), CATEGORY_OBJECT)
        assert store.read(pid) == make_page(1)
        store.rewrite(pid, make_page(2))
        # The buffered stale payload is gone: the next read is physical
        # and returns the new bytes.
        before = store.stats.snapshot()
        assert store.read(pid) == make_page(2)
        assert store.stats.diff(before).total_reads == 1

    def test_rewrite_validates_size_and_bounds(self):
        store = PageStore()
        store.allocate(make_page(), CATEGORY_OBJECT)
        with pytest.raises(PageStoreError):
            store.rewrite(0, b"short")
        with pytest.raises(PageStoreError):
            store.rewrite(5, make_page())


class TestForks:
    def test_memory_fork_is_copy_on_write(self):
        store = PageStore()
        store.allocate(make_page(1), CATEGORY_OBJECT)
        fork = store.fork()
        fork.rewrite(0, make_page(2))
        fork.allocate(make_page(3), CATEGORY_METADATA)
        assert store.read_silent(0) == make_page(1)
        assert len(store) == 1
        assert fork.read_silent(0) == make_page(2)
        assert len(fork) == 2

    def test_read_only_file_store_forks_into_overlay(self, tmp_path):
        with FilePageStore.create(tmp_path / "s") as store:
            store.allocate(make_page(1), CATEGORY_OBJECT)
        base = FilePageStore.open(tmp_path / "s")
        try:
            fork = base.fork()
            assert isinstance(fork.backend, OverlayPageBackend)
            fork.rewrite(0, make_page(2))
            new_pid = fork.allocate(make_page(3), CATEGORY_METADATA)
            assert base.read_silent(0) == make_page(1)
            assert fork.read_silent(0) == make_page(2)
            assert fork.read_silent(new_pid) == make_page(3)
            assert fork.category(new_pid) == CATEGORY_METADATA
            # A second-level fork stays independent of the first.
            fork2 = fork.fork()
            fork2.rewrite(0, make_page(4))
            assert fork.read_silent(0) == make_page(2)
            assert fork2.read_silent(0) == make_page(4)
        finally:
            base.close()

    def test_writable_file_store_cannot_fork(self, tmp_path):
        store = FilePageStore.create(tmp_path / "s")
        try:
            store.allocate(make_page(), CATEGORY_OBJECT)
            with pytest.raises(PageStoreError, match="publish a snapshot"):
                store.fork()
        finally:
            store.close()


class TestSnapshotRobustness:
    """Malformed directories must surface as clear ``SnapshotError``s."""

    def _published(self, tmp_path):
        directory = tmp_path / "s"
        with FilePageStore.create(directory) as store:
            store.allocate(make_page(1), CATEGORY_OBJECT)
            store.allocate(make_page(2), CATEGORY_METADATA)
        return directory

    def test_missing_directory(self, tmp_path):
        with pytest.raises(SnapshotError, match="no page-store manifest"):
            FilePageStore.open(tmp_path / "nope")

    def test_truncated_manifest(self, tmp_path):
        directory = self._published(tmp_path)
        manifest = directory / manifest_filename(0)
        manifest.write_text(manifest.read_text()[: 40])
        with pytest.raises(SnapshotError) as excinfo:
            FilePageStore.open(directory)
        assert "truncated or not valid JSON" in str(excinfo.value)
        assert str(directory) in str(excinfo.value)

    def test_missing_sidecar(self, tmp_path):
        directory = self._published(tmp_path)
        (directory / CATEGORIES_FILENAME).unlink()
        with pytest.raises(SnapshotError, match="missing category sidecar"):
            FilePageStore.open(directory)

    def test_short_sidecar(self, tmp_path):
        directory = self._published(tmp_path)
        (directory / CATEGORIES_FILENAME).write_bytes(b"\x00")
        with pytest.raises(SnapshotError, match="category sidecar has 1"):
            FilePageStore.open(directory)

    def test_version_field_mismatch(self, tmp_path):
        directory = self._published(tmp_path)
        manifest = directory / manifest_filename(0)
        meta = json.loads(manifest.read_text())
        meta["format_version"] = 999
        manifest.write_text(json.dumps(meta))
        with pytest.raises(SnapshotError, match="format version 999"):
            FilePageStore.open(directory)

    def test_missing_manifest_field(self, tmp_path):
        directory = self._published(tmp_path)
        manifest = directory / manifest_filename(0)
        meta = json.loads(manifest.read_text())
        del meta["page_table"]
        manifest.write_text(json.dumps(meta))
        with pytest.raises(SnapshotError, match="missing the 'page_table'"):
            FilePageStore.open(directory)

    def test_unknown_generation_requested(self, tmp_path):
        directory = self._published(tmp_path)
        with pytest.raises(SnapshotError, match="no generation 7"):
            FilePageStore.open(directory, generation=7)

    def test_snapshot_error_is_a_page_store_error(self, tmp_path):
        # Callers guarding with the broader type keep working.
        with pytest.raises(PageStoreError):
            FilePageStore.open(tmp_path / "nope")
        assert issubclass(SnapshotError, PageStoreError)


class TestStoreViews:
    def test_view_shares_pages_but_not_stats(self, tmp_path):
        with FilePageStore.create(tmp_path / "s") as store:
            payload = make_page(5)
            store.allocate(payload, CATEGORY_OBJECT)
        base = FilePageStore.open(tmp_path / "s")
        try:
            view_a = base.view()
            view_b = base.view()
            assert view_a.read(0) == payload
            assert view_a.read(0) == payload  # buffered in view_a only
            assert view_a.stats.reads == {CATEGORY_OBJECT: 1}
            assert view_a.stats.cache_hits == 1
            assert view_b.stats.total_reads == 0
            assert view_b.read(0) == payload
            assert view_b.stats.reads == {CATEGORY_OBJECT: 1}
            assert base.stats.total_reads == 0
        finally:
            base.close()

    def test_memory_store_view(self):
        store = PageStore()
        pid = store.allocate(make_page(9), CATEGORY_OBJECT)
        view = store.view()
        assert view.read(pid) == store.read_silent(pid)
        assert view.stats.total_reads == 1
        assert store.stats.total_reads == 0
        assert len(view) == len(store)

    def test_view_sees_later_allocations(self):
        store = PageStore()
        view = store.view()
        pid = store.allocate(make_page(1), CATEGORY_OBJECT)
        assert view.read(pid) == store.read_silent(pid)
