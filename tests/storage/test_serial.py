"""Round-trip and layout tests for page serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    MBR_BYTES,
    NODE_FANOUT,
    OBJECT_PAGE_CAPACITY,
    PAGE_SIZE,
)
from repro.storage.serial import (
    _decode_metadata_page_scalar,
    _decode_node_page_scalar,
    decode_element_page,
    decode_metadata_page,
    decode_node_page,
    encode_element_page,
    encode_metadata_page,
    encode_node_page,
    metadata_record_bytes,
)


def random_mbrs(n, seed=0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(-100, 100, size=(n, 3))
    return np.concatenate([lo, lo + rng.uniform(0, 10, size=(n, 3))], axis=1)


class TestLayoutConstants:
    def test_paper_page_geometry(self):
        assert PAGE_SIZE == 4096
        assert MBR_BYTES == 48
        assert OBJECT_PAGE_CAPACITY == 85

    def test_node_fanout_fits_page(self):
        assert 16 + NODE_FANOUT * 56 <= PAGE_SIZE


class TestElementPage:
    def test_round_trip(self):
        mbrs = random_mbrs(85)
        page = encode_element_page(mbrs)
        assert len(page) == PAGE_SIZE
        assert np.array_equal(decode_element_page(page), mbrs)

    def test_partial_page_round_trip(self):
        mbrs = random_mbrs(3)
        assert np.array_equal(decode_element_page(encode_element_page(mbrs)), mbrs)

    def test_empty_page(self):
        page = encode_element_page(np.empty((0, 6)))
        assert decode_element_page(page).shape == (0, 6)

    def test_overfull_rejected(self):
        with pytest.raises(ValueError):
            encode_element_page(random_mbrs(86))

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            encode_element_page(np.zeros((5, 4)))

    def test_decode_rejects_short_buffer(self):
        with pytest.raises(ValueError):
            decode_element_page(b"\x00" * 100)

    def test_decode_rejects_corrupt_count(self):
        page = bytearray(encode_element_page(random_mbrs(2)))
        page[0] = 0xFF  # count byte far above capacity
        with pytest.raises(ValueError):
            decode_element_page(bytes(page))

    def test_byte_exact_determinism(self):
        mbrs = random_mbrs(10, seed=3)
        assert encode_element_page(mbrs) == encode_element_page(mbrs)


class TestNodePage:
    def test_round_trip_internal(self):
        ids = np.arange(40, dtype=np.uint64)
        mbrs = random_mbrs(40, seed=1)
        ids_out, mbrs_out, leaf = decode_node_page(encode_node_page(ids, mbrs, False))
        assert np.array_equal(ids_out, ids)
        assert np.array_equal(mbrs_out, mbrs)
        assert leaf is False

    def test_round_trip_leaf_flag(self):
        ids = np.array([7], dtype=np.uint64)
        mbrs = random_mbrs(1)
        _, _, leaf = decode_node_page(encode_node_page(ids, mbrs, True))
        assert leaf is True

    def test_full_fanout(self):
        ids = np.arange(NODE_FANOUT, dtype=np.uint64)
        mbrs = random_mbrs(NODE_FANOUT, seed=2)
        page = encode_node_page(ids, mbrs, False)
        ids_out, mbrs_out, _ = decode_node_page(page)
        assert len(ids_out) == NODE_FANOUT
        assert np.array_equal(mbrs_out, mbrs)

    def test_overfull_rejected(self):
        n = NODE_FANOUT + 1
        with pytest.raises(ValueError):
            encode_node_page(np.arange(n, dtype=np.uint64), random_mbrs(n), False)

    def test_mismatched_entries_rejected(self):
        with pytest.raises(ValueError):
            encode_node_page(np.arange(3, dtype=np.uint64), random_mbrs(4), False)


class TestMetadataPage:
    def make_records(self, n, neighbors_each=5, seed=0):
        mbrs = random_mbrs(2 * n, seed=seed)
        return [
            (
                mbrs[2 * i],
                mbrs[2 * i + 1],
                i * 100,
                list(range(i, i + neighbors_each)),
            )
            for i in range(n)
        ]

    def test_round_trip(self):
        records = self.make_records(8)
        decoded = decode_metadata_page(encode_metadata_page(records))
        assert len(decoded) == 8
        for (pm, qm, oid, nbrs), (pm2, qm2, oid2, nbrs2) in zip(records, decoded):
            assert np.array_equal(pm, pm2)
            assert np.array_equal(qm, qm2)
            assert oid == oid2
            assert nbrs == nbrs2

    def test_record_with_no_neighbors(self):
        records = self.make_records(1, neighbors_each=0)
        decoded = decode_metadata_page(encode_metadata_page(records))
        assert decoded[0][3] == []

    def test_record_size_formula(self):
        records = self.make_records(1, neighbors_each=7)
        assert metadata_record_bytes(7) - metadata_record_bytes(0) == 7 * 4
        # formula consistent with the actual encoding growth
        grown = len(encode_metadata_page(records))
        assert grown == PAGE_SIZE  # padded; sizes verified via overflow below
        assert metadata_record_bytes(0) == 48 + 48 + 8 + 4

    def test_overflow_rejected(self):
        # 40 records x ~190 bytes > 4080 available
        records = self.make_records(40, neighbors_each=10)
        with pytest.raises(ValueError):
            encode_metadata_page(records)

    def test_empty_page(self):
        assert decode_metadata_page(encode_metadata_page([])) == []

    def test_corrupt_count_rejected_fast(self):
        """A forged huge record count must error, not walk 2**40 records
        (regression: the vectorized offset walk read neighbor counts via
        byte slices, which silently yield zero past the page end)."""
        page = bytearray(encode_metadata_page(self.make_records(2)))
        page[:8] = (2**40).to_bytes(8, "little")
        with pytest.raises(ValueError, match="corrupt metadata page"):
            decode_metadata_page(bytes(page))


@settings(max_examples=30, deadline=None)
@given(st.integers(0, OBJECT_PAGE_CAPACITY), st.integers(0, 2**31))
def test_element_page_roundtrip_property(n, seed):
    mbrs = random_mbrs(n, seed=seed)
    page = encode_element_page(mbrs)
    assert len(page) == PAGE_SIZE
    assert np.array_equal(decode_element_page(page), mbrs)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 20), min_size=0, max_size=15),
    st.integers(0, 2**31),
)
def test_metadata_page_roundtrip_property(neighbor_counts, seed):
    rng = np.random.default_rng(seed)
    records = []
    for i, nn in enumerate(neighbor_counts):
        lo = rng.uniform(-10, 10, size=3)
        m1 = np.concatenate([lo, lo + 1])
        m2 = np.concatenate([lo - 1, lo + 2])
        records.append((m1, m2, i, [int(x) for x in rng.integers(0, 1000, size=nn)]))
    decoded = decode_metadata_page(encode_metadata_page(records))
    assert len(decoded) == len(records)
    for orig, back in zip(records, decoded):
        assert np.array_equal(orig[0], back[0])
        assert np.array_equal(orig[1], back[1])
        assert orig[2] == back[2]
        assert orig[3] == back[3]


class TestVectorizedDecodersMatchScalar:
    """The vectorized decoders are pinned, value- and type-identical,
    against the original per-record loops (kept as ``_*_scalar``)."""

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, NODE_FANOUT), st.booleans(), st.integers(0, 2**31))
    def test_node_page(self, n, leaf, seed):
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, 2**63, size=n, dtype=np.uint64)
        page = encode_node_page(ids, random_mbrs(n, seed=seed), leaf)
        got_ids, got_mbrs, got_leaf = decode_node_page(page)
        ref_ids, ref_mbrs, ref_leaf = _decode_node_page_scalar(page)
        assert np.array_equal(got_ids, ref_ids)
        assert got_ids.dtype == ref_ids.dtype
        assert np.array_equal(got_mbrs, ref_mbrs, equal_nan=True)
        assert got_mbrs.dtype == ref_mbrs.dtype
        assert got_leaf is ref_leaf

    def test_node_page_pathological_floats(self):
        mbrs = np.array(
            [[-0.0, 5e-324, np.inf, -np.inf, np.nan, 0.0]] * 3
        )
        page = encode_node_page(np.arange(3, dtype=np.uint64), mbrs, False)
        got = decode_node_page(page)
        ref = _decode_node_page_scalar(page)
        assert got[0].tobytes() == ref[0].tobytes()
        assert got[1].tobytes() == ref[1].tobytes()

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 20), min_size=0, max_size=15),
        st.integers(0, 2**31),
    )
    def test_metadata_page(self, neighbor_counts, seed):
        rng = np.random.default_rng(seed)
        records = []
        for i, nn in enumerate(neighbor_counts):
            lo = rng.uniform(-10, 10, size=3)
            records.append((
                np.concatenate([lo, lo + 1]),
                np.concatenate([lo - 1, lo + 2]),
                int(rng.integers(0, 2**63)),
                [int(x) for x in rng.integers(0, 2**32, size=nn)],
            ))
        page = encode_metadata_page(records)
        got = decode_metadata_page(page)
        ref = _decode_metadata_page_scalar(page)
        assert len(got) == len(ref)
        for g, r in zip(got, ref):
            # Bit-exact coords and identical python-int ids/neighbors.
            assert g[0].tobytes() == r[0].tobytes()
            assert g[1].tobytes() == r[1].tobytes()
            assert g[2] == r[2] and type(g[2]) is type(r[2])
            assert g[3] == r[3]
            assert all(type(x) is int for x in g[3])

    def test_metadata_page_pathological_floats(self):
        bad = np.array([-0.0, 5e-324, np.inf, -np.inf, np.nan, 1e308])
        page = encode_metadata_page([(bad, -bad, 7, [0, 2**32 - 1])])
        got = decode_metadata_page(page)
        ref = _decode_metadata_page_scalar(page)
        assert got[0][0].tobytes() == ref[0][0].tobytes()
        assert got[0][1].tobytes() == ref[0][1].tobytes()
        assert got[0][2] == 7 and got[0][3] == [0, 2**32 - 1]
