"""Tests for the decoded-page cache and the store's decoded-read API."""

import numpy as np
import pytest

from repro.storage import (
    CATEGORY_METADATA,
    CATEGORY_OBJECT,
    DECODE_ELEMENT,
    DECODE_METADATA,
    DecodedPageCache,
    PageStore,
)
from repro.storage.serial import encode_element_page, encode_metadata_page


def element_page(store, n=5, seed=0):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 50, size=(n, 3))
    mbrs = np.concatenate([lo, lo + 1.0], axis=1)
    return store.allocate(encode_element_page(mbrs), CATEGORY_OBJECT), mbrs


def metadata_page(store):
    records = [
        (np.arange(6, dtype=float), np.arange(6, dtype=float) + 1, 7, [1, 2]),
        (np.arange(6, dtype=float) * 2, np.arange(6, dtype=float), 9, []),
    ]
    return store.allocate(encode_metadata_page(records), CATEGORY_METADATA)


class TestDecodedPageCache:
    def test_memoizes_decodes(self):
        cache = DecodedPageCache()
        calls = []

        def decoder(payload):
            calls.append(payload)
            return len(payload)

        assert cache.get_or_decode("element", 3, b"abc", decoder) == 3
        assert cache.get_or_decode("element", 3, b"abc", decoder) == 3
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.lookups == 2
        assert cache.hit_rate == pytest.approx(0.5)

    def test_kinds_do_not_collide(self):
        cache = DecodedPageCache()
        cache.get_or_decode("element", 1, b"x", lambda p: "element")
        assert cache.get_or_decode("metadata", 1, b"x", lambda p: "metadata") == (
            "metadata"
        )
        assert len(cache) == 2

    def test_clear_drops_entries_but_keeps_counters(self):
        cache = DecodedPageCache()
        cache.get_or_decode("element", 1, b"x", len)
        cache.clear()
        assert len(cache) == 0
        cache.get_or_decode("element", 1, b"x", len)
        assert cache.misses == 2

    def test_bounded_capacity_evicts_lru(self):
        cache = DecodedPageCache(capacity=2)
        cache.get_or_decode("element", 1, b"a", len)
        cache.get_or_decode("element", 2, b"bb", len)
        cache.get_or_decode("element", 1, b"a", len)  # refresh 1
        cache.get_or_decode("element", 3, b"ccc", len)
        assert cache.evictions == 1
        assert ("element", 2) not in cache
        assert ("element", 1) in cache and ("element", 3) in cache

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            DecodedPageCache(capacity=0)

    def test_repr(self):
        cache = DecodedPageCache(capacity=4)
        cache.get_or_decode("element", 1, b"a", len)
        text = repr(cache)
        assert "capacity=4" in text and "misses=1" in text


class TestStoreDecodedReads:
    def test_read_elements_cached_decodes_once(self):
        store = PageStore()
        page_id, mbrs = element_page(store)
        a = store.read_elements(page_id)
        b = store.read_elements(page_id)
        assert a is b
        assert np.array_equal(a, mbrs)
        assert store.stats.decode_misses == {DECODE_ELEMENT: 1}
        assert store.stats.decode_hits == {DECODE_ELEMENT: 1}

    def test_read_metadata_cached_decodes_once(self):
        store = PageStore()
        page_id = metadata_page(store)
        a = store.read_metadata(page_id)
        b = store.read_metadata(page_id)
        assert a is b
        assert len(a) == 2
        assert store.stats.decodes_in(DECODE_METADATA) == 1

    def test_uncached_reads_always_decode(self):
        store = PageStore()
        page_id = metadata_page(store)
        a = store.read_metadata(page_id, cached=False)
        b = store.read_metadata(page_id, cached=False)
        assert a is not b
        assert store.stats.decodes_in(DECODE_METADATA) == 2
        assert store.stats.total_decode_hits == 0

    def test_clear_cache_invalidates_decoded_pages(self):
        store = PageStore()
        page_id, _mbrs = element_page(store)
        store.read_elements(page_id)
        store.clear_cache()
        assert len(store.decoded) == 0
        store.read_elements(page_id)
        assert store.stats.decodes_in(DECODE_ELEMENT) == 2

    def test_read_many_matches_read(self):
        store = PageStore()
        ids = [element_page(store, seed=s)[0] for s in range(4)]
        payloads = store.read_many(ids)
        assert payloads == [store.read(i) for i in ids]

    def test_read_elements_many_uses_cache(self):
        store = PageStore()
        ids = [element_page(store, seed=s)[0] for s in range(3)]
        first = store.read_elements_many(ids + ids)
        assert store.stats.decodes_in(DECODE_ELEMENT) == 3
        assert store.stats.decode_hits == {DECODE_ELEMENT: 3}
        for a, b in zip(first[:3], first[3:]):
            assert a is b

    def test_decode_counters_survive_snapshot_diff_merge_reset(self):
        store = PageStore()
        page_id, _mbrs = element_page(store)
        before = store.stats.snapshot()
        store.read_elements(page_id)
        store.read_elements(page_id)
        delta = store.stats.diff(before)
        assert delta.decode_misses == {DECODE_ELEMENT: 1}
        assert delta.decode_hits == {DECODE_ELEMENT: 1}

        other = delta.snapshot()
        delta.merge(other)
        assert delta.decodes_in(DECODE_ELEMENT) == 2
        assert "decodes=" in repr(delta)
        delta.reset()
        assert delta.total_decodes == 0 and delta.total_decode_hits == 0
