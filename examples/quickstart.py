#!/usr/bin/env python
"""Quickstart: build a FLAT index and run a range query.

Generates a small synthetic brain microcircuit (cylinders in a tissue
cube), bulkloads FLAT next to an STR R-Tree on simulated 4 K-page
stores, runs the same range query on both, and prints what each index
read from "disk".

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FLATIndex, PageStore, bulkload_rtree
from repro.data import build_microcircuit


def main():
    # 1. A synthetic microcircuit: ~20k cylinders in a 20 µm tissue cube.
    circuit = build_microcircuit(20_000, side=20.0, seed=42)
    mbrs = circuit.mbrs()
    print(f"data set: {len(mbrs)} cylinders from {circuit.n_neurons} neurons")

    # 2. Bulkload FLAT and an STR R-Tree, each on its own page store.
    flat_store = PageStore()
    flat = FLATIndex.build(flat_store, mbrs, space_mbr=circuit.space_mbr)
    report = flat.build_report
    print(
        f"FLAT: {flat.object_page_count} object pages, "
        f"{flat.metadata_page_count} metadata pages, built in "
        f"{report.total_seconds:.2f}s (partitioning {report.partitioning_seconds:.2f}s, "
        f"neighbors {report.finding_neighbors_seconds:.2f}s)"
    )

    rtree_store = PageStore()
    rtree = bulkload_rtree(rtree_store, mbrs, "str")
    print(f"STR R-Tree: {rtree.leaf_count()} leaves, height {rtree.height}")

    # 3. One range query, cold caches, on both indexes.
    query = np.array([8.0, 8.0, 8.0, 12.0, 12.0, 12.0])
    for name, index, store in [("FLAT", flat, flat_store), ("STR", rtree, rtree_store)]:
        store.clear_cache()
        before = store.stats.snapshot()
        hits = index.range_query(query)
        delta = store.stats.diff(before)
        print(
            f"{name}: {len(hits)} elements in {query[:3]}..{query[3:]}, "
            f"{delta.total_reads} page reads {dict(delta.reads)}"
        )

    # 4. The two indexes agree element for element.
    flat_store.clear_cache()
    rtree_store.clear_cache()
    assert np.array_equal(flat.range_query(query), rtree.range_query(query))
    print("results identical across indexes")


if __name__ == "__main__":
    main()
