#!/usr/bin/env python
"""Interleaved updates and queries against a served sharded index.

Builds a sharded FLAT index over a synthetic microcircuit, serves it
through :class:`~repro.query.service.QueryService`, and then alternates
query batches with snapshot-isolated update commits
(``apply_updates``): each commit mutates a copy-on-write fork and swaps
it in atomically, so queries racing a commit still answer from exactly
one generation.  The final answers are re-checked against a brute-force
scan of the tracked element set.

Run:  python examples/update_workload.py
"""

import numpy as np

from repro.core import ShardedFLATIndex
from repro.data import build_microcircuit
from repro.geometry.intersect import boxes_intersect_box
from repro.query import QueryService


def main():
    # 1. Build a sharded index over ~15k cylinders and start serving.
    circuit = build_microcircuit(15_000, side=18.0, seed=21)
    mbrs = circuit.mbrs()
    index = ShardedFLATIndex.build(mbrs, shard_count=4,
                                   space_mbr=circuit.space_mbr)
    live = {i: mbrs[i] for i in range(len(mbrs))}
    print(f"serving {index.element_count} elements over "
          f"{index.shard_count} shards")

    rng = np.random.default_rng(22)
    corners = rng.uniform(circuit.space_mbr[:3], circuit.space_mbr[3:] - 3.0,
                          size=(12, 3))
    queries = np.concatenate([corners, corners + 3.0], axis=1)

    with QueryService(index, workers=4) as service:
        report = service.run(queries, "sharded")
        print(f"steady state: {report.throughput_qps:7.1f} q/s, "
              f"{report.result_elements} result elements "
              f"(version {service.current_version})")

        # 2. Interleave update commits with query batches.
        for round_number in range(3):
            lo = rng.uniform(circuit.space_mbr[:3], circuit.space_mbr[3:],
                             size=(500, 3))
            inserts = np.concatenate([lo, lo + 0.3], axis=1)
            deletable = np.fromiter(live, dtype=np.int64, count=len(live))
            deletes = rng.choice(deletable, size=500, replace=False)

            update = service.apply_updates(inserts=inserts, delete_ids=deletes)
            for gid, mbr in zip(update.inserted_ids, inserts):
                live[int(gid)] = mbr
            for gid in deletes:
                del live[int(gid)]
            print(f"commit {update.version}: +{len(update.inserted_ids)} "
                  f"-{update.deleted_count} elements in "
                  f"{update.wall_seconds * 1000:.0f} ms "
                  f"({update.element_count} live)")

            report = service.run(queries, "sharded")
            print(f"  after commit: {report.throughput_qps:7.1f} q/s, "
                  f"{report.result_elements} result elements")

        # 3. Served answers must be exact on the final generation.
        ids = np.fromiter(sorted(live), dtype=np.int64, count=len(live))
        boxes = np.stack([live[int(i)] for i in ids])
        exact = all(
            np.array_equal(service.submit(q).result(),
                           ids[boxes_intersect_box(boxes, q)])
            for q in queries
        )
        print(f"exact results after {service.current_version} commits: {exact}")


if __name__ == "__main__":
    main()
