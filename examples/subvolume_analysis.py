#!/usr/bin/env python
"""Use case 2 (Sec. III-B): large spatial subvolumes for analysis.

For visualization and tissue statistics, neuroscientists extract big
subvolumes of the model with range queries.  This example cuts a grid
of subvolumes out of a microcircuit with FLAT, computes a simple
tissue-density profile, and shows the I/O breakdown (seed tree vs
metadata vs object pages — the paper's Fig. 18 view).

Run:  python examples/subvolume_analysis.py
"""

import numpy as np

from repro import FLATIndex, PageStore
from repro.data import build_microcircuit
from repro.storage import CATEGORY_METADATA, CATEGORY_OBJECT, CATEGORY_SEED_INTERNAL


def main():
    circuit = build_microcircuit(60_000, side=30.0, seed=3)
    mbrs = circuit.mbrs()
    store = PageStore()
    flat = FLATIndex.build(store, mbrs, space_mbr=circuit.space_mbr)
    print(f"indexed {len(mbrs)} elements on {len(store)} pages")

    # A 3x3x3 grid of subvolumes covering the tissue: the density profile
    # an analyst would compute before visualizing a region.
    side = 30.0
    cells = 3
    step = side / cells
    print("\ntissue density profile (elements per subvolume):")
    for zi in range(cells):
        plane = []
        for yi in range(cells):
            row = []
            for xi in range(cells):
                lo = np.array([xi, yi, zi]) * step
                query = np.concatenate([lo, lo + step])
                row.append(len(flat.range_query(query)))
            plane.append(row)
        print(f"  z-slab {zi}: {plane}")

    # I/O breakdown for one large subvolume on cold caches.
    store.clear_cache()
    before = store.stats.snapshot()
    query = np.array([5.0, 5.0, 5.0, 25.0, 25.0, 25.0])
    hits = flat.range_query(query)
    delta = store.stats.diff(before)
    print(f"\nlarge subvolume {query[:3]}..{query[3:]} -> {len(hits)} elements")
    print(
        "page reads: "
        f"seed tree {delta.reads.get(CATEGORY_SEED_INTERNAL, 0)}, "
        f"metadata {delta.reads.get(CATEGORY_METADATA, 0)}, "
        f"object {delta.reads.get(CATEGORY_OBJECT, 0)}"
    )
    stats = flat.last_crawl_stats
    print(
        f"crawl bookkeeping: peak queue {stats.max_queue_length} records "
        f"({stats.bookkeeping_bytes} bytes, "
        f"{100 * stats.bookkeeping_bytes / (len(hits) * 48):.2f}% of the result)"
    )


if __name__ == "__main__":
    main()
