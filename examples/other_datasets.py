#!/usr/bin/env python
"""FLAT beyond brain models: the paper's Sec. VIII data sets.

Generates scaled stand-ins for the five "other" data sets (Nuage
cosmology snapshots and surface-scan meshes), indexes each with FLAT
and the PR-Tree, and prints the small/large-volume query comparison —
the reproduction of the paper's Figs. 22/23 tables via the library API.

Run:  python examples/other_datasets.py
"""

from repro.analysis import format_table
from repro.data import DATASET_ORDER, dataset_mbrs
from repro.experiments.config import SMALL_CONFIG
from repro.experiments.other_datasets import measure_dataset
from repro.storage import DiskModel


def main():
    disk = DiskModel()
    config = SMALL_CONFIG.with_overrides(dataset_scale=0.25)
    rows = []
    for name in DATASET_ORDER:
        n = len(dataset_mbrs(name, scale=config.dataset_scale))
        print(f"measuring {name} ({n} elements)...")
        obs = measure_dataset(name, config, query_count=25)
        small_speedup = 100 * (
            1
            - obs.flat_small.simulated_seconds(disk)
            / obs.prtree_small.simulated_seconds(disk)
        )
        large_speedup = 100 * (
            1
            - obs.flat_large.simulated_seconds(disk)
            / obs.prtree_large.simulated_seconds(disk)
        )
        rows.append(
            [
                name,
                obs.n_elements,
                obs.flat_size_bytes / 1e6,
                obs.prtree_size_bytes / 1e6,
                small_speedup,
                large_speedup,
            ]
        )

    print()
    print(
        format_table(
            [
                "dataset",
                "elements",
                "flat MB",
                "prtree MB",
                "small-q speedup %",
                "large-q speedup %",
            ],
            rows,
            title="FLAT vs PR-Tree on the Sec. VIII data sets",
        )
    )
    print(
        "Paper: 21-58% speed-up on small-volume queries, 6-44% on large "
        "(dense meshes benefit most)."
    )


if __name__ == "__main__":
    main()
