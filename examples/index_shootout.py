#!/usr/bin/env python
"""Compare every index in the library on one data set.

Bulkloads FLAT and all five R-Tree variants (STR, Hilbert, PR-Tree,
TGS, dynamic R*-Tree) on the same microcircuit and races them on the
SN and LSS micro-benchmarks, printing a page-read table — a miniature
of the paper's Figs. 12/16 extended with the variants the paper only
discusses in related work.

Run:  python examples/index_shootout.py
"""

import time

from repro import FLATIndex, PageStore, bulkload_rtree
from repro.analysis import format_table
from repro.data import build_microcircuit
from repro.query import lss_benchmark, run_queries, sn_benchmark

VARIANTS = ("str", "hilbert", "prtree", "tgs", "rstar")


def main():
    circuit = build_microcircuit(25_000, side=21.0, seed=11)
    mbrs = circuit.mbrs()
    sn = sn_benchmark(query_count=50).queries(circuit.space_mbr, seed=1)
    lss = lss_benchmark(query_count=20).queries(circuit.space_mbr, seed=2)
    print(f"{len(mbrs)} elements; SN x{len(sn)}, LSS x{len(lss)} queries\n")

    rows = []
    for name in ("flat",) + VARIANTS:
        store = PageStore()
        t0 = time.perf_counter()
        if name == "flat":
            index = FLATIndex.build(store, mbrs, space_mbr=circuit.space_mbr)
        else:
            index = bulkload_rtree(store, mbrs, name)
        build_s = time.perf_counter() - t0
        sn_run = run_queries(index, store, sn, name)
        lss_run = run_queries(index, store, lss, name)
        rows.append(
            [
                name,
                build_s,
                store.size_bytes / 1e6,
                sn_run.total_page_reads,
                lss_run.total_page_reads,
                sn_run.pages_per_result,
                lss_run.pages_per_result,
            ]
        )

    print(
        format_table(
            [
                "index",
                "build s",
                "size MB",
                "SN reads",
                "LSS reads",
                "SN reads/result",
                "LSS reads/result",
            ],
            rows,
            title="index shootout (lower reads are better)",
        )
    )


if __name__ == "__main__":
    main()
