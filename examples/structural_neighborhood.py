#!/usr/bin/env python
"""Use case 1 (Sec. III-A): structural neighborhood along a fiber.

Neuroscientists detect where neuron branches touch by walking along a
fiber and repeatedly asking for every element within a few µm — many
tiny range queries in sequence.  This example rebuilds that workload:
it follows one neuron's branch and queries the immediate neighborhood
of each segment on FLAT and on the PR-Tree, then compares the I/O.

Run:  python examples/structural_neighborhood.py
"""

import numpy as np

from repro import FLATIndex, PageStore, bulkload_rtree
from repro.data import build_microcircuit


def neighborhood_box(center: np.ndarray, radius: float) -> np.ndarray:
    """The axis-aligned neighborhood 'all elements within *radius*'."""
    return np.concatenate([center - radius, center + radius])


def main():
    circuit = build_microcircuit(40_000, side=24.0, seed=7)
    mbrs = circuit.mbrs()
    print(f"microcircuit: {len(mbrs)} cylinders, {circuit.n_neurons} neurons")

    flat_store = PageStore()
    flat = FLATIndex.build(flat_store, mbrs, space_mbr=circuit.space_mbr)
    pr_store = PageStore()
    prtree = bulkload_rtree(pr_store, mbrs, "prtree")

    # Walk along the first neuron's first branch: the query centers are
    # the consecutive segment midpoints (this is the "incremental
    # proximity" access pattern of the paper's use case).
    cylinders = circuit.cylinders
    walk = [(cylinders.p0[i] + cylinders.p1[i]) / 2 for i in range(0, 25)]
    radius = 0.6  # µm, "all elements within a distance of ~5µm" scaled

    total = {"FLAT": 0, "PR-Tree": 0}
    touches = 0
    for center in walk:
        query = neighborhood_box(center, radius)
        for name, index, store in [
            ("FLAT", flat, flat_store),
            ("PR-Tree", prtree, pr_store),
        ]:
            store.clear_cache()  # cold caches, as in the paper
            before = store.stats.snapshot()
            hits = index.range_query(query)
            total[name] += store.stats.diff(before).total_reads
            if name == "FLAT":
                # Elements from *other* neurons near this fiber are
                # potential touch (synapse) locations.
                touches += len(hits)

    print(f"walked {len(walk)} segments, {touches} nearby elements found")
    for name, reads in total.items():
        print(f"{name}: {reads} page reads ({reads / len(walk):.1f} per query)")
    ratio = total["PR-Tree"] / max(total["FLAT"], 1)
    print(f"PR-Tree reads {ratio:.2f}x the pages FLAT reads on this walk")


if __name__ == "__main__":
    main()
