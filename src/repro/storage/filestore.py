"""File-backed page storage: one data file, versioned copy-on-write manifests.

The in-memory :class:`~repro.storage.pagestore.PageStore` is perfect
for build-and-measure experiments but every run pays the full bulkload.
This module is the durable half of the storage layer, now with a write
path:

* ``pages.dat`` is strictly **append-only**: every allocation *and
  every rewrite* appends a new physical page.  A logical page id is
  mapped to its current physical slot through a **page-translation
  table**, so rewriting page 7 appends its new payload and repoints the
  table entry — the old physical page is never touched (append-redirect).
* A **snapshot** publishes a numbered manifest generation
  (``manifest-000000.json``, ``manifest-000001.json``, ...) holding the
  translation table of that moment.  Generations are copy-on-write:
  physical pages never change once written, so every older manifest
  keeps describing a fully consistent store and unchanged pages are
  shared byte-for-byte between generations.  The manifest is written to
  a temp file and atomically renamed, so a partial write never
  publishes — a crash mid-snapshot leaves garbage at the tail of
  ``pages.dat`` that no manifest references.
* :meth:`FilePageBackend.open` maps the committed prefix of the data
  file read-only with :mod:`mmap` and serves page reads as slices of
  the mapping; it loads the **latest** generation by default and any
  older one via ``generation=``.

A one-byte-per-logical-page category sidecar (``categories.bin``)
completes the directory; logical pages never change category, so the
sidecar is append-only in content and any generation reads a prefix of
it.  Malformed or incomplete directories surface as
:class:`~repro.storage.pagestore.SnapshotError` naming the directory
and the problem.

Accounting semantics are identical to the memory store: the backend
only supplies bytes; buffer pool, decoded-page cache and per-category
:class:`~repro.storage.stats.IOStats` live in the owning store.
"""

from __future__ import annotations

import json
import mmap
import os
import re
from dataclasses import dataclass
from pathlib import Path

from repro.storage.buffer import BufferPool
from repro.storage.codec import DEFAULT_CODEC, get_codec
from repro.storage.constants import PAGE_SIZE
from repro.storage.decoded_cache import DecodedPageCache
from repro.storage.pagestore import (
    OverlayPageBackend,
    PageStore,
    PageStoreError,
    SnapshotError,
)
from repro.storage.stats import ALL_CATEGORIES

#: Files making up one on-disk page store.
PAGES_FILENAME = "pages.dat"
CATEGORIES_FILENAME = "categories.bin"

#: Bumped on any incompatible change to the directory layout.  Version 2
#: introduced numbered manifest generations and the page-translation
#: table (version-1 directories had a single flat ``manifest.json``).
#: Version 3 introduced page codecs: physical pages are variable-length
#: blobs located by a per-generation ``segments`` offset table, and the
#: manifest records the ``codec`` that produced them.  Version-2
#: directories still open — they are exactly version 3 with the ``raw``
#: codec and fixed ``PAGE_SIZE`` segments.
STORE_FORMAT_VERSION = 3

#: Manifest versions this build reads.
SUPPORTED_STORE_FORMATS = (2, 3)

_CATEGORY_CODE = {name: code for code, name in enumerate(ALL_CATEGORIES)}
_MANIFEST_RE = re.compile(r"manifest-(\d{6})\.json$")


def manifest_filename(generation: int) -> str:
    """The manifest file name of one snapshot generation."""
    if generation < 0:
        raise ValueError(f"generation must be non-negative, got {generation}")
    return f"manifest-{generation:06d}.json"


def list_generations(directory) -> list:
    """All published snapshot generations in *directory*, ascending."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        match = _MANIFEST_RE.fullmatch(entry.name)
        if match:
            found.append(int(match.group(1)))
    return sorted(found)


def latest_generation(directory):
    """The newest published generation in *directory*, or ``None``."""
    generations = list_generations(directory)
    return generations[-1] if generations else None


def _load_manifest(directory: Path, generation: int) -> dict:
    """Read and structurally validate one generation's manifest."""
    path = directory / manifest_filename(generation)
    if not path.exists():
        raise SnapshotError(
            f"snapshot directory {directory} has no generation {generation} "
            f"(missing {path.name})"
        )
    try:
        manifest = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SnapshotError(
            f"snapshot directory {directory}: manifest {path.name} is "
            f"truncated or not valid JSON ({exc})"
        ) from None
    if not isinstance(manifest, dict):
        raise SnapshotError(
            f"snapshot directory {directory}: manifest {path.name} does not "
            "hold a JSON object"
        )
    version = manifest.get("format_version")
    if version not in SUPPORTED_STORE_FORMATS:
        raise SnapshotError(
            f"snapshot directory {directory}: store format version {version!r} "
            f"in {path.name} does not match this build's {STORE_FORMAT_VERSION}"
        )
    if manifest.get("page_size") != PAGE_SIZE:
        raise SnapshotError(
            f"snapshot directory {directory}: store was written with "
            f"{manifest.get('page_size')}-byte pages, this build uses {PAGE_SIZE}"
        )
    required = ["page_count", "physical_page_count", "page_table"]
    if version >= 3:
        required += ["codec", "segments", "data_bytes"]
    for key in required:
        if key not in manifest:
            raise SnapshotError(
                f"snapshot directory {directory}: manifest {path.name} is "
                f"missing the {key!r} field"
            )
    physical = int(manifest["physical_page_count"])
    if version == 2:
        # A v2 store is a v3 store avant la lettre: raw codec, one
        # fixed-size segment per physical page.  Normalizing here lets
        # every consumer speak v3 and old directories open unmigrated.
        manifest = dict(manifest)
        manifest["codec"] = "raw"
        manifest["segments"] = [
            [slot * PAGE_SIZE, PAGE_SIZE] for slot in range(physical)
        ]
        manifest["data_bytes"] = physical * PAGE_SIZE
    else:
        segments = manifest["segments"]
        if len(segments) != physical:
            raise SnapshotError(
                f"snapshot directory {directory}: manifest {path.name} holds "
                f"{len(segments)} segments for {physical} physical pages"
            )
    return manifest


class FilePageBackend:
    """Page payloads in a single append-only data file.

    Two modes:

    * :meth:`create` — appends physical pages to the data file as pages
      are allocated or rewritten (reads go through :func:`os.pread`, so
      build-time read-back works); :meth:`commit_generation` publishes
      the current translation table as a new numbered manifest.
    * :meth:`open` — maps the committed prefix of the data file
      read-only through :mod:`mmap`, for the latest generation or an
      explicitly requested older one.  Page reads are slices of the
      mapping, safely shareable between any number of stores and
      threads; :meth:`append`/:meth:`rewrite` are rejected.
    """

    def __init__(self, directory: Path, writable: bool, categories: list,
                 table: list, segments: list, data_bytes: int, generation,
                 codec=DEFAULT_CODEC):
        self.directory = directory
        self.writable = writable
        #: Latest published generation, or ``None`` before the first commit.
        self.generation = generation
        self._categories = categories
        #: Logical page id -> physical slot (index into ``_segments``).
        self._table = table
        #: Physical slot -> ``(offset, length)`` in ``pages.dat``.
        self._segments = segments
        #: Bytes of ``pages.dat`` written so far (committed or not).
        self._data_bytes = data_bytes
        self._codec = get_codec(codec)
        self._raw_codec = self._codec.name == "raw"
        self._file = None
        self._mmap = None
        self._closed = False
        #: Appends/rewrites not yet visible to ``os.pread``.
        self._unflushed_writes = False
        #: Appends/rewrites since the last published generation.
        self._dirty = False

    # -- constructors --------------------------------------------------

    @classmethod
    def create(cls, directory, codec=DEFAULT_CODEC) -> "FilePageBackend":
        """Start a new writable on-disk store in *directory*.

        *codec* names the physical page codec every page is stored
        under (see :mod:`repro.storage.codec`); it is recorded in every
        manifest the store publishes.  Refuses a directory that already
        holds published generations: ``pages.dat`` would be truncated,
        invalidating every manifest that references its pages.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        existing = latest_generation(directory)
        if existing is not None:
            raise PageStoreError(
                f"{directory} already holds a page store (generation "
                f"{existing}); creating would truncate its pages"
            )
        backend = cls(
            directory,
            writable=True,
            categories=[],
            table=[],
            segments=[],
            data_bytes=0,
            generation=None,
            codec=codec,
        )
        backend._file = open(directory / PAGES_FILENAME, "wb+")
        return backend

    @classmethod
    def open(cls, directory, generation=None) -> "FilePageBackend":
        """Map an on-disk store read-only, latest generation by default.

        The page codec comes from the generation's manifest, so readers
        never need to know how a store was written.
        """
        directory = Path(directory)
        if generation is None:
            generation = latest_generation(directory)
            if generation is None:
                raise SnapshotError(
                    f"no page-store manifest generations in {directory}"
                )
        manifest = _load_manifest(directory, generation)
        page_count = int(manifest["page_count"])
        physical_count = int(manifest["physical_page_count"])
        data_bytes = int(manifest["data_bytes"])
        table = [int(slot) for slot in manifest["page_table"]]
        segments = [
            (int(offset), int(length))
            for offset, length in manifest["segments"]
        ]
        try:
            codec = get_codec(manifest["codec"])
        except ValueError as exc:
            raise SnapshotError(
                f"snapshot directory {directory}: {exc}"
            ) from None
        if len(table) != page_count:
            raise SnapshotError(
                f"snapshot directory {directory}: page table holds "
                f"{len(table)} entries for {page_count} pages"
            )
        if any(not 0 <= slot < physical_count for slot in table):
            raise SnapshotError(
                f"snapshot directory {directory}: page table references a "
                f"physical slot outside the committed {physical_count} pages"
            )
        if any(
            offset < 0 or length < 0 or offset + length > data_bytes
            for offset, length in segments
        ):
            raise SnapshotError(
                f"snapshot directory {directory}: segment table references "
                f"bytes outside the committed {data_bytes}"
            )
        sidecar = directory / CATEGORIES_FILENAME
        if not sidecar.exists():
            raise SnapshotError(
                f"snapshot directory {directory}: missing category sidecar "
                f"{CATEGORIES_FILENAME}"
            )
        codes = sidecar.read_bytes()
        if len(codes) < page_count:
            raise SnapshotError(
                f"snapshot directory {directory}: category sidecar has "
                f"{len(codes)} entries for {page_count} pages"
            )
        try:
            categories = [ALL_CATEGORIES[code] for code in codes[:page_count]]
        except IndexError:
            raise SnapshotError(
                f"snapshot directory {directory}: corrupt category sidecar"
            ) from None
        backend = cls(
            directory,
            writable=False,
            categories=categories,
            table=table,
            segments=segments,
            data_bytes=data_bytes,
            generation=generation,
            codec=codec,
        )
        data_path = directory / PAGES_FILENAME
        if not data_path.exists():
            raise SnapshotError(
                f"snapshot directory {directory}: missing data file "
                f"{PAGES_FILENAME}"
            )
        backend._file = open(data_path, "rb")
        size = os.fstat(backend._file.fileno()).st_size
        if size < data_bytes:
            backend._file.close()
            raise SnapshotError(
                f"snapshot directory {directory}: data file holds {size} "
                f"bytes, generation {generation} needs {data_bytes}"
            )
        if data_bytes:
            # Map exactly the committed prefix; uncommitted tail bytes
            # from a later aborted snapshot stay invisible.
            backend._mmap = mmap.mmap(
                backend._file.fileno(), data_bytes, access=mmap.ACCESS_READ
            )
        return backend

    # -- backend protocol ----------------------------------------------

    def append(self, payload: bytes, category: str) -> int:
        self._check_open()
        if not self.writable:
            raise PageStoreError("store was opened read-only")
        page_id = len(self._categories)
        self._categories.append(category)
        self._table.append(self._write_physical(payload, category))
        return page_id

    def rewrite(self, page_id: int, payload: bytes) -> None:
        """Append-redirect: new physical page, repointed table entry."""
        self._check_open()
        if not self.writable:
            raise PageStoreError("store was opened read-only")
        self._table[page_id] = self._write_physical(
            payload, self._categories[page_id]
        )

    def _write_physical(self, payload: bytes, category: str) -> int:
        blob = payload if self._raw_codec else self._codec.encode(
            payload, category
        )
        self._file.write(blob)
        self._segments.append((self._data_bytes, len(blob)))
        self._data_bytes += len(blob)
        self._unflushed_writes = True
        self._dirty = True
        return len(self._segments) - 1

    def fork(self):
        """Copy-on-write clone of a *read-only* backend (RAM overlay).

        The mmap-backed base keeps serving unchanged pages; appends and
        rewrites on the fork live in the overlay.  Writable backends
        cannot fork — their translation table may still change under
        the overlay — so publish a generation and fork the reopened
        store instead.
        """
        from repro.storage.pagestore import OverlayPageBackend

        self._check_open()
        if self.writable:
            raise PageStoreError(
                "cannot fork a writable file backend; publish a snapshot "
                "generation and fork the reopened (read-only) store"
            )
        return OverlayPageBackend(self)

    def payload(self, page_id: int) -> bytes:
        self._check_open()
        offset, length = self._segments[self._table[page_id]]
        if self._mmap is not None:
            blob = self._mmap[offset:offset + length]
        else:
            if self._unflushed_writes:
                self._file.flush()
                self._unflushed_writes = False
            blob = os.pread(self._file.fileno(), length, offset)
        if self._raw_codec:
            return blob
        return self._codec.decode(blob, self._categories[page_id])

    def stored_bytes(self, page_id: int) -> int:
        """Physical bytes this page occupies on disk (its blob length)."""
        return self._segments[self._table[page_id]][1]

    @property
    def codec(self) -> str:
        """Name of the codec this store's physical pages are encoded with."""
        return self._codec.name

    @property
    def data_bytes(self) -> int:
        """Bytes of ``pages.dat`` written so far (committed or not)."""
        return self._data_bytes

    def drop_os_cache(self) -> None:
        """Best-effort eviction of this store's pages from the OS cache.

        The scale benchmark uses this to measure genuinely cold reads:
        ``posix_fadvise(DONTNEED)`` drops the clean page-cache pages
        backing ``pages.dat`` and ``madvise`` zaps the mapping's
        resident pages.  A no-op where unsupported.
        """
        if self._closed or self._file is None:
            return
        try:
            os.posix_fadvise(
                self._file.fileno(), 0, 0, os.POSIX_FADV_DONTNEED
            )
        except (AttributeError, OSError):
            pass
        if self._mmap is not None:
            try:
                self._mmap.madvise(mmap.MADV_DONTNEED)
            except (AttributeError, ValueError, OSError):
                pass

    def category(self, page_id: int) -> str:
        return self._categories[page_id]

    def iter_categories(self):
        return iter(self._categories)

    def __len__(self) -> int:
        return len(self._categories)

    # -- persistence ---------------------------------------------------

    def commit_generation(self) -> int:
        """Publish the current state as the next snapshot generation.

        Data and sidecar are flushed first; the numbered manifest is
        written to a temp file and atomically renamed, so either the
        new generation exists completely or not at all.  Returns the
        new generation number.
        """
        self._check_open()
        if not self.writable:
            raise PageStoreError("store was opened read-only")
        self._file.flush()
        self._unflushed_writes = False
        # The sidecar is replaced atomically too: a truncating in-place
        # write would corrupt every previously published generation if
        # the process died mid-write (older manifests read a prefix of
        # this file).
        codes = bytes(_CATEGORY_CODE[c] for c in self._categories)
        sidecar = self.directory / CATEGORIES_FILENAME
        sidecar_scratch = self.directory / (CATEGORIES_FILENAME + ".tmp")
        sidecar_scratch.write_bytes(codes)
        os.replace(sidecar_scratch, sidecar)
        generation = 0 if self.generation is None else self.generation + 1
        manifest = {
            "format_version": STORE_FORMAT_VERSION,
            "page_size": PAGE_SIZE,
            "generation": generation,
            "codec": self._codec.name,
            "page_count": len(self._categories),
            "physical_page_count": len(self._segments),
            "data_bytes": self._data_bytes,
            "page_table": list(self._table),
            "segments": [list(segment) for segment in self._segments],
        }
        target = self.directory / manifest_filename(generation)
        scratch = target.parent / (target.name + ".tmp")
        scratch.write_text(json.dumps(manifest) + "\n")
        os.replace(scratch, target)
        self.generation = generation
        self._dirty = False
        return generation

    def flush(self) -> None:
        """Publish a generation if anything changed since the last one."""
        self._check_open()
        if not self.writable:
            return
        if self._dirty or self.generation is None:
            self.commit_generation()

    def close(self) -> None:
        """Flush (if writable) and release the file/mapping."""
        if self._closed:
            return
        if self.writable:
            self.flush()
        self._release()

    def discard(self) -> None:
        """Release the file *without* publishing a new generation.

        Called when writing a store is abandoned mid-way: generations
        are only ever published by :meth:`commit_generation`, so the
        uncommitted tail of ``pages.dat`` stays unreachable instead of
        silently passing :meth:`open`'s consistency checks.
        """
        if not self._closed:
            self._release()

    def _release(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise PageStoreError(f"store in {self.directory} is closed")

    # -- pickling --------------------------------------------------------
    #
    # A read-only backend pickles as (directory, generation) and
    # reattaches by reopening the mmap on unpickle.  The page bytes
    # never travel through the pickle stream: every process maps the
    # same committed prefix of pages.dat, so the OS page cache is
    # shared across process-mode serving workers for free.

    def __getstate__(self) -> dict:
        if self.writable:
            raise PageStoreError(
                "cannot pickle a writable file backend; publish a snapshot "
                "generation and pickle the reopened (read-only) store"
            )
        self._check_open()
        return {
            "directory": str(self.directory),
            "generation": self.generation,
            "codec": self._codec.name,
        }

    def __setstate__(self, state: dict) -> None:
        fresh = FilePageBackend.open(state["directory"], state["generation"])
        # The manifest is the source of truth for the codec; a mismatch
        # with what the pickling process saw means the directory was
        # swapped out underneath the spec.
        expected = state.get("codec")
        if expected is not None and fresh.codec != expected:
            raise SnapshotError(
                f"snapshot directory {state['directory']}: generation "
                f"{state['generation']} is encoded with codec "
                f"{fresh.codec!r}, the worker spec expected {expected!r}"
            )
        self.__dict__.update(fresh.__dict__)


def append_overlay_generation(overlay: OverlayPageBackend) -> int:
    """Publish an overlay's changes as the next generation of its base.

    The overlay must sit on a read-only :class:`FilePageBackend`; its
    override/tail pages are appended to the base directory's
    ``pages.dat`` (after truncating any unreachable tail a crashed
    publisher left behind) and a new manifest generation is published
    atomically.  The write is *incremental*: a page whose payload
    already matches what the latest generation maps is not re-appended,
    so successive commits grow the data file only by the pages they
    actually changed.  Every earlier generation stays restorable —
    committed physical pages are never touched.

    Publishing is single-writer: the caller must be the only publisher
    for the directory (the serving layer serializes commits through
    ``apply_updates``).  Returns the new generation number.
    """
    if not isinstance(overlay, OverlayPageBackend):
        raise PageStoreError(
            f"expected an OverlayPageBackend, got {type(overlay).__name__}"
        )
    base = overlay.base
    if not isinstance(base, FilePageBackend):
        raise PageStoreError(
            "overlay base is not a file-backed store; only forks of "
            "restored snapshots can publish generations in place"
        )
    directory = base.directory
    latest = latest_generation(directory)
    if latest is None:
        raise SnapshotError(f"no published generations in {directory}")
    manifest = _load_manifest(directory, latest)
    codec = get_codec(manifest["codec"])
    data_bytes = int(manifest["data_bytes"])
    segments = [
        (int(offset), int(length)) for offset, length in manifest["segments"]
    ]
    table = [int(slot) for slot in manifest["page_table"]]
    if len(table) > len(overlay):
        raise SnapshotError(
            f"snapshot directory {directory}: generation {latest} holds "
            f"{len(table)} pages but the overlay only knows {len(overlay)} — "
            "another publisher is writing this directory"
        )
    categories = list(overlay.iter_categories())
    tail = overlay.tail_pages()
    base_len = len(base)

    data_path = directory / PAGES_FILENAME
    with open(data_path, "r+b") as handle:
        # Drop bytes no manifest references (a crashed publisher's
        # half-written tail), then append changed pages at the frontier.
        handle.truncate(data_bytes)
        handle.seek(data_bytes)

        def changed(slot: int, payload: bytes, category: str) -> bool:
            # Compare *logical* bytes: with a compressing codec the
            # stored blob for an identical payload need not be
            # byte-stable across encoder versions.
            offset, length = segments[slot]
            blob = os.pread(handle.fileno(), length, offset)
            return codec.decode(blob, category) != payload

        def append(payload: bytes, category: str) -> int:
            nonlocal data_bytes
            blob = codec.encode(payload, category)
            handle.write(blob)
            segments.append((data_bytes, len(blob)))
            data_bytes += len(blob)
            return len(segments) - 1

        for page_id in sorted(overlay.overrides):
            payload = overlay.overrides[page_id]
            category = categories[page_id]
            if changed(table[page_id], payload, category):
                table[page_id] = append(payload, category)
        for offset, (payload, category) in enumerate(tail):
            page_id = base_len + offset
            if page_id < len(table):
                # Tail page already committed by an earlier generation;
                # re-append only if rewritten since.
                if changed(table[page_id], payload, category):
                    table[page_id] = append(payload, category)
            else:
                table.append(append(payload, category))
        handle.flush()
        os.fsync(handle.fileno())

    # Same atomic sidecar/manifest publication as commit_generation:
    # logical pages never change category, so the sidecar stays
    # append-only in content and older generations read a prefix of it.
    codes = bytes(_CATEGORY_CODE[c] for c in categories)
    sidecar = directory / CATEGORIES_FILENAME
    sidecar_scratch = directory / (CATEGORIES_FILENAME + ".tmp")
    sidecar_scratch.write_bytes(codes)
    os.replace(sidecar_scratch, sidecar)
    generation = latest + 1
    manifest = {
        "format_version": STORE_FORMAT_VERSION,
        "page_size": PAGE_SIZE,
        "generation": generation,
        "codec": codec.name,
        "page_count": len(categories),
        "physical_page_count": len(segments),
        "data_bytes": data_bytes,
        "page_table": table,
        "segments": [list(segment) for segment in segments],
    }
    target = directory / manifest_filename(generation)
    scratch = target.parent / (target.name + ".tmp")
    scratch.write_text(json.dumps(manifest) + "\n")
    os.replace(scratch, target)
    return generation


@dataclass
class ShipStats:
    """Transfer accounting of one generation ship.

    ``pages_sent``/``bytes_sent`` count what actually moved (with a
    compressing codec the bytes are the *compressed* tail);
    ``full_copy`` distinguishes a fresh replica's initial copy from the
    incremental ships that follow.  ``index_bytes_sent`` is filled by
    :func:`~repro.core.snapshot.ship_index_generation` for the
    index-level files riding along.
    """

    generation: int
    pages_sent: int
    bytes_sent: int
    full_copy: bool
    index_bytes_sent: int = 0

    @property
    def incremental(self) -> bool:
        return not self.full_copy

    def as_dict(self) -> dict:
        """A JSON-ready dict (benchmark reports, logs)."""
        return {
            "generation": self.generation,
            "pages_sent": self.pages_sent,
            "bytes_sent": self.bytes_sent,
            "full_copy": self.full_copy,
            "index_bytes_sent": self.index_bytes_sent,
        }


def ship_store_generation(source_dir, dest_dir, generation=None) -> ShipStats:
    """Replicate one store generation from *source_dir* into *dest_dir*.

    The shipping primitive of the distributed serving tier: because
    ``pages.dat`` is strictly append-only and generations are
    copy-on-write, a replica that already holds generation *g* needs
    only the data-file **tail** past its own committed prefix to hold
    generation *g+n* — unchanged pages are never re-sent.  A fresh
    (empty) destination receives the full committed prefix once; every
    later ship moves just the pages the shipped generation appended.

    The copy follows the store's own crash discipline: page bytes and
    the category sidecar land first, the manifest is written to a temp
    file and atomically renamed last, so a ship that dies mid-transfer
    leaves the destination at its previous generation with (at worst)
    unreferenced tail bytes the next ship truncates.

    The destination must be a prefix of the source's lineage: its
    latest manifest has to byte-match the source's manifest of the same
    generation, otherwise the directories diverged (different writer)
    and the ship is refused with :class:`SnapshotError`.

    Returns a :class:`ShipStats` with the transfer accounting.  With a
    compressing codec the tail that moves is the *compressed* tail —
    replication pays the same shrunken byte bill as the disk.
    """
    source_dir = Path(source_dir)
    dest_dir = Path(dest_dir)
    if generation is None:
        generation = latest_generation(source_dir)
        if generation is None:
            raise SnapshotError(
                f"no page-store manifest generations in {source_dir}"
            )
    manifest = _load_manifest(source_dir, generation)
    physical = int(manifest["physical_page_count"])
    data_bytes = int(manifest["data_bytes"])

    dest_dir.mkdir(parents=True, exist_ok=True)
    dest_latest = latest_generation(dest_dir)
    if dest_latest is not None and dest_latest >= generation:
        raise SnapshotError(
            f"replica {dest_dir} already holds generation {dest_latest}; "
            f"cannot ship older-or-equal generation {generation}"
        )
    if dest_latest is not None:
        # Lineage check: the replica's latest manifest must be the
        # source's manifest of the same generation, byte-identical —
        # otherwise the replica belongs to a different writer history
        # and its page prefix cannot be trusted.
        source_twin = source_dir / manifest_filename(dest_latest)
        if not source_twin.exists():
            raise SnapshotError(
                f"replica {dest_dir} holds generation {dest_latest} but the "
                f"source {source_dir} has no such manifest — diverged lineage"
            )
        dest_manifest_path = dest_dir / manifest_filename(dest_latest)
        if source_twin.read_bytes() != dest_manifest_path.read_bytes():
            raise SnapshotError(
                f"replica {dest_dir} generation {dest_latest} does not match "
                f"the source's — diverged lineage; re-replicate from scratch"
            )
        dest_manifest = _load_manifest(dest_dir, dest_latest)
        dest_physical = int(dest_manifest["physical_page_count"])
        dest_data_bytes = int(dest_manifest["data_bytes"])
    else:
        dest_physical = 0
        dest_data_bytes = 0

    bytes_sent = 0
    source_data = source_dir / PAGES_FILENAME
    if not source_data.exists():
        raise SnapshotError(
            f"snapshot directory {source_dir}: missing data file "
            f"{PAGES_FILENAME}"
        )
    with open(source_data, "rb") as src:
        mode = "r+b" if (dest_dir / PAGES_FILENAME).exists() else "w+b"
        with open(dest_dir / PAGES_FILENAME, mode) as dst:
            # Drop any unreferenced tail a dead ship left behind, then
            # append exactly the bytes this generation added.
            dst.truncate(dest_data_bytes)
            dst.seek(dest_data_bytes)
            src.seek(dest_data_bytes)
            remaining = data_bytes - dest_data_bytes
            while remaining:
                chunk = src.read(min(remaining, 1 << 20))
                if not chunk:
                    raise SnapshotError(
                        f"snapshot directory {source_dir}: data file is "
                        f"shorter than generation {generation}'s "
                        f"{data_bytes} bytes"
                    )
                dst.write(chunk)
                bytes_sent += len(chunk)
                remaining -= len(chunk)
            dst.flush()
            os.fsync(dst.fileno())

    # Sidecar: replicas read a prefix of it per generation, so the
    # whole (small) file replaces atomically, same as commit_generation.
    sidecar_bytes = (source_dir / CATEGORIES_FILENAME).read_bytes()
    sidecar_scratch = dest_dir / (CATEGORIES_FILENAME + ".tmp")
    sidecar_scratch.write_bytes(sidecar_bytes)
    os.replace(sidecar_scratch, dest_dir / CATEGORIES_FILENAME)
    bytes_sent += len(sidecar_bytes)

    manifest_bytes = (source_dir / manifest_filename(generation)).read_bytes()
    target = dest_dir / manifest_filename(generation)
    scratch = dest_dir / (target.name + ".tmp")
    scratch.write_bytes(manifest_bytes)
    os.replace(scratch, target)
    bytes_sent += len(manifest_bytes)

    return ShipStats(
        generation=int(generation),
        pages_sent=physical - dest_physical,
        bytes_sent=bytes_sent,
        full_copy=dest_latest is None,
    )


class FilePageStore(PageStore):
    """A :class:`PageStore` whose pages live in an on-disk file.

    Same category-tagged accounting, buffer pool and decoded-page cache
    as the memory store — only the byte backend differs.  Use
    :meth:`create` to build a new store on disk and :meth:`open` to map
    a published generation read-only (the latest by default);
    :meth:`PageStore.view` hands out stat-isolated stores over the same
    mapping for concurrent readers, and :meth:`PageStore.fork` gives a
    mutable copy-on-write overlay of a read-only store.
    """

    def __init__(
        self,
        backend: FilePageBackend,
        buffer: BufferPool | None = None,
        decoded: DecodedPageCache | None = None,
    ):
        super().__init__(buffer=buffer, decoded=decoded, backend=backend)

    @classmethod
    def create(cls, directory, buffer=None, decoded=None,
               codec=DEFAULT_CODEC) -> "FilePageStore":
        return cls(FilePageBackend.create(directory, codec=codec),
                   buffer, decoded)

    @classmethod
    def open(cls, directory, generation=None, buffer=None,
             decoded=None) -> "FilePageStore":
        return cls(FilePageBackend.open(directory, generation), buffer, decoded)

    @property
    def directory(self) -> Path:
        return self.backend.directory

    @property
    def codec(self) -> str:
        """Name of the physical page codec (from the manifest)."""
        return self.backend.codec

    @property
    def generation(self):
        """Latest published generation, or ``None`` before the first."""
        return self.backend.generation

    def snapshot(self) -> int:
        """Publish the current pages as a new numbered generation."""
        return self.backend.commit_generation()

    def flush(self) -> None:
        self.backend.flush()

    def close(self) -> None:
        self.backend.close()

    def discard(self) -> None:
        """Abandon a store being written; see :meth:`FilePageBackend.discard`."""
        self.backend.discard()

    def __enter__(self) -> "FilePageStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # An exception mid-write must not publish a valid-looking
        # manifest over a partial page file.
        if exc_type is not None and self.backend.writable:
            self.discard()
        else:
            self.close()


def write_store_snapshot(store: PageStore, directory,
                         codec=DEFAULT_CODEC) -> Path:
    """Copy every page of *store* into a new on-disk store directory.

    Pages are read silently (no I/O accounting — snapshotting is not a
    query) and land in the same page-id order, so pointers baked into
    index structures stay valid verbatim in the reopened store.  The
    copy is published as generation 0 of the target directory, encoded
    with *codec* — exporting under a different codec than the source is
    how a store is re-compressed (or decompressed), since the logical
    pages are codec-invariant.
    """
    directory = Path(directory)
    source_dir = getattr(store.backend, "directory", None)
    if source_dir is not None and Path(source_dir).resolve() == directory.resolve():
        # Creating the target truncates pages.dat — the very file the
        # source store is mmapping — losing the store and SIGBUS-ing
        # the process on the next page read.
        raise PageStoreError(
            f"cannot snapshot a store into its own directory {directory}"
        )
    target = FilePageBackend.create(directory, codec=codec)
    try:
        for page_id in range(len(store)):
            target.append(store.read_silent(page_id), store.category(page_id))
    except BaseException:
        target.discard()
        raise
    target.close()
    return directory
