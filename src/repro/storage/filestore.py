"""File-backed page storage: one data file, versioned copy-on-write manifests.

The in-memory :class:`~repro.storage.pagestore.PageStore` is perfect
for build-and-measure experiments but every run pays the full bulkload.
This module is the durable half of the storage layer, now with a write
path:

* ``pages.dat`` is strictly **append-only**: every allocation *and
  every rewrite* appends a new physical page.  A logical page id is
  mapped to its current physical slot through a **page-translation
  table**, so rewriting page 7 appends its new payload and repoints the
  table entry — the old physical page is never touched (append-redirect).
* A **snapshot** publishes a numbered manifest generation
  (``manifest-000000.json``, ``manifest-000001.json``, ...) holding the
  translation table of that moment.  Generations are copy-on-write:
  physical pages never change once written, so every older manifest
  keeps describing a fully consistent store and unchanged pages are
  shared byte-for-byte between generations.  The manifest is written to
  a temp file and atomically renamed, so a partial write never
  publishes — a crash mid-snapshot leaves garbage at the tail of
  ``pages.dat`` that no manifest references.
* :meth:`FilePageBackend.open` maps the committed prefix of the data
  file read-only with :mod:`mmap` and serves page reads as slices of
  the mapping; it loads the **latest** generation by default and any
  older one via ``generation=``.

A one-byte-per-logical-page category sidecar (``categories.bin``)
completes the directory; logical pages never change category, so the
sidecar is append-only in content and any generation reads a prefix of
it.  Malformed or incomplete directories surface as
:class:`~repro.storage.pagestore.SnapshotError` naming the directory
and the problem.

Accounting semantics are identical to the memory store: the backend
only supplies bytes; buffer pool, decoded-page cache and per-category
:class:`~repro.storage.stats.IOStats` live in the owning store.
"""

from __future__ import annotations

import json
import mmap
import os
import re
from pathlib import Path

from repro.storage.buffer import BufferPool
from repro.storage.constants import PAGE_SIZE
from repro.storage.decoded_cache import DecodedPageCache
from repro.storage.pagestore import (
    OverlayPageBackend,
    PageStore,
    PageStoreError,
    SnapshotError,
)
from repro.storage.stats import ALL_CATEGORIES

#: Files making up one on-disk page store.
PAGES_FILENAME = "pages.dat"
CATEGORIES_FILENAME = "categories.bin"

#: Bumped on any incompatible change to the directory layout.  Version 2
#: introduced numbered manifest generations and the page-translation
#: table (version-1 directories had a single flat ``manifest.json``).
STORE_FORMAT_VERSION = 2

_CATEGORY_CODE = {name: code for code, name in enumerate(ALL_CATEGORIES)}
_MANIFEST_RE = re.compile(r"manifest-(\d{6})\.json$")


def manifest_filename(generation: int) -> str:
    """The manifest file name of one snapshot generation."""
    if generation < 0:
        raise ValueError(f"generation must be non-negative, got {generation}")
    return f"manifest-{generation:06d}.json"


def list_generations(directory) -> list:
    """All published snapshot generations in *directory*, ascending."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        match = _MANIFEST_RE.fullmatch(entry.name)
        if match:
            found.append(int(match.group(1)))
    return sorted(found)


def latest_generation(directory):
    """The newest published generation in *directory*, or ``None``."""
    generations = list_generations(directory)
    return generations[-1] if generations else None


def _load_manifest(directory: Path, generation: int) -> dict:
    """Read and structurally validate one generation's manifest."""
    path = directory / manifest_filename(generation)
    if not path.exists():
        raise SnapshotError(
            f"snapshot directory {directory} has no generation {generation} "
            f"(missing {path.name})"
        )
    try:
        manifest = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SnapshotError(
            f"snapshot directory {directory}: manifest {path.name} is "
            f"truncated or not valid JSON ({exc})"
        ) from None
    if not isinstance(manifest, dict):
        raise SnapshotError(
            f"snapshot directory {directory}: manifest {path.name} does not "
            "hold a JSON object"
        )
    version = manifest.get("format_version")
    if version != STORE_FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot directory {directory}: store format version {version!r} "
            f"in {path.name} does not match this build's {STORE_FORMAT_VERSION}"
        )
    if manifest.get("page_size") != PAGE_SIZE:
        raise SnapshotError(
            f"snapshot directory {directory}: store was written with "
            f"{manifest.get('page_size')}-byte pages, this build uses {PAGE_SIZE}"
        )
    for key in ("page_count", "physical_page_count", "page_table"):
        if key not in manifest:
            raise SnapshotError(
                f"snapshot directory {directory}: manifest {path.name} is "
                f"missing the {key!r} field"
            )
    return manifest


class FilePageBackend:
    """Page payloads in a single append-only data file.

    Two modes:

    * :meth:`create` — appends physical pages to the data file as pages
      are allocated or rewritten (reads go through :func:`os.pread`, so
      build-time read-back works); :meth:`commit_generation` publishes
      the current translation table as a new numbered manifest.
    * :meth:`open` — maps the committed prefix of the data file
      read-only through :mod:`mmap`, for the latest generation or an
      explicitly requested older one.  Page reads are slices of the
      mapping, safely shareable between any number of stores and
      threads; :meth:`append`/:meth:`rewrite` are rejected.
    """

    def __init__(self, directory: Path, writable: bool, categories: list,
                 table: list, physical_count: int, generation):
        self.directory = directory
        self.writable = writable
        #: Latest published generation, or ``None`` before the first commit.
        self.generation = generation
        self._categories = categories
        #: Logical page id -> physical slot in ``pages.dat``.
        self._table = table
        #: Physical pages written so far (committed or not).
        self._physical_count = physical_count
        self._file = None
        self._mmap = None
        self._closed = False
        #: Appends/rewrites not yet visible to ``os.pread``.
        self._unflushed_writes = False
        #: Appends/rewrites since the last published generation.
        self._dirty = False

    # -- constructors --------------------------------------------------

    @classmethod
    def create(cls, directory) -> "FilePageBackend":
        """Start a new writable on-disk store in *directory*.

        Refuses a directory that already holds published generations:
        ``pages.dat`` would be truncated, invalidating every manifest
        that references its pages.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        existing = latest_generation(directory)
        if existing is not None:
            raise PageStoreError(
                f"{directory} already holds a page store (generation "
                f"{existing}); creating would truncate its pages"
            )
        backend = cls(
            directory,
            writable=True,
            categories=[],
            table=[],
            physical_count=0,
            generation=None,
        )
        backend._file = open(directory / PAGES_FILENAME, "wb+")
        return backend

    @classmethod
    def open(cls, directory, generation=None) -> "FilePageBackend":
        """Map an on-disk store read-only, latest generation by default."""
        directory = Path(directory)
        if generation is None:
            generation = latest_generation(directory)
            if generation is None:
                raise SnapshotError(
                    f"no page-store manifest generations in {directory}"
                )
        manifest = _load_manifest(directory, generation)
        page_count = int(manifest["page_count"])
        physical_count = int(manifest["physical_page_count"])
        table = [int(slot) for slot in manifest["page_table"]]
        if len(table) != page_count:
            raise SnapshotError(
                f"snapshot directory {directory}: page table holds "
                f"{len(table)} entries for {page_count} pages"
            )
        if any(not 0 <= slot < physical_count for slot in table):
            raise SnapshotError(
                f"snapshot directory {directory}: page table references a "
                f"physical slot outside the committed {physical_count} pages"
            )
        sidecar = directory / CATEGORIES_FILENAME
        if not sidecar.exists():
            raise SnapshotError(
                f"snapshot directory {directory}: missing category sidecar "
                f"{CATEGORIES_FILENAME}"
            )
        codes = sidecar.read_bytes()
        if len(codes) < page_count:
            raise SnapshotError(
                f"snapshot directory {directory}: category sidecar has "
                f"{len(codes)} entries for {page_count} pages"
            )
        try:
            categories = [ALL_CATEGORIES[code] for code in codes[:page_count]]
        except IndexError:
            raise SnapshotError(
                f"snapshot directory {directory}: corrupt category sidecar"
            ) from None
        backend = cls(
            directory,
            writable=False,
            categories=categories,
            table=table,
            physical_count=physical_count,
            generation=generation,
        )
        data_path = directory / PAGES_FILENAME
        if not data_path.exists():
            raise SnapshotError(
                f"snapshot directory {directory}: missing data file "
                f"{PAGES_FILENAME}"
            )
        backend._file = open(data_path, "rb")
        size = os.fstat(backend._file.fileno()).st_size
        needed = physical_count * PAGE_SIZE
        if size < needed:
            backend._file.close()
            raise SnapshotError(
                f"snapshot directory {directory}: data file holds {size} "
                f"bytes, generation {generation} needs {needed}"
            )
        if physical_count:
            # Map exactly the committed prefix; uncommitted tail pages
            # from a later aborted snapshot stay invisible.
            backend._mmap = mmap.mmap(
                backend._file.fileno(), needed, access=mmap.ACCESS_READ
            )
        return backend

    # -- backend protocol ----------------------------------------------

    def append(self, payload: bytes, category: str) -> int:
        self._check_open()
        if not self.writable:
            raise PageStoreError("store was opened read-only")
        page_id = len(self._categories)
        self._write_physical(payload)
        self._table.append(self._physical_count - 1)
        self._categories.append(category)
        return page_id

    def rewrite(self, page_id: int, payload: bytes) -> None:
        """Append-redirect: new physical page, repointed table entry."""
        self._check_open()
        if not self.writable:
            raise PageStoreError("store was opened read-only")
        self._write_physical(payload)
        self._table[page_id] = self._physical_count - 1

    def _write_physical(self, payload: bytes) -> None:
        self._file.write(payload)
        self._physical_count += 1
        self._unflushed_writes = True
        self._dirty = True

    def fork(self):
        """Copy-on-write clone of a *read-only* backend (RAM overlay).

        The mmap-backed base keeps serving unchanged pages; appends and
        rewrites on the fork live in the overlay.  Writable backends
        cannot fork — their translation table may still change under
        the overlay — so publish a generation and fork the reopened
        store instead.
        """
        from repro.storage.pagestore import OverlayPageBackend

        self._check_open()
        if self.writable:
            raise PageStoreError(
                "cannot fork a writable file backend; publish a snapshot "
                "generation and fork the reopened (read-only) store"
            )
        return OverlayPageBackend(self)

    def payload(self, page_id: int) -> bytes:
        self._check_open()
        offset = self._table[page_id] * PAGE_SIZE
        if self._mmap is not None:
            return self._mmap[offset:offset + PAGE_SIZE]
        if self._unflushed_writes:
            self._file.flush()
            self._unflushed_writes = False
        return os.pread(self._file.fileno(), PAGE_SIZE, offset)

    def category(self, page_id: int) -> str:
        return self._categories[page_id]

    def iter_categories(self):
        return iter(self._categories)

    def __len__(self) -> int:
        return len(self._categories)

    # -- persistence ---------------------------------------------------

    def commit_generation(self) -> int:
        """Publish the current state as the next snapshot generation.

        Data and sidecar are flushed first; the numbered manifest is
        written to a temp file and atomically renamed, so either the
        new generation exists completely or not at all.  Returns the
        new generation number.
        """
        self._check_open()
        if not self.writable:
            raise PageStoreError("store was opened read-only")
        self._file.flush()
        self._unflushed_writes = False
        # The sidecar is replaced atomically too: a truncating in-place
        # write would corrupt every previously published generation if
        # the process died mid-write (older manifests read a prefix of
        # this file).
        codes = bytes(_CATEGORY_CODE[c] for c in self._categories)
        sidecar = self.directory / CATEGORIES_FILENAME
        sidecar_scratch = self.directory / (CATEGORIES_FILENAME + ".tmp")
        sidecar_scratch.write_bytes(codes)
        os.replace(sidecar_scratch, sidecar)
        generation = 0 if self.generation is None else self.generation + 1
        manifest = {
            "format_version": STORE_FORMAT_VERSION,
            "page_size": PAGE_SIZE,
            "generation": generation,
            "page_count": len(self._categories),
            "physical_page_count": self._physical_count,
            "page_table": list(self._table),
        }
        target = self.directory / manifest_filename(generation)
        scratch = target.parent / (target.name + ".tmp")
        scratch.write_text(json.dumps(manifest) + "\n")
        os.replace(scratch, target)
        self.generation = generation
        self._dirty = False
        return generation

    def flush(self) -> None:
        """Publish a generation if anything changed since the last one."""
        self._check_open()
        if not self.writable:
            return
        if self._dirty or self.generation is None:
            self.commit_generation()

    def close(self) -> None:
        """Flush (if writable) and release the file/mapping."""
        if self._closed:
            return
        if self.writable:
            self.flush()
        self._release()

    def discard(self) -> None:
        """Release the file *without* publishing a new generation.

        Called when writing a store is abandoned mid-way: generations
        are only ever published by :meth:`commit_generation`, so the
        uncommitted tail of ``pages.dat`` stays unreachable instead of
        silently passing :meth:`open`'s consistency checks.
        """
        if not self._closed:
            self._release()

    def _release(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise PageStoreError(f"store in {self.directory} is closed")

    # -- pickling --------------------------------------------------------
    #
    # A read-only backend pickles as (directory, generation) and
    # reattaches by reopening the mmap on unpickle.  The page bytes
    # never travel through the pickle stream: every process maps the
    # same committed prefix of pages.dat, so the OS page cache is
    # shared across process-mode serving workers for free.

    def __getstate__(self) -> dict:
        if self.writable:
            raise PageStoreError(
                "cannot pickle a writable file backend; publish a snapshot "
                "generation and pickle the reopened (read-only) store"
            )
        self._check_open()
        return {"directory": str(self.directory), "generation": self.generation}

    def __setstate__(self, state: dict) -> None:
        fresh = FilePageBackend.open(state["directory"], state["generation"])
        self.__dict__.update(fresh.__dict__)


def append_overlay_generation(overlay: OverlayPageBackend) -> int:
    """Publish an overlay's changes as the next generation of its base.

    The overlay must sit on a read-only :class:`FilePageBackend`; its
    override/tail pages are appended to the base directory's
    ``pages.dat`` (after truncating any unreachable tail a crashed
    publisher left behind) and a new manifest generation is published
    atomically.  The write is *incremental*: a page whose payload
    already matches what the latest generation maps is not re-appended,
    so successive commits grow the data file only by the pages they
    actually changed.  Every earlier generation stays restorable —
    committed physical pages are never touched.

    Publishing is single-writer: the caller must be the only publisher
    for the directory (the serving layer serializes commits through
    ``apply_updates``).  Returns the new generation number.
    """
    if not isinstance(overlay, OverlayPageBackend):
        raise PageStoreError(
            f"expected an OverlayPageBackend, got {type(overlay).__name__}"
        )
    base = overlay.base
    if not isinstance(base, FilePageBackend):
        raise PageStoreError(
            "overlay base is not a file-backed store; only forks of "
            "restored snapshots can publish generations in place"
        )
    directory = base.directory
    latest = latest_generation(directory)
    if latest is None:
        raise SnapshotError(f"no published generations in {directory}")
    manifest = _load_manifest(directory, latest)
    physical = int(manifest["physical_page_count"])
    table = [int(slot) for slot in manifest["page_table"]]
    if len(table) > len(overlay):
        raise SnapshotError(
            f"snapshot directory {directory}: generation {latest} holds "
            f"{len(table)} pages but the overlay only knows {len(overlay)} — "
            "another publisher is writing this directory"
        )
    categories = list(overlay.iter_categories())
    tail = overlay.tail_pages()
    base_len = len(base)

    data_path = directory / PAGES_FILENAME
    with open(data_path, "r+b") as handle:
        # Drop bytes no manifest references (a crashed publisher's
        # half-written tail), then append changed pages at the frontier.
        handle.truncate(physical * PAGE_SIZE)
        handle.seek(physical * PAGE_SIZE)

        def changed(slot: int, payload: bytes) -> bool:
            return os.pread(handle.fileno(), PAGE_SIZE, slot * PAGE_SIZE) != payload

        def append(payload: bytes) -> int:
            nonlocal physical
            handle.write(payload)
            physical += 1
            return physical - 1

        for page_id in sorted(overlay.overrides):
            payload = overlay.overrides[page_id]
            if changed(table[page_id], payload):
                table[page_id] = append(payload)
        for offset, (payload, _category) in enumerate(tail):
            page_id = base_len + offset
            if page_id < len(table):
                # Tail page already committed by an earlier generation;
                # re-append only if rewritten since.
                if changed(table[page_id], payload):
                    table[page_id] = append(payload)
            else:
                table.append(append(payload))
        handle.flush()
        os.fsync(handle.fileno())

    # Same atomic sidecar/manifest publication as commit_generation:
    # logical pages never change category, so the sidecar stays
    # append-only in content and older generations read a prefix of it.
    codes = bytes(_CATEGORY_CODE[c] for c in categories)
    sidecar = directory / CATEGORIES_FILENAME
    sidecar_scratch = directory / (CATEGORIES_FILENAME + ".tmp")
    sidecar_scratch.write_bytes(codes)
    os.replace(sidecar_scratch, sidecar)
    generation = latest + 1
    manifest = {
        "format_version": STORE_FORMAT_VERSION,
        "page_size": PAGE_SIZE,
        "generation": generation,
        "page_count": len(categories),
        "physical_page_count": physical,
        "page_table": table,
    }
    target = directory / manifest_filename(generation)
    scratch = target.parent / (target.name + ".tmp")
    scratch.write_text(json.dumps(manifest) + "\n")
    os.replace(scratch, target)
    return generation


def ship_store_generation(source_dir, dest_dir, generation=None) -> dict:
    """Replicate one store generation from *source_dir* into *dest_dir*.

    The shipping primitive of the distributed serving tier: because
    ``pages.dat`` is strictly append-only and generations are
    copy-on-write, a replica that already holds generation *g* needs
    only the data-file **tail** past its own committed prefix to hold
    generation *g+n* — unchanged pages are never re-sent.  A fresh
    (empty) destination receives the full committed prefix once; every
    later ship moves just the pages the shipped generation appended.

    The copy follows the store's own crash discipline: page bytes and
    the category sidecar land first, the manifest is written to a temp
    file and atomically renamed last, so a ship that dies mid-transfer
    leaves the destination at its previous generation with (at worst)
    unreferenced tail bytes the next ship truncates.

    The destination must be a prefix of the source's lineage: its
    latest manifest has to byte-match the source's manifest of the same
    generation, otherwise the directories diverged (different writer)
    and the ship is refused with :class:`SnapshotError`.

    Returns transfer accounting: ``generation`` shipped, ``pages_sent``
    / ``bytes_sent`` over the wire (well, the filesystem), and
    ``full_copy`` (whether the destination started empty).
    """
    source_dir = Path(source_dir)
    dest_dir = Path(dest_dir)
    if generation is None:
        generation = latest_generation(source_dir)
        if generation is None:
            raise SnapshotError(
                f"no page-store manifest generations in {source_dir}"
            )
    manifest = _load_manifest(source_dir, generation)
    physical = int(manifest["physical_page_count"])

    dest_dir.mkdir(parents=True, exist_ok=True)
    dest_latest = latest_generation(dest_dir)
    if dest_latest is not None and dest_latest >= generation:
        raise SnapshotError(
            f"replica {dest_dir} already holds generation {dest_latest}; "
            f"cannot ship older-or-equal generation {generation}"
        )
    dest_physical = 0
    if dest_latest is not None:
        # Lineage check: the replica's latest manifest must be the
        # source's manifest of the same generation, byte-identical —
        # otherwise the replica belongs to a different writer history
        # and its page prefix cannot be trusted.
        source_twin = source_dir / manifest_filename(dest_latest)
        if not source_twin.exists():
            raise SnapshotError(
                f"replica {dest_dir} holds generation {dest_latest} but the "
                f"source {source_dir} has no such manifest — diverged lineage"
            )
        dest_manifest_path = dest_dir / manifest_filename(dest_latest)
        if source_twin.read_bytes() != dest_manifest_path.read_bytes():
            raise SnapshotError(
                f"replica {dest_dir} generation {dest_latest} does not match "
                f"the source's — diverged lineage; re-replicate from scratch"
            )
        dest_physical = int(_load_manifest(dest_dir, dest_latest)[
            "physical_page_count"
        ])

    bytes_sent = 0
    source_data = source_dir / PAGES_FILENAME
    if not source_data.exists():
        raise SnapshotError(
            f"snapshot directory {source_dir}: missing data file "
            f"{PAGES_FILENAME}"
        )
    with open(source_data, "rb") as src:
        mode = "r+b" if (dest_dir / PAGES_FILENAME).exists() else "w+b"
        with open(dest_dir / PAGES_FILENAME, mode) as dst:
            # Drop any unreferenced tail a dead ship left behind, then
            # append exactly the pages this generation added.
            dst.truncate(dest_physical * PAGE_SIZE)
            dst.seek(dest_physical * PAGE_SIZE)
            src.seek(dest_physical * PAGE_SIZE)
            remaining = (physical - dest_physical) * PAGE_SIZE
            while remaining:
                chunk = src.read(min(remaining, 1 << 20))
                if not chunk:
                    raise SnapshotError(
                        f"snapshot directory {source_dir}: data file is "
                        f"shorter than generation {generation}'s "
                        f"{physical} pages"
                    )
                dst.write(chunk)
                bytes_sent += len(chunk)
                remaining -= len(chunk)
            dst.flush()
            os.fsync(dst.fileno())

    # Sidecar: replicas read a prefix of it per generation, so the
    # whole (small) file replaces atomically, same as commit_generation.
    sidecar_bytes = (source_dir / CATEGORIES_FILENAME).read_bytes()
    sidecar_scratch = dest_dir / (CATEGORIES_FILENAME + ".tmp")
    sidecar_scratch.write_bytes(sidecar_bytes)
    os.replace(sidecar_scratch, dest_dir / CATEGORIES_FILENAME)
    bytes_sent += len(sidecar_bytes)

    manifest_bytes = (source_dir / manifest_filename(generation)).read_bytes()
    target = dest_dir / manifest_filename(generation)
    scratch = dest_dir / (target.name + ".tmp")
    scratch.write_bytes(manifest_bytes)
    os.replace(scratch, target)
    bytes_sent += len(manifest_bytes)

    return {
        "generation": int(generation),
        "pages_sent": physical - dest_physical,
        "bytes_sent": bytes_sent,
        "full_copy": dest_latest is None,
    }


class FilePageStore(PageStore):
    """A :class:`PageStore` whose pages live in an on-disk file.

    Same category-tagged accounting, buffer pool and decoded-page cache
    as the memory store — only the byte backend differs.  Use
    :meth:`create` to build a new store on disk and :meth:`open` to map
    a published generation read-only (the latest by default);
    :meth:`PageStore.view` hands out stat-isolated stores over the same
    mapping for concurrent readers, and :meth:`PageStore.fork` gives a
    mutable copy-on-write overlay of a read-only store.
    """

    def __init__(
        self,
        backend: FilePageBackend,
        buffer: BufferPool | None = None,
        decoded: DecodedPageCache | None = None,
    ):
        super().__init__(buffer=buffer, decoded=decoded, backend=backend)

    @classmethod
    def create(cls, directory, buffer=None, decoded=None) -> "FilePageStore":
        return cls(FilePageBackend.create(directory), buffer, decoded)

    @classmethod
    def open(cls, directory, generation=None, buffer=None,
             decoded=None) -> "FilePageStore":
        return cls(FilePageBackend.open(directory, generation), buffer, decoded)

    @property
    def directory(self) -> Path:
        return self.backend.directory

    @property
    def generation(self):
        """Latest published generation, or ``None`` before the first."""
        return self.backend.generation

    def snapshot(self) -> int:
        """Publish the current pages as a new numbered generation."""
        return self.backend.commit_generation()

    def flush(self) -> None:
        self.backend.flush()

    def close(self) -> None:
        self.backend.close()

    def discard(self) -> None:
        """Abandon a store being written; see :meth:`FilePageBackend.discard`."""
        self.backend.discard()

    def __enter__(self) -> "FilePageStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # An exception mid-write must not publish a valid-looking
        # manifest over a partial page file.
        if exc_type is not None and self.backend.writable:
            self.discard()
        else:
            self.close()


def write_store_snapshot(store: PageStore, directory) -> Path:
    """Copy every page of *store* into a new on-disk store directory.

    Pages are read silently (no I/O accounting — snapshotting is not a
    query) and land in the same page-id order, so pointers baked into
    index structures stay valid verbatim in the reopened store.  The
    copy is published as generation 0 of the target directory.
    """
    directory = Path(directory)
    source_dir = getattr(store.backend, "directory", None)
    if source_dir is not None and Path(source_dir).resolve() == directory.resolve():
        # Creating the target truncates pages.dat — the very file the
        # source store is mmapping — losing the store and SIGBUS-ing
        # the process on the next page read.
        raise PageStoreError(
            f"cannot snapshot a store into its own directory {directory}"
        )
    target = FilePageBackend.create(directory)
    try:
        for page_id in range(len(store)):
            target.append(store.read_silent(page_id), store.category(page_id))
    except BaseException:
        target.discard()
        raise
    target.close()
    return directory
