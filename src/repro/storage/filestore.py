"""File-backed page storage: one on-disk file, read through ``mmap``.

The in-memory :class:`~repro.storage.pagestore.PageStore` is perfect
for build-and-measure experiments but every run pays the full bulkload.
This module is the build-once/reopen-many half of the storage layer: a
:class:`FilePageBackend` keeps all pages concatenated in a single data
file (``pages.dat``), with a one-byte-per-page category sidecar
(``categories.bin``) and a JSON manifest, so a snapshot directory is
self-describing.  Opened read-only, the data file is mapped with
:mod:`mmap` and page reads are slices of the mapping — the OS page
cache does the heavy lifting, and any number of serving workers can
share one mapping through stat-isolated :meth:`PageStore.view` stores.

Accounting semantics are identical to the memory store: the backend
only supplies bytes; buffer pool, decoded-page cache and per-category
:class:`~repro.storage.stats.IOStats` live in the owning store.
"""

from __future__ import annotations

import json
import mmap
import os
from pathlib import Path

from repro.storage.buffer import BufferPool
from repro.storage.constants import PAGE_SIZE
from repro.storage.decoded_cache import DecodedPageCache
from repro.storage.pagestore import PageStore, PageStoreError
from repro.storage.stats import ALL_CATEGORIES

#: Files making up one on-disk page store.
PAGES_FILENAME = "pages.dat"
CATEGORIES_FILENAME = "categories.bin"
MANIFEST_FILENAME = "manifest.json"

#: Bumped on any incompatible change to the directory layout.
STORE_FORMAT_VERSION = 1

_CATEGORY_CODE = {name: code for code, name in enumerate(ALL_CATEGORIES)}


class FilePageBackend:
    """Page payloads in a single on-disk file.

    Two modes:

    * :meth:`create` — appends pages to the data file as they are
      allocated (reads go through :func:`os.pread`, so build-time
      read-back works); :meth:`flush` persists the category sidecar and
      manifest, making the directory reopenable.
    * :meth:`open` — maps the data file read-only through :mod:`mmap`.
      Page reads are slices of the mapping, safely shareable between
      any number of stores and threads; :meth:`append` is rejected.
    """

    def __init__(self, directory: Path, writable: bool, categories: list):
        self.directory = directory
        self.writable = writable
        self._categories = categories
        self._file = None
        self._mmap = None
        self._closed = False
        #: Buffered appends not yet visible to ``os.pread``.
        self._unflushed_writes = False

    # -- constructors --------------------------------------------------

    @classmethod
    def create(cls, directory) -> "FilePageBackend":
        """Start a new writable on-disk store in *directory*."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        backend = cls(directory, writable=True, categories=[])
        backend._file = open(directory / PAGES_FILENAME, "wb+")
        return backend

    @classmethod
    def open(cls, directory) -> "FilePageBackend":
        """Map an existing on-disk store read-only."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_FILENAME
        if not manifest_path.exists():
            raise PageStoreError(f"no page-store manifest in {directory}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format_version") != STORE_FORMAT_VERSION:
            raise PageStoreError(
                f"unsupported store format {manifest.get('format_version')!r}"
            )
        if manifest.get("page_size") != PAGE_SIZE:
            raise PageStoreError(
                f"store was written with {manifest.get('page_size')}-byte pages, "
                f"this build uses {PAGE_SIZE}"
            )
        page_count = int(manifest["page_count"])
        codes = (directory / CATEGORIES_FILENAME).read_bytes()
        if len(codes) != page_count:
            raise PageStoreError(
                f"category sidecar has {len(codes)} entries for "
                f"{page_count} pages"
            )
        try:
            categories = [ALL_CATEGORIES[code] for code in codes]
        except IndexError:
            raise PageStoreError("corrupt category sidecar") from None
        backend = cls(directory, writable=False, categories=categories)
        backend._file = open(directory / PAGES_FILENAME, "rb")
        size = os.fstat(backend._file.fileno()).st_size
        if size != page_count * PAGE_SIZE:
            backend._file.close()
            raise PageStoreError(
                f"data file holds {size} bytes, expected {page_count * PAGE_SIZE}"
            )
        if page_count:
            backend._mmap = mmap.mmap(
                backend._file.fileno(), size, access=mmap.ACCESS_READ
            )
        return backend

    # -- backend protocol ----------------------------------------------

    def append(self, payload: bytes, category: str) -> int:
        self._check_open()
        if not self.writable:
            raise PageStoreError("store was opened read-only")
        page_id = len(self._categories)
        self._file.write(payload)
        self._unflushed_writes = True
        self._categories.append(category)
        return page_id

    def payload(self, page_id: int) -> bytes:
        self._check_open()
        offset = page_id * PAGE_SIZE
        if self._mmap is not None:
            return self._mmap[offset:offset + PAGE_SIZE]
        if self._unflushed_writes:
            self._file.flush()
            self._unflushed_writes = False
        return os.pread(self._file.fileno(), PAGE_SIZE, offset)

    def category(self, page_id: int) -> str:
        return self._categories[page_id]

    def iter_categories(self):
        return iter(self._categories)

    def __len__(self) -> int:
        return len(self._categories)

    # -- persistence ---------------------------------------------------

    def flush(self) -> None:
        """Persist the category sidecar and manifest (writable mode)."""
        self._check_open()
        if not self.writable:
            return
        self._file.flush()
        self._unflushed_writes = False
        codes = bytes(_CATEGORY_CODE[c] for c in self._categories)
        (self.directory / CATEGORIES_FILENAME).write_bytes(codes)
        manifest = {
            "format_version": STORE_FORMAT_VERSION,
            "page_size": PAGE_SIZE,
            "page_count": len(self._categories),
        }
        (self.directory / MANIFEST_FILENAME).write_text(
            json.dumps(manifest, indent=2) + "\n"
        )

    def close(self) -> None:
        """Flush (if writable) and release the file/mapping."""
        if self._closed:
            return
        if self.writable:
            self.flush()
        self._release()

    def discard(self) -> None:
        """Release the file *without* publishing the sidecar/manifest.

        Called when writing a store is abandoned mid-way: the manifest
        is only ever written by a successful :meth:`flush`/:meth:`close`,
        so a partial directory stays unopenable instead of silently
        passing :meth:`open`'s consistency checks with fewer pages.
        """
        if not self._closed:
            self._release()

    def _release(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise PageStoreError(f"store in {self.directory} is closed")


class FilePageStore(PageStore):
    """A :class:`PageStore` whose pages live in an on-disk file.

    Same category-tagged accounting, buffer pool and decoded-page cache
    as the memory store — only the byte backend differs.  Use
    :meth:`create` to build a new store on disk and :meth:`open` to map
    an existing one read-only; :meth:`PageStore.view` hands out
    stat-isolated stores over the same mapping for concurrent readers.
    """

    def __init__(
        self,
        backend: FilePageBackend,
        buffer: BufferPool | None = None,
        decoded: DecodedPageCache | None = None,
    ):
        super().__init__(buffer=buffer, decoded=decoded, backend=backend)

    @classmethod
    def create(cls, directory, buffer=None, decoded=None) -> "FilePageStore":
        return cls(FilePageBackend.create(directory), buffer, decoded)

    @classmethod
    def open(cls, directory, buffer=None, decoded=None) -> "FilePageStore":
        return cls(FilePageBackend.open(directory), buffer, decoded)

    @property
    def directory(self) -> Path:
        return self.backend.directory

    def flush(self) -> None:
        self.backend.flush()

    def close(self) -> None:
        self.backend.close()

    def discard(self) -> None:
        """Abandon a store being written; see :meth:`FilePageBackend.discard`."""
        self.backend.discard()

    def __enter__(self) -> "FilePageStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # An exception mid-write must not publish a valid-looking
        # manifest over a partial page file.
        if exc_type is not None and self.backend.writable:
            self.discard()
        else:
            self.close()


def write_store_snapshot(store: PageStore, directory) -> Path:
    """Copy every page of *store* into a new on-disk store directory.

    Pages are read silently (no I/O accounting — snapshotting is not a
    query) and land in the same page-id order, so pointers baked into
    index structures stay valid verbatim in the reopened store.
    """
    directory = Path(directory)
    source_dir = getattr(store.backend, "directory", None)
    if source_dir is not None and Path(source_dir).resolve() == directory.resolve():
        # Creating the target truncates pages.dat — the very file the
        # source store is mmapping — losing the store and SIGBUS-ing
        # the process on the next page read.
        raise PageStoreError(
            f"cannot snapshot a store into its own directory {directory}"
        )
    target = FilePageBackend.create(directory)
    try:
        for page_id in range(len(store)):
            target.append(store.read_silent(page_id), store.category(page_id))
    except BaseException:
        target.discard()
        raise
    target.close()
    return directory
