"""Byte-exact page encodings.

Every persisted page is exactly :data:`~repro.storage.constants.PAGE_SIZE`
bytes.  Three page kinds exist:

* **Element pages** (FLAT object pages and R-Tree leaves): a 16-byte
  header (element count) followed by up to 85 MBRs of 48 bytes each.
* **Node pages** (R-Tree internal nodes and seed-tree internal nodes):
  a 16-byte header (entry count, leaf flag) followed by (child pointer,
  child MBR) entries of 56 bytes each.
* **Metadata pages** (seed-tree leaves): a 16-byte header (record
  count) followed by variable-size metadata records — page MBR,
  partition MBR, object-page pointer, neighbor count, neighbor record
  ids (Sec. V-B.2 of the paper).

All encoders zero-pad to the full page; all decoders are the exact
inverses (round-trip tested byte-for-byte).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.storage.constants import (
    MBR_BYTES,
    METADATA_RECORD_FIXED_BYTES,
    NODE_FANOUT,
    OBJECT_PAGE_CAPACITY,
    PAGE_HEADER_BYTES,
    PAGE_SIZE,
    POINTER_BYTES,
    RECORD_POINTER_BYTES,
)

_HEADER = struct.Struct("<QBxxxxxxx")  # count: u64, flags: u8, 7 pad bytes
assert _HEADER.size == PAGE_HEADER_BYTES

_FLAG_LEAF = 0x1


def _pad_to_page(payload: bytes) -> bytes:
    if len(payload) > PAGE_SIZE:
        raise ValueError(f"payload of {len(payload)} bytes exceeds page size")
    return payload + b"\x00" * (PAGE_SIZE - len(payload))


def encode_element_page(mbrs: np.ndarray) -> bytes:
    """Serialize up to 85 element MBRs into one 4 KiB page."""
    mbrs = np.ascontiguousarray(mbrs, dtype=np.float64)
    if mbrs.ndim != 2 or mbrs.shape[1] == 0 or mbrs.shape[1] != 6:
        raise ValueError(f"expected (N, 6) MBRs, got {mbrs.shape}")
    if len(mbrs) > OBJECT_PAGE_CAPACITY:
        raise ValueError(
            f"{len(mbrs)} elements exceed page capacity {OBJECT_PAGE_CAPACITY}"
        )
    header = _HEADER.pack(len(mbrs), _FLAG_LEAF)
    return _pad_to_page(header + mbrs.tobytes())


def decode_element_page(page: bytes) -> np.ndarray:
    """Inverse of :func:`encode_element_page`; returns an ``(N, 6)`` array."""
    if len(page) != PAGE_SIZE:
        raise ValueError(f"expected a {PAGE_SIZE}-byte page, got {len(page)}")
    count, _flags = _HEADER.unpack_from(page)
    if count > OBJECT_PAGE_CAPACITY:
        raise ValueError(f"corrupt element page: count={count}")
    data = np.frombuffer(
        page, dtype=np.float64, count=count * 6, offset=PAGE_HEADER_BYTES
    )
    return data.reshape(count, 6).copy()


def encode_node_page(child_ids: np.ndarray, child_mbrs: np.ndarray, leaf: bool) -> bytes:
    """Serialize an internal/leaf tree node: (child pointer, child MBR) entries."""
    child_ids = np.ascontiguousarray(child_ids, dtype=np.uint64)
    child_mbrs = np.ascontiguousarray(child_mbrs, dtype=np.float64)
    if child_ids.ndim != 1 or child_mbrs.shape != (len(child_ids), 6):
        raise ValueError(
            f"mismatched node entries: ids {child_ids.shape}, mbrs {child_mbrs.shape}"
        )
    if len(child_ids) > NODE_FANOUT:
        raise ValueError(f"{len(child_ids)} entries exceed node fanout {NODE_FANOUT}")
    header = _HEADER.pack(len(child_ids), _FLAG_LEAF if leaf else 0)
    body = bytearray()
    for cid, mbr in zip(child_ids, child_mbrs):
        body += struct.pack("<Q", int(cid))
        body += mbr.tobytes()
    return _pad_to_page(header + bytes(body))


#: One (child pointer, child MBR) node entry, as laid out on the page.
_NODE_ENTRY_DTYPE = np.dtype([("id", "<u8"), ("mbr", "<f8", (6,))])
assert _NODE_ENTRY_DTYPE.itemsize == POINTER_BYTES + MBR_BYTES


def decode_node_page(page: bytes) -> tuple:
    """Inverse of :func:`encode_node_page` → ``(child_ids, child_mbrs, leaf)``.

    One strided ``frombuffer`` view over the interleaved entries instead
    of a per-record ``struct.unpack_from`` loop (byte-identical results;
    pinned against :func:`_decode_node_page_scalar`).
    """
    if len(page) != PAGE_SIZE:
        raise ValueError(f"expected a {PAGE_SIZE}-byte page, got {len(page)}")
    count, flags = _HEADER.unpack_from(page)
    if count > NODE_FANOUT:
        raise ValueError(f"corrupt node page: count={count}")
    entries = np.frombuffer(
        page, dtype=_NODE_ENTRY_DTYPE, count=count, offset=PAGE_HEADER_BYTES
    )
    child_ids = entries["id"].astype(np.uint64)
    child_mbrs = entries["mbr"].astype(np.float64)
    return child_ids, child_mbrs, bool(flags & _FLAG_LEAF)


def _decode_node_page_scalar(page: bytes) -> tuple:
    """Per-record reference decoder (the original loop); tests pin
    :func:`decode_node_page` byte-identical against it."""
    if len(page) != PAGE_SIZE:
        raise ValueError(f"expected a {PAGE_SIZE}-byte page, got {len(page)}")
    count, flags = _HEADER.unpack_from(page)
    if count > NODE_FANOUT:
        raise ValueError(f"corrupt node page: count={count}")
    child_ids = np.empty(count, dtype=np.uint64)
    child_mbrs = np.empty((count, 6), dtype=np.float64)
    offset = PAGE_HEADER_BYTES
    for i in range(count):
        (child_ids[i],) = struct.unpack_from("<Q", page, offset)
        offset += POINTER_BYTES
        child_mbrs[i] = np.frombuffer(page, dtype=np.float64, count=6, offset=offset)
        offset += MBR_BYTES
    return child_ids, child_mbrs, bool(flags & _FLAG_LEAF)


def metadata_record_bytes(num_neighbors: int) -> int:
    """Serialized size of one metadata record with *num_neighbors* pointers."""
    return METADATA_RECORD_FIXED_BYTES + num_neighbors * RECORD_POINTER_BYTES


def encode_metadata_page(records: list) -> bytes:
    """Serialize metadata records into one seed-tree leaf page.

    *records* is a list of ``(page_mbr, partition_mbr, object_page_id,
    neighbor_ids)`` tuples; ``neighbor_ids`` are *global record ids*
    resolved to leaf pages via the record directory (Sec. V-B.2: the
    neighbor pointers point at other metadata records in seed-tree
    leaves).
    """
    body = bytearray()
    for page_mbr, partition_mbr, object_page_id, neighbor_ids in records:
        page_mbr = np.ascontiguousarray(page_mbr, dtype=np.float64)
        partition_mbr = np.ascontiguousarray(partition_mbr, dtype=np.float64)
        if page_mbr.shape != (6,) or partition_mbr.shape != (6,):
            raise ValueError("metadata record MBRs must have shape (6,)")
        body += page_mbr.tobytes()
        body += partition_mbr.tobytes()
        body += struct.pack("<QI", int(object_page_id), len(neighbor_ids))
        for nid in neighbor_ids:
            body += struct.pack("<I", int(nid))
    header = _HEADER.pack(len(records), _FLAG_LEAF)
    return _pad_to_page(header + bytes(body))


def decode_metadata_page(page: bytes) -> list:
    """Inverse of :func:`encode_metadata_page`.

    The hottest decode of the crawl (every seed-phase read lands here),
    vectorized: a cheap offset walk discovers each record's neighbor
    count, then all MBRs, object-page ids and neighbor lists are pulled
    out with batched ``frombuffer``/fancy-index gathers instead of
    per-record ``struct.unpack_from`` calls.  Byte-identical to
    :func:`_decode_metadata_page_scalar` (pinned by tests), including
    result types: python ints for ids, fresh float64 arrays for MBRs.
    """
    if len(page) != PAGE_SIZE:
        raise ValueError(f"expected a {PAGE_SIZE}-byte page, got {len(page)}")
    count, _flags = _HEADER.unpack_from(page)
    if count == 0:
        return []
    max_records = (PAGE_SIZE - PAGE_HEADER_BYTES) // METADATA_RECORD_FIXED_BYTES
    if count > max_records:
        raise ValueError(f"corrupt metadata page: count={count}")
    # Offset walk: record i+1 starts after record i's neighbor list.
    offsets = np.empty(count, dtype=np.int64)
    neighbor_counts = np.empty(count, dtype=np.int64)
    offset = PAGE_HEADER_BYTES
    for i in range(count):
        if offset + METADATA_RECORD_FIXED_BYTES > PAGE_SIZE:
            raise ValueError(
                "corrupt metadata page: records overflow the page"
            )
        offsets[i] = offset
        n = int.from_bytes(page[offset + 104:offset + 108], "little")
        neighbor_counts[i] = n
        offset += METADATA_RECORD_FIXED_BYTES + n * RECORD_POINTER_BYTES
    if offset > PAGE_SIZE:
        raise ValueError("corrupt metadata page: records overflow the page")

    raw = np.frombuffer(page, dtype=np.uint8)
    coords = (
        raw[(offsets[:, None] + np.arange(96)).ravel()]
        .view("<f8")
        .reshape(count, 12)
        .astype(np.float64)
    )
    object_page_ids = (
        raw[(offsets[:, None] + 96 + np.arange(8)).ravel()].view("<u8").tolist()
    )
    total = int(neighbor_counts.sum())
    if total:
        starts = np.concatenate(([0], np.cumsum(neighbor_counts)[:-1]))
        local = np.arange(total, dtype=np.int64) - np.repeat(
            starts, neighbor_counts
        )
        nb_off = np.repeat(offsets + 108, neighbor_counts) + 4 * local
        neighbors = (
            raw[(nb_off[:, None] + np.arange(4)).ravel()].view("<u4").tolist()
        )
    else:
        neighbors = []

    records = []
    cursor = 0
    for i in range(count):
        n = int(neighbor_counts[i])
        records.append((
            coords[i, :6].copy(),
            coords[i, 6:].copy(),
            object_page_ids[i],
            neighbors[cursor:cursor + n],
        ))
        cursor += n
    return records


def _decode_metadata_page_scalar(page: bytes) -> list:
    """Per-record reference decoder (the original loop); tests pin
    :func:`decode_metadata_page` byte-identical against it."""
    if len(page) != PAGE_SIZE:
        raise ValueError(f"expected a {PAGE_SIZE}-byte page, got {len(page)}")
    count, _flags = _HEADER.unpack_from(page)
    records = []
    offset = PAGE_HEADER_BYTES
    for _ in range(count):
        page_mbr = np.frombuffer(page, dtype=np.float64, count=6, offset=offset).copy()
        offset += MBR_BYTES
        partition_mbr = np.frombuffer(
            page, dtype=np.float64, count=6, offset=offset
        ).copy()
        offset += MBR_BYTES
        object_page_id, n_neighbors = struct.unpack_from("<QI", page, offset)
        offset += POINTER_BYTES + 4
        neighbor_ids = list(
            struct.unpack_from(f"<{n_neighbors}I", page, offset)
        )
        offset += n_neighbors * RECORD_POINTER_BYTES
        records.append((page_mbr, partition_mbr, object_page_id, neighbor_ids))
    return records
