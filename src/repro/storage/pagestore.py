"""The simulated disk: a store of fixed-size pages with a write path.

The paper's indexes are bulkloaded (Sec. IV: "we focus on developing a
bulkloading approach and do not consider updates"), so allocation is
append-only and a freshly built store is never mutated while its
figures are measured.  On top of that read-only substrate this module
grows an *update surface*:

* :meth:`PageStore.rewrite` replaces the payload of an existing page
  (category unchanged), invalidating the store's own caches;
* ``fork()`` produces a copy-on-write clone of a backend — unchanged
  page payloads are shared (``bytes`` are immutable), rewrites on the
  fork never touch the original — which is what versioned serving
  builds its snapshot isolation on;
* :class:`OverlayPageBackend` adds the same copy-on-write semantics
  over a *read-only* base (e.g. an ``mmap``-backed snapshot), keeping
  rewrites and appends in RAM while base pages stay on disk.

Reads are counted per page *category* unless absorbed by the attached
buffer pool.
"""

from __future__ import annotations

from repro.storage.buffer import BufferPool
from repro.storage.constants import PAGE_SIZE
from repro.storage.decoded_cache import (
    DECODE_ELEMENT,
    DECODE_METADATA,
    DecodedPageCache,
)
from repro.storage.serial import decode_element_page, decode_metadata_page
from repro.storage.stats import ALL_CATEGORIES, IOStats


class PageStoreError(Exception):
    """Raised for invalid page ids, payload sizes, or categories."""


class SnapshotError(PageStoreError):
    """A snapshot directory is missing, incomplete, or malformed.

    Raised by the file store's :meth:`~repro.storage.filestore.FilePageBackend.open`
    and the index-level ``restore`` paths instead of surfacing raw
    ``KeyError``/``FileNotFoundError``; the message always names the
    directory and what exactly is malformed.
    """


class MemoryPageBackend:
    """In-RAM page payloads: the default, build-anywhere backend.

    A backend owns only the page *bytes* and their categories; caching,
    accounting and decoding live in :class:`PageStore`, so any number of
    stat-isolated stores (see :meth:`PageStore.view`) can share one
    backend.  The file/mmap counterpart is
    :class:`repro.storage.filestore.FilePageBackend`.

    With ``codec`` set (a name from :mod:`repro.storage.codec`), pages
    are held *compressed* in RAM and decoded per :meth:`payload` — the
    in-memory mirror of a compressed file store, for fitting more pages
    into the same footprint at a decode cost per read.
    """

    #: Memory backends always accept :meth:`append`.
    writable = True

    def __init__(self, codec: str | None = None):
        if codec is not None:
            from repro.storage.codec import get_codec

            codec = get_codec(codec)
            if codec.name == "raw":
                codec = None
        self._codec = codec
        self._pages: list[bytes] = []
        self._categories: list[str] = []

    @property
    def codec(self) -> str:
        """Name of the codec page bytes are held under."""
        return "raw" if self._codec is None else self._codec.name

    def append(self, payload: bytes, category: str) -> int:
        """Store one page payload; returns the new page id."""
        page_id = len(self._pages)
        if self._codec is not None:
            payload = self._codec.encode(payload, category)
        self._pages.append(payload)
        self._categories.append(category)
        return page_id

    def rewrite(self, page_id: int, payload: bytes) -> None:
        """Replace one page's payload in place (category unchanged).

        ``bytes`` payloads are immutable, so rebinding the slot never
        mutates bytes a :meth:`fork` sibling may still be reading.
        """
        if self._codec is not None:
            payload = self._codec.encode(payload, self._categories[page_id])
        self._pages[page_id] = payload

    def fork(self) -> "MemoryPageBackend":
        """A copy-on-write clone sharing every current page payload.

        Only the id -> payload lists are copied (O(pages) pointer
        copies); the payloads themselves are shared immutable ``bytes``.
        Appends and rewrites on either side are invisible to the other.
        """
        clone = MemoryPageBackend()
        clone._codec = self._codec
        clone._pages = list(self._pages)
        clone._categories = list(self._categories)
        return clone

    def payload(self, page_id: int) -> bytes:
        """The logical bytes of a page (bounds already checked by the store)."""
        if self._codec is not None:
            return self._codec.decode(
                self._pages[page_id], self._categories[page_id]
            )
        return self._pages[page_id]

    def stored_bytes(self, page_id: int) -> int:
        """Bytes this page actually occupies in RAM (its blob length)."""
        return len(self._pages[page_id])

    def category(self, page_id: int) -> str:
        return self._categories[page_id]

    def iter_categories(self):
        """Yield every page's category, in page-id order."""
        return iter(self._categories)

    def __len__(self) -> int:
        return len(self._pages)


class OverlayPageBackend:
    """Copy-on-write page backend over a read-only base backend.

    Rewrites of base pages land in an in-RAM override table and appends
    accumulate in an in-RAM tail, while unmodified pages keep being
    served by the base (typically a read-only ``mmap``-backed
    :class:`~repro.storage.filestore.FilePageBackend`).  This is how a
    restored snapshot becomes mutable without copying its pages: the
    serving layer forks a restored index, applies updates to the
    overlay, and commits by swapping readers to the forked store.

    Forking an overlay again copies only the override/tail tables; the
    base is shared by every generation in the chain.
    """

    writable = True

    def __init__(self, base):
        if getattr(base, "writable", False):
            raise PageStoreError(
                "an overlay needs a read-only base backend (a writable base "
                "could change pages underneath the overlay)"
            )
        self._base = base
        self._base_len = len(base)
        #: base page id -> replacement payload (only rewritten pages).
        self._overrides: dict = {}
        #: Payloads of pages appended past the base (ids >= _base_len).
        self._tail: list = []
        self._tail_categories: list = []

    def append(self, payload: bytes, category: str) -> int:
        page_id = self._base_len + len(self._tail)
        self._tail.append(payload)
        self._tail_categories.append(category)
        return page_id

    def rewrite(self, page_id: int, payload: bytes) -> None:
        if page_id >= self._base_len:
            self._tail[page_id - self._base_len] = payload
        else:
            self._overrides[page_id] = payload

    def fork(self) -> "OverlayPageBackend":
        """A copy-on-write clone: same base, copied override/tail tables."""
        clone = OverlayPageBackend.__new__(OverlayPageBackend)
        clone._base = self._base
        clone._base_len = self._base_len
        clone._overrides = dict(self._overrides)
        clone._tail = list(self._tail)
        clone._tail_categories = list(self._tail_categories)
        return clone

    def payload(self, page_id: int) -> bytes:
        if page_id >= self._base_len:
            return self._tail[page_id - self._base_len]
        override = self._overrides.get(page_id)
        if override is not None:
            return override
        return self._base.payload(page_id)

    def stored_bytes(self, page_id: int) -> int:
        """Physical bytes of a page: overlay pages sit uncompressed in
        RAM, unchanged pages report the base's stored size."""
        if page_id >= self._base_len or page_id in self._overrides:
            return PAGE_SIZE
        stored = getattr(self._base, "stored_bytes", None)
        return PAGE_SIZE if stored is None else stored(page_id)

    def category(self, page_id: int) -> str:
        if page_id >= self._base_len:
            return self._tail_categories[page_id - self._base_len]
        return self._base.category(page_id)

    def iter_categories(self):
        yield from self._base.iter_categories()
        yield from self._tail_categories

    def __len__(self) -> int:
        return self._base_len + len(self._tail)

    # -- publishing introspection ---------------------------------------
    #
    # Generation publishing (repro.storage.filestore.append_overlay_generation)
    # folds an overlay's changes back into its base directory; these
    # read-only accessors expose exactly what changed.  Treat the
    # returned containers as frozen.

    @property
    def base(self):
        """The read-only backend unchanged pages are served from."""
        return self._base

    @property
    def overrides(self) -> dict:
        """Base page id -> replacement payload, rewritten pages only."""
        return self._overrides

    def tail_pages(self):
        """``(payload, category)`` pairs appended past the base, in order."""
        return list(zip(self._tail, self._tail_categories))


class PageStoreGroup:
    """A read-side facade over several stores (one per index shard).

    A sharded index keeps one :class:`PageStore` per shard so that page
    ids, caches and I/O counters stay shard-local.  Harnesses, however,
    speak to *one* store (``clear_cache`` before a query, ``stats``
    snapshot/diff around it) — this facade lets them drive the whole
    shard set unchanged: :attr:`stats` merges every member's counters
    into one fresh :class:`IOStats` (whose ``snapshot``/``diff`` then
    work as usual), and cache clearing fans out to all members.  Shards
    a query planner prunes simply contribute zero deltas.
    """

    def __init__(self, stores):
        self.stores = list(stores)
        if not self.stores:
            raise PageStoreError("a store group needs at least one store")

    @property
    def stats(self) -> IOStats:
        """Member counters merged into one fresh :class:`IOStats`."""
        merged = IOStats()
        for store in self.stores:
            merged.merge(store.stats)
        return merged

    def clear_cache(self) -> None:
        for store in self.stores:
            store.clear_cache()

    def close(self) -> None:
        """Close every member store that supports closing."""
        for store in self.stores:
            close = getattr(store, "close", None)
            if close is not None:
                close()

    def __len__(self) -> int:
        return sum(len(store) for store in self.stores)

    def pages_in(self, *categories: str) -> int:
        return sum(store.pages_in(*categories) for store in self.stores)

    def bytes_in(self, *categories: str) -> int:
        return sum(store.bytes_in(*categories) for store in self.stores)

    @property
    def size_bytes(self) -> int:
        return sum(store.size_bytes for store in self.stores)


class PageStore:
    """Append-only page store with category-tagged I/O accounting.

    Parameters
    ----------
    buffer:
        Optional :class:`BufferPool` absorbing repeated reads.  By
        default an *unbounded* pool is attached, modeling the OS page
        cache within one query; call :meth:`clear_cache` to simulate the
        paper's cache clearing between queries.
    decoded:
        Optional :class:`DecodedPageCache` memoizing decoded page
        contents (the CPU-side analogue of the buffer pool), invalidated
        together with the buffer by :meth:`clear_cache`.
    backend:
        Where the page bytes live.  Defaults to a fresh
        :class:`MemoryPageBackend`; pass a shared backend (or use
        :meth:`view`) to get multiple stores with independent caches and
        stats over the same pages — e.g. one per serving worker.
    """

    def __init__(
        self,
        buffer: BufferPool | None = None,
        decoded: DecodedPageCache | None = None,
        backend=None,
    ):
        self.backend = MemoryPageBackend() if backend is None else backend
        self.buffer = BufferPool() if buffer is None else buffer
        self.decoded = DecodedPageCache() if decoded is None else decoded
        self.stats = IOStats()
        #: Optional staging area a trajectory prefetcher fills ahead of
        #: the next query (see :mod:`repro.query.prefetch`).  When set,
        #: a buffer-missed read first checks the area: a staged page is
        #: consumed without physical I/O and counted as a *prefetch hit*
        #: — the read happened earlier, on the prefetcher's store.  The
        #: serving layer attaches one shared area to every worker view
        #: of a generation; ``None`` (the default) keeps the read path
        #: byte-identical to the pre-prefetch engine.
        self.prefetch_area = None

    def view(
        self,
        buffer: BufferPool | None = None,
        decoded: DecodedPageCache | None = None,
    ) -> "PageStore":
        """A stat-isolated store over the same pages.

        The returned store shares this store's backend (same page ids,
        same bytes) but has its own buffer pool, decoded-page cache and
        :class:`IOStats`, so concurrent readers never contend on — or
        pollute — each other's caches and counters.
        """
        return PageStore(buffer=buffer, decoded=decoded, backend=self.backend)

    # -- allocation ----------------------------------------------------

    def allocate(self, payload: bytes, category: str) -> int:
        """Persist a page and return its page id.

        The payload must be exactly one page; categories must be one of
        :data:`repro.storage.stats.ALL_CATEGORIES` so that breakdown
        figures can attribute every read.
        """
        if len(payload) != PAGE_SIZE:
            raise PageStoreError(
                f"page payload must be exactly {PAGE_SIZE} bytes, got {len(payload)}"
            )
        if category not in ALL_CATEGORIES:
            raise PageStoreError(f"unknown page category: {category!r}")
        if not self.backend.writable:
            raise PageStoreError("cannot allocate pages on a read-only backend")
        page_id = self.backend.append(payload, category)
        self.stats.record_write(category)
        return page_id

    def rewrite(self, page_id: int, payload: bytes) -> None:
        """Replace an existing page's payload (its category is kept).

        The write is charged to the page's category and this store's
        own buffer/decoded caches are invalidated for the page.  Sibling
        :meth:`view` stores are *not* invalidated — concurrent readers
        are expected to serve from an immutable generation and pick up
        rewrites only at a commit point (see
        :meth:`repro.query.service.QueryService.apply_updates`).
        """
        if len(payload) != PAGE_SIZE:
            raise PageStoreError(
                f"page payload must be exactly {PAGE_SIZE} bytes, got {len(payload)}"
            )
        self._check_bounds(page_id)
        if not self.backend.writable:
            raise PageStoreError("cannot rewrite pages on a read-only backend")
        rewrite = getattr(self.backend, "rewrite", None)
        if rewrite is None:
            raise PageStoreError(
                f"backend {type(self.backend).__name__} does not support rewrite"
            )
        rewrite(page_id, payload)
        self.stats.record_write(self.backend.category(page_id))
        if self.buffer is not None:
            self.buffer.discard(page_id)
        if self.decoded is not None:
            self.decoded.discard(page_id)

    def fork(self) -> "PageStore":
        """A copy-on-write clone of this store (fresh caches and stats).

        Unchanged page payloads are shared with this store; appends and
        rewrites on the fork are invisible here and vice versa.  Memory
        backends fork natively; a read-only file backend forks into an
        :class:`OverlayPageBackend` that keeps modifications in RAM.
        The returned store is always a plain :class:`PageStore`.
        """
        fork = getattr(self.backend, "fork", None)
        if fork is None:
            raise PageStoreError(
                f"backend {type(self.backend).__name__} does not support fork; "
                "snapshot the store and fork the restored copy instead"
            )
        return PageStore(backend=fork())

    # -- reading -------------------------------------------------------

    def read(self, page_id: int) -> bytes:
        """Fetch a page, counting a physical read on buffer miss.

        A buffer miss consults the attached prefetch area (if any)
        before charging physical I/O: consuming a staged page counts a
        *prefetch hit* in its category instead of a read, and any
        decoded forms staged with the page seed this store's decoded
        cache — the work moved earlier, it never disappears, so
        ``reads + prefetch_hits`` always equals the reads of a
        prefetch-free run.
        """
        payload = self._payload(page_id)
        if self.buffer is not None:
            cached = self.buffer.get(page_id)
            if cached is not None:
                self.stats.record_cache_hit()
                return cached
            if self.buffer.byte_capacity is None:
                self.buffer.put(page_id, payload)
            else:
                # A byte-budgeted pool charges each page its *physical*
                # footprint: compressed stores fit more pages into the
                # same budget — the larger-than-RAM win.
                stored = getattr(self.backend, "stored_bytes", None)
                cost = len(payload) if stored is None else stored(page_id)
                self.buffer.put(page_id, payload, cost)
        area = self.prefetch_area
        if area is not None:
            staged = area.take(page_id)
            if staged is not None:
                self.stats.record_prefetch_hit(self.backend.category(page_id))
                if self.decoded is not None:
                    for kind, decoded in staged.items():
                        self.decoded.seed(kind, page_id, decoded)
                return payload
        self.stats.record_read(self.backend.category(page_id))
        return payload

    def read_many(self, page_ids) -> list:
        """Fetch a batch of pages with the same accounting as :meth:`read`.

        Batched crawls hand whole frontiers of object pages here instead
        of issuing one :meth:`read` per record; the page-read accounting
        is identical read-for-read.
        """
        return [self.read(int(page_id)) for page_id in page_ids]

    # -- decoded reads -------------------------------------------------

    def read_metadata(self, page_id: int, cached: bool = True) -> list:
        """Read + decode a metadata page, memoizing the decoded records.

        ``cached=False`` decodes unconditionally (the scalar reference
        path); either way the decode is counted in :attr:`stats` so
        harnesses can report decode work next to page reads.
        """
        payload = self.read(page_id)
        if not cached:
            self.stats.record_decode(DECODE_METADATA, hit=False)
            return decode_metadata_page(payload)
        return self.decoded.get_or_decode(
            DECODE_METADATA, page_id, payload, decode_metadata_page, self.stats
        )

    def read_elements(self, page_id: int, cached: bool = True):
        """Read + decode an element page (object page or R-Tree leaf)."""
        payload = self.read(page_id)
        if not cached:
            self.stats.record_decode(DECODE_ELEMENT, hit=False)
            return decode_element_page(payload)
        return self.decoded.get_or_decode(
            DECODE_ELEMENT, page_id, payload, decode_element_page, self.stats
        )

    def read_elements_many(self, page_ids) -> list:
        """Decoded element arrays for a batch of pages.

        Exactly :meth:`read_elements` per page — one definition of the
        read+decode path — with :meth:`read_many`'s accounting.
        """
        return [self.read_elements(int(page_id)) for page_id in page_ids]

    def read_silent(self, page_id: int) -> bytes:
        """Fetch a page without any accounting (index construction only).

        Bulkloading reads its own just-written pages; the paper's
        build-time figures measure wall-clock, not page reads, so
        construction-time access is not charged as query I/O.
        """
        return self._payload(page_id)

    def _check_bounds(self, page_id: int) -> None:
        if not 0 <= page_id < len(self.backend):
            raise PageStoreError(
                f"page id {page_id} out of range (store has {len(self.backend)} pages)"
            )

    def _payload(self, page_id: int) -> bytes:
        self._check_bounds(page_id)
        return self.backend.payload(page_id)

    # -- cache control ---------------------------------------------------

    def clear_cache(self) -> None:
        """Drop buffered pages *and* decoded pages (per-query cache clearing)."""
        if self.buffer is not None:
            self.buffer.clear()
        if self.decoded is not None:
            self.decoded.clear()

    # -- introspection ---------------------------------------------------

    def category(self, page_id: int) -> str:
        """The category a page was allocated under."""
        self._check_bounds(page_id)
        return self.backend.category(page_id)

    def __len__(self) -> int:
        return len(self.backend)

    def pages_in(self, *categories: str) -> int:
        """Number of allocated pages in the given categories."""
        return sum(1 for c in self.backend.iter_categories() if c in categories)

    def bytes_in(self, *categories: str) -> int:
        """Allocated bytes in the given categories."""
        return self.pages_in(*categories) * PAGE_SIZE

    @property
    def size_bytes(self) -> int:
        """Total allocated bytes (index size, as in Fig. 11/22)."""
        return len(self.backend) * PAGE_SIZE
