"""On-disk layout constants, mirroring the paper's setup (Sec. VII-A).

"All approaches store data on the disk in 4K pages. ... All
implementations store 85 spatial elements on a 4K page."  A spatial
element on disk is its axis-aligned MBR — 6 double-precision floats —
because the paper stores only MBRs on leaf/object pages for fairness.
"""

from __future__ import annotations

from repro.geometry.mbr import DIMS

#: Disk page size in bytes (the paper's 4 K pages).
PAGE_SIZE = 4096

#: Bytes per double-precision float.
FLOAT_BYTES = 8

#: Bytes per serialized MBR: 6 doubles (2 corners x 3 dims).
MBR_BYTES = 2 * DIMS * FLOAT_BYTES

#: Bytes reserved at the start of every page for the page header
#: (element/entry count and flags).
PAGE_HEADER_BYTES = 16

#: Bytes of a page pointer (page id) on disk.
POINTER_BYTES = 8

#: Spatial elements per object/leaf page: (4096 - 16) // 48 == 85,
#: matching the paper's 85 elements per 4 K page exactly.
OBJECT_PAGE_CAPACITY = (PAGE_SIZE - PAGE_HEADER_BYTES) // MBR_BYTES

#: Bytes per internal-node entry: child page pointer + child MBR.
NODE_ENTRY_BYTES = POINTER_BYTES + MBR_BYTES

#: Internal-node fanout: entries per 4 K page.
NODE_FANOUT = (PAGE_SIZE - PAGE_HEADER_BYTES) // NODE_ENTRY_BYTES

#: Bytes of a neighbor-record pointer inside a metadata record.  Record
#: ids are dense, so 32 bits cover 4 G partitions (360 G elements) —
#: neighbor lists are the bulk of the metadata, so the compact pointer
#: nearly doubles the records per seed-leaf page.
RECORD_POINTER_BYTES = 4

#: Fixed part of a serialized FLAT metadata record: page MBR +
#: partition MBR + object page pointer + neighbor count (see
#: :mod:`repro.storage.serial`).  Each neighbor adds
#: RECORD_POINTER_BYTES.
METADATA_RECORD_FIXED_BYTES = 2 * MBR_BYTES + POINTER_BYTES + 4

assert OBJECT_PAGE_CAPACITY == 85, "layout drifted from the paper's 85/page"
