"""Disk timing model for converting page reads into simulated I/O time.

The paper's testbed stripes four 10 kRPM SAS disks and reports that
query execution is I/O-bound: "The share of time used for disk
operations ranges for both benchmarks between 97.8 % and 98.8 %"
(Sec. VII-E.2), and the time curves (Figs. 13, 17) have the same shape
as the page-read curves (Figs. 12, 16).  We reproduce exactly that
relation: simulated time = page reads x per-read latency + measured CPU
time.  Random 4 K reads on such a disk are seek + rotational latency
dominated.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskModel:
    """Latency model of one random 4 KiB page read.

    Defaults approximate a 10 kRPM SAS drive: ~4.5 ms average seek,
    3 ms average rotational latency (half a revolution at 10 kRPM),
    and a 150 MB/s transfer rate.
    """

    seek_ms: float = 4.5
    rotational_ms: float = 3.0
    transfer_mb_per_s: float = 150.0
    page_bytes: int = 4096

    def __post_init__(self):
        if self.seek_ms < 0 or self.rotational_ms < 0:
            raise ValueError("latencies must be non-negative")
        if self.transfer_mb_per_s <= 0:
            raise ValueError("transfer rate must be positive")

    @property
    def random_read_ms(self) -> float:
        """Milliseconds for one random page read."""
        transfer_ms = self.page_bytes / (self.transfer_mb_per_s * 1e6) * 1e3
        return self.seek_ms + self.rotational_ms + transfer_ms

    def io_seconds(self, page_reads: int, sequential_fraction: float = 0.0) -> float:
        """Simulated I/O time for *page_reads* random reads.

        ``sequential_fraction`` discounts seek+rotation for reads that
        follow the previous page on disk (bulk scans); the paper's
        query workloads are effectively random so the default is 0.
        """
        if page_reads < 0:
            raise ValueError("page_reads must be non-negative")
        if not 0.0 <= sequential_fraction <= 1.0:
            raise ValueError("sequential_fraction must be within [0, 1]")
        transfer_ms = self.page_bytes / (self.transfer_mb_per_s * 1e6) * 1e3
        random_reads = page_reads * (1.0 - sequential_fraction)
        sequential_reads = page_reads * sequential_fraction
        total_ms = random_reads * self.random_read_ms + sequential_reads * transfer_ms
        return total_ms / 1e3

    def total_seconds(self, page_reads: int, cpu_seconds: float = 0.0) -> float:
        """Simulated end-to-end time: I/O model plus measured CPU time."""
        if cpu_seconds < 0:
            raise ValueError("cpu_seconds must be non-negative")
        return self.io_seconds(page_reads) + cpu_seconds

    def io_bound_share(self, page_reads: int, cpu_seconds: float) -> float:
        """Fraction of total simulated time spent on I/O (paper: ~98 %)."""
        total = self.total_seconds(page_reads, cpu_seconds)
        return self.io_seconds(page_reads) / total if total > 0 else 0.0
