"""Pluggable physical page codecs: logical 4 KiB pages, smaller on disk.

Everything above the byte backends — crawl accounting, decoded caches,
snapshot pins — speaks in *logical* pages of exactly
:data:`~repro.storage.constants.PAGE_SIZE` bytes.  A codec sits strictly
at the storage boundary and maps each logical page to a variable-length
*blob* that actually hits ``pages.dat`` (or RAM):

* ``raw`` — the identity codec; blobs are the logical bytes.  Default,
  and the implicit codec of every format-v2 store directory.
* ``delta64`` — lossless coordinate compression exploiting what a page
  *is*: MBRs within a page are spatially clustered, so their
  coordinates, expressed on the data's coordinate grid, differ from the
  page's min corner by small integers.  Per page kind:

  - **element pages** (object pages, R-tree leaves): coordinates are
    rescaled to exact integers (the smallest ``k`` with every value an
    integer multiple of ``2**-k``), delta-encoded against the page's
    per-axis minimum, byte-shuffled (transposed so each delta's i-th
    bytes are adjacent — the high bytes are almost all zero) and
    deflated;
  - **node pages** (seed/R-tree internal): same treatment for the child
    MBRs, child page ids shuffled alongside;
  - **metadata pages** (seed-tree leaves): both MBRs per record share
    the page's min corner, object-page ids and neighbor counts are
    shuffled columns, and each neighbor-id list is zigzag-delta varint
    encoded (neighbor lists point at nearby records, so deltas are
    tiny);
  - any page the structured paths cannot reproduce **bit-exactly**
    (NaN payloads, ``-0.0``, mixed subnormal/normal magnitudes, foreign
    bytes) falls back to an opaque whole-page transform (XOR-delta over
    64-bit words + byte shuffle + deflate), and to verbatim storage if
    even that does not shrink.

Every encoder *verifies its own round trip* before choosing a
structured mode — ``decode(encode(page)) == page`` holds bit-for-bit
for arbitrary payloads, by construction, not by convention.  Decoding
dispatches on a mode byte in the blob, never on trust in the category.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.storage.constants import (
    PAGE_HEADER_BYTES,
    PAGE_SIZE,
)
from repro.storage.serial import (
    _FLAG_LEAF,
    _HEADER,
    decode_element_page,
    decode_node_page,
)
from repro.storage.stats import (
    CATEGORY_METADATA,
    CATEGORY_OBJECT,
    CATEGORY_RTREE_INTERNAL,
    CATEGORY_RTREE_LEAF,
    CATEGORY_SEED_INTERNAL,
)

#: Codec of every store that does not say otherwise (and of all
#: format-v2 directories, which predate the codec field).
DEFAULT_CODEC = "raw"

_ZLIB_LEVEL = 6

# delta64 blob modes (first byte of every blob).
_MODE_STORED = 0    # verbatim logical page
_MODE_OPAQUE = 1    # XOR-delta u64 + shuffle + deflate, whole page
_MODE_ELEMENT = 2   # grid-integer MBR deltas
_MODE_NODE = 3      # grid-integer MBR deltas + child ids
_MODE_METADATA = 4  # grid-integer MBR deltas + varint neighbor lists

_U64_ONE = np.uint64(1)
_U64_SEVEN = np.uint64(7)
_U64_LOW7 = np.uint64(0x7F)


class CodecError(Exception):
    """A blob cannot be decoded (corrupt stream or wrong codec)."""


# -- bit-level helpers ----------------------------------------------------


def _shuffle(array: np.ndarray) -> bytes:
    """Byte-transpose: all first bytes, then all second bytes, ...

    Fixed-width values whose high bytes are mostly zero (small deltas)
    become long zero runs the deflate stage erases.
    """
    array = np.ascontiguousarray(array)
    width = array.dtype.itemsize
    return array.view(np.uint8).reshape(-1, width).T.tobytes()


def _unshuffle(data: bytes, dtype, count: int) -> np.ndarray:
    """Inverse of :func:`_shuffle` for *count* values of *dtype*."""
    width = np.dtype(dtype).itemsize
    if len(data) != width * count:
        raise CodecError(
            f"shuffled stream holds {len(data)} bytes, expected {width * count}"
        )
    planes = np.frombuffer(data, dtype=np.uint8).reshape(width, count)
    return np.ascontiguousarray(planes.T).view(dtype).ravel()


def _zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed int64 to unsigned so small magnitudes stay small."""
    signed = np.ascontiguousarray(values, dtype=np.int64)
    sign = (signed >> np.int64(63)).view(np.uint64)
    return (signed.view(np.uint64) << _U64_ONE) ^ sign


def _unzigzag(values: np.ndarray) -> np.ndarray:
    half = values >> _U64_ONE
    mask = (values & _U64_ONE) * np.uint64(0xFFFFFFFFFFFFFFFF)
    return (half ^ mask).view(np.int64)


def encode_varints(values: np.ndarray) -> bytes:
    """LEB128-encode an array of uint64 (vectorized, no Python loop)."""
    v = np.ascontiguousarray(values, dtype=np.uint64)
    if v.size == 0:
        return b""
    # Byte length of each value: 1 + one per extra 7-bit group.
    lengths = np.ones(v.size, dtype=np.int64)
    rest = v >> _U64_SEVEN
    while rest.any():
        lengths += rest != 0
        rest >>= _U64_SEVEN
    max_len = int(lengths.max())
    shifts = np.arange(max_len, dtype=np.uint64) * _U64_SEVEN
    groups = ((v[:, None] >> shifts[None, :]) & _U64_LOW7).astype(np.uint8)
    position = np.arange(max_len)
    continuation = position[None, :] < (lengths - 1)[:, None]
    groups |= continuation.astype(np.uint8) << 7
    keep = position[None, :] < lengths[:, None]
    # Boolean selection ravels row-major, preserving per-value byte order.
    return groups[keep].tobytes()


def decode_varints(data: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`encode_varints`; the stream must hold exactly
    *count* values and nothing else."""
    if count == 0:
        if data:
            raise CodecError("varint stream has trailing bytes")
        return np.empty(0, dtype=np.uint64)
    raw = np.frombuffer(data, dtype=np.uint8)
    ends = np.flatnonzero(raw < 128)
    if ends.size != count or raw.size == 0 or ends[-1] != raw.size - 1:
        raise CodecError(
            f"varint stream holds {ends.size} values, expected {count}"
        )
    starts = np.concatenate(([0], ends[:-1] + 1))
    if (ends - starts).max() >= 10:
        raise CodecError("varint value longer than 10 bytes")
    offsets = np.arange(raw.size, dtype=np.int64) - np.repeat(
        starts, ends - starts + 1
    )
    groups = (raw & np.uint8(0x7F)).astype(np.uint64) << (
        offsets.view(np.uint64) * _U64_SEVEN
    )
    return np.add.reduceat(groups, starts)


def _grid_exponent(values: np.ndarray):
    """Smallest ``k`` with every value an exact int64 multiple of ``2**-k``.

    Returns ``None`` when no such grid exists: non-finite values,
    ``-0.0`` (its sign bit would not survive the integer round trip),
    or magnitudes that overflow 2**53 grid steps (mixed subnormal and
    normal values).  Exactness is decided on the bit patterns, not by
    trial multiplication.
    """
    v = np.ascontiguousarray(values, dtype=np.float64).ravel()
    if v.size == 0:
        return 0
    if not np.all(np.isfinite(v)):
        return None
    bits = v.view(np.uint64)
    exponent = ((bits >> np.uint64(52)) & np.uint64(0x7FF)).astype(np.int64)
    fraction = bits & np.uint64((1 << 52) - 1)
    mantissa = np.where(
        exponent > 0, fraction | np.uint64(1 << 52), fraction
    )
    nonzero = mantissa != 0
    if np.any(bits[~nonzero] == np.uint64(1 << 63)):
        return None  # -0.0
    if not np.any(nonzero):
        return 0
    m = mantissa[nonzero]
    lowest_bit = (m & (~m + _U64_ONE)).astype(np.float64)
    trailing = np.log2(lowest_bit).astype(np.int64)  # exact: powers of two
    unbiased = np.where(exponent[nonzero] > 0, exponent[nonzero], 1) - 1075
    # value = ±odd * 2**(unbiased + trailing)
    k = int(max(0, -(unbiased + trailing).min()))
    with np.errstate(over="ignore"):
        scaled = np.ldexp(v, k)
    if not np.all(np.abs(scaled) < 2.0 ** 53):
        return None
    return k


def _grid_ints(values: np.ndarray, k: int) -> np.ndarray:
    """The (exact) int64 grid multiples of *values* at exponent *k*."""
    return np.round(
        np.ldexp(np.ascontiguousarray(values, dtype=np.float64), k)
    ).astype(np.int64)


def _grid_floats(ints: np.ndarray, k: int) -> np.ndarray:
    """Inverse of :func:`_grid_ints` — exact, the original floats."""
    return np.ldexp(ints.astype(np.float64), -k)


# -- codecs ---------------------------------------------------------------


class PageCodec:
    """One physical page representation.

    ``encode`` may return any length (pages stop being fixed-size on
    disk); ``decode`` must return the exact logical
    :data:`~repro.storage.constants.PAGE_SIZE` bytes.  Both take the
    page's category, though decoders are expected to be self-describing.
    """

    name: str = "?"

    def encode(self, payload: bytes, category: str) -> bytes:
        raise NotImplementedError

    def decode(self, blob: bytes, category: str) -> bytes:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class RawCodec(PageCodec):
    """The identity codec: blobs are the logical page bytes."""

    name = "raw"

    def encode(self, payload: bytes, category: str) -> bytes:
        return payload

    def decode(self, blob: bytes, category: str) -> bytes:
        return blob


class Delta64Codec(PageCodec):
    """Grid-integer delta compression of coordinate pages (lossless).

    See the module docstring for the format.  Encoding verifies the
    round trip and falls back (opaque transform, then verbatim) on any
    page the structured paths cannot reproduce bit-exactly, so
    ``decode(encode(p)) == p`` for *every* 4 KiB payload.
    """

    name = "delta64"

    _ELEMENT_HEAD = struct.Struct("<BHh")     # mode, count, grid exponent
    _NODE_HEAD = struct.Struct("<BHBh")       # mode, count, leaf, exponent
    _METADATA_HEAD = struct.Struct("<BHh")    # mode, count, grid exponent

    # -- public API ----------------------------------------------------

    def encode(self, payload: bytes, category: str) -> bytes:
        if len(payload) != PAGE_SIZE:
            raise ValueError(
                f"expected a {PAGE_SIZE}-byte page, got {len(payload)}"
            )
        structured = self._STRUCTURED.get(category)
        blob = None
        if structured is not None:
            try:
                blob = structured(self, payload)
            except Exception:
                blob = None
        if blob is not None:
            # A structured mode is only trusted if it reproduces the
            # page bit-for-bit through the real decode path.
            try:
                verified = self.decode(blob, category) == payload
            except Exception:
                verified = False
            if not verified:
                blob = None
        if blob is None:
            blob = self._encode_opaque(payload)
        if len(blob) > PAGE_SIZE:
            blob = bytes([_MODE_STORED]) + payload
        return blob

    def decode(self, blob: bytes, category: str) -> bytes:
        if not blob:
            raise CodecError("empty delta64 blob")
        mode = blob[0]
        try:
            if mode == _MODE_STORED:
                page = blob[1:]
                if len(page) != PAGE_SIZE:
                    raise CodecError("stored blob is not one page")
                return page
            if mode == _MODE_OPAQUE:
                return self._decode_opaque(blob)
            if mode == _MODE_ELEMENT:
                return self._decode_element(blob)
            if mode == _MODE_NODE:
                return self._decode_node(blob)
            if mode == _MODE_METADATA:
                return self._decode_metadata(blob)
        except CodecError:
            raise
        except Exception as exc:
            raise CodecError(f"corrupt delta64 blob: {exc}") from exc
        raise CodecError(f"unknown delta64 blob mode {mode}")

    # -- opaque fallback ----------------------------------------------

    def _encode_opaque(self, payload: bytes) -> bytes:
        words = np.frombuffer(payload, dtype="<u8")
        deltas = words ^ np.concatenate(
            (words[:1] * np.uint64(0), words[:-1])
        )
        return bytes([_MODE_OPAQUE]) + zlib.compress(
            _shuffle(deltas), _ZLIB_LEVEL
        )

    def _decode_opaque(self, blob: bytes) -> bytes:
        deltas = _unshuffle(
            zlib.decompress(blob[1:]), "<u8", PAGE_SIZE // 8
        )
        words = np.bitwise_xor.accumulate(deltas)
        return words.astype("<u8").tobytes()

    # -- element pages -------------------------------------------------

    def _encode_element(self, payload: bytes):
        mbrs = decode_element_page(payload)
        k = _grid_exponent(mbrs)
        if k is None or k > 32767:
            return None
        ints = _grid_ints(mbrs, k)
        mins = ints.min(axis=0) if len(ints) else np.zeros(6, dtype=np.int64)
        deltas = (ints - mins).view(np.uint64)
        head = self._ELEMENT_HEAD.pack(_MODE_ELEMENT, len(mbrs), k)
        return (
            head
            + mins.astype("<i8").tobytes()
            + zlib.compress(_shuffle(deltas), _ZLIB_LEVEL)
        )

    def _decode_element(self, blob: bytes) -> bytes:
        head = self._ELEMENT_HEAD
        _mode, count, k = head.unpack_from(blob)
        mins = np.frombuffer(blob, dtype="<i8", count=6, offset=head.size)
        deltas = _unshuffle(
            zlib.decompress(blob[head.size + 48:]), "<u8", count * 6
        )
        ints = mins[None, :] + deltas.view(np.int64).reshape(count, 6)
        body = _grid_floats(ints, k).astype("<f8").tobytes()
        page = _HEADER.pack(count, _FLAG_LEAF) + body
        return page + b"\x00" * (PAGE_SIZE - len(page))

    # -- node pages ----------------------------------------------------

    def _encode_node(self, payload: bytes):
        child_ids, child_mbrs, leaf = decode_node_page(payload)
        k = _grid_exponent(child_mbrs)
        if k is None or k > 32767:
            return None
        ints = _grid_ints(child_mbrs, k)
        mins = ints.min(axis=0) if len(ints) else np.zeros(6, dtype=np.int64)
        deltas = (ints - mins).view(np.uint64)
        head = self._NODE_HEAD.pack(
            _MODE_NODE, len(child_ids), 1 if leaf else 0, k
        )
        stream = _shuffle(child_ids.astype("<u8")) + _shuffle(deltas)
        return (
            head
            + mins.astype("<i8").tobytes()
            + zlib.compress(stream, _ZLIB_LEVEL)
        )

    def _decode_node(self, blob: bytes) -> bytes:
        head = self._NODE_HEAD
        _mode, count, leaf, k = head.unpack_from(blob)
        mins = np.frombuffer(blob, dtype="<i8", count=6, offset=head.size)
        stream = zlib.decompress(blob[head.size + 48:])
        child_ids = _unshuffle(stream[: count * 8], "<u8", count)
        deltas = _unshuffle(stream[count * 8:], "<u8", count * 6)
        ints = mins[None, :] + deltas.view(np.int64).reshape(count, 6)
        mbrs = _grid_floats(ints, k)
        body = bytearray(_HEADER.pack(count, _FLAG_LEAF if leaf else 0))
        entries = np.empty(
            count, dtype=np.dtype([("id", "<u8"), ("mbr", "<f8", (6,))])
        )
        entries["id"] = child_ids
        entries["mbr"] = mbrs
        body += entries.tobytes()
        return bytes(body) + b"\x00" * (PAGE_SIZE - len(body))

    # -- metadata pages ------------------------------------------------

    def _encode_metadata(self, payload: bytes):
        from repro.storage.serial import decode_metadata_page

        records = decode_metadata_page(payload)
        count = len(records)
        coords = np.empty((count, 12), dtype=np.float64)
        object_page_ids = np.empty(count, dtype="<u8")
        neighbor_counts = np.empty(count, dtype="<u4")
        neighbor_chunks = []
        for i, (page_mbr, partition_mbr, opid, neighbors) in enumerate(records):
            coords[i, :6] = page_mbr
            coords[i, 6:] = partition_mbr
            object_page_ids[i] = opid
            neighbor_counts[i] = len(neighbors)
            neighbor_chunks.append(np.asarray(neighbors, dtype=np.int64))
        k = _grid_exponent(coords)
        if k is None or k > 32767:
            return None
        ints = _grid_ints(coords, k).reshape(-1, 6)  # both MBRs as rows
        mins = ints.min(axis=0) if count else np.zeros(6, dtype=np.int64)
        deltas = (ints - mins).view(np.uint64)

        neighbors = (
            np.concatenate(neighbor_chunks)
            if neighbor_chunks
            else np.empty(0, dtype=np.int64)
        )
        # Per-list delta chain: each list restarts from zero, values
        # within a list difference against their predecessor.
        diffs = neighbors.copy()
        diffs[1:] -= neighbors[:-1]
        starts = np.concatenate(
            ([0], np.cumsum(neighbor_counts.astype(np.int64))[:-1])
        )
        resets = starts[starts < neighbors.size]
        diffs[resets] = neighbors[resets]
        varints = encode_varints(_zigzag(diffs))

        head = self._METADATA_HEAD.pack(_MODE_METADATA, count, k)
        stream = (
            _shuffle(deltas)
            + object_page_ids.tobytes()
            + neighbor_counts.tobytes()
            + varints
        )
        return (
            head
            + mins.astype("<i8").tobytes()
            + zlib.compress(stream, _ZLIB_LEVEL)
        )

    def _decode_metadata(self, blob: bytes) -> bytes:
        head = self._METADATA_HEAD
        _mode, count, k = head.unpack_from(blob)
        mins = np.frombuffer(blob, dtype="<i8", count=6, offset=head.size)
        stream = zlib.decompress(blob[head.size + 48:])
        cut_coords = count * 96
        cut_opids = cut_coords + count * 8
        cut_counts = cut_opids + count * 4
        deltas = _unshuffle(stream[:cut_coords], "<u8", count * 12)
        object_page_ids = np.frombuffer(
            stream, dtype="<u8", count=count, offset=cut_coords
        )
        neighbor_counts = np.frombuffer(
            stream, dtype="<u4", count=count, offset=cut_opids
        ).astype(np.int64)
        total = int(neighbor_counts.sum())
        diffs = _unzigzag(decode_varints(stream[cut_counts:], total))
        chained = np.cumsum(diffs)
        starts = np.concatenate(([0], np.cumsum(neighbor_counts)[:-1]))
        bases = np.zeros(count, dtype=np.int64)
        nonempty = starts > 0
        bases[nonempty] = chained[starts[nonempty] - 1]
        neighbors = chained - np.repeat(bases, neighbor_counts)

        ints = mins[None, :] + deltas.view(np.int64).reshape(-1, 6)
        coords = _grid_floats(ints, k).reshape(count, 12)

        # Scatter-assemble the variable-size records into the page.
        record_sizes = 108 + 4 * neighbor_counts
        offsets = PAGE_HEADER_BYTES + np.concatenate(
            ([0], np.cumsum(record_sizes)[:-1])
        ).astype(np.int64)
        if count and int(offsets[-1] + record_sizes[-1]) > PAGE_SIZE:
            raise CodecError("metadata records overflow the page")
        page = np.zeros(PAGE_SIZE, dtype=np.uint8)
        page[:PAGE_HEADER_BYTES] = np.frombuffer(
            _HEADER.pack(count, _FLAG_LEAF), dtype=np.uint8
        )
        if count:
            span = np.arange(96)
            page[(offsets[:, None] + span).ravel()] = (
                coords.astype("<f8").view(np.uint8).ravel()
            )
            span = np.arange(8)
            page[(offsets[:, None] + 96 + span).ravel()] = (
                object_page_ids.astype("<u8").view(np.uint8).ravel()
            )
            span = np.arange(4)
            page[(offsets[:, None] + 104 + span).ravel()] = (
                neighbor_counts.astype("<u4").view(np.uint8).ravel()
            )
        if total:
            local = np.arange(total, dtype=np.int64) - np.repeat(
                starts, neighbor_counts
            )
            nb_off = np.repeat(offsets + 108, neighbor_counts) + 4 * local
            page[(nb_off[:, None] + np.arange(4)).ravel()] = (
                neighbors.astype("<u4").view(np.uint8).ravel()
            )
        return page.tobytes()

    _STRUCTURED = {
        CATEGORY_OBJECT: _encode_element,
        CATEGORY_RTREE_LEAF: _encode_element,
        CATEGORY_SEED_INTERNAL: _encode_node,
        CATEGORY_RTREE_INTERNAL: _encode_node,
        CATEGORY_METADATA: _encode_metadata,
    }


# -- registry -------------------------------------------------------------

_CODECS: dict = {}


def register_codec(codec: PageCodec) -> PageCodec:
    """Add a codec to the registry (name collisions overwrite)."""
    _CODECS[codec.name] = codec
    return codec


def available_codecs() -> list:
    """Registered codec names, sorted."""
    return sorted(_CODECS)


def get_codec(codec) -> PageCodec:
    """Resolve a codec name (or pass a codec instance through)."""
    if isinstance(codec, PageCodec):
        return codec
    try:
        return _CODECS[codec]
    except KeyError:
        raise ValueError(
            f"unknown page codec {codec!r} (registered: "
            f"{', '.join(available_codecs())})"
        ) from None


register_codec(RawCodec())
register_codec(Delta64Codec())
