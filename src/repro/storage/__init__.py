"""Simulated disk storage: 4 KiB pages, byte-exact layout, I/O accounting.

The paper's evaluation is defined almost entirely in terms of *disk page
reads* (all approaches store data in 4 K pages, 85 spatial elements per
page, Sec. VII-A).  This package provides a faithful, instrumented
substitute for the authors' SAS disk array:

* :class:`~repro.storage.pagestore.PageStore` — an append-only page
  store; every page belongs to a *category* (object page, R-Tree leaf,
  metadata, ...) and every read is counted per category.  Page bytes
  live behind a pluggable backend; :meth:`PageStore.view` hands out
  stat-isolated stores over the same pages for concurrent readers.
* :class:`~repro.storage.filestore.FilePageStore` — the same store over
  a single on-disk file, reopened read-only through ``mmap``
  (build-once/reopen-many; the substrate of index snapshots and the
  serving layer).
* :class:`~repro.storage.buffer.BufferPool` — an LRU page buffer that
  models the OS page cache.  The paper clears caches before every query;
  the query executor does the same via :meth:`PageStore.clear_cache`.
* :class:`~repro.storage.decoded_cache.DecodedPageCache` — the CPU-side
  analogue of the buffer pool: memoizes decoded page contents per page
  id so batched crawls parse each touched page at most once per query.
* :class:`~repro.storage.diskmodel.DiskModel` — converts page-read
  counts into simulated I/O time for a 10 kRPM SAS disk, reproducing the
  paper's observation that query time is I/O-bound (97.8–98.8 %).
* :mod:`~repro.storage.serial` — byte-exact page encodings (every page
  is exactly ``PAGE_SIZE`` bytes).
"""

from repro.storage.constants import (
    MBR_BYTES,
    NODE_ENTRY_BYTES,
    NODE_FANOUT,
    OBJECT_PAGE_CAPACITY,
    PAGE_SIZE,
)
from repro.storage.stats import (
    CATEGORY_METADATA,
    CATEGORY_OBJECT,
    CATEGORY_RTREE_INTERNAL,
    CATEGORY_RTREE_LEAF,
    CATEGORY_SEED_INTERNAL,
    IOStats,
)
from repro.storage.buffer import BufferPool
from repro.storage.codec import (
    DEFAULT_CODEC,
    Delta64Codec,
    PageCodec,
    RawCodec,
    available_codecs,
    get_codec,
    register_codec,
)
from repro.storage.decoded_cache import (
    DECODE_ELEMENT,
    DECODE_METADATA,
    DecodedPageCache,
)
from repro.storage.diskmodel import DiskModel
from repro.storage.pagestore import (
    MemoryPageBackend,
    OverlayPageBackend,
    PageStore,
    PageStoreError,
    PageStoreGroup,
    SnapshotError,
)
from repro.storage.filestore import (
    FilePageBackend,
    FilePageStore,
    ShipStats,
    append_overlay_generation,
    latest_generation,
    list_generations,
    manifest_filename,
    ship_store_generation,
    write_store_snapshot,
)

__all__ = [
    "BufferPool",
    "DECODE_ELEMENT",
    "DECODE_METADATA",
    "DEFAULT_CODEC",
    "DecodedPageCache",
    "CATEGORY_METADATA",
    "CATEGORY_OBJECT",
    "CATEGORY_RTREE_INTERNAL",
    "CATEGORY_RTREE_LEAF",
    "CATEGORY_SEED_INTERNAL",
    "Delta64Codec",
    "DiskModel",
    "FilePageBackend",
    "FilePageStore",
    "IOStats",
    "MBR_BYTES",
    "MemoryPageBackend",
    "NODE_ENTRY_BYTES",
    "NODE_FANOUT",
    "OBJECT_PAGE_CAPACITY",
    "OverlayPageBackend",
    "PAGE_SIZE",
    "PageCodec",
    "PageStore",
    "PageStoreError",
    "PageStoreGroup",
    "RawCodec",
    "ShipStats",
    "SnapshotError",
    "append_overlay_generation",
    "available_codecs",
    "get_codec",
    "latest_generation",
    "list_generations",
    "manifest_filename",
    "register_codec",
    "ship_store_generation",
    "write_store_snapshot",
]
