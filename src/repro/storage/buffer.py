"""An LRU buffer pool modeling the OS page cache.

The paper runs every query on cold caches ("Before each query is
executed, the OS caches and disk buffers are cleared") but pages fetched
*during* one query stay resident — the machine has 4 GB of RAM and the
working set of a single query is far smaller.  The query executor
therefore attaches an unbounded pool and clears it between queries;
capacity-bounded pools are available for cache-sensitivity ablations.
"""

from __future__ import annotations

from collections import OrderedDict


class BufferPool:
    """A least-recently-used page buffer.

    ``capacity=None`` means unbounded (the within-a-query OS cache).
    Keys and values are opaque to the pool; the decoded-page cache
    reuses these LRU mechanics with ``(kind, page_id)`` keys.

    ``byte_capacity`` bounds the pool by *bytes* instead of (or on top
    of) entry count: each :meth:`put` charges the entry's cost (its
    physical stored size, passed by the caller, or ``len(page)``), and
    LRU entries are evicted until the budget holds.  This is how the
    scale benchmark models a fixed RAM grant over stores whose physical
    pages differ in size — a compressed store fits proportionally more
    pages into the same budget.
    """

    def __init__(self, capacity: int | None = None,
                 byte_capacity: int | None = None):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        if byte_capacity is not None and byte_capacity <= 0:
            raise ValueError(
                f"byte_capacity must be positive or None, got {byte_capacity}"
            )
        self.capacity = capacity
        self.byte_capacity = byte_capacity
        self._pages: OrderedDict[int, bytes] = OrderedDict()
        self._costs: dict[int, int] = {}
        self._resident_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def get(self, page_id: int) -> bytes | None:
        """Return the cached page and refresh its recency, or ``None``."""
        page = self._pages.get(page_id)
        if page is None:
            self.misses += 1
            return None
        self._pages.move_to_end(page_id)
        self.hits += 1
        return page

    def put(self, page_id: int, page: bytes, cost: int | None = None) -> None:
        """Insert a page, evicting least recently used entries if full.

        *cost* is the bytes charged against ``byte_capacity`` (the
        page's physical stored size); it defaults to ``len(page)`` and
        is ignored by pools without a byte budget.
        """
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self._pages[page_id] = page
            if self.byte_capacity is not None and cost is not None:
                self._resident_bytes += cost - self._costs[page_id]
                self._costs[page_id] = cost
            return
        if self.capacity is not None and len(self._pages) >= self.capacity:
            self._evict_one()
        if self.byte_capacity is not None:
            cost = len(page) if cost is None else cost
            while self._pages and self._resident_bytes + cost > self.byte_capacity:
                self._evict_one()
            self._costs[page_id] = cost
            self._resident_bytes += cost
        self._pages[page_id] = page

    def _evict_one(self) -> None:
        evicted_id, _page = self._pages.popitem(last=False)
        self._resident_bytes -= self._costs.pop(evicted_id, 0)
        self.evictions += 1

    @property
    def resident_bytes(self) -> int:
        """Bytes currently charged against ``byte_capacity``."""
        return self._resident_bytes

    def discard(self, page_id) -> None:
        """Drop one cached page if present (write-path invalidation)."""
        if self._pages.pop(page_id, None) is not None:
            self._resident_bytes -= self._costs.pop(page_id, 0)

    def clear(self) -> None:
        """Drop every cached page (the paper's cache clearing step)."""
        self._pages.clear()
        self._costs.clear()
        self._resident_bytes = 0

    def page_ids(self) -> list:
        """The keys currently resident, in insertion (LRU) order.

        On an unbounded pool cleared before a query this is exactly the
        set of pages that query has physically read so far — the
        multi-query crawl uses it to capture the seed phase's charged
        pages before switching to batched accounting.
        """
        return list(self._pages.keys())

    @property
    def lookups(self) -> int:
        """Total :meth:`get` calls (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the buffer."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __repr__(self) -> str:
        cap = "unbounded" if self.capacity is None else self.capacity
        return (
            f"BufferPool(capacity={cap}, size={len(self)}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )
