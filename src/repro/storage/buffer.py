"""An LRU buffer pool modeling the OS page cache.

The paper runs every query on cold caches ("Before each query is
executed, the OS caches and disk buffers are cleared") but pages fetched
*during* one query stay resident — the machine has 4 GB of RAM and the
working set of a single query is far smaller.  The query executor
therefore attaches an unbounded pool and clears it between queries;
capacity-bounded pools are available for cache-sensitivity ablations.
"""

from __future__ import annotations

from collections import OrderedDict


class BufferPool:
    """A least-recently-used page buffer.

    ``capacity=None`` means unbounded (the within-a-query OS cache).
    Keys and values are opaque to the pool; the decoded-page cache
    reuses these LRU mechanics with ``(kind, page_id)`` keys.
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.capacity = capacity
        self._pages: OrderedDict[int, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def get(self, page_id: int) -> bytes | None:
        """Return the cached page and refresh its recency, or ``None``."""
        page = self._pages.get(page_id)
        if page is None:
            self.misses += 1
            return None
        self._pages.move_to_end(page_id)
        self.hits += 1
        return page

    def put(self, page_id: int, page: bytes) -> None:
        """Insert a page, evicting the least recently used one if full."""
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self._pages[page_id] = page
            return
        if self.capacity is not None and len(self._pages) >= self.capacity:
            self._pages.popitem(last=False)
            self.evictions += 1
        self._pages[page_id] = page

    def discard(self, page_id) -> None:
        """Drop one cached page if present (write-path invalidation)."""
        self._pages.pop(page_id, None)

    def clear(self) -> None:
        """Drop every cached page (the paper's cache clearing step)."""
        self._pages.clear()

    def page_ids(self) -> list:
        """The keys currently resident, in insertion (LRU) order.

        On an unbounded pool cleared before a query this is exactly the
        set of pages that query has physically read so far — the
        multi-query crawl uses it to capture the seed phase's charged
        pages before switching to batched accounting.
        """
        return list(self._pages.keys())

    @property
    def lookups(self) -> int:
        """Total :meth:`get` calls (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the buffer."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __repr__(self) -> str:
        cap = "unbounded" if self.capacity is None else self.capacity
        return (
            f"BufferPool(capacity={cap}, size={len(self)}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )
