"""Per-category I/O accounting.

Every figure in the paper's evaluation is a page-read (or derived
bytes-read) measurement broken down by page category — e.g. Fig. 14
splits FLAT reads into seed-tree / metadata / object pages and PR-Tree
reads into leaf / non-leaf pages.  ``IOStats`` keeps those counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.constants import PAGE_SIZE

#: FLAT object pages and R-Tree leaf element payload pages.
CATEGORY_OBJECT = "object"
#: Seed-tree leaf pages holding FLAT metadata records.
CATEGORY_METADATA = "metadata"
#: Seed-tree internal (hierarchy) pages.
CATEGORY_SEED_INTERNAL = "seed_internal"
#: R-Tree leaf pages (the pages storing the 85 element MBRs).
CATEGORY_RTREE_LEAF = "rtree_leaf"
#: R-Tree internal pages ("non-leaf pages" in the paper's terminology).
CATEGORY_RTREE_INTERNAL = "rtree_internal"

ALL_CATEGORIES = (
    CATEGORY_OBJECT,
    CATEGORY_METADATA,
    CATEGORY_SEED_INTERNAL,
    CATEGORY_RTREE_LEAF,
    CATEGORY_RTREE_INTERNAL,
)


@dataclass
class IOStats:
    """Mutable counters of page reads/writes, split by page category."""

    reads: dict = field(default_factory=dict)
    writes: dict = field(default_factory=dict)
    cache_hits: int = 0

    def record_read(self, category: str, pages: int = 1) -> None:
        """Count *pages* physical page reads in *category*."""
        self.reads[category] = self.reads.get(category, 0) + pages

    def record_write(self, category: str, pages: int = 1) -> None:
        """Count *pages* page writes in *category*."""
        self.writes[category] = self.writes.get(category, 0) + pages

    def record_cache_hit(self) -> None:
        """Count a read absorbed by the buffer pool (no physical I/O)."""
        self.cache_hits += 1

    def reads_in(self, *categories: str) -> int:
        """Total physical reads across the given categories."""
        return sum(self.reads.get(c, 0) for c in categories)

    @property
    def total_reads(self) -> int:
        """Total physical page reads across all categories."""
        return sum(self.reads.values())

    @property
    def total_bytes_read(self) -> int:
        """Total bytes read from 'disk'."""
        return self.total_reads * PAGE_SIZE

    def bytes_read_in(self, *categories: str) -> int:
        """Bytes read across the given categories."""
        return self.reads_in(*categories) * PAGE_SIZE

    def snapshot(self) -> "IOStats":
        """A frozen copy (for before/after differencing)."""
        return IOStats(dict(self.reads), dict(self.writes), self.cache_hits)

    def diff(self, before: "IOStats") -> "IOStats":
        """Counters accumulated since the *before* snapshot."""
        reads = {
            c: n - before.reads.get(c, 0)
            for c, n in self.reads.items()
            if n - before.reads.get(c, 0)
        }
        writes = {
            c: n - before.writes.get(c, 0)
            for c, n in self.writes.items()
            if n - before.writes.get(c, 0)
        }
        return IOStats(reads, writes, self.cache_hits - before.cache_hits)

    def merge(self, other: "IOStats") -> None:
        """Accumulate *other*'s counters into this object."""
        for category, n in other.reads.items():
            self.reads[category] = self.reads.get(category, 0) + n
        for category, n in other.writes.items():
            self.writes[category] = self.writes.get(category, 0) + n
        self.cache_hits += other.cache_hits

    def reset(self) -> None:
        """Zero all counters."""
        self.reads.clear()
        self.writes.clear()
        self.cache_hits = 0

    def __repr__(self) -> str:
        parts = ", ".join(f"{c}={n}" for c, n in sorted(self.reads.items()))
        return f"IOStats(reads: {parts or 'none'}, cache_hits={self.cache_hits})"
