"""Per-category I/O accounting.

Every figure in the paper's evaluation is a page-read (or derived
bytes-read) measurement broken down by page category — e.g. Fig. 14
splits FLAT reads into seed-tree / metadata / object pages and PR-Tree
reads into leaf / non-leaf pages.  ``IOStats`` keeps those counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.constants import PAGE_SIZE

#: FLAT object pages and R-Tree leaf element payload pages.
CATEGORY_OBJECT = "object"
#: Seed-tree leaf pages holding FLAT metadata records.
CATEGORY_METADATA = "metadata"
#: Seed-tree internal (hierarchy) pages.
CATEGORY_SEED_INTERNAL = "seed_internal"
#: R-Tree leaf pages (the pages storing the 85 element MBRs).
CATEGORY_RTREE_LEAF = "rtree_leaf"
#: R-Tree internal pages ("non-leaf pages" in the paper's terminology).
CATEGORY_RTREE_INTERNAL = "rtree_internal"

ALL_CATEGORIES = (
    CATEGORY_OBJECT,
    CATEGORY_METADATA,
    CATEGORY_SEED_INTERNAL,
    CATEGORY_RTREE_LEAF,
    CATEGORY_RTREE_INTERNAL,
)


@dataclass
class IOStats:
    """Mutable counters of page reads/writes, split by page category.

    Alongside the I/O counters, *decode* counters track the CPU-side
    work of parsing fetched pages: ``decode_misses[kind]`` counts full
    page decodes and ``decode_hits[kind]`` counts decodes absorbed by a
    :class:`~repro.storage.decoded_cache.DecodedPageCache` (kinds are
    ``"metadata"`` / ``"element"``).
    """

    reads: dict = field(default_factory=dict)
    writes: dict = field(default_factory=dict)
    cache_hits: int = 0
    decode_hits: dict = field(default_factory=dict)
    decode_misses: dict = field(default_factory=dict)
    #: Demand reads absorbed by a staged prefetch (per category).  A
    #: prefetch hit is a read whose physical I/O happened *earlier*, on
    #: the prefetcher's store — so for any query sequence,
    #: ``reads[c] + prefetch_hits[c]`` equals the ``reads[c]`` a
    #: prefetch-disabled run would have charged.
    prefetch_hits: dict = field(default_factory=dict)

    def record_read(self, category: str, pages: int = 1) -> None:
        """Count *pages* physical page reads in *category*."""
        self.reads[category] = self.reads.get(category, 0) + pages

    def record_write(self, category: str, pages: int = 1) -> None:
        """Count *pages* page writes in *category*."""
        self.writes[category] = self.writes.get(category, 0) + pages

    def record_cache_hit(self) -> None:
        """Count a read absorbed by the buffer pool (no physical I/O)."""
        self.cache_hits += 1

    def record_prefetch_hit(self, category: str, pages: int = 1) -> None:
        """Count *pages* demand reads served from staged prefetched pages."""
        self.prefetch_hits[category] = self.prefetch_hits.get(category, 0) + pages

    def record_decode(self, kind: str, hit: bool) -> None:
        """Count one page-decode lookup of the given kind."""
        target = self.decode_hits if hit else self.decode_misses
        target[kind] = target.get(kind, 0) + 1

    def reads_in(self, *categories: str) -> int:
        """Total physical reads across the given categories."""
        return sum(self.reads.get(c, 0) for c in categories)

    @property
    def total_reads(self) -> int:
        """Total physical page reads across all categories."""
        return sum(self.reads.values())

    @property
    def total_bytes_read(self) -> int:
        """Total bytes read from 'disk'."""
        return self.total_reads * PAGE_SIZE

    def bytes_read_in(self, *categories: str) -> int:
        """Bytes read across the given categories."""
        return self.reads_in(*categories) * PAGE_SIZE

    def decodes_in(self, *kinds: str) -> int:
        """Full page decodes performed across the given decode kinds."""
        return sum(self.decode_misses.get(k, 0) for k in kinds)

    @property
    def total_decodes(self) -> int:
        """Total full page decodes (decoded-cache misses + uncached)."""
        return sum(self.decode_misses.values())

    @property
    def total_decode_hits(self) -> int:
        """Total decodes absorbed by the decoded-page cache."""
        return sum(self.decode_hits.values())

    @property
    def total_prefetch_hits(self) -> int:
        """Total demand reads absorbed by staged prefetched pages."""
        return sum(self.prefetch_hits.values())

    def snapshot(self) -> "IOStats":
        """A frozen copy (for before/after differencing)."""
        return IOStats(
            dict(self.reads),
            dict(self.writes),
            self.cache_hits,
            dict(self.decode_hits),
            dict(self.decode_misses),
            dict(self.prefetch_hits),
        )

    @staticmethod
    def _dict_diff(now: dict, before: dict) -> dict:
        return {c: n - before.get(c, 0) for c, n in now.items() if n - before.get(c, 0)}

    def diff(self, before: "IOStats") -> "IOStats":
        """Counters accumulated since the *before* snapshot."""
        return IOStats(
            self._dict_diff(self.reads, before.reads),
            self._dict_diff(self.writes, before.writes),
            self.cache_hits - before.cache_hits,
            self._dict_diff(self.decode_hits, before.decode_hits),
            self._dict_diff(self.decode_misses, before.decode_misses),
            self._dict_diff(self.prefetch_hits, before.prefetch_hits),
        )

    def merge(self, other: "IOStats") -> None:
        """Accumulate *other*'s counters into this object."""
        for category, n in other.reads.items():
            self.reads[category] = self.reads.get(category, 0) + n
        for category, n in other.writes.items():
            self.writes[category] = self.writes.get(category, 0) + n
        self.cache_hits += other.cache_hits
        for kind, n in other.decode_hits.items():
            self.decode_hits[kind] = self.decode_hits.get(kind, 0) + n
        for kind, n in other.decode_misses.items():
            self.decode_misses[kind] = self.decode_misses.get(kind, 0) + n
        for category, n in other.prefetch_hits.items():
            self.prefetch_hits[category] = self.prefetch_hits.get(category, 0) + n

    def reset(self) -> None:
        """Zero all counters."""
        self.reads.clear()
        self.writes.clear()
        self.cache_hits = 0
        self.decode_hits.clear()
        self.decode_misses.clear()
        self.prefetch_hits.clear()

    def __repr__(self) -> str:
        parts = ", ".join(f"{c}={n}" for c, n in sorted(self.reads.items()))
        return (
            f"IOStats(reads: {parts or 'none'}, cache_hits={self.cache_hits}, "
            f"decodes={self.total_decodes}, decode_hits={self.total_decode_hits})"
        )
