"""Memoized page decoding: the CPU-side counterpart of the buffer pool.

The buffer pool absorbs repeated *physical* reads, but every consumer
still paid :func:`~repro.storage.serial.decode_metadata_page` /
:func:`~repro.storage.serial.decode_element_page` on each access — so a
crawl re-parsing the same metadata leaf for every record on it spent
CPU proportional to frontier-size x page-size instead of to the pages
actually touched.  :class:`DecodedPageCache` memoizes the decoded form
per page id, turning repeated decodes into dictionary hits.

Decoded objects are shared between callers and must be treated as
read-only.  The write path invalidates single entries through
:meth:`DecodedPageCache.discard` when a page is rewritten in place;
:meth:`clear` drops everything, mirroring the paper's between-query
cache clearing.
"""

from __future__ import annotations

from repro.storage.buffer import BufferPool

#: Decode kinds, used as counter keys in :class:`~repro.storage.stats.IOStats`.
DECODE_METADATA = "metadata"
DECODE_ELEMENT = "element"


class DecodedPageCache:
    """Per-page-id memo of decoded page contents.

    ``capacity=None`` means unbounded (the within-a-query working set);
    a bounded cache evicts in LRU order.  The LRU mechanics are the
    buffer pool's, reused with ``(kind, page_id)`` keys and decoded
    objects as values, so there is exactly one eviction implementation
    in the storage layer.
    """

    def __init__(self, capacity: int | None = None):
        self._pool = BufferPool(capacity)

    # -- access --------------------------------------------------------

    def get_or_decode(self, kind: str, page_id: int, payload: bytes, decoder,
                      stats=None):
        """The decoded *payload*, decoding (and memoizing) at most once.

        ``stats`` is an optional :class:`~repro.storage.stats.IOStats`
        that receives per-kind decode hit/miss counts, so query harnesses
        can report decode work next to page reads.
        """
        key = (kind, page_id)
        cached = self._pool.get(key)
        if stats is not None:
            stats.record_decode(kind, hit=cached is not None)
        if cached is not None:
            return cached
        decoded = decoder(payload)
        self._pool.put(key, decoded)
        return decoded

    def seed(self, kind: str, page_id: int, decoded) -> None:
        """Insert an already-decoded page without touching any counter.

        Used by the prefetch consumption path: the decode happened
        earlier, on the prefetcher's store (and was counted there), so
        planting its result here must not register as a hit or miss.
        """
        self._pool.put((kind, page_id), decoded)

    def discard(self, page_id: int) -> None:
        """Drop any decoded form of one page (write-path invalidation)."""
        self._pool.discard((DECODE_METADATA, page_id))
        self._pool.discard((DECODE_ELEMENT, page_id))

    def clear(self) -> None:
        """Drop every decoded page (paired with buffer-pool clearing)."""
        self._pool.clear()

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self._pool)

    def __contains__(self, key: tuple) -> bool:
        return key in self._pool

    @property
    def capacity(self) -> int | None:
        return self._pool.capacity

    @property
    def hits(self) -> int:
        return self._pool.hits

    @property
    def misses(self) -> int:
        return self._pool.misses

    @property
    def evictions(self) -> int:
        return self._pool.evictions

    @property
    def lookups(self) -> int:
        """Total accesses (hits + misses)."""
        return self._pool.lookups

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that skipped a decode."""
        return self._pool.hit_rate

    def __repr__(self) -> str:
        cap = "unbounded" if self.capacity is None else self.capacity
        return (
            f"DecodedPageCache(capacity={cap}, size={len(self)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
