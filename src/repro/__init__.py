"""repro — FLAT spatial index and benchmark suite.

A full reproduction of Tauheed et al., "Accelerating Range Queries for
Brain Simulations" (ICDE 2012): the FLAT two-phase (seed + crawl)
index, the bulkloaded R-Tree baselines (STR, Hilbert, Priority R-Tree,
plus TGS and a dynamic R*-Tree), a paged storage engine with per-
category I/O accounting, generators for every evaluated data set, and
one experiment per paper figure/table.

Quick start::

    import numpy as np
    from repro import FLATIndex, PageStore, bulkload_rtree

    store = PageStore()
    index = FLATIndex.build(store, element_mbrs)   # (N, 6) boxes
    hits = index.range_query(np.array([0, 0, 0, 10, 10, 10]))
"""

from repro.core import FLATIndex
from repro.rtree import RStarTree, RTree, bulkload_rtree
from repro.storage import DiskModel, IOStats, PageStore

__version__ = "1.0.0"

__all__ = [
    "DiskModel",
    "FLATIndex",
    "IOStats",
    "PageStore",
    "RStarTree",
    "RTree",
    "bulkload_rtree",
    "__version__",
]
