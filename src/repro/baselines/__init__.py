"""Non-R-Tree baselines discussed by the paper's related work.

Currently: a DLS-style connectivity crawler
(:class:`~repro.baselines.dls.ConnectivityCrawler`) used to reproduce
the paper's Sec. II claim that crawling over *element* connectivity
fails on concave data — the motivation for FLAT's synthetic
partition-level neighborhood.
"""

from repro.baselines.dls import (
    ConnectivityCrawler,
    chain_adjacency,
    mesh_adjacency,
)

__all__ = ["ConnectivityCrawler", "chain_adjacency", "mesh_adjacency"]
