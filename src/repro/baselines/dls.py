"""A DLS-style crawling baseline over *element* connectivity.

The paper's related work (Sec. II) discusses crawling approaches like
DLS [19] that answer range queries by walking the data set's own
connectivity (mesh adjacency): cheap when it works, but it "require[s]
the data set to be convex"; concave regions — holes — "can split the
connected data set inside a range query into two parts, preventing the
algorithm from crawling from one part to the other".

This module implements that baseline so the claim is reproducible: a
breadth-first crawl over user-supplied element adjacency, seeded at one
element inside the query.  On convex/connected data it returns exactly
the brute-force result; on concave data it provably under-reports
(see ``tests/baselines/test_dls.py``), which is precisely why FLAT
builds its own gap-free partition-level neighborhood instead.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.geometry.intersect import boxes_intersect_box
from repro.geometry.mbr import (
    mbr_center,
    mbr_distance_to_point,
    mbr_union_many,
    point_as_box,
    validate_mbrs,
)
from repro.query.knn import expanding_radius_knn


def chain_adjacency(n_elements: int, chain_length: int) -> list:
    """Adjacency of elements forming consecutive chains (neuron branches).

    Elements ``[k*chain_length, (k+1)*chain_length)`` form one chain;
    neighbor = predecessor/successor in the chain.  This is the natural
    connectivity of branch cylinders.
    """
    if chain_length <= 0:
        raise ValueError(f"chain_length must be positive, got {chain_length}")
    adjacency = [[] for _ in range(n_elements)]
    for i in range(n_elements):
        if i % chain_length != 0:
            adjacency[i].append(i - 1)
        if (i + 1) % chain_length != 0 and i + 1 < n_elements:
            adjacency[i].append(i + 1)
    return adjacency


def mesh_adjacency(triangles: np.ndarray, decimals: int = 9) -> list:
    """Adjacency of mesh triangles sharing at least one vertex.

    ``triangles`` is an ``(N, 3, 3)`` vertex array; vertices are matched
    after rounding to *decimals* (procedural meshes produce exact
    duplicates, so this is lossless there).
    """
    triangles = np.asarray(triangles, dtype=np.float64)
    if triangles.ndim != 3 or triangles.shape[1:] != (3, 3):
        raise ValueError(f"expected (N, 3, 3) triangles, got {triangles.shape}")
    vertex_owners: dict = {}
    for t in range(len(triangles)):
        for v in range(3):
            key = tuple(np.round(triangles[t, v], decimals))
            vertex_owners.setdefault(key, []).append(t)
    adjacency = [set() for _ in range(len(triangles))]
    for owners in vertex_owners.values():
        for a in owners:
            for b in owners:
                if a != b:
                    adjacency[a].add(b)
    return [sorted(s) for s in adjacency]


class ConnectivityCrawler:
    """Range queries by crawling the data set's own element adjacency.

    Parameters
    ----------
    element_mbrs:
        ``(N, 6)`` element MBRs.
    adjacency:
        ``adjacency[i]`` lists the element ids connected to element
        ``i`` (mesh neighbors, chain predecessors/successors, ...).
    """

    def __init__(self, element_mbrs: np.ndarray, adjacency: list):
        self.mbrs = validate_mbrs(element_mbrs)
        if len(adjacency) != len(self.mbrs):
            raise ValueError(
                f"adjacency has {len(adjacency)} entries for "
                f"{len(self.mbrs)} elements"
            )
        self.adjacency = adjacency
        self._centers = mbr_center(self.mbrs)

    def _seed(self, query: np.ndarray) -> int | None:
        """An arbitrary element intersecting the query (jump step).

        Real DLS uses an approximate search structure; any seed inside
        the range gives the same crawl result, so the simulation picks
        the matching element nearest the query center.
        """
        mask = boxes_intersect_box(self.mbrs, query)
        candidates = np.flatnonzero(mask)
        if len(candidates) == 0:
            return None
        center = (query[:3] + query[3:]) * 0.5
        dist = np.linalg.norm(self._centers[candidates] - center, axis=1)
        return int(candidates[np.argmin(dist)])

    def range_query(self, query: np.ndarray, start: int | None = None) -> np.ndarray:
        """Crawl the connectivity graph from a seed inside the query.

        Returns the element ids *reachable through the query region* —
        equal to the true result only when the matching elements form a
        single connected component, which concave data violates.
        """
        query = np.asarray(query, dtype=np.float64)
        seed = self._seed(query) if start is None else start
        if seed is None:
            return np.empty(0, dtype=np.int64)

        visited = {seed}
        queue = deque([seed])
        results = []
        while queue:
            element = queue.popleft()
            if not boxes_intersect_box(self.mbrs[element][None, :], query)[0]:
                continue
            results.append(element)
            for neighbor in self.adjacency[element]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    queue.append(neighbor)
        return np.sort(np.asarray(results, dtype=np.int64))

    def point_query(self, point: np.ndarray) -> np.ndarray:
        """Elements containing *point* (degenerate range crawl).

        Completes the :class:`~repro.query.engine.QueryEngine` surface
        so the baseline runs under the same harness as the indexes.
        """
        return self.range_query(point_as_box(point))

    def knn_query(
        self, point: np.ndarray, k: int, return_distances: bool = False
    ) -> np.ndarray:
        """The *k* nearest reachable elements: expanding-radius crawling.

        Runs the same expanding-radius skeleton as FLAT's kNN
        (:func:`~repro.query.knn.expanding_radius_knn`), but over the
        connectivity crawl — so it inherits :meth:`range_query`'s
        failure mode: candidates in a different connected component
        than the seed are never reached, exactly the concave-data
        deficiency the paper describes.
        """
        ids, dists, _rounds = expanding_radius_knn(
            point,
            k,
            element_count=len(self.mbrs),
            cover=mbr_union_many(self.mbrs),
            range_query=self.range_query,
            distances=lambda ids, p: mbr_distance_to_point(self.mbrs[ids], p),
        )
        if return_distances:
            return ids, dists
        return ids

    def misses(self, query: np.ndarray) -> np.ndarray:
        """Matching elements the crawl cannot reach (the paper's failure)."""
        full = np.flatnonzero(boxes_intersect_box(self.mbrs, np.asarray(query)))
        found = self.range_query(query)
        return np.setdiff1d(full, found)
