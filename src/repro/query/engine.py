"""The uniform query-engine interface every index implements.

The benchmark harness (:func:`repro.query.executor.run_queries`) drives
all indexes — FLAT, every R-Tree variant, and the DLS connectivity
baseline — through the same two methods, so adding an index to an
experiment never needs harness changes:

* ``range_query(box) -> element ids`` — all elements whose MBR
  intersects the ``(6,)`` query box, sorted ascending.
* ``point_query(point) -> element ids`` — all elements whose MBR
  contains the ``(3,)`` point (a degenerate range query).
* ``knn_query(point, k) -> element ids`` — the ``k`` elements whose
  MBRs are nearest the point (Euclidean MINDIST), sorted by
  ``(distance, id)``.  FLAT answers it with an expanding-radius crawl,
  the R-Trees with classic best-first search, the sharded index with a
  MINDIST-ordered walk over shards.

The protocol is structural (:func:`typing.runtime_checkable`): classes
implement it by shape, without importing this module.  Engines that
additionally expose ``last_crawl_stats`` (FLAT) get their per-query BFS
bookkeeping collected by the harness; page-read and page-decode
accounting always comes from the backing store's ``stats``.

**Delta overlay contract.**  An engine carrying a non-empty
:class:`~repro.core.delta.DeltaIndex` (its ``delta`` attribute, see
:meth:`FLATIndex.with_delta <repro.core.flat_index.FLATIndex.with_delta>`)
must answer all three methods *as if* the delta were already merged:
tombstoned ids never appear, memtable elements do.  The correction is
pure RAM — the overlay applies after the page crawl, so the page-read
and decode accounting of a delta-carrying engine stays byte-identical
to the delta-free crawl of the committed base generation.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from repro.geometry.mbr import point_as_box


@runtime_checkable
class QueryEngine(Protocol):
    """Structural interface of a range-queryable index."""

    def range_query(self, query: np.ndarray) -> np.ndarray:
        """Element ids whose MBR intersects the ``(6,)`` query box."""
        ...

    def point_query(self, point: np.ndarray) -> np.ndarray:
        """Element ids whose MBR contains the ``(3,)`` point."""
        ...

    def knn_query(self, point: np.ndarray, k: int) -> np.ndarray:
        """The ``k`` elements nearest the ``(3,)`` point, by MBR distance."""
        ...


class CallableEngine:
    """Adapt a bare range-query callable into a :class:`QueryEngine`.

    Used to benchmark alternative crawl implementations of an existing
    index (e.g. ``CallableEngine(flat.range_query_scalar, flat)`` drives
    the scalar reference crawl through the standard harness while still
    surfacing the index's ``last_crawl_stats``).
    """

    def __init__(self, range_fn: Callable, source: Any = None):
        self._range_fn = range_fn
        self._source = source

    def range_query(self, query: np.ndarray) -> np.ndarray:
        return self._range_fn(query)

    def point_query(self, point: np.ndarray) -> np.ndarray:
        return self._range_fn(point_as_box(point))

    def knn_query(self, point: np.ndarray, k: int, return_distances: bool = False):
        """Delegate kNN to the source index (range callables can't confirm
        distances on their own)."""
        knn = getattr(self._source, "knn_query", None)
        if knn is None:
            raise NotImplementedError(
                "the wrapped callable's source exposes no knn_query"
            )
        return knn(point, k, return_distances=return_distances)

    @property
    def last_crawl_stats(self):
        return getattr(self._source, "last_crawl_stats", None)
