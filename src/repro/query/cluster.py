"""Distributed serving tier: shard servers behind a scatter–gather router.

Everything below one machine's worker pool already exists in this repo:
gap-free spatial shards with an exact MBR-pruning
:class:`~repro.query.planner.QueryPlanner` (PR 3), numbered
copy-on-write snapshot generations published by atomic rename (PR 4),
and ``(directory, generation)`` reattach across process boundaries
(PR 6).  This module promotes those pieces to a serving *fleet*:

* :class:`ShardServerHandle` / :func:`_serve_shard` — one **shard
  server** process per shard.  Each server restores its shard's
  :class:`~repro.core.flat_index.FLATIndex` from the shard's snapshot
  directory at a pinned generation (a read-only mmap — co-located
  servers share page bytes through the OS page cache) and answers
  range / point / kNN requests over a
  :mod:`multiprocessing.connection` listener (length-prefixed pickle
  frames on an ``AF_UNIX`` socket, authkey-authenticated).  Servers
  return **global** element ids: the shard's local→global id map
  travels to the server at launch and with every reload.
* :class:`ClusterRouter` — the query tier's front door.  It keeps a
  *control replica* of the whole sharded index (a read-only
  :meth:`~repro.core.sharded.ShardedFLATIndex.restore` of the same
  snapshot root) for planner state and update computation, scatters
  each query to exactly the planner-selected servers, and merges the
  per-shard sorted ids at the gather point with
  :meth:`QueryPlanner.merge_sorted_ids
  <repro.query.planner.QueryPlanner.merge_sorted_ids>` — a
  :class:`~repro.core.delta.DeltaIndex` attached to the router overlays
  at that same gather point, exactly as in the monolithic stack.
  Batches pipeline: up to a window of requests stay in flight per
  server, so aggregate throughput scales with the server count.
* **Replication & failover** — a replica fleet is populated by
  *shipping* each shard's snapshot generation directory
  (:func:`~repro.core.snapshot.ship_index_generation`): ``pages.dat``
  is append-only and generations are copy-on-write, so an up-to-date
  replica receives only the tail pages a new generation appended,
  never the unchanged prefix.  When a server dies mid-request the
  router marks it, replays the in-flight requests of that connection
  on the shard's replica and keeps routing there — reads are
  idempotent, so replay is safe.
* **Rolling updates** — :meth:`ClusterRouter.apply_updates` applies an
  insert/delete batch to a copy-on-write fork of the control replica
  (the same fork-swap commit the single-machine service uses), then
  walks the touched shards one at a time: publish the shard's next
  generation in place, ship the increment to the replica, tell both
  servers to ``reload`` (an atomic index swap inside the server), and
  only then move to the next shard.  The fleet serves continuously;
  a query observes, per shard, either the old or the new generation —
  never a torn page state — and the planner adopts the fork's
  (grow-only) widened shard boxes up front so pruning stays exact
  throughout the roll.

The router is single-threaded by design (one logical request stream
per server connection); run several routers for concurrent fronts.
Correctness is pinned in ``tests/query/test_cluster.py`` and
``benchmarks/bench_cluster.py``: every response — mid-roll, after a
server kill, with a delta attached — is byte-identical to the
monolithic :class:`~repro.core.sharded.ShardedFLATIndex` oracle.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import Client, Listener
from pathlib import Path

import numpy as np

from repro.geometry.mbr import point_as_box
from repro.query.planner import QueryPlan, QueryPlanner
from repro.query.prefetch import PrefetchConfig, Prefetcher, TrajectoryModel

# repro.core imports stay function-local: repro.core.flat_index imports
# repro.query at module level, so a top-level import here would close an
# import cycle through the two packages' __init__ modules.

#: Connection-level failures that mean "this server is gone" (as
#: opposed to a server-side exception, which arrives as an ``error``
#: reply and raises :class:`ClusterError` without failing the server).
_DEAD_SERVER_ERRORS = (EOFError, OSError)

#: Requests kept in flight per server connection during a batch.  The
#: protocol is strictly request/reply-in-order per connection, so the
#: window bounds the reply bytes parked in socket buffers (avoiding a
#: send-side stall against a server that cannot flush replies).
PIPELINE_WINDOW = 32

_EMPTY_IDS = np.empty(0, dtype=np.int64)


class ClusterError(RuntimeError):
    """A cluster operation failed: a shard lost every server, a server
    reported an exception, or the fleet could not be launched."""


# -- server side ---------------------------------------------------------
#
# One process per shard server.  The process restores the shard index
# from its snapshot directory, then serves request/reply streams: one
# handler thread per accepted connection, each with its own
# stat-isolated engine clone per generation (the same per-worker-clone
# discipline as QueryService), over the single shared mmap.


class _ConnectionState:
    """One connection's per-generation clones and prefetch machinery.

    Sessions live on the connection: a router funnels all its sessions
    through its single connection to each server, so the per-session
    trajectory models need no cross-connection sharing (and no locks —
    each connection is served by exactly one handler thread).
    """

    def __init__(self):
        #: generation -> (engine clone, stat-isolated store view).
        self.engines: dict = {}
        #: generation -> :class:`Prefetcher` over that engine's store.
        self.prefetchers: dict = {}
        #: session id -> {"model": TrajectoryModel, "covered": window}.
        self.sessions: dict = {}


class _ShardServer:
    """In-process state of one shard server."""

    def __init__(self, shard_dir, generation: int, element_ids):
        from repro.core.snapshot import restore_index

        self.shard_dir = Path(shard_dir)
        self.stopping = threading.Event()
        self._swap_lock = threading.Lock()
        self.prefetch_config = PrefetchConfig()
        index = restore_index(self.shard_dir, generation=generation)
        #: ``(generation, index, local->global id map)`` — swapped
        #: atomically by ``reload``; handlers read it once per request.
        self.current = (
            int(generation),
            index,
            np.asarray(element_ids, dtype=np.int64),
        )

    # -- per-connection engine clones ----------------------------------

    def _engine(self, state: _ConnectionState) -> tuple:
        """This connection's engine for the currently served generation.

        Clones are keyed by generation: after a reload, the next
        request builds a fresh clone of the new index while requests
        already executing finish on the old one — the server-side
        fork-swap.
        """
        generation, index, element_ids = self.current
        entry = state.engines.get(generation)
        if entry is None:
            store = index.store.view()
            entry = state.engines[generation] = (index.with_store(store), store)
        return generation, index, entry[0], entry[1], element_ids

    # -- prefetching ----------------------------------------------------

    def _session_hint(self, state: _ConnectionState, session_id, query):
        """Observe *query* for the session; a staging window when due.

        The same covered-window discipline as
        :meth:`QueryService._session_hint
        <repro.query.service.QueryService._session_hint>`: one staging
        crawl covers a multi-step lookahead window and re-prefetching
        waits until the prediction walks out of it.
        """
        entry = state.sessions.get(session_id)
        if entry is None:
            entry = state.sessions[session_id] = {
                "model": TrajectoryModel(self.prefetch_config),
                "covered": None,
            }
        model = entry["model"]
        model.observe(query)
        next_box = model.predict()
        if next_box is None:
            entry["covered"] = None
            return None
        covered = entry["covered"]
        if (
            covered is not None
            and np.all(covered[:3] <= next_box[:3])
            and np.all(covered[3:] >= next_box[3:])
        ):
            return None
        window = model.predict(self.prefetch_config.lookahead)
        entry["covered"] = window
        return window

    def _prefetcher(self, state: _ConnectionState, generation: int,
                    index, store) -> Prefetcher:
        prefetcher = state.prefetchers.get(generation)
        if prefetcher is None:
            prefetcher = state.prefetchers[generation] = Prefetcher(
                index, self.prefetch_config
            )
            prefetcher.attach_store(store)
        return prefetcher

    # -- request dispatch ----------------------------------------------

    def dispatch(self, request: tuple, state: _ConnectionState):
        kind = request[0]
        if kind == "range":
            _kind, query, cold, session_id = request
            generation, index, engine, store, element_ids = self._engine(state)
            query = np.asarray(query, dtype=np.float64)
            hint = None
            if session_id is not None:
                # Creating the prefetcher up front attaches the staging
                # area before the demand crawl, so hits from earlier
                # windows are absorbed from the first query on.
                prefetcher = self._prefetcher(state, generation, index, store)
                hint = self._session_hint(state, session_id, query)
            before = store.stats.snapshot()
            if cold:
                store.clear_cache()
            local = engine.range_query(query)
            diff = store.stats.diff(before)
            if hint is not None:
                try:
                    prefetcher.prefetch(hint)
                except Exception:  # prediction must never fail a query
                    pass
            hits = element_ids[local] if local.size else _EMPTY_IDS
            return hits, dict(diff.reads), dict(diff.prefetch_hits)
        if kind == "knn":
            _kind, point, k, cold = request
            _gen, _index, engine, store, element_ids = self._engine(state)
            if cold:
                store.clear_cache()
            local, dists = engine.knn_query(
                np.asarray(point, dtype=np.float64), int(k),
                return_distances=True,
            )
            hits = element_ids[local] if local.size else _EMPTY_IDS
            return hits, dists
        if kind == "reload":
            from repro.core.snapshot import restore_index

            _kind, generation, element_ids = request
            generation = int(generation)
            with self._swap_lock:
                if generation != self.current[0]:
                    index = restore_index(self.shard_dir, generation=generation)
                    self.current = (
                        generation,
                        index,
                        np.asarray(element_ids, dtype=np.int64),
                    )
            return generation
        if kind == "status":
            generation, index, element_ids = self.current
            return {
                "generation": generation,
                "element_count": int(index.element_count),
                "pid": os.getpid(),
            }
        if kind == "shutdown":
            return None
        raise ValueError(f"unknown cluster request {kind!r}")

    def serve_connection(self, conn, listener) -> None:
        state = _ConnectionState()
        try:
            while True:
                try:
                    request = conn.recv()
                except _DEAD_SERVER_ERRORS:
                    return
                try:
                    reply = self.dispatch(request, state)
                except Exception as exc:  # server must outlive bad requests
                    try:
                        conn.send(("error", f"{type(exc).__name__}: {exc}"))
                    except _DEAD_SERVER_ERRORS:
                        return
                    continue
                try:
                    conn.send(("ok", reply))
                except _DEAD_SERVER_ERRORS:
                    return
                if request[0] == "shutdown":
                    self.stopping.set()
                    conn.close()
                    listener.close()
                    # The main thread is parked in ``listener.accept()``,
                    # which a cross-thread close does not reliably wake on
                    # Linux — exit the process here instead.  The reply is
                    # already in the socket buffer and survives the exit.
                    os._exit(0)
        finally:
            conn.close()


def _serve_shard(shard_dir, generation, element_ids, address, authkey,
                 ready) -> None:
    """Entry point of a shard-server process."""
    server = _ShardServer(shard_dir, generation, element_ids)
    listener = Listener(address, family="AF_UNIX", authkey=authkey)
    ready.send(("ready", os.getpid()))
    ready.close()
    while not server.stopping.is_set():
        try:
            conn = listener.accept()
        except OSError:
            break  # listener closed by a shutdown request
        threading.Thread(
            target=server.serve_connection,
            args=(conn, listener),
            daemon=True,
        ).start()


# -- router side ---------------------------------------------------------


class ShardServerHandle:
    """The router's endpoint for one shard-server process.

    Wraps the process handle, the socket address and a lazily opened
    :func:`multiprocessing.connection.Client`.  ``alive`` is the
    *router's belief*: it flips to ``False`` only when a request
    actually fails, so killing a process externally is discovered the
    way a real fleet discovers it — by a dead connection.
    """

    def __init__(self, shard_id: int, role: str, directory, address: str,
                 authkey: bytes, process):
        self.shard_id = shard_id
        #: ``"primary"`` or ``"replica"``.
        self.role = role
        #: The snapshot directory this server restores generations from.
        self.directory = Path(directory)
        self.address = address
        self.authkey = authkey
        self.process = process
        self.alive = True
        self._conn = None

    def _connection(self):
        if self._conn is None:
            self._conn = Client(self.address, family="AF_UNIX",
                                authkey=self.authkey)
        return self._conn

    def send(self, message) -> None:
        self._connection().send(message)

    def recv(self):
        return self._connection().recv()

    def request(self, message):
        """One synchronous request/reply exchange (no pipelining)."""
        self.send(message)
        return self.recv()

    def close_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def kill(self) -> None:
        """Hard-kill the server process (failure injection for tests).

        Deliberately leaves ``alive`` untouched: the router must
        *discover* the death through a failed request, exactly as it
        would a crashed machine.
        """
        self.process.terminate()
        self.process.join(timeout=10)


def _start_shard_server(shard_id: int, role: str, directory, generation: int,
                        element_ids, runtime_dir, authkey: bytes,
                        start_timeout: float = 60.0) -> ShardServerHandle:
    """Launch one shard-server process and wait until it listens."""
    # Socket paths must stay under the AF_UNIX limit (~107 bytes), so
    # the runtime directory is kept short and names are terse.
    address = str(Path(runtime_dir) / f"{role[0]}{shard_id}.sock")
    parent_end, child_end = multiprocessing.Pipe(duplex=False)
    process = multiprocessing.Process(
        target=_serve_shard,
        args=(str(directory), int(generation), element_ids, address, authkey,
              child_end),
        name=f"shard-server-{shard_id}-{role}",
        daemon=True,
    )
    process.start()
    child_end.close()
    if not parent_end.poll(start_timeout):
        process.terminate()
        raise ClusterError(
            f"shard server {shard_id} ({role}) did not come up within "
            f"{start_timeout}s"
        )
    parent_end.recv()
    parent_end.close()
    return ShardServerHandle(shard_id, role, directory, address, authkey,
                             process)


@dataclass
class ClusterReport:
    """Aggregated outcome of one query batch served by the cluster."""

    query_count: int = 0
    result_elements: int = 0
    wall_seconds: float = 0.0
    #: Requests actually sent to shard servers (one per touched shard
    #: per query).
    shard_requests: int = 0
    #: Shard executions skipped by planner pruning, summed over queries.
    shards_pruned: int = 0
    #: Physical page reads summed over every server's reply accounting.
    reads_by_category: dict = field(default_factory=dict)
    #: Demand reads absorbed by server-side prefetch areas, by category
    #: — kept separate from physical reads so the accounting identity
    #: ``reads + prefetch_hits == prefetch-free reads`` is checkable at
    #: the router.
    prefetch_hits_by_category: dict = field(default_factory=dict)
    per_query_results: list = field(default_factory=list)
    #: Session id the batch was served under (``None`` = no prefetching).
    session_id: str | None = None
    #: Servers the router declared dead while serving this batch.
    servers_lost: int = 0

    @property
    def total_page_reads(self) -> int:
        return sum(self.reads_by_category.values())

    @property
    def total_prefetch_hits(self) -> int:
        return sum(self.prefetch_hits_by_category.values())

    @property
    def throughput_qps(self) -> float:
        if self.wall_seconds <= 0.0:
            return float("nan")
        return self.query_count / self.wall_seconds


@dataclass
class ClusterUpdateReport:
    """Outcome of one rolling update across the fleet."""

    inserted_ids: np.ndarray
    deleted_count: int
    #: Live elements after the commit.
    element_count: int
    #: Shard positions updated, in roll order.
    shards_updated: list
    #: Shard position -> generation the roll published.
    generations: dict
    #: Per-shard replica shipping accounting (empty without replicas).
    shipping: list
    wall_seconds: float = 0.0


class ClusterRouter:
    """Scatter–gather front door of a shard-server fleet.

    Built with :meth:`launch`, which restores the control replica,
    starts one primary server per shard and (optionally) replicates
    every shard into a second fleet.  Not thread-safe: a router owns
    one logical request stream per server connection.
    """

    def __init__(self, root, control, primaries: list,
                 replicas: list, runtime_dir,
                 clear_cache_per_query: bool = True,
                 _owns_runtime_dir: bool = False):
        self._root = Path(root)
        self._control = control
        self._primaries = primaries
        #: Replica handles, positionally aligned with primaries (``None``
        #: entries for shards without a replica).
        self._replicas = replicas
        self._runtime_dir = Path(runtime_dir)
        self._owns_runtime_dir = _owns_runtime_dir
        self.clear_cache_per_query = clear_cache_per_query
        self.planner: QueryPlanner = control.planner
        #: Optional :class:`~repro.core.delta.DeltaIndex` overlaid at
        #: the gather point (global ids, same contract as
        #: :attr:`ShardedFLATIndex.delta`).
        self.delta = None
        #: Servers declared dead so far (discovered through failed
        #: requests; every one triggered a failover or a shard loss).
        self.servers_lost = 0
        #: Planner decision of the most recent single query.
        self.last_plan: QueryPlan | None = None
        self._generations = {
            pos: int(shard.index.store.generation)
            for pos, shard in enumerate(control.shards)
        }
        self._closed = False

    # -- construction ---------------------------------------------------

    @classmethod
    def launch(cls, root, replica_root=None, runtime_dir=None,
               clear_cache_per_query: bool = True) -> "ClusterRouter":
        """Bring up a cluster over a sharded snapshot *root*.

        One primary server per shard serves the shard's latest
        generation.  With *replica_root*, every shard's generation
        directory is first shipped there
        (:func:`~repro.core.snapshot.ship_index_generation` — a full
        copy on the fresh directories, incremental ever after) and a
        replica server is started per shard; the router fails over to
        replicas automatically.  *runtime_dir* holds the socket files
        (kept short for ``AF_UNIX``; a private temp directory by
        default).
        """
        from repro.core.sharded import ShardedFLATIndex
        from repro.core.snapshot import ship_index_generation

        root = Path(root)
        control = ShardedFLATIndex.restore(root)
        owns_runtime = runtime_dir is None
        if owns_runtime:
            runtime_dir = tempfile.mkdtemp(prefix="flatclu-")
        authkey = os.urandom(16)
        primaries: list = []
        replicas: list = []
        shipping: list = []
        try:
            for pos, shard in enumerate(control.shards):
                directory = ShardedFLATIndex.shard_directory(root, pos)
                generation = int(shard.index.store.generation)
                primaries.append(_start_shard_server(
                    pos, "primary", directory, generation, shard.element_ids,
                    runtime_dir, authkey,
                ))
                if replica_root is None:
                    replicas.append(None)
                    continue
                replica_dir = ShardedFLATIndex.shard_directory(
                    replica_root, pos
                )
                shipping.append(ship_index_generation(
                    directory, replica_dir, generation
                ).as_dict())
                replicas.append(_start_shard_server(
                    pos, "replica", replica_dir, generation,
                    shard.element_ids, runtime_dir, authkey,
                ))
        except BaseException:
            for handle in primaries + [h for h in replicas if h is not None]:
                handle.process.terminate()
            control.close()
            raise
        router = cls(root, control, primaries, replicas, runtime_dir,
                     clear_cache_per_query, _owns_runtime_dir=owns_runtime)
        #: Launch-time replica shipping accounting (one entry per shard).
        router.replication_log = shipping
        return router

    # -- endpoints ------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._primaries)

    @property
    def element_count(self) -> int:
        """Live committed elements (the control replica's count)."""
        return self._control.element_count

    @property
    def live_element_count(self) -> int:
        """Committed elements plus the attached delta's net change."""
        if self.delta is None:
            return self.element_count
        return self.element_count + self.delta.element_delta

    def shard_generations(self) -> dict:
        """Shard position -> generation the fleet currently serves."""
        return dict(self._generations)

    def _endpoints(self, pos: int) -> list:
        handles = [self._primaries[pos]]
        if self._replicas[pos] is not None:
            handles.append(self._replicas[pos])
        return handles

    def _endpoint(self, pos: int) -> ShardServerHandle:
        """The live server currently responsible for shard *pos*."""
        for handle in self._endpoints(pos):
            if handle.alive:
                return handle
        raise ClusterError(
            f"shard {pos} has no live server (primary and replica both "
            "lost); results would be incomplete"
        )

    def _mark_dead(self, handle: ShardServerHandle) -> None:
        if not handle.alive:
            return
        handle.alive = False
        handle.close_connection()
        self.servers_lost += 1

    @staticmethod
    def _unwrap(reply, pos: int):
        status, payload = reply
        if status != "ok":
            raise ClusterError(f"shard {pos} server error: {payload}")
        return payload

    def _request_one(self, pos: int, message):
        """One request with automatic failover to the shard's replica."""
        while True:
            handle = self._endpoint(pos)
            try:
                reply = handle.request(message)
            except _DEAD_SERVER_ERRORS:
                self._mark_dead(handle)
                continue
            return self._unwrap(reply, pos)

    def _request_many(self, requests: list) -> list:
        """Serve ``(shard_pos, message)`` requests, pipelined per server.

        Requests to one connection are answered strictly in order, so
        per-handle FIFOs pair replies with requests.  A connection that
        dies mid-stream pushes its unanswered requests back onto the
        work queue; they re-resolve to the shard's next live endpoint
        (reads are idempotent, so a request the dead server may have
        already executed is safely re-run).
        """
        replies = [None] * len(requests)
        pending: dict = {}
        work = deque(enumerate(requests))

        def drain_one(handle, queue) -> None:
            try:
                reply = handle.recv()
            except _DEAD_SERVER_ERRORS:
                self._mark_dead(handle)
                work.extendleft(reversed([(i, (pos, msg))
                                          for i, pos, msg in queue]))
                queue.clear()
                return
            i, pos, _msg = queue.popleft()
            replies[i] = self._unwrap(reply, pos)

        while work or any(pending.values()):
            if not work:
                for handle, queue in pending.items():
                    if queue:
                        drain_one(handle, queue)
                continue
            i, (pos, message) = work.popleft()
            handle = self._endpoint(pos)
            queue = pending.setdefault(handle, deque())
            if len(queue) >= PIPELINE_WINDOW:
                drain_one(handle, queue)
                work.appendleft((i, (pos, message)))
                continue
            try:
                handle.send(message)
            except _DEAD_SERVER_ERRORS:
                self._mark_dead(handle)
                work.appendleft((i, (pos, message)))
                continue
            queue.append((i, pos, message))
        return replies

    # -- querying -------------------------------------------------------

    def range_query(self, query: np.ndarray,
                    session_id: str | None = None) -> np.ndarray:
        """Scatter the box to the selected servers, gather sorted ids.

        With a *session_id*, every touched server also feeds the box to
        its per-session trajectory model and warms its buffer pool for
        the predicted next box — results are byte-identical either way.
        """
        self._check_open()
        query = np.asarray(query, dtype=np.float64)
        selected = self.planner.shards_for_box(query)
        self.last_plan = QueryPlan(
            self.shard_count, [int(pos) for pos in selected]
        )
        cold = self.clear_cache_per_query
        replies = self._request_many(
            [(int(pos), ("range", query, cold, session_id))
             for pos in selected]
        )
        parts = [ids for ids, _reads, _hits in replies]
        return QueryPlanner.merge_sorted_ids(
            parts, delta=self.delta, query=query
        )

    def point_query(self, point: np.ndarray) -> np.ndarray:
        """Element ids whose MBR contains *point* (degenerate range)."""
        return self.range_query(point_as_box(point))

    def knn_query(self, point: np.ndarray, k: int,
                  return_distances: bool = False):
        """The *k* nearest elements, MINDIST-ordered walk over servers.

        The same shard walk as
        :meth:`ShardedFLATIndex.knn_query
        <repro.core.sharded.ShardedFLATIndex.knn_query>` — each visited
        server contributes its exact local top k (global ids), and the
        walk stops when the next shard's box is strictly farther than
        the current k-th candidate.
        """
        self._check_open()
        point = np.asarray(point, dtype=np.float64).reshape(3)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        order, shard_dists = self.planner.shards_by_distance(point)
        best_ids = _EMPTY_IDS
        best_dists = np.empty(0, dtype=np.float64)
        delta = self.delta
        if delta is not None and delta.is_empty:
            delta = None
        shard_k = k
        if delta is not None:
            # Same tombstone-widening as the monolithic shard walk: ask
            # each server for enough extras to survive the global mask.
            shard_k = k + delta.tombstone_count
            ids, dists = delta.knn_candidates(point)
            keep = np.lexsort((ids, dists))[:k]
            best_ids, best_dists = ids[keep], dists[keep]
        selected = []
        cold = self.clear_cache_per_query
        for pos, shard_dist in zip(order, shard_dists):
            if len(best_ids) >= k and shard_dist > best_dists[-1]:
                break
            hit_ids, local_dists = self._request_one(
                int(pos), ("knn", point, shard_k, cold)
            )
            selected.append(int(pos))
            if delta is not None:
                keep_alive = ~delta.tombstoned(hit_ids)
                hit_ids = hit_ids[keep_alive]
                local_dists = local_dists[keep_alive]
            ids = np.concatenate([best_ids, hit_ids])
            dists = np.concatenate([best_dists, local_dists])
            keep = np.lexsort((ids, dists))[:k]
            best_ids, best_dists = ids[keep], dists[keep]
        self.last_plan = QueryPlan(self.shard_count, selected)
        if return_distances:
            return best_ids, best_dists
        return best_ids

    def run(self, queries: np.ndarray,
            session_id: str | None = None) -> tuple:
        """Serve a whole range batch; returns ``(results, report)``.

        Every (query, touched shard) pair becomes one pipelined server
        request — up to :data:`PIPELINE_WINDOW` in flight per server —
        so the shard servers crawl concurrently and aggregate
        throughput scales with the fleet size.  Results come back in
        request order, merged per query at the gather point.

        A *session_id* is forwarded with every request: each server
        then runs its own trajectory model over the boxes it sees and
        prefetches for the predicted next one.  The per-server replies
        keep prefetch hits separate from physical reads, and the report
        aggregates both without mixing them.
        """
        self._check_open()
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != 6:
            raise ValueError(f"expected (N, 6) query boxes, got {queries.shape}")
        report = ClusterReport(session_id=session_id)
        lost_before = self.servers_lost
        requests: list = []
        spans: list = []
        cold = self.clear_cache_per_query
        for query in queries:
            selected = self.planner.shards_for_box(query)
            spans.append((len(requests), len(selected), query))
            report.shard_requests += len(selected)
            report.shards_pruned += self.shard_count - len(selected)
            requests.extend(
                (int(pos), ("range", query, cold, session_id))
                for pos in selected
            )
        t0 = time.perf_counter()
        replies = self._request_many(requests)
        report.wall_seconds = time.perf_counter() - t0
        reads: dict = {}
        prefetch_hits: dict = {}
        results = []
        for start, count, query in spans:
            parts = []
            for ids, part_reads, part_hits in replies[start:start + count]:
                parts.append(ids)
                for category, n in part_reads.items():
                    reads[category] = reads.get(category, 0) + n
                for category, n in part_hits.items():
                    prefetch_hits[category] = prefetch_hits.get(category, 0) + n
            results.append(QueryPlanner.merge_sorted_ids(
                parts, delta=self.delta, query=query
            ))
        report.query_count = len(results)
        report.per_query_results = [len(ids) for ids in results]
        report.result_elements = sum(report.per_query_results)
        report.reads_by_category = dict(sorted(reads.items()))
        report.prefetch_hits_by_category = dict(sorted(prefetch_hits.items()))
        report.servers_lost = self.servers_lost - lost_before
        return results, report

    def status(self) -> list:
        """One status dict per shard, from its currently serving server."""
        self._check_open()
        return [
            dict(self._request_one(pos, ("status",)), shard=pos)
            for pos in range(self.shard_count)
        ]

    # -- rolling updates ------------------------------------------------

    def apply_updates(self, insert_mbrs=None, delete_ids=None,
                      on_shard_updated=None) -> ClusterUpdateReport:
        """Apply an insert/delete batch as a rolling, shard-by-shard update.

        The batch lands on a copy-on-write fork of the control replica
        (routing, shard-box widening and id assignment are exactly
        :meth:`ShardedFLATIndex.apply_batch
        <repro.core.sharded.ShardedFLATIndex.apply_batch>`), then the
        touched shards roll one at a time: the shard's next generation
        is published in place (atomic manifest rename), the increment
        is shipped to the shard's replica, and both servers swap to the
        new generation via ``reload``.  Untouched shards are never
        contacted.  The fleet serves throughout; after each shard
        finishes, *on_shard_updated(pos, generation)* fires — the hook
        the exactness harnesses use to query mid-roll.

        The planner adopts the fork's widened shard boxes *before* any
        server swaps: boxes only grow, so pruning stays exact against
        old and new generations alike.  After the roll the root's shard
        manifest is refreshed
        (:meth:`~repro.core.sharded.ShardedFLATIndex.write_shard_manifest`)
        and the control replica re-restores from disk, so repeated
        update batches never stack overlay forks.
        """
        from repro.core.sharded import ShardedFLATIndex
        from repro.core.snapshot import (
            publish_fork_generation,
            ship_index_generation,
        )

        self._check_open()
        t0 = time.perf_counter()
        fork = self._control.fork()
        inserted = fork.apply_batch(
            insert_mbrs=insert_mbrs, delete_ids=delete_ids
        )
        deleted = 0 if delete_ids is None else len(np.atleast_1d(
            np.asarray(delete_ids, dtype=np.int64)
        ))
        # Widened boxes are safe for every generation (grow-only), and
        # queries racing the roll must already see them for shards whose
        # new generation lands mid-batch.
        self.planner = fork.planner
        touched = []
        for pos, shard in enumerate(fork.shards):
            backend = shard.index.store.backend
            if backend.overrides or len(backend) != len(backend.base):
                touched.append(pos)

        generations: dict = {}
        shipping: list = []
        for pos in touched:
            shard = fork.shards[pos]
            _directory, generation = publish_fork_generation(
                shard.index, expected_base=self._generations[pos]
            )
            self._generations[pos] = generation
            generations[pos] = generation
            reload = ("reload", generation, shard.element_ids)
            primary = self._primaries[pos]
            if primary.alive:
                try:
                    self._unwrap(primary.request(reload), pos)
                except _DEAD_SERVER_ERRORS:
                    self._mark_dead(primary)
            replica = self._replicas[pos]
            if replica is not None:
                shipping.append(dict(
                    ship_index_generation(
                        primary.directory, replica.directory, generation
                    ).as_dict(),
                    shard=pos,
                ))
                if replica.alive:
                    try:
                        self._unwrap(replica.request(reload), pos)
                    except _DEAD_SERVER_ERRORS:
                        self._mark_dead(replica)
            # A shard whose every server died mid-roll can no longer
            # serve — surface it now rather than on the next query.
            self._endpoint(pos)
            if on_shard_updated is not None:
                on_shard_updated(pos, generation)

        # Refresh the on-disk root manifest and swap the control replica
        # to a clean restore, so the next fork starts from plain
        # mmap-backed stores instead of a growing overlay chain.
        fork.write_shard_manifest(self._root)
        new_control = ShardedFLATIndex.restore(self._root)
        old_control = self._control
        self._control = new_control
        self.planner = new_control.planner
        old_control.close()

        return ClusterUpdateReport(
            inserted_ids=inserted,
            deleted_count=deleted,
            element_count=new_control.element_count,
            shards_updated=touched,
            generations=generations,
            shipping=shipping,
            wall_seconds=time.perf_counter() - t0,
        )

    # -- failure injection / lifecycle ----------------------------------

    def kill_server(self, pos: int, role: str = "primary") -> None:
        """Hard-kill one server process (tests and failover drills).

        The router's routing state is left untouched: the death is
        discovered by the next request that hits the dead connection,
        which is exactly the failover path being drilled.
        """
        handle = (self._primaries if role == "primary" else self._replicas)[pos]
        if handle is None:
            raise ClusterError(f"shard {pos} has no {role} server")
        handle.kill()

    def _check_open(self) -> None:
        if self._closed:
            raise ClusterError("cluster is closed")

    def close(self) -> None:
        """Shut the fleet down: graceful shutdown, then terminate."""
        if self._closed:
            return
        self._closed = True
        handles = [h for h in self._primaries + self._replicas
                   if h is not None]
        for handle in handles:
            if handle.alive and handle.process.is_alive():
                try:
                    handle.request(("shutdown",))
                except Exception:
                    pass
            handle.close_connection()
        for handle in handles:
            handle.process.join(timeout=10)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=10)
        self._control.close()
        if self._owns_runtime_dir:
            for entry in self._runtime_dir.glob("*.sock"):
                try:
                    entry.unlink()
                except OSError:
                    pass
            try:
                self._runtime_dir.rmdir()
            except OSError:
                pass

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
