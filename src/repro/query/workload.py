"""Range-query workload generation.

Both of the paper's micro-benchmarks draw queries with a *fixed volume*
(a fraction of the data-set space) but random location and random
aspect ratio (Sec. VII-A: "The location and aspect ratio of all queries
is chosen at random").
"""

from __future__ import annotations

import numpy as np


def random_range_queries(
    space_mbr: np.ndarray,
    volume_fraction: float,
    count: int,
    seed: int = 0,
    max_aspect: float = 4.0,
) -> np.ndarray:
    """*count* random query boxes of fixed volume inside *space_mbr*.

    Each query's volume is ``volume_fraction`` of the space volume; its
    per-axis extents are the cube root of that volume multiplied by
    random aspect factors (log-uniform, product 1, each within
    ``[1/max_aspect, max_aspect]``); its position is uniform such that
    the box lies fully inside the space.

    On anisotropic spaces (or for large fractions) an extent can exceed
    the space span; it is then clamped to the span and the lost volume
    is redistributed onto the unclamped axes, so every generated box has
    *exactly* the target volume (the redistributed axes may exceed the
    nominal aspect bound).  Raises :class:`ValueError` when the volume
    cannot fit, i.e. ``volume_fraction > 1``.
    """
    space_mbr = np.asarray(space_mbr, dtype=np.float64)
    if not 0.0 < volume_fraction:
        raise ValueError(f"volume_fraction must be positive, got {volume_fraction}")
    if volume_fraction > 1.0:
        raise ValueError(
            f"volume_fraction {volume_fraction} exceeds the space volume; "
            "a fixed-volume query cannot be larger than the space"
        )
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if max_aspect < 1.0:
        raise ValueError(f"max_aspect must be >= 1, got {max_aspect}")
    span = space_mbr[3:] - space_mbr[:3]
    if np.any(span <= 0):
        raise ValueError(f"space box must have positive extent, got {space_mbr}")

    rng = np.random.default_rng(seed)
    target_volume = volume_fraction * float(np.prod(span))
    edge = target_volume ** (1.0 / 3.0)

    # Log-uniform aspect factors normalized to product one.
    log_f = rng.uniform(-np.log(max_aspect), np.log(max_aspect), size=(count, 3))
    log_f -= log_f.mean(axis=1, keepdims=True)
    extents = edge * np.exp(log_f)
    extents = _clamp_preserving_volume(extents, span, target_volume)

    lo = space_mbr[:3] + rng.uniform(0.0, 1.0, size=(count, 3)) * (span - extents)
    return np.concatenate([lo, lo + extents], axis=1)


def _clamp_preserving_volume(
    extents: np.ndarray, span: np.ndarray, target_volume: float
) -> np.ndarray:
    """Clamp per-axis extents to *span* without changing the box volume.

    Whenever an axis exceeds the space span it is pinned to the span and
    the lost volume is redistributed onto the remaining free axes
    (scaled uniformly, preserving their relative aspect).  Rescaling can
    push a previously-fine axis over the span, so the clamp iterates —
    at most once per axis, since every round pins at least one more
    axis.  With ``target_volume <= prod(span)`` the iteration always
    terminates with the volume exactly restored: the per-row extent
    product is invariantly the target volume, so all three axes can only
    end up pinned when the target *is* the space volume.
    """
    fixed = np.zeros(extents.shape, dtype=bool)
    # One extra round beyond the axis count: the final rescale can push
    # an axis a few ulps over the span, which only the next round's pin
    # (a no-op rescale, every other axis already fixed) cleans up.
    for _ in range(extents.shape[1] + 1):
        newly = (extents > span) & ~fixed
        if not newly.any():
            break
        fixed |= newly
        extents = np.where(fixed, np.broadcast_to(span, extents.shape), extents)
        free = ~fixed
        free_counts = free.sum(axis=1)
        pinned_volume = np.where(fixed, extents, 1.0).prod(axis=1)
        free_volume = np.where(free, extents, 1.0).prod(axis=1)
        scale = np.where(
            free_counts > 0,
            (target_volume / (pinned_volume * free_volume))
            ** (1.0 / np.maximum(free_counts, 1)),
            1.0,
        )
        extents = np.where(free, extents * scale[:, None], extents)

    # Ulp-level overshoot can survive the last rescale; pin it without
    # rescaling (the deviation is checked below, far inside tolerance).
    extents = np.minimum(extents, span)
    volumes = extents.prod(axis=1)
    if not np.allclose(volumes, target_volume, rtol=1e-9):
        worst = float(np.abs(volumes - target_volume).max())
        raise ValueError(
            f"cannot fit fixed-volume queries of {target_volume} into the "
            f"space (worst volume deviation {worst})"
        )
    return extents


def trajectory_range_queries(
    space_mbr: np.ndarray,
    volume_fraction: float,
    count: int,
    seed: int = 0,
    step_fraction: float = 0.5,
    persistence: float = 0.92,
) -> np.ndarray:
    """*count* fixed-volume boxes walking along a synthetic neuron branch.

    The structure-following session workload: an analyst tracing a
    fiber asks for box after box along it, so box centers follow one
    direction-persistent branch walk
    (:func:`repro.data.neuron.branch_path`) with a constant step of
    ``step_fraction`` of the query edge — consecutive boxes overlap and
    the heading drifts only gently, which is exactly what a trajectory
    prefetcher can learn.  Boxes are cubes of ``volume_fraction`` of
    the space volume (a session keeps the extents the analyst chose),
    clamped to lie fully inside the space; clamping near a wall — like
    a wall reflection of the path itself — is a genuine sharp turn the
    prefetcher must survive, so it is left in the workload.
    """
    space_mbr = np.asarray(space_mbr, dtype=np.float64)
    if not 0.0 < volume_fraction <= 1.0:
        raise ValueError(
            f"volume_fraction must be in (0, 1], got {volume_fraction}"
        )
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if step_fraction <= 0:
        raise ValueError(f"step_fraction must be positive, got {step_fraction}")
    span = space_mbr[3:] - space_mbr[:3]
    if np.any(span <= 0):
        raise ValueError(f"space box must have positive extent, got {space_mbr}")

    from repro.data.neuron import branch_path

    rng = np.random.default_rng(seed)
    edge = (volume_fraction * float(np.prod(span))) ** (1.0 / 3.0)
    edge = float(min(edge, span.min()))
    half = edge / 2.0
    centers = branch_path(
        space_mbr,
        steps=max(count - 1, 1),
        step_length=step_fraction * edge,
        persistence=persistence,
        rng=rng,
    )[:count]
    centers = np.clip(centers, space_mbr[:3] + half, space_mbr[3:] - half)
    return np.concatenate([centers - half, centers + half], axis=1)


def random_points(space_mbr: np.ndarray, count: int, seed: int = 0) -> np.ndarray:
    """*count* uniform random points inside the space (Fig. 2's probes)."""
    space_mbr = np.asarray(space_mbr, dtype=np.float64)
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    rng = np.random.default_rng(seed)
    return rng.uniform(space_mbr[:3], space_mbr[3:], size=(count, 3))
