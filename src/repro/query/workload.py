"""Range-query workload generation.

Both of the paper's micro-benchmarks draw queries with a *fixed volume*
(a fraction of the data-set space) but random location and random
aspect ratio (Sec. VII-A: "The location and aspect ratio of all queries
is chosen at random").
"""

from __future__ import annotations

import numpy as np


def random_range_queries(
    space_mbr: np.ndarray,
    volume_fraction: float,
    count: int,
    seed: int = 0,
    max_aspect: float = 4.0,
) -> np.ndarray:
    """*count* random query boxes of fixed volume inside *space_mbr*.

    Each query's volume is ``volume_fraction`` of the space volume; its
    per-axis extents are the cube root of that volume multiplied by
    random aspect factors (log-uniform, product 1, each within
    ``[1/max_aspect, max_aspect]``); its position is uniform such that
    the box lies fully inside the space.
    """
    space_mbr = np.asarray(space_mbr, dtype=np.float64)
    if not 0.0 < volume_fraction:
        raise ValueError(f"volume_fraction must be positive, got {volume_fraction}")
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if max_aspect < 1.0:
        raise ValueError(f"max_aspect must be >= 1, got {max_aspect}")
    span = space_mbr[3:] - space_mbr[:3]
    if np.any(span <= 0):
        raise ValueError(f"space box must have positive extent, got {space_mbr}")

    rng = np.random.default_rng(seed)
    target_volume = volume_fraction * float(np.prod(span))
    edge = target_volume ** (1.0 / 3.0)

    # Log-uniform aspect factors normalized to product one.
    log_f = rng.uniform(-np.log(max_aspect), np.log(max_aspect), size=(count, 3))
    log_f -= log_f.mean(axis=1, keepdims=True)
    extents = edge * np.exp(log_f)
    # Clamp to the space span (can only occur for huge fractions), then
    # restore the volume by scaling the other axes where possible.
    extents = np.minimum(extents, span)

    lo = space_mbr[:3] + rng.uniform(0.0, 1.0, size=(count, 3)) * (span - extents)
    return np.concatenate([lo, lo + extents], axis=1)


def random_points(space_mbr: np.ndarray, count: int, seed: int = 0) -> np.ndarray:
    """*count* uniform random points inside the space (Fig. 2's probes)."""
    space_mbr = np.asarray(space_mbr, dtype=np.float64)
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    rng = np.random.default_rng(seed)
    return rng.uniform(space_mbr[:3], space_mbr[3:], size=(count, 3))
