"""The scatter–gather query planner over spatial shards.

A sharded index splits the space into K gap-free shard boxes (coarse
STR tiles, stretched to enclose their elements exactly like FLAT's own
partitions).  The planner is the pure-geometry half of query routing:
given a query it decides which shards can possibly contribute — every
element MBR is contained in its shard's box, so a shard whose box does
not intersect the query is *provably* irrelevant and is pruned before
any I/O happens.  For kNN it orders shards by MINDIST so the executor
can stop as soon as the next shard is farther than the current k-th
candidate.

The planner never touches stores or engines; the sharded index and the
serving layer consume its decisions, and :class:`QueryPlan` records
them so harnesses can report shard pruning next to the paper's
per-category page accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.intersect import boxes_intersect_box, boxes_intersect_point
from repro.geometry.mbr import mbr_distance_to_point, mbr_union, validate_mbrs


@dataclass
class QueryPlan:
    """What the planner decided for one query (scatter accounting)."""

    #: Total shards in the index.
    shard_count: int
    #: Shard ids the query was actually sent to, in execution order.
    shards_selected: list = field(default_factory=list)

    @property
    def shards_pruned(self) -> int:
        """Shards skipped without any I/O."""
        return self.shard_count - len(self.shards_selected)


class QueryPlanner:
    """Route queries to shards by MBR intersection / MINDIST ordering."""

    def __init__(self, shard_mbrs: np.ndarray):
        self.shard_mbrs = validate_mbrs(shard_mbrs)
        if len(self.shard_mbrs) == 0:
            raise ValueError("a planner needs at least one shard MBR")

    @property
    def shard_count(self) -> int:
        return len(self.shard_mbrs)

    def widen_shard(self, shard_id: int, box: np.ndarray) -> None:
        """Grow one shard's box to additionally enclose *box*.

        The write path calls this when an insert routed to a shard
        falls outside its current box: pruning is exact only while
        every element MBR is contained in its shard's box, so the box
        must widen before the element lands.  Boxes only ever grow —
        a widened shard can be pruned less, never wrongly.
        """
        self.shard_mbrs[shard_id] = mbr_union(self.shard_mbrs[shard_id], box)

    def copy(self) -> "QueryPlanner":
        """An independent planner over copied shard boxes (for forks)."""
        return QueryPlanner(self.shard_mbrs.copy())

    # -- routing -------------------------------------------------------

    def shards_for_box(self, query: np.ndarray) -> np.ndarray:
        """Ids of shards whose box intersects the ``(6,)`` query box.

        Exact pruning: every element MBR is contained in its shard box,
        so the skipped shards cannot hold any result.
        """
        query = np.asarray(query, dtype=np.float64)
        return np.flatnonzero(boxes_intersect_box(self.shard_mbrs, query))

    def shards_for_point(self, point: np.ndarray) -> np.ndarray:
        """Ids of shards whose box contains the ``(3,)`` point."""
        point = np.asarray(point, dtype=np.float64)
        return np.flatnonzero(boxes_intersect_point(self.shard_mbrs, point))

    def shards_by_distance(self, point: np.ndarray) -> tuple:
        """All shard ids ordered by MINDIST to *point* (ties by id).

        The kNN executor walks this order and stops once the next
        shard's distance exceeds its k-th best candidate — the shard
        analogue of best-first search.
        """
        point = np.asarray(point, dtype=np.float64)
        dists = mbr_distance_to_point(self.shard_mbrs, point)
        order = np.lexsort((np.arange(len(dists)), dists))
        return order, dists[order]

    # -- merging -------------------------------------------------------

    @staticmethod
    def merge_sorted_ids(parts, delta=None, query=None) -> np.ndarray:
        """Merge per-shard sorted id arrays into one sorted result.

        Shards partition the element set, so the parts are disjoint and
        a concatenate-and-sort is an exact merge.  When the serving
        index carries a :class:`~repro.core.delta.DeltaIndex`, the
        gather point is where its overlay applies — pass the *delta*
        and the query box and the merged result is corrected in RAM
        (tombstoned ids dropped, memtable hits for *query* unioned in)
        without touching any shard's page accounting.
        """
        parts = [part for part in parts if len(part)]
        if not parts:
            out = np.empty(0, dtype=np.int64)
        else:
            out = np.sort(np.concatenate(parts))
        if delta is not None and not delta.is_empty:
            out = delta.overlay(out, np.asarray(query, dtype=np.float64))
        return out
