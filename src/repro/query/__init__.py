"""Query workloads, the engine protocol, the cold-cache harness and the
concurrent serving layer."""

from repro.query.engine import CallableEngine, QueryEngine
from repro.query.benchmarks import (
    BenchmarkSpec,
    PAPER_LSS_FRACTION,
    PAPER_SN_FRACTION,
    QUERY_COUNT,
    SCALED_LSS_FRACTION,
    SCALED_SN_FRACTION,
    lss_benchmark,
    sn_benchmark,
)
from repro.query.executor import QueryRunResult, run_point_queries, run_queries
from repro.query.service import QueryService, ServiceReport
from repro.query.workload import random_points, random_range_queries

__all__ = [
    "BenchmarkSpec",
    "CallableEngine",
    "PAPER_LSS_FRACTION",
    "PAPER_SN_FRACTION",
    "QUERY_COUNT",
    "QueryEngine",
    "QueryRunResult",
    "QueryService",
    "SCALED_LSS_FRACTION",
    "SCALED_SN_FRACTION",
    "ServiceReport",
    "lss_benchmark",
    "random_points",
    "random_range_queries",
    "run_point_queries",
    "run_queries",
    "sn_benchmark",
]
