"""Query workloads, the engine protocol, the scatter–gather planner,
the cold-cache harness and the concurrent serving layer."""

from repro.query.cluster import (
    ClusterError,
    ClusterReport,
    ClusterRouter,
    ClusterUpdateReport,
    ShardServerHandle,
)
from repro.query.engine import CallableEngine, QueryEngine
from repro.query.benchmarks import (
    BenchmarkSpec,
    PAPER_LSS_FRACTION,
    PAPER_SN_FRACTION,
    QUERY_COUNT,
    SCALED_LSS_FRACTION,
    SCALED_SN_FRACTION,
    lss_benchmark,
    sn_benchmark,
)
from repro.query.executor import (
    QueryRunResult,
    run_knn_queries,
    run_point_queries,
    run_queries,
    run_queries_grouped,
)
from repro.query.knn import expanding_radius_knn
from repro.query.planner import QueryPlan, QueryPlanner
from repro.query.prefetch import (
    PrefetchArea,
    PrefetchConfig,
    Prefetcher,
    TrajectoryModel,
)
from repro.query.service import (
    GatherFuture,
    MODE_PROCESS,
    MODE_THREAD,
    QueryService,
    ServiceReport,
    UpdateReport,
)
from repro.query.workload import (
    random_points,
    random_range_queries,
    trajectory_range_queries,
)

__all__ = [
    "BenchmarkSpec",
    "CallableEngine",
    "ClusterError",
    "ClusterReport",
    "ClusterRouter",
    "ClusterUpdateReport",
    "GatherFuture",
    "MODE_PROCESS",
    "MODE_THREAD",
    "PAPER_LSS_FRACTION",
    "PAPER_SN_FRACTION",
    "PrefetchArea",
    "PrefetchConfig",
    "Prefetcher",
    "QUERY_COUNT",
    "QueryEngine",
    "QueryPlan",
    "QueryPlanner",
    "QueryRunResult",
    "QueryService",
    "SCALED_LSS_FRACTION",
    "SCALED_SN_FRACTION",
    "ServiceReport",
    "ShardServerHandle",
    "TrajectoryModel",
    "UpdateReport",
    "expanding_radius_knn",
    "lss_benchmark",
    "random_points",
    "random_range_queries",
    "run_knn_queries",
    "run_point_queries",
    "run_queries",
    "run_queries_grouped",
    "sn_benchmark",
    "trajectory_range_queries",
]
