"""Concurrent range-query serving over per-worker store views.

The build/measure harness (:func:`repro.query.executor.run_queries`)
is deliberately single-threaded — the paper's figures are per-query
page-read counts.  Serving is the other regime: one immutable index,
many concurrent readers, throughput as the metric.  ``QueryService``
bridges the two without giving up the accounting:

* every worker thread lazily gets its **own** engine clone
  (:meth:`FLATIndex.with_store <repro.core.flat_index.FLATIndex.with_store>`)
  over a stat-isolated :meth:`~repro.storage.pagestore.PageStore.view`
  of the shared store, so buffer pools, decoded-page caches, per-query
  crawl scratch and :class:`~repro.storage.stats.IOStats` are all
  thread-private while the page bytes (e.g. one read-only ``mmap``)
  are shared;
* :meth:`QueryService.run` executes a query batch through the thread
  pool and aggregates the per-worker counters into one
  :class:`ServiceReport`, with results in request order.

Works with any engine exposing ``range_query`` plus ``store`` and
``with_store`` (FLAT today); the page payloads are immutable, so
concurrent reads need no locking anywhere in the storage layer.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.storage.stats import IOStats


@dataclass
class ServiceReport:
    """Aggregated outcome of one query batch served concurrently."""

    index_name: str
    worker_count: int
    query_count: int = 0
    result_elements: int = 0
    wall_seconds: float = 0.0
    #: Physical page reads summed over every worker's stat view.
    reads_by_category: dict = field(default_factory=dict)
    #: Full page decodes by decode kind, summed over workers.
    decodes_by_kind: dict = field(default_factory=dict)
    cache_hits: int = 0
    #: Worker threads that actually served at least one query.
    workers_used: int = 0
    per_query_results: list = field(default_factory=list)

    @property
    def total_page_reads(self) -> int:
        return sum(self.reads_by_category.values())

    @property
    def throughput_qps(self) -> float:
        """Served queries per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return float("nan")
        return self.query_count / self.wall_seconds


class QueryService:
    """Serve range queries from a thread pool over one shared index.

    Parameters
    ----------
    index:
        A built (or restored) index exposing ``range_query``, ``store``
        and ``with_store`` — typically a
        :class:`~repro.core.flat_index.FLATIndex` reopened from a
        snapshot over the mmap-backed file store.
    workers:
        Thread-pool size; each thread serves from its own store view.
    clear_cache_per_query:
        ``True`` (default) reproduces the paper's cold-cache regime —
        each worker drops its buffer and decoded-page cache before
        every query.  ``False`` serves warm: caches accumulate across
        queries within each worker.
    """

    def __init__(self, index, workers: int = 4, clear_cache_per_query: bool = True):
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self._index = index
        self.worker_count = workers
        self.clear_cache_per_query = clear_cache_per_query
        self._local = threading.local()
        self._worker_states: list = []
        self._states_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="query-worker"
        )
        self._closed = False

    # -- worker state ---------------------------------------------------

    def _worker(self):
        """This thread's (engine, store) pair, created on first use."""
        state = getattr(self._local, "state", None)
        if state is None:
            store = self._index.store.view()
            state = (self._index.with_store(store), store)
            self._local.state = state
            with self._states_lock:
                self._worker_states.append(state)
        return state

    def _execute(self, query: np.ndarray) -> np.ndarray:
        engine, store = self._worker()
        if self.clear_cache_per_query:
            store.clear_cache()
        return engine.range_query(query)

    # -- serving --------------------------------------------------------

    def submit(self, query):
        """Enqueue one range query; returns a :class:`~concurrent.futures.Future`."""
        if self._closed:
            raise RuntimeError("service is closed")
        query = np.asarray(query, dtype=np.float64)
        return self._pool.submit(self._execute, query)

    def run(self, queries, index_name: str = "") -> ServiceReport:
        """Serve a whole batch; results aggregate into the report.

        Queries are dispatched to the pool all at once and collected in
        request order; the report's counters are the exact difference
        each worker's :class:`IOStats` accumulated during this batch.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != 6:
            raise ValueError(f"expected (N, 6) query boxes, got {queries.shape}")
        report = ServiceReport(
            index_name=index_name or type(self._index).__name__,
            worker_count=self.worker_count,
        )
        with self._states_lock:
            before = {
                id(store): store.stats.snapshot()
                for _engine, store in self._worker_states
            }

        t0 = time.perf_counter()
        futures = [self._pool.submit(self._execute, query) for query in queries]
        results = [future.result() for future in futures]
        report.wall_seconds = time.perf_counter() - t0

        report.query_count = len(results)
        report.per_query_results = [len(hits) for hits in results]
        report.result_elements = sum(report.per_query_results)

        delta = IOStats()
        with self._states_lock:
            states = list(self._worker_states)
        for _engine, store in states:
            prior = before.get(id(store))
            worker_delta = store.stats.diff(prior) if prior else store.stats
            if worker_delta.total_reads or worker_delta.cache_hits:
                report.workers_used += 1
            delta.merge(worker_delta)
        report.reads_by_category = dict(delta.reads)
        report.decodes_by_kind = dict(delta.decode_misses)
        report.cache_hits = delta.cache_hits
        return report

    # -- introspection --------------------------------------------------

    def aggregate_stats(self) -> IOStats:
        """Lifetime I/O counters merged across every worker view."""
        total = IOStats()
        with self._states_lock:
            states = list(self._worker_states)
        for _engine, store in states:
            total.merge(store.stats)
        return total

    @property
    def workers_started(self) -> int:
        """Worker threads that have served at least one query ever."""
        with self._states_lock:
            return len(self._worker_states)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Shut the thread pool down (idempotent)."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
