"""Concurrent query serving over per-worker store views, shard-aware.

The build/measure harness (:func:`repro.query.executor.run_queries`)
is deliberately single-threaded — the paper's figures are per-query
page-read counts.  Serving is the other regime: one immutable index,
many concurrent readers, throughput as the metric.  ``QueryService``
bridges the two without giving up the accounting:

* every worker thread lazily gets its **own** engine clone
  (:meth:`FLATIndex.with_store <repro.core.flat_index.FLATIndex.with_store>`
  for a monolithic index, :meth:`ShardedFLATIndex.with_views
  <repro.core.sharded.ShardedFLATIndex.with_views>` for a sharded one)
  over stat-isolated :meth:`~repro.storage.pagestore.PageStore.view`
  stores, so buffer pools, decoded-page caches, per-query crawl scratch
  and :class:`~repro.storage.stats.IOStats` are all thread-private
  while the page bytes (e.g. one read-only ``mmap``) are shared;
* for a **sharded** index, :meth:`QueryService.run` executes
  scatter–gather: the planner prunes shards per query, one pool task is
  submitted per *touched* shard (so one slow shard never serializes the
  others), and the per-shard sorted ids merge in request order —
  :attr:`ServiceReport.shard_tasks` / :attr:`ServiceReport.shards_pruned`
  record the scatter;
* per-worker counters aggregate into one :class:`ServiceReport`; in the
  cold-cache regime the totals reproduce the single-threaded harness
  exactly, shard pruning included.

Works with any engine exposing ``range_query`` plus ``store`` and
``with_store`` (or ``shards``/``planner``/``with_views`` for the
sharded layout); the page payloads are immutable, so concurrent reads
need no locking anywhere in the storage layer.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.query.planner import QueryPlanner
from repro.storage.stats import IOStats


@dataclass
class ServiceReport:
    """Aggregated outcome of one query batch served concurrently."""

    index_name: str
    worker_count: int
    query_count: int = 0
    result_elements: int = 0
    wall_seconds: float = 0.0
    #: Physical page reads summed over every worker's stat view.
    reads_by_category: dict = field(default_factory=dict)
    #: Full page decodes by decode kind, summed over workers.
    decodes_by_kind: dict = field(default_factory=dict)
    cache_hits: int = 0
    #: Worker threads that actually served at least one query.
    workers_used: int = 0
    #: Shard executions dispatched (sharded indexes; one per touched
    #: shard per query — individual pool tasks for range batches,
    #: in-task MINDIST-walk visits for kNN batches).
    shard_tasks: int = 0
    #: Shard executions skipped by planner pruning, summed over queries.
    shards_pruned: int = 0
    per_query_results: list = field(default_factory=list)

    @property
    def total_page_reads(self) -> int:
        return sum(self.reads_by_category.values())

    @property
    def throughput_qps(self) -> float:
        """Served queries per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return float("nan")
        return self.query_count / self.wall_seconds


class GatherFuture:
    """Joins the per-shard futures of one scattered query.

    Quacks enough like :class:`concurrent.futures.Future` for callers
    of :meth:`QueryService.submit`: ``result()`` blocks until every
    shard task finished and returns the merged sorted ids.
    """

    def __init__(self, futures, merge):
        self._futures = futures
        self._merge = merge

    def result(self, timeout=None):
        # One overall deadline across all shard futures, so the Future
        # timeout contract holds regardless of the shard count.
        deadline = None if timeout is None else time.monotonic() + timeout
        parts = []
        for future in self._futures:
            remaining = None if deadline is None else deadline - time.monotonic()
            parts.append(future.result(remaining))
        return self._merge(parts)

    def done(self) -> bool:
        return all(future.done() for future in self._futures)

    def cancel(self) -> bool:
        return all([future.cancel() for future in self._futures])


class QueryService:
    """Serve queries from a thread pool over one shared index.

    Parameters
    ----------
    index:
        A built (or restored) index.  Monolithic engines expose
        ``range_query``, ``store`` and ``with_store`` (e.g.
        :class:`~repro.core.flat_index.FLATIndex`); sharded engines
        expose ``shards``, ``planner`` and ``with_views``
        (:class:`~repro.core.sharded.ShardedFLATIndex`) and are served
        scatter–gather.
    workers:
        Thread-pool size; each thread serves from its own store view(s).
    clear_cache_per_query:
        ``True`` (default) reproduces the paper's cold-cache regime —
        each worker drops the relevant buffer and decoded-page cache
        before every query (per touched shard, for sharded indexes).
        ``False`` serves warm: caches accumulate across queries within
        each worker.
    """

    def __init__(self, index, workers: int = 4, clear_cache_per_query: bool = True):
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self._index = index
        self.worker_count = workers
        self.clear_cache_per_query = clear_cache_per_query
        self._sharded = hasattr(index, "shards") and hasattr(index, "with_views")
        self._local = threading.local()
        self._worker_states: list = []
        self._states_lock = threading.Lock()
        self._lifecycle_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="query-worker"
        )
        self._closed = False

    # -- worker state ---------------------------------------------------

    def _worker(self):
        """This thread's (engine, store) pair, created on first use.

        For a sharded index the engine is a full per-worker clone with
        one view per shard, and the store is the clone's
        :class:`~repro.storage.pagestore.PageStoreGroup` facade — so the
        batch-level stat aggregation is identical in both modes.
        """
        state = getattr(self._local, "state", None)
        if state is None:
            if self._sharded:
                clone = self._index.with_views()
                state = (clone, clone.store)
            else:
                store = self._index.store.view()
                state = (self._index.with_store(store), store)
            self._local.state = state
            with self._states_lock:
                self._worker_states.append(state)
        return state

    def _execute(self, query: np.ndarray) -> np.ndarray:
        engine, store = self._worker()
        if self.clear_cache_per_query:
            store.clear_cache()
        return engine.range_query(query)

    def _execute_shard(self, shard_id: int, query: np.ndarray) -> np.ndarray:
        """One scatter task: crawl a single shard on this worker's view."""
        engine, _store = self._worker()
        shard = engine.shards[shard_id]
        if self.clear_cache_per_query:
            shard.store.clear_cache()
        local = shard.index.range_query(query)
        return shard.to_global(local) if local.size else local

    def _execute_knn(self, point: np.ndarray, k: int) -> tuple:
        """One kNN task; also returns the clone's plan (sharded engines)."""
        engine, store = self._worker()
        if self.clear_cache_per_query:
            store.clear_cache()
        hits = engine.knn_query(point, k)
        return hits, getattr(engine, "last_plan", None)

    #: Per-shard sorted ids merge exactly: shards partition the elements.
    _merge_shard_parts = staticmethod(QueryPlanner.merge_sorted_ids)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "QueryService is closed; create a new service to submit queries"
            )

    # -- serving --------------------------------------------------------

    def submit(self, query):
        """Enqueue one range query; returns a future.

        Monolithic indexes get one pool task per query; sharded indexes
        get one task per planner-selected shard joined by a
        :class:`GatherFuture`.
        """
        self._check_open()
        query = np.asarray(query, dtype=np.float64)
        if not self._sharded:
            return self._pool.submit(self._execute, query)
        shard_ids = self._index.planner.shards_for_box(query)
        futures = [
            self._pool.submit(self._execute_shard, int(sid), query)
            for sid in shard_ids
        ]
        return GatherFuture(futures, self._merge_shard_parts)

    def run(self, queries, index_name: str = "") -> ServiceReport:
        """Serve a whole batch; results aggregate into the report.

        Queries are dispatched to the pool all at once (every per-shard
        task of every query, for sharded indexes) and collected in
        request order; the report's counters are the exact difference
        each worker's :class:`IOStats` accumulated during this batch.
        """
        self._check_open()
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != 6:
            raise ValueError(f"expected (N, 6) query boxes, got {queries.shape}")
        report = ServiceReport(
            index_name=index_name or type(self._index).__name__,
            worker_count=self.worker_count,
        )
        before = self._snapshot_worker_stats()

        t0 = time.perf_counter()
        if self._sharded:
            results = self._run_scatter_gather(queries, report)
        else:
            futures = [self._pool.submit(self._execute, query) for query in queries]
            results = [future.result() for future in futures]
        report.wall_seconds = time.perf_counter() - t0

        report.query_count = len(results)
        report.per_query_results = [len(hits) for hits in results]
        report.result_elements = sum(report.per_query_results)
        self._aggregate_batch_stats(report, before)
        return report

    def run_knn(self, points, k: int, index_name: str = "") -> ServiceReport:
        """Serve a kNN batch: one pool task per query point.

        Sharded clones prune and order shards internally per point, so
        the scatter here stays at query granularity.
        """
        self._check_open()
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"expected (N, 3) points, got {points.shape}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        report = ServiceReport(
            index_name=index_name or type(self._index).__name__,
            worker_count=self.worker_count,
        )
        before = self._snapshot_worker_stats()

        t0 = time.perf_counter()
        futures = [self._pool.submit(self._execute_knn, p, k) for p in points]
        results = []
        for future in futures:
            hits, plan = future.result()
            results.append(hits)
            if plan is not None:
                report.shard_tasks += len(plan.shards_selected)
                report.shards_pruned += plan.shards_pruned
        report.wall_seconds = time.perf_counter() - t0

        report.query_count = len(results)
        report.per_query_results = [len(hits) for hits in results]
        report.result_elements = sum(report.per_query_results)
        self._aggregate_batch_stats(report, before)
        return report

    def _run_scatter_gather(self, queries, report: ServiceReport) -> list:
        """Dispatch one task per (query, touched shard); gather in order."""
        planner = self._index.planner
        shard_count = len(self._index.shards)
        scattered = []
        for query in queries:
            shard_ids = planner.shards_for_box(query)
            report.shard_tasks += len(shard_ids)
            report.shards_pruned += shard_count - len(shard_ids)
            scattered.append(
                [
                    self._pool.submit(self._execute_shard, int(sid), query)
                    for sid in shard_ids
                ]
            )
        return [
            self._merge_shard_parts([future.result() for future in futures])
            for futures in scattered
        ]

    # -- accounting -----------------------------------------------------

    def _snapshot_worker_stats(self) -> dict:
        with self._states_lock:
            return {
                id(store): store.stats.snapshot()
                for _engine, store in self._worker_states
            }

    def _aggregate_batch_stats(self, report: ServiceReport, before: dict) -> None:
        delta = IOStats()
        with self._states_lock:
            states = list(self._worker_states)
        for _engine, store in states:
            prior = before.get(id(store))
            worker_delta = store.stats.diff(prior) if prior else store.stats
            if worker_delta.total_reads or worker_delta.cache_hits:
                report.workers_used += 1
            delta.merge(worker_delta)
        report.reads_by_category = dict(delta.reads)
        report.decodes_by_kind = dict(delta.decode_misses)
        report.cache_hits = delta.cache_hits

    # -- introspection --------------------------------------------------

    def aggregate_stats(self) -> IOStats:
        """Lifetime I/O counters merged across every worker view."""
        total = IOStats()
        with self._states_lock:
            states = list(self._worker_states)
        for _engine, store in states:
            total.merge(store.stats)
        return total

    @property
    def workers_started(self) -> int:
        """Worker threads that have served at least one query ever."""
        with self._states_lock:
            return len(self._worker_states)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Shut the thread pool down.

        Idempotent and safe to call from several threads: *every*
        caller returns only once the pool has shut down and all
        in-flight queries finished (``ThreadPoolExecutor.shutdown`` is
        itself idempotent, so later callers simply join the same
        shutdown).  ``submit``/``run`` after close raise
        :class:`RuntimeError` instead of queueing onto a dead pool.
        """
        with self._lifecycle_lock:
            self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
