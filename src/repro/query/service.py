"""Concurrent query serving over per-worker store views, shard-aware.

The build/measure harness (:func:`repro.query.executor.run_queries`)
is deliberately single-threaded — the paper's figures are per-query
page-read counts.  Serving is the other regime: one index, many
concurrent readers, throughput as the metric.  ``QueryService``
bridges the two without giving up the accounting:

* every worker thread lazily gets its **own** engine clone
  (:meth:`FLATIndex.with_store <repro.core.flat_index.FLATIndex.with_store>`
  for a monolithic index, :meth:`ShardedFLATIndex.with_views
  <repro.core.sharded.ShardedFLATIndex.with_views>` for a sharded one)
  over stat-isolated :meth:`~repro.storage.pagestore.PageStore.view`
  stores, so buffer pools, decoded-page caches, per-query crawl scratch
  and :class:`~repro.storage.stats.IOStats` are all thread-private
  while the page bytes (e.g. one read-only ``mmap``) are shared;
* for a **sharded** index, :meth:`QueryService.run` executes
  scatter–gather: the planner prunes shards per query, one pool task is
  submitted per *touched* shard (so one slow shard never serializes the
  others), and the per-shard sorted ids merge in request order —
  :attr:`ServiceReport.shard_tasks` / :attr:`ServiceReport.shards_pruned`
  record the scatter;
* per-worker counters aggregate into one :class:`ServiceReport`; in the
  cold-cache regime the totals reproduce the single-threaded harness
  exactly, shard pruning included.

**Execution modes.**  Thread workers share the interpreter, so a
CPU-bound crawl serializes on the GIL no matter the pool size.
``mode="process"`` runs the same serving protocol across *processes*:
the index is pickled once into each worker (a read-only mmap-backed
store pickles as its ``(directory, generation)`` spec and reattaches by
remapping — page bytes never cross the pipe, and every process shares
the same OS page cache), each task returns its result ids plus the
worker store's :class:`~repro.storage.stats.IOStats` *delta*, and the
parent merges deltas in submission order — deterministic totals
regardless of worker completion order, same
:class:`~repro.storage.pagestore.PageStoreGroup`-style counter
arithmetic as the thread path.  ``batch_queries`` additionally groups
in-flight queries into one :meth:`FLATIndex.range_query_multi
<repro.core.flat_index.FLATIndex.range_query_multi>` joint crawl per
task, amortizing per-page decode work across every query in the group
while the cold-cache accounting stays per-query byte-exact.

**Queries under updates.**  :meth:`QueryService.apply_updates` mutates
the served index with snapshot isolation: the update batch is applied
to a copy-on-write *fork* (:meth:`FLATIndex.fork
<repro.core.flat_index.FLATIndex.fork>`) of the current generation, so
in-flight queries keep crawling the untouched old generation; the
commit then atomically swaps the service's current index, and worker
threads pick up clones of the new generation on their next query.
Every query executes entirely against the single generation captured
when it was submitted — a result is never a torn mix of pre- and
post-update state.  In process mode the commit additionally *publishes*
the fork as the next on-disk snapshot generation
(:func:`~repro.core.snapshot.publish_fork_generation`); tasks carry the
``(directory, generation)`` spec of the version they captured, and a
worker process lazily restores that exact generation the first time a
post-commit task reaches it — the same isolation guarantee, across
address spaces.

**The delta layer.**  Restructuring pages on every commit caps ingest
at a few thousand elements per second.  With ``delta_threshold > 0``
the service instead runs an LSM-style write path: small batches are
*absorbed* into an in-RAM :class:`~repro.core.delta.DeltaIndex`
(memtable + tombstones) attached to the committed base index, and only
once the buffered delta crosses the threshold (or
``merge_interval_seconds`` elapses, or :meth:`flush_delta` forces it)
is the whole delta *merged* into pages through one bulk
:meth:`~repro.core.flat_index.FLATIndex.apply_batch` on a fork — a
generation boundary.  Both kinds of commit are full service versions
with the same copy-on-write discipline (the delta is copied, the copy
absorbs the batch, the copy is published), so snapshot isolation is
unchanged; queries against a delta-carrying version answer from the
committed pages and correct the result in RAM, leaving the paper's
page-read accounting byte-exact.  In process mode an absorbed commit
ships ``(directory, generation, pickled delta)`` — workers restore the
unchanged base generation and attach the delta.

**Trajectory prefetching.**  Spatial analysis sessions issue box after
box along latent structures, so consecutive queries are strongly
correlated (SCOUT, PVLDB 2012).  With ``prefetch=True`` the service
tracks each session's recent boxes in a per-session
:class:`~repro.query.prefetch.TrajectoryModel` (queries name their
session via ``session_id`` on :meth:`submit` / :meth:`run_session`),
extrapolates the next box, and warms the worker stores *before* that
query arrives: in thread mode a dedicated background thread crawls the
predicted box on a never-cleared staging clone and stages every touched
page into a shared :class:`~repro.query.prefetch.PrefetchArea`; in
process mode the prediction piggybacks on the query dispatch as a
*warm hint* the worker processes after answering, staging into its
process-local area.  The foreground query is never blocked or
reordered — prefetching is strictly off the critical path.  Demand
accounting stays meaningful: a staged page consumed by a query counts
as a ``prefetch_hit`` in its category (never a physical read), so
``demand reads + prefetch hits`` equals the reads of a prefetch-free
run byte-for-byte, results are byte-identical, and the prefetcher's
own I/O is reported separately (see :mod:`repro.query.prefetch`).

Works with any engine exposing ``range_query`` plus ``store`` and
``with_store`` (or ``shards``/``planner``/``with_views`` for the
sharded layout); page payloads of a published generation are immutable,
so concurrent reads need no locking anywhere in the storage layer.
Sharded indexes are served by the thread pool only (their scatter state
does not travel across processes).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.delta import DeltaIndex
from repro.query.planner import QueryPlanner
from repro.query.prefetch import PrefetchConfig, Prefetcher, TrajectoryModel
from repro.storage.pagestore import PageStoreError
from repro.storage.stats import IOStats

#: Execution modes of :class:`QueryService`.
MODE_THREAD = "thread"
MODE_PROCESS = "process"


@dataclass
class ServiceReport:
    """Aggregated outcome of one query batch served concurrently."""

    index_name: str
    worker_count: int
    #: ``"thread"`` or ``"process"`` — how the batch was executed.
    execution_mode: str = MODE_THREAD
    #: Queries grouped per joint-crawl task (1 = one task per query).
    batch_queries: int = 1
    query_count: int = 0
    result_elements: int = 0
    wall_seconds: float = 0.0
    #: Per-query submit-to-done latency, in request order.  Queries
    #: grouped into one task share their task's latency.
    latencies_seconds: list = field(default_factory=list)
    #: Physical page reads summed over every worker's stat view.
    reads_by_category: dict = field(default_factory=dict)
    #: Full page decodes by decode kind, summed over workers.
    decodes_by_kind: dict = field(default_factory=dict)
    cache_hits: int = 0
    #: Worker threads that actually served at least one query.
    workers_used: int = 0
    #: Shard executions dispatched (sharded indexes; one per touched
    #: shard per query — individual pool tasks for range batches,
    #: in-task MINDIST-walk visits for kNN batches).
    shard_tasks: int = 0
    #: Shard executions skipped by planner pruning, summed over queries.
    shards_pruned: int = 0
    per_query_results: list = field(default_factory=list)
    #: Session the batch belonged to (``run_session`` only).
    session_id: str | None = None
    #: Whether the serving service had trajectory prefetching on.
    prefetch_enabled: bool = False
    #: Demand reads absorbed by staged prefetched pages, per category.
    #: Separate from :attr:`reads_by_category` so the paper's exactness
    #: pins stay meaningful: ``reads + prefetch_hits`` per category
    #: equals the reads of a prefetch-disabled run.
    prefetch_hits_by_category: dict = field(default_factory=dict)
    #: Physical page reads the *prefetcher* performed, per category —
    #: reads moved earlier, never part of the demand totals.
    prefetch_reads_by_category: dict = field(default_factory=dict)
    #: Pages staged into prefetch areas during this batch.
    prefetch_staged: int = 0
    #: Staged pages consumed by demand reads during this batch.
    prefetch_consumed: int = 0

    @property
    def total_page_reads(self) -> int:
        return sum(self.reads_by_category.values())

    @property
    def total_prefetch_hits(self) -> int:
        """Demand reads absorbed by prefetched pages."""
        return sum(self.prefetch_hits_by_category.values())

    @property
    def total_prefetch_reads(self) -> int:
        """Physical reads the prefetcher performed on its own store."""
        return sum(self.prefetch_reads_by_category.values())

    @property
    def prefetch_wasted(self) -> int:
        """Pages staged during this batch but (so far) never consumed."""
        return max(0, self.prefetch_staged - self.prefetch_consumed)

    @property
    def prefetch_hit_rate(self) -> float:
        """Fraction of logical demand reads absorbed by prefetching."""
        logical = self.total_page_reads + self.total_prefetch_hits
        return self.total_prefetch_hits / logical if logical else 0.0

    @property
    def throughput_qps(self) -> float:
        """Served queries per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return float("nan")
        return self.query_count / self.wall_seconds

    def latency_percentiles(self) -> dict:
        """p50/p95/p99 of per-query latency, in seconds (empty if untracked)."""
        if not self.latencies_seconds:
            return {}
        p50, p95, p99 = np.percentile(self.latencies_seconds, [50, 95, 99])
        return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}


@dataclass
class UpdateReport:
    """Outcome of one atomically committed update batch."""

    #: Generation number the commit published.  The initial index is
    #: generation 0, so the first commit reports 1.
    version: int
    #: Ids assigned to the batch's inserted elements.
    inserted_ids: np.ndarray
    #: Elements deleted by the batch.
    deleted_count: int
    #: Live elements after the commit.
    element_count: int
    #: Fork + mutate + commit wall time.
    wall_seconds: float
    #: ``True`` when this commit restructured pages (a generation
    #: boundary); ``False`` when the batch was absorbed into the in-RAM
    #: delta layer.
    merged: bool = True
    #: Buffered delta size (memtable rows + tombstones) after the
    #: commit; 0 after every merge.
    delta_elements: int = 0

    @property
    def update_count(self) -> int:
        return len(self.inserted_ids) + self.deleted_count


# -- process-mode worker side -------------------------------------------
#
# Everything a ProcessPoolExecutor worker runs lives at module level so
# it pickles by reference.  Each worker process keeps a small cache of
# engines keyed by generation: generation 0 arrives pickled through the
# pool initializer; later generations are restored lazily from the
# (directory, generation) spec a post-commit task carries.  Every task
# returns (pid, results, stats delta, wall seconds): the parent never
# shares mutable state with workers, so stat aggregation is pure
# counter arithmetic on the returned deltas.

#: Engine generations alive in this worker process (version -> engine).
_PROCESS_ENGINES: OrderedDict | None = None

#: Per-generation trajectory prefetchers of this worker process
#: (version -> Prefetcher), populated only when the service enabled
#: prefetching; each generation's engine store consumes from its own
#: prefetcher's process-local area.
_PROCESS_PREFETCHERS: dict | None = None

#: Prefetch knobs shipped through the pool initializer (None = off).
_PROCESS_PREFETCH_CONFIG: PrefetchConfig | None = None

#: Generations a worker keeps warm before closing the oldest (matches
#: the thread pool's per-thread clone retention).
_PROCESS_KEPT_VERSIONS = 4


def _process_worker_init(payload: bytes, prefetch_config=None) -> None:
    global _PROCESS_ENGINES, _PROCESS_PREFETCHERS, _PROCESS_PREFETCH_CONFIG
    _PROCESS_ENGINES = OrderedDict([(0, pickle.loads(payload))])
    _PROCESS_PREFETCH_CONFIG = prefetch_config
    _PROCESS_PREFETCHERS = {}


def _process_prefetcher(version: int):
    """This process's prefetcher for one generation (None when off)."""
    if _PROCESS_PREFETCH_CONFIG is None:
        return None
    prefetcher = _PROCESS_PREFETCHERS.get(version)
    if prefetcher is None:
        engine = _PROCESS_ENGINES[version]
        prefetcher = Prefetcher(engine, _PROCESS_PREFETCH_CONFIG)
        prefetcher.attach_store(engine.store)
        _PROCESS_PREFETCHERS[version] = prefetcher
        for stale in [v for v in _PROCESS_PREFETCHERS if v not in _PROCESS_ENGINES]:
            del _PROCESS_PREFETCHERS[stale]
    return prefetcher


def _process_prefetch_delta(prefetcher, io_before, counters_before) -> dict:
    """Prefetch accounting accrued since the given snapshots.

    Snapshots are taken at task start, so the delta covers both the
    demand phase (where staged pages are *consumed*) and the hint crawl
    (where pages are *staged*); a worker process runs its tasks
    serially, so per-task intervals tile its timeline exactly.
    """
    io_delta = prefetcher.io_stats().diff(io_before)
    counters = prefetcher.counters()
    return {
        "reads": io_delta.reads,
        "staged": counters["staged"] - counters_before["staged"],
        "consumed": counters["consumed"] - counters_before["consumed"],
    }


def _process_engine(version: int, spec):
    """This process's engine for one generation, restoring on miss."""
    engines = _PROCESS_ENGINES
    engine = engines.get(version)
    if engine is not None:
        engines.move_to_end(version)
        return engine
    if spec is None:
        raise RuntimeError(
            f"worker process has no engine for generation {version} and "
            "the task carried no snapshot spec to restore it from"
        )
    from repro.core.flat_index import FLATIndex

    directory, generation = spec[0], spec[1]
    engine = FLATIndex.restore(directory, generation=generation)
    if len(spec) > 2 and spec[2] is not None:
        # An absorbed commit: the base generation on disk is unchanged
        # and the version's delta travels pickled with the spec.
        engine = engine.with_delta(pickle.loads(spec[2]))
    engines[version] = engine
    while len(engines) > _PROCESS_KEPT_VERSIONS:
        _stale, old = engines.popitem(last=False)
        close = getattr(old.store, "close", None)
        if close is not None:
            close()
    return engine


def _process_run_group(version: int, spec, queries, cold: bool,
                       batched: bool, hint=None) -> tuple:
    """Serve one query group in a worker process.

    Returns ``(pid, per-query id arrays, IOStats delta, prefetch info,
    exec seconds)``.  *hint* is an optional predicted next box: the
    worker warms its process-local prefetch area with it *after*
    answering the demand queries (the warm hint piggybacks on the
    dispatch — prefetching never blocks the foreground query).
    """
    engine = _process_engine(version, spec)
    # Created before the demand work: the demand store must consult
    # this generation's area from the very first task.
    prefetcher = _process_prefetcher(version)
    pf_io = pf_counters = None
    if prefetcher is not None:
        pf_io = prefetcher.io_stats()
        pf_counters = prefetcher.counters()
    store = engine.store
    before = store.stats.snapshot()
    t0 = time.perf_counter()
    if batched and len(queries) > 1:
        results = engine.range_query_multi(queries, cold=cold)
    else:
        results = []
        for query in queries:
            if cold:
                store.clear_cache()
            results.append(engine.range_query(query))
    elapsed = time.perf_counter() - t0
    demand_delta = store.stats.diff(before)
    prefetch_info = None
    if prefetcher is not None:
        if hint is not None:
            try:
                prefetcher.prefetch(hint)
            except Exception:
                pass  # advisory: a failed hint crawl must not fail the task
        prefetch_info = _process_prefetch_delta(prefetcher, pf_io, pf_counters)
    return os.getpid(), results, demand_delta, prefetch_info, elapsed


def _process_run_knn(version: int, spec, point, k: int, cold: bool) -> tuple:
    """Serve one kNN query in a worker process."""
    engine = _process_engine(version, spec)
    store = engine.store
    before = store.stats.snapshot()
    t0 = time.perf_counter()
    if cold:
        store.clear_cache()
    hits = engine.knn_query(point, k)
    elapsed = time.perf_counter() - t0
    return os.getpid(), [hits], store.stats.diff(before), None, elapsed


class _ProcessFuture:
    """Unwraps a worker-task future for :meth:`QueryService.submit`.

    ``result()`` returns the single query's id array; the task's stat
    delta and worker pid were already absorbed into the service's
    lifetime accounting by a done-callback (exactly once per task).
    """

    def __init__(self, future):
        self._future = future

    def result(self, timeout=None):
        _pid, results, _delta, _prefetch, _elapsed = self._future.result(timeout)
        return results[0]

    def done(self) -> bool:
        return self._future.done()

    def cancel(self) -> bool:
        return self._future.cancel()


class GatherFuture:
    """Joins the per-shard futures of one scattered query.

    Quacks enough like :class:`concurrent.futures.Future` for callers
    of :meth:`QueryService.submit`: ``result()`` blocks until every
    shard task finished and returns the merged sorted ids.
    """

    def __init__(self, futures, merge):
        self._futures = futures
        self._merge = merge

    def result(self, timeout=None):
        # One overall deadline across all shard futures, so the Future
        # timeout contract holds regardless of the shard count.
        deadline = None if timeout is None else time.monotonic() + timeout
        parts = []
        for future in self._futures:
            remaining = None if deadline is None else deadline - time.monotonic()
            parts.append(future.result(remaining))
        return self._merge(parts)

    def done(self) -> bool:
        return all(future.done() for future in self._futures)

    def cancel(self) -> bool:
        return all([future.cancel() for future in self._futures])


class QueryService:
    """Serve queries from a thread or process pool over one shared index.

    Parameters
    ----------
    index:
        A built (or restored) index.  Monolithic engines expose
        ``range_query``, ``store`` and ``with_store`` (e.g.
        :class:`~repro.core.flat_index.FLATIndex`); sharded engines
        expose ``shards``, ``planner`` and ``with_views``
        (:class:`~repro.core.sharded.ShardedFLATIndex`) and are served
        scatter–gather.
    workers:
        Thread-pool size; each thread serves from its own store view(s).
    clear_cache_per_query:
        ``True`` (default) reproduces the paper's cold-cache regime —
        each worker drops the relevant buffer and decoded-page cache
        before every query (per touched shard, for sharded indexes).
        ``False`` serves warm: caches accumulate across queries within
        each worker.
    mode:
        ``"thread"`` (default) or ``"process"``.  Process workers get
        the index pickled once via the pool initializer; a read-only
        mmap-backed store reattaches by remapping its snapshot
        directory, so page bytes are shared through the OS page cache.
        Sharded indexes are thread-only.
    batch_queries:
        Queries grouped per pool task in :meth:`run`; groups larger
        than one are served by a single joint
        :meth:`~repro.core.flat_index.FLATIndex.range_query_multi`
        crawl (per-query cold accounting preserved).  Sharded indexes
        require the default of 1.
    mp_context:
        Optional :mod:`multiprocessing` context for the process pool
        (defaults to the platform default).
    delta_threshold:
        Buffered-work limit (memtable rows + tombstones) of the in-RAM
        delta layer.  ``0`` (default) disables the layer: every
        :meth:`apply_updates` merges into pages immediately, the
        pre-delta behaviour.  Positive values absorb update batches
        into the delta and merge only once the buffered size reaches
        the threshold — the LSM-style fast write path.
    merge_interval_seconds:
        Optional staleness bound: a commit also merges when this much
        wall time passed since the last generation boundary, however
        small the delta.
    prefetch:
        Enable trajectory prefetching: queries submitted with a
        ``session_id`` feed a per-session
        :class:`~repro.query.prefetch.TrajectoryModel`, and confident
        next-box predictions warm the worker stores off the critical
        path (background thread in thread mode, post-answer warm hint
        in process mode).  Results and demand accounting are unchanged
        — hits move into :attr:`ServiceReport.prefetch_hits_by_category`.
    prefetch_config:
        Optional :class:`~repro.query.prefetch.PrefetchConfig`
        overriding the model/staging knobs (requires ``prefetch=True``).
    """

    #: Per-thread engine clones kept for superseded generations: tasks
    #: submitted just before a commit may still arrive for an older
    #: version, so a few stay warm before being dropped.
    _KEPT_VERSIONS = 4

    #: Per-session trajectory models remembered before LRU eviction.
    _KEPT_SESSIONS = 1024

    def __init__(self, index, workers: int = 4, clear_cache_per_query: bool = True,
                 mode: str = MODE_THREAD, batch_queries: int = 1,
                 mp_context=None, delta_threshold: int = 0,
                 merge_interval_seconds: float | None = None,
                 prefetch: bool = False,
                 prefetch_config: PrefetchConfig | None = None):
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if delta_threshold < 0:
            raise ValueError(
                f"delta_threshold must be >= 0, got {delta_threshold}"
            )
        if merge_interval_seconds is not None and merge_interval_seconds <= 0:
            raise ValueError(
                "merge_interval_seconds must be positive or None, got "
                f"{merge_interval_seconds}"
            )
        if mode not in (MODE_THREAD, MODE_PROCESS):
            raise ValueError(
                f"mode must be {MODE_THREAD!r} or {MODE_PROCESS!r}, got {mode!r}"
            )
        if not isinstance(batch_queries, int) or batch_queries < 1:
            raise ValueError(
                f"batch_queries must be a positive int, got {batch_queries!r}"
            )
        self._index = index
        #: The committed, delta-free index (always == ``_index`` while
        #: no delta is buffered); forks and merges start here.
        self._base = index
        #: Buffered :class:`DeltaIndex`, or ``None`` — copy-on-write:
        #: commits copy it, mutate the copy and publish the copy.
        self._delta = getattr(index, "delta", None)
        self.delta_threshold = int(delta_threshold)
        self.merge_interval_seconds = merge_interval_seconds
        self._last_merge = time.monotonic()
        self._version = 0
        self.worker_count = workers
        self.clear_cache_per_query = clear_cache_per_query
        self._sharded = hasattr(index, "shards") and hasattr(index, "with_views")
        if self._sharded and mode == MODE_PROCESS:
            raise ValueError(
                "sharded indexes are served by thread workers only; their "
                "scatter state does not travel across processes"
            )
        if self._sharded and batch_queries > 1:
            raise ValueError(
                "batch_queries > 1 needs a monolithic index; sharded "
                "serving scatters per query"
            )
        if batch_queries > 1 and not hasattr(index, "range_query_multi"):
            raise ValueError(
                f"batch_queries > 1 needs an engine with range_query_multi; "
                f"{type(index).__name__} has none"
            )
        self._mode = mode
        self._batch = batch_queries
        if prefetch_config is not None and not prefetch:
            raise ValueError("prefetch_config given but prefetch is False")
        self._prefetch_cfg = (
            (prefetch_config or PrefetchConfig()) if prefetch else None
        )
        #: session id -> TrajectoryModel, LRU-bounded (shared by both
        #: modes: prediction always happens in the parent, at submit).
        self._session_models: OrderedDict = OrderedDict()
        self._session_lock = threading.Lock()
        #: version -> Prefetcher (thread mode only; process workers own
        #: theirs), plus retired-generation prefetch accounting so a
        #: commit never loses staged/consumed/read totals.
        self._prefetchers: OrderedDict = OrderedDict()
        self._prefetch_lock = threading.Lock()
        self._retired_prefetch_stats = IOStats()
        self._retired_prefetch_counters = {"staged": 0, "consumed": 0}
        self._prefetch_failures = 0
        self._prefetch_pool = None
        if prefetch and mode == MODE_THREAD:
            self._prefetch_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="prefetch"
            )
        #: version -> snapshot spec a worker process can restore that
        #: version from: ``(directory, generation)`` after a merge
        #: commit, ``(directory, generation, pickled delta)`` after an
        #: absorbed commit.  Generation 0 is shipped pickled through
        #: the pool initializer, so it needs no spec.
        self._gen_specs: dict = {0: None}
        #: On-disk generation of the last commit this service published
        #: (initially the served index's own generation, if file-backed)
        #: — pins the single-writer lineage check at publish time.
        backend = getattr(getattr(index, "store", None), "backend", None)
        self._published_gen = getattr(backend, "generation", None)
        #: Snapshot directory of the served index, if file-backed —
        #: absorbed commits in process mode name it in their spec.
        directory = getattr(backend, "directory", None)
        self._snapshot_dir = None if directory is None else str(directory)
        #: Lifetime counters returned by process-worker tasks.
        self._process_stats = IOStats()
        self._worker_pids: set = set()
        self._process_lock = threading.Lock()
        self._local = threading.local()
        self._worker_states: list = []
        #: Lifetime counters of retired clones (superseded generations)
        #: plus the distinct threads that ever served, so retiring a
        #: clone never loses accounting.
        self._retired_stats = IOStats()
        self._worker_threads: set = set()
        self._states_lock = threading.Lock()
        self._lifecycle_lock = threading.Lock()
        #: Serializes apply_updates callers and guards the (version,
        #: index) pair swap.
        self._commit_lock = threading.Lock()
        if mode == MODE_PROCESS:
            with_store = getattr(index, "with_store", None)
            clean = index if with_store is None else with_store(index.store.view())
            payload = pickle.dumps(clean)
            context = mp_context or multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_process_worker_init,
                initargs=(payload, self._prefetch_cfg),
            )
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="query-worker"
            )
        self._closed = False

    # -- worker state ---------------------------------------------------

    def _current(self) -> tuple:
        """The (version, index, snapshot spec) queries run against."""
        with self._commit_lock:
            return self._version, self._index, self._gen_specs.get(self._version)

    def _worker(self, version: int, index):
        """This thread's (engine, store) pair for one index generation.

        For a sharded index the engine is a full per-worker clone with
        one view per shard, and the store is the clone's
        :class:`~repro.storage.pagestore.PageStoreGroup` facade — so the
        batch-level stat aggregation is identical in both modes.
        Clones are keyed by generation: a task that captured generation
        *g* at submit time always executes on a clone of *g*, no matter
        when a commit lands — that is the snapshot-isolation guarantee.
        """
        states = getattr(self._local, "states", None)
        if states is None:
            states = self._local.states = {}
        state = states.get(version)
        if state is None:
            if self._sharded:
                clone = index.with_views()
                state = (clone, clone.store)
            else:
                store = index.store.view()
                clone = index.with_store(store)
                state = (clone, store)
            if self._prefetch_cfg is not None and self._mode == MODE_THREAD:
                # Every worker clone of a generation consumes from that
                # generation's shared staging area(s).
                self._prefetcher(version, index).attach(clone)
            states[version] = state
            evicted = [v for v in states if v <= version - self._KEPT_VERSIONS]
            with self._states_lock:
                self._worker_states.append(state)
                self._worker_threads.add(threading.get_ident())
                for stale in evicted:
                    # Retired clones must not pin memory forever, but
                    # their lifetime counters stay part of the totals.
                    stale_state = states.pop(stale)
                    self._retired_stats.merge(stale_state[1].stats)
                    self._worker_states.remove(stale_state)
        return state

    def _execute(self, version: int, index, query: np.ndarray) -> np.ndarray:
        engine, store = self._worker(version, index)
        if self.clear_cache_per_query:
            store.clear_cache()
        return engine.range_query(query)

    def _execute_group(self, version: int, index, queries) -> list:
        """One thread task serving a query group via the joint crawl."""
        engine, store = self._worker(version, index)
        if len(queries) > 1:
            return engine.range_query_multi(
                queries, cold=self.clear_cache_per_query
            )
        if self.clear_cache_per_query:
            store.clear_cache()
        return [engine.range_query(queries[0])]

    def _execute_shard(self, version: int, index, shard_id: int,
                       query: np.ndarray) -> np.ndarray:
        """One scatter task: crawl a single shard on this worker's view."""
        engine, _store = self._worker(version, index)
        shard = engine.shards[shard_id]
        if self.clear_cache_per_query:
            shard.store.clear_cache()
        local = shard.index.range_query(query)
        return shard.to_global(local) if local.size else local

    def _execute_knn(self, version: int, index, point: np.ndarray,
                     k: int) -> tuple:
        """One kNN task; also returns the clone's plan (sharded engines)."""
        engine, store = self._worker(version, index)
        if self.clear_cache_per_query:
            store.clear_cache()
        hits = engine.knn_query(point, k)
        return hits, getattr(engine, "last_plan", None)

    #: Per-shard sorted ids merge exactly: shards partition the elements.
    _merge_shard_parts = staticmethod(QueryPlanner.merge_sorted_ids)

    def _shard_merge(self, index, query):
        """The gather-side merge for one scattered query.

        Shard tasks crawl committed pages only; a delta attached to the
        captured index generation is applied here, at the gather point,
        so the per-shard accounting never sees it.
        """
        delta = getattr(index, "delta", None)
        if delta is None or delta.is_empty:
            return self._merge_shard_parts
        return lambda parts: self._merge_shard_parts(parts, delta, query)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "QueryService is closed; create a new service to submit queries"
            )

    # -- prefetching ----------------------------------------------------

    @property
    def prefetch_enabled(self) -> bool:
        """Whether trajectory prefetching is on for this service."""
        return self._prefetch_cfg is not None

    @property
    def prefetch_failures(self) -> int:
        """Background prefetch crawls that raised (and were swallowed)."""
        return self._prefetch_failures

    def _prefetcher(self, version: int, index) -> Prefetcher:
        """The shared thread-mode prefetcher of one index generation.

        Generations are retired in step with the worker clones
        (:attr:`_KEPT_VERSIONS`); a retired prefetcher's I/O and
        staged/consumed totals fold into lifetime counters first, so
        commits never lose prefetch accounting.
        """
        with self._prefetch_lock:
            prefetcher = self._prefetchers.get(version)
            if prefetcher is None:
                prefetcher = Prefetcher(index, self._prefetch_cfg)
                self._prefetchers[version] = prefetcher
                stale_versions = [
                    v for v in self._prefetchers
                    if v <= version - self._KEPT_VERSIONS
                ]
                for stale in stale_versions:
                    retired = self._prefetchers.pop(stale)
                    self._retired_prefetch_stats.merge(retired.io_stats())
                    counters = retired.counters()
                    for key in self._retired_prefetch_counters:
                        self._retired_prefetch_counters[key] += counters[key]
            return prefetcher

    def _session_hint(self, session_id, query):
        """Feed *query* to the session's model; the window to stage or None.

        Returns the ``lookahead``-step predicted window — but only when
        the next predicted box is not already inside the window staged
        for this session, so a confident straight-line session pays one
        staging crawl per *window*, not per query.
        """
        if self._prefetch_cfg is None or session_id is None:
            return None
        with self._session_lock:
            entry = self._session_models.get(session_id)
            if entry is None:
                entry = {"model": TrajectoryModel(self._prefetch_cfg),
                         "covered": None}
                self._session_models[session_id] = entry
                while len(self._session_models) > self._KEPT_SESSIONS:
                    self._session_models.popitem(last=False)
            else:
                self._session_models.move_to_end(session_id)
            model = entry["model"]
            model.observe(query)
            next_box = model.predict()
            if next_box is None:
                entry["covered"] = None
                return None
            covered = entry["covered"]
            if (covered is not None
                    and np.all(covered[:3] <= next_box[:3])
                    and np.all(covered[3:] >= next_box[3:])):
                return None
            window = model.predict(self._prefetch_cfg.lookahead)
            entry["covered"] = window
            return window

    def _do_prefetch(self, version: int, index, box) -> None:
        """Background-thread crawl of one predicted box."""
        try:
            self._prefetcher(version, index).prefetch(box)
        except Exception:
            # Prefetching is advisory: a failed prediction crawl must
            # never surface into the serving path.
            self._prefetch_failures += 1

    def _schedule_prefetch(self, version: int, index, hint) -> None:
        """Queue a predicted box behind the foreground dispatch."""
        if hint is None or self._prefetch_pool is None:
            return
        self._prefetch_pool.submit(self._do_prefetch, version, index, hint)

    def _drain_prefetch_pool(self) -> None:
        """Wait for queued prefetches (single worker => FIFO barrier)."""
        if self._prefetch_pool is not None:
            self._prefetch_pool.submit(lambda: None).result()

    def _prefetch_totals(self) -> tuple:
        """Lifetime ``(IOStats, staged/consumed)`` across prefetchers."""
        stats = IOStats()
        totals = {"staged": 0, "consumed": 0}
        with self._prefetch_lock:
            stats.merge(self._retired_prefetch_stats)
            for key in totals:
                totals[key] += self._retired_prefetch_counters[key]
            prefetchers = list(self._prefetchers.values())
        for prefetcher in prefetchers:
            stats.merge(prefetcher.io_stats())
            counters = prefetcher.counters()
            totals["staged"] += counters["staged"]
            totals["consumed"] += counters["consumed"]
        return stats, totals

    # -- serving --------------------------------------------------------

    def submit(self, query, session_id: str | None = None):
        """Enqueue one range query; returns a future.

        Monolithic indexes get one pool task per query; sharded indexes
        get one task per planner-selected shard joined by a
        :class:`GatherFuture`.

        With prefetching enabled, a *session_id* scopes the query to
        one analysis session: the box feeds that session's trajectory
        model, and a confident prediction warms the worker stores for
        the session's *next* query — strictly behind the foreground
        dispatch, never blocking or reordering it.
        """
        self._check_open()
        query = np.asarray(query, dtype=np.float64)
        version, index, spec = self._current()
        hint = self._session_hint(session_id, query)
        if self._mode == MODE_PROCESS:
            future = self._pool.submit(
                _process_run_group, version, spec, query[None, :],
                self.clear_cache_per_query, False, hint,
            )
            future.add_done_callback(self._absorb_process_future)
            return _ProcessFuture(future)
        if not self._sharded:
            future = self._pool.submit(self._execute, version, index, query)
            self._schedule_prefetch(version, index, hint)
            return future
        shard_ids = index.planner.shards_for_box(query)
        futures = [
            self._pool.submit(self._execute_shard, version, index, int(sid), query)
            for sid in shard_ids
        ]
        gather = GatherFuture(futures, self._shard_merge(index, query))
        self._schedule_prefetch(version, index, hint)
        return gather

    def run(self, queries, index_name: str = "") -> ServiceReport:
        """Serve a whole batch; results aggregate into the report.

        Queries are dispatched to the pool all at once (every per-shard
        task of every query, for sharded indexes; one task per
        ``batch_queries``-sized group otherwise) and collected in
        request order; the report's counters are the exact difference
        the workers' :class:`IOStats` accumulated during this batch —
        diffed store views in thread mode, returned per-task deltas
        merged in submission order in process mode.
        """
        self._check_open()
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != 6:
            raise ValueError(f"expected (N, 6) query boxes, got {queries.shape}")
        version, index, spec = self._current()
        report = ServiceReport(
            index_name=index_name or type(index).__name__,
            worker_count=self.worker_count,
            execution_mode=self._mode,
            batch_queries=self._batch,
        )
        before = {} if self._mode == MODE_PROCESS else self._snapshot_worker_stats()
        latencies = [0.0] * len(queries)

        def stamp(first: int, count: int):
            """Done-callback writing this task's submit-to-done latency
            into each member query's slot (disjoint slots, no lock)."""
            t_submit = time.perf_counter()

            def done(_future) -> None:
                elapsed = time.perf_counter() - t_submit
                for qi in range(first, first + count):
                    latencies[qi] = elapsed

            return done

        t0 = time.perf_counter()
        if self._sharded:
            results = self._run_scatter_gather(version, index, queries, report)
        elif self._mode == MODE_PROCESS:
            results = self._run_process_groups(
                version, spec, queries, report, stamp
            )
        elif self._batch == 1:
            futures = []
            for qi, query in enumerate(queries):
                future = self._pool.submit(self._execute, version, index, query)
                future.add_done_callback(stamp(qi, 1))
                futures.append(future)
            results = [future.result() for future in futures]
        else:
            futures = []
            for first in range(0, len(queries), self._batch):
                group = queries[first:first + self._batch]
                future = self._pool.submit(
                    self._execute_group, version, index, group
                )
                future.add_done_callback(stamp(first, len(group)))
                futures.append(future)
            results = [ids for future in futures for ids in future.result()]
        report.wall_seconds = time.perf_counter() - t0
        if not self._sharded:
            report.latencies_seconds = latencies

        report.query_count = len(results)
        report.per_query_results = [len(hits) for hits in results]
        report.result_elements = sum(report.per_query_results)
        if self._mode != MODE_PROCESS:
            self._aggregate_batch_stats(report, before)
        return report

    def _run_process_groups(self, version: int, spec, queries,
                            report: ServiceReport, stamp) -> list:
        """Dispatch query groups to the process pool; merge in order.

        Each task's :class:`IOStats` delta is merged in submission
        order (never completion order), so repeated runs of the same
        batch produce identical reports no matter how the OS schedules
        the workers.
        """
        batched = self._batch > 1
        futures = []
        for first in range(0, len(queries), self._batch):
            group = queries[first:first + self._batch]
            future = self._pool.submit(
                _process_run_group, version, spec, group,
                self.clear_cache_per_query, batched,
            )
            future.add_done_callback(stamp(first, len(group)))
            futures.append(future)
        results: list = []
        delta = IOStats()
        pids: set = set()
        for future in futures:
            pid, group_results, task_delta, _prefetch, _elapsed = future.result()
            results.extend(group_results)
            delta.merge(task_delta)
            pids.add(pid)
        self._absorb_process_batch(pids, delta)
        report.workers_used = len(pids)
        report.reads_by_category = dict(sorted(delta.reads.items()))
        report.decodes_by_kind = dict(sorted(delta.decode_misses.items()))
        report.cache_hits = delta.cache_hits
        if delta.prefetch_hits:
            report.prefetch_hits_by_category = dict(
                sorted(delta.prefetch_hits.items())
            )
        return results

    def run_session(self, queries, session_id: str,
                    index_name: str = "") -> ServiceReport:
        """Serve one session's query sequence, strictly in order.

        A session is one analysis client following a structure, so its
        queries execute sequentially (each result returns before the
        next box is submitted) — that is exactly the access pattern the
        trajectory model learns from.  Each query goes through the same
        dispatch as :meth:`submit`: with prefetching enabled, the
        prediction made when query *i* is submitted warms the caches
        for query *i+1* while *i* is being answered (thread mode) or
        right after it (process-mode warm hint).  Works with
        prefetching off too, as a sequential-latency baseline.

        The report separates the session's demand I/O from prefetch
        I/O: ``reads_by_category`` + ``prefetch_hits_by_category`` per
        category equals the demand reads of a prefetch-free run, and
        ``prefetch_reads_by_category`` / ``prefetch_staged`` /
        ``prefetch_consumed`` describe the prefetcher's own work.
        """
        self._check_open()
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != 6:
            raise ValueError(f"expected (N, 6) query boxes, got {queries.shape}")
        report = ServiceReport(
            index_name=index_name or type(self._index).__name__,
            worker_count=self.worker_count,
            execution_mode=self._mode,
            session_id=session_id,
            prefetch_enabled=self.prefetch_enabled,
        )
        if self._mode == MODE_PROCESS:
            results = self._run_session_process(queries, session_id, report)
        else:
            results = self._run_session_thread(queries, session_id, report)
        report.query_count = len(results)
        report.per_query_results = [len(hits) for hits in results]
        report.result_elements = sum(report.per_query_results)
        return report

    def _run_session_thread(self, queries, session_id, report) -> list:
        before = self._snapshot_worker_stats()
        pf_io_before, pf_counters_before = self._prefetch_totals()
        latencies = []
        results = []
        t0 = time.perf_counter()
        for query in queries:
            t_submit = time.perf_counter()
            future = self.submit(query, session_id=session_id)
            results.append(future.result())
            latencies.append(time.perf_counter() - t_submit)
        report.wall_seconds = time.perf_counter() - t0
        # The last query's prefetch may still be in flight; it can no
        # longer help this session, but the report's staging totals
        # must be complete — drain outside the measured wall time.
        self._drain_prefetch_pool()
        report.latencies_seconds = latencies
        self._aggregate_batch_stats(report, before)
        pf_io, pf_counters = self._prefetch_totals()
        pf_delta = pf_io.diff(pf_io_before)
        report.prefetch_reads_by_category = dict(sorted(pf_delta.reads.items()))
        report.prefetch_staged = (
            pf_counters["staged"] - pf_counters_before["staged"]
        )
        report.prefetch_consumed = (
            pf_counters["consumed"] - pf_counters_before["consumed"]
        )
        return results

    def _run_session_process(self, queries, session_id, report) -> list:
        delta = IOStats()
        prefetch_reads: dict = {}
        staged = consumed = 0
        pids: set = set()
        latencies = []
        results = []
        t0 = time.perf_counter()
        for query in queries:
            version, _index, spec = self._current()
            hint = self._session_hint(session_id, query)
            t_submit = time.perf_counter()
            future = self._pool.submit(
                _process_run_group, version, spec, query[None, :],
                self.clear_cache_per_query, False, hint,
            )
            pid, group_results, task_delta, prefetch_info, _elapsed = (
                future.result()
            )
            latencies.append(time.perf_counter() - t_submit)
            results.append(group_results[0])
            delta.merge(task_delta)
            pids.add(pid)
            if prefetch_info is not None:
                for category, n in prefetch_info["reads"].items():
                    prefetch_reads[category] = (
                        prefetch_reads.get(category, 0) + n
                    )
                staged += prefetch_info["staged"]
                consumed += prefetch_info["consumed"]
        report.wall_seconds = time.perf_counter() - t0
        report.latencies_seconds = latencies
        self._absorb_process_batch(pids, delta)
        report.workers_used = len(pids)
        report.reads_by_category = dict(sorted(delta.reads.items()))
        report.decodes_by_kind = dict(sorted(delta.decode_misses.items()))
        report.cache_hits = delta.cache_hits
        if delta.prefetch_hits:
            report.prefetch_hits_by_category = dict(
                sorted(delta.prefetch_hits.items())
            )
        report.prefetch_reads_by_category = dict(sorted(prefetch_reads.items()))
        report.prefetch_staged = staged
        report.prefetch_consumed = consumed
        return results

    def run_knn(self, points, k: int, index_name: str = "") -> ServiceReport:
        """Serve a kNN batch: one pool task per query point.

        Sharded clones prune and order shards internally per point, so
        the scatter here stays at query granularity.
        """
        self._check_open()
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"expected (N, 3) points, got {points.shape}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        version, index, spec = self._current()
        report = ServiceReport(
            index_name=index_name or type(index).__name__,
            worker_count=self.worker_count,
            execution_mode=self._mode,
        )
        before = {} if self._mode == MODE_PROCESS else self._snapshot_worker_stats()
        latencies = [0.0] * len(points)

        def stamp(qi: int):
            t_submit = time.perf_counter()

            def done(_future) -> None:
                latencies[qi] = time.perf_counter() - t_submit

            return done

        t0 = time.perf_counter()
        results = []
        if self._mode == MODE_PROCESS:
            futures = []
            for qi, p in enumerate(points):
                future = self._pool.submit(
                    _process_run_knn, version, spec, p, k,
                    self.clear_cache_per_query,
                )
                future.add_done_callback(stamp(qi))
                futures.append(future)
            delta = IOStats()
            pids: set = set()
            for future in futures:
                pid, hits, task_delta, _prefetch, _elapsed = future.result()
                results.append(hits[0])
                delta.merge(task_delta)
                pids.add(pid)
            self._absorb_process_batch(pids, delta)
            report.workers_used = len(pids)
            report.reads_by_category = dict(sorted(delta.reads.items()))
            report.decodes_by_kind = dict(sorted(delta.decode_misses.items()))
            report.cache_hits = delta.cache_hits
        else:
            futures = []
            for qi, p in enumerate(points):
                future = self._pool.submit(self._execute_knn, version, index, p, k)
                future.add_done_callback(stamp(qi))
                futures.append(future)
            for future in futures:
                hits, plan = future.result()
                results.append(hits)
                if plan is not None:
                    report.shard_tasks += len(plan.shards_selected)
                    report.shards_pruned += plan.shards_pruned
        report.wall_seconds = time.perf_counter() - t0
        report.latencies_seconds = latencies

        report.query_count = len(results)
        report.per_query_results = [len(hits) for hits in results]
        report.result_elements = sum(report.per_query_results)
        if self._mode != MODE_PROCESS:
            self._aggregate_batch_stats(report, before)
        return report

    def _run_scatter_gather(self, version: int, index, queries,
                            report: ServiceReport) -> list:
        """Dispatch one task per (query, touched shard); gather in order."""
        planner = index.planner
        shard_count = len(index.shards)
        scattered = []
        for query in queries:
            shard_ids = planner.shards_for_box(query)
            report.shard_tasks += len(shard_ids)
            report.shards_pruned += shard_count - len(shard_ids)
            scattered.append(
                [
                    self._pool.submit(
                        self._execute_shard, version, index, int(sid), query
                    )
                    for sid in shard_ids
                ]
            )
        return [
            self._shard_merge(index, query)(
                [future.result() for future in futures]
            )
            for query, futures in zip(queries, scattered)
        ]

    # -- updates --------------------------------------------------------

    def apply_updates(self, inserts=None, delete_ids=None,
                      force_merge: bool = False) -> UpdateReport:
        """Atomically apply an insert+delete batch with snapshot isolation.

        Every commit is a full service version with copy-on-write
        discipline, in one of two shapes:

        * **Absorbed** (``delta_threshold > 0`` and the buffered work
          stays under it): the batch lands in a *copy* of the current
          :class:`~repro.core.delta.DeltaIndex` and the commit swaps in
          the unchanged base index with the new delta attached — no
          page is touched, which is what makes sustained ingest cheap.
        * **Merged** (threshold crossed, ``merge_interval_seconds``
          elapsed, ``force_merge=True``, or ``delta_threshold == 0``):
          the accumulated delta plus this batch drains through one bulk
          :meth:`~repro.core.flat_index.FLATIndex.apply_batch` into a
          copy-on-write fork of the base — a generation boundary whose
          commit-wide link repair and metadata flush amortize over the
          whole drained delta.

        Either way, queries in flight keep reading the exact version
        (pages *and* delta) they captured at submit time; queries
        submitted after the swap see all of the batch — never a torn
        mix.  Updates are expected to flow through a single updater: a
        second ``apply_updates`` racing a commit is detected and
        rejected with ``RuntimeError`` (its batch is discarded, never
        silently merged or dropped).

        In process mode a merge additionally *publishes* the fork as
        the next on-disk snapshot generation before the swap, so worker
        processes can restore it; this requires the served index to
        live on a restored snapshot directory (an mmap-backed store).
        An absorbed commit publishes nothing — its spec names the
        unchanged base generation plus the pickled delta.  A commit
        rejected by the concurrent-commit check may leave its
        already-published generation orphaned on disk — harmless, since
        workers only ever restore generations a task names explicitly.
        """
        self._check_open()
        if not hasattr(self._index, "fork"):
            raise RuntimeError(
                f"{type(self._index).__name__} does not support updates "
                "(no fork()); serve a FLAT or sharded FLAT index"
            )
        with self._commit_lock:
            base = self._base
            delta = self._delta
        t0 = time.perf_counter()
        # Absorb the batch into a copy of the delta first, whatever the
        # commit shape: validation (duplicate/unknown delete ids) is
        # atomic against RAM state, id assignment continues the base
        # watermark exactly as a direct apply_batch would, and the
        # merge path below simply drains the copy.
        new_delta = (
            DeltaIndex(next_id=base.next_element_id)
            if delta is None
            else delta.copy()
        )
        inserted = np.empty(0, dtype=np.int64)
        if inserts is not None and len(inserts):
            inserted = new_delta.insert(inserts)
        deleted = 0
        if delete_ids is not None and len(delete_ids):
            new_delta.delete(delete_ids, base.contains_elements)
            deleted = len(delete_ids)
        merge = (
            force_merge
            or self.delta_threshold <= 0
            or new_delta.size >= self.delta_threshold
            or (
                self.merge_interval_seconds is not None
                and time.monotonic() - self._last_merge
                >= self.merge_interval_seconds
            )
        )
        spec = None
        generation = None
        if merge:
            fork = base.fork()
            drain_ids, drain_mbrs, drain_deletes, next_id = new_delta.drain()
            fork.apply_batch(
                insert_mbrs=drain_mbrs,
                delete_ids=drain_deletes,
                insert_ids=drain_ids,
                next_id=next_id,
            )
            if self._mode == MODE_PROCESS:
                from repro.core.snapshot import publish_fork_generation
                from repro.storage.pagestore import SnapshotError

                try:
                    directory, generation = publish_fork_generation(
                        fork, expected_base=self._published_gen
                    )
                except SnapshotError:
                    # Lineage violations (another publisher advanced the
                    # directory) surface as-is — not a setup error.
                    raise
                except PageStoreError as exc:
                    raise RuntimeError(
                        "process-mode updates need an index restored from a "
                        "snapshot directory (worker processes restore "
                        "committed generations from disk); snapshot_index() "
                        "+ restore_index() first"
                    ) from exc
                spec = (str(directory), int(generation))
            new_index = fork
        else:
            new_index = base.with_delta(new_delta)
            if self._mode == MODE_PROCESS:
                if self._snapshot_dir is None or self._published_gen is None:
                    raise RuntimeError(
                        "process-mode updates need an index restored from a "
                        "snapshot directory (worker processes restore "
                        "committed generations from disk); snapshot_index() "
                        "+ restore_index() first"
                    )
                spec = (
                    self._snapshot_dir,
                    int(self._published_gen),
                    pickle.dumps(new_delta),
                )
        with self._commit_lock:
            if self._base is not base or self._delta is not delta:
                # A concurrent commit slipped in between capture and
                # swap; its updates would be silently dropped by
                # publishing this state.  Serialize apply_updates
                # callers instead.
                raise RuntimeError(
                    "concurrent apply_updates detected; serialize update "
                    "batches through a single updater"
                )
            self._index = new_index
            self._version += 1
            version = self._version
            if merge:
                self._base = new_index
                self._delta = None
                self._last_merge = time.monotonic()
            else:
                self._delta = new_delta
            if spec is not None:
                self._gen_specs[version] = spec
                if generation is not None:
                    self._published_gen = generation
        return UpdateReport(
            version=version,
            inserted_ids=inserted,
            deleted_count=deleted,
            element_count=(
                new_index.element_count
                if merge
                else new_index.live_element_count
            ),
            wall_seconds=time.perf_counter() - t0,
            merged=merge,
            delta_elements=0 if merge else new_delta.size,
        )

    def flush_delta(self) -> UpdateReport | None:
        """Merge any buffered delta into pages now — a forced generation
        boundary.  Returns the commit's report, or ``None`` when
        nothing was buffered."""
        with self._commit_lock:
            delta = self._delta
        if delta is None or delta.is_empty:
            return None
        return self.apply_updates(force_merge=True)

    @property
    def delta_size(self) -> int:
        """Buffered delta work (memtable rows + tombstones); 0 when none."""
        with self._commit_lock:
            return 0 if self._delta is None else self._delta.size

    # -- accounting -----------------------------------------------------

    def _snapshot_worker_stats(self) -> dict:
        """Per-store counter snapshots, keyed by the store objects.

        The stores themselves are the keys (not ``id(store)``): the
        strong references keep a store diffable for the whole batch
        even if a racing commit evicts its clone mid-batch, and a
        recycled object id can never alias another store's snapshot.
        """
        with self._states_lock:
            return {
                store: store.stats.snapshot()
                for _engine, store in self._worker_states
            }

    def _aggregate_batch_stats(self, report: ServiceReport, before: dict) -> None:
        delta = IOStats()
        with self._states_lock:
            stores = [store for _engine, store in self._worker_states]
        # Union of the stores alive now and the stores alive at batch
        # start: clones evicted mid-batch still contribute their delta.
        for store in before:
            if store not in stores:
                stores.append(store)
        for store in stores:
            prior = before.get(store)
            worker_delta = store.stats.diff(prior) if prior else store.stats
            if (worker_delta.total_reads or worker_delta.cache_hits
                    or worker_delta.total_prefetch_hits):
                report.workers_used += 1
            delta.merge(worker_delta)
        # Sorted keys: reports of identical batches compare equal (and
        # serialize identically) regardless of worker scheduling.
        report.reads_by_category = dict(sorted(delta.reads.items()))
        report.decodes_by_kind = dict(sorted(delta.decode_misses.items()))
        report.cache_hits = delta.cache_hits
        if delta.prefetch_hits:
            report.prefetch_hits_by_category = dict(
                sorted(delta.prefetch_hits.items())
            )

    def _absorb_process_batch(self, pids: set, delta: IOStats) -> None:
        """Fold one batch's merged worker deltas into lifetime counters."""
        with self._process_lock:
            self._process_stats.merge(delta)
            self._worker_pids.update(pids)

    def _absorb_process_future(self, future) -> None:
        """Done-callback of a :meth:`submit`-path process task."""
        if future.cancelled() or future.exception() is not None:
            return
        pid, _results, delta, _prefetch, _elapsed = future.result()
        self._absorb_process_batch({pid}, delta)

    # -- introspection --------------------------------------------------

    def aggregate_stats(self) -> IOStats:
        """Lifetime I/O counters merged across every worker view.

        Includes the counters of clones retired by update commits and,
        in process mode, every delta returned by worker tasks.
        """
        total = IOStats()
        with self._states_lock:
            states = list(self._worker_states)
            total.merge(self._retired_stats)
        for _engine, store in states:
            total.merge(store.stats)
        with self._process_lock:
            total.merge(self._process_stats)
        return total

    @property
    def current_version(self) -> int:
        """Generation number of the currently served index (0 initially)."""
        with self._commit_lock:
            return self._version

    @property
    def execution_mode(self) -> str:
        """``"thread"`` or ``"process"``."""
        return self._mode

    @property
    def batch_queries(self) -> int:
        """Queries grouped per joint-crawl pool task in :meth:`run`."""
        return self._batch

    @property
    def workers_started(self) -> int:
        """Workers that have served at least one query ever.

        Counts distinct threads (thread mode) or worker pids (process
        mode), not engine clones — a worker that rebuilt its engine
        across update generations still counts once.
        """
        if self._mode == MODE_PROCESS:
            with self._process_lock:
                return len(self._worker_pids)
        with self._states_lock:
            return len(self._worker_threads)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Shut the thread pool down.

        Idempotent and safe to call from several threads: *every*
        caller returns only once the pool has shut down and all
        in-flight queries finished (``ThreadPoolExecutor.shutdown`` is
        itself idempotent, so later callers simply join the same
        shutdown).  ``submit``/``run`` after close raise
        :class:`RuntimeError` instead of queueing onto a dead pool.
        """
        with self._lifecycle_lock:
            self._closed = True
        if self._prefetch_pool is not None:
            self._prefetch_pool.shutdown(wait=True)
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
