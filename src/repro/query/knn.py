"""The expanding-radius kNN skeleton shared by the crawling engines.

FLAT and the DLS baseline both answer ``knn_query`` the same way: they
have no hierarchy to best-first search, but they *can* retrieve
everything intersecting a box at cost proportional to the result — so
kNN is repeated range querying with a growing box
``[point - r, point + r]``.  A candidate whose MBR distance is at most
``r`` is *confirmed*: any unseen element within Euclidean distance
``r`` has L-inf distance at most ``r`` and therefore intersects the
box, so nothing outside the candidate set can be closer.  The radius
doubles until ``k`` candidates are confirmed or the box swallows the
engine's whole covering box (at which point the candidates are simply
all elements).

The first radius is the density estimate ``(volume * k / n)^(1/3) / 2``
— the half-edge of a cube expected to contain ~k elements — plus the
distance from the query point to the covering box, so far-away points
do not waste rounds crawling empty space.  Results are ordered by
``(distance, id)``, matching the brute-force baseline the tests pin
every engine against.

This module keeps the radius schedule, confirmation predicate and
tie-break in exactly one place; the engines supply only their range
retrieval and their way of looking up candidate MBR distances.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.mbr import (
    mbr_contains_mbr,
    mbr_distance_to_point,
    mbr_volume,
)


def expanding_radius_knn(
    point: np.ndarray,
    k: int,
    *,
    element_count: int,
    cover: np.ndarray,
    range_query,
    distances,
) -> tuple:
    """Run the expanding-radius loop; returns ``(ids, dists, rounds)``.

    ``range_query(box)`` returns the candidate element ids intersecting
    a ``(6,)`` box; ``distances(ids, point)`` returns their MBR
    distances to the point.  ``cover`` is the engine's covering box
    (every element MBR lies inside it) and ``element_count`` the data
    set size, both used for the initial-radius estimate and the
    exhaustion cutoff.
    """
    point = np.asarray(point, dtype=np.float64).reshape(3)
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if element_count <= 0:
        # A fully emptied (all elements deleted) index has nothing to
        # confirm; the radius estimate below would divide by zero.
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64), 0
    volume = float(mbr_volume(cover))
    wanted = min(k, element_count)
    radius = 0.0
    if volume > 0.0:
        radius = 0.5 * (volume * wanted / element_count) ** (1.0 / 3.0)
    if radius <= 0.0:
        radius = float((cover[3:] - cover[:3]).max()) or 1.0
    radius += float(mbr_distance_to_point(cover[None, :], point)[0])

    rounds = 0
    while True:
        rounds += 1
        box = np.concatenate([point - radius, point + radius])
        ids = range_query(box)
        dists = distances(ids, point)
        exhausted = bool(mbr_contains_mbr(box, cover))
        if exhausted or int((dists <= radius).sum()) >= wanted:
            order = np.lexsort((ids, dists))[:wanted]
            return ids[order], dists[order], rounds
        radius *= 2.0
