"""Query execution harness: cold caches, per-category accounting.

Runs a batch of queries against any
:class:`~repro.query.engine.QueryEngine` over a :class:`PageStore`,
clearing the buffer (and the decoded-page cache) before every query
exactly as the paper does ("Before each query is executed, the OS
caches and disk buffers are cleared").  Alongside page reads, the
harness aggregates page-*decode* counters, so CPU-side parsing work is
reported next to the I/O every figure measures.

Three entry points share one accounting loop:

* :func:`run_queries` — ``(N, 6)`` boxes through ``range_query``.
* :func:`run_point_queries` — ``(N, 3)`` points through the engine's
  own ``point_query`` (not a caller-side degenerate-box conversion), so
  point workloads get the same cold-cache accounting through whatever
  specialized path an engine has.
* :func:`run_knn_queries` — ``(N, 3)`` points through ``knn_query``.

:func:`run_queries_grouped` is the batched sibling of
:func:`run_queries`: groups of queries flow through one
``range_query_multi`` joint crawl per group, with per-query cold
page-read accounting preserved by the kernel itself.

The harness is planner-aware: engines that expose ``last_plan`` (the
sharded index) get their per-query shard routing collected into
:attr:`QueryRunResult.per_query_shards`, so shard pruning is reported
next to the per-category page reads it saves.  For a sharded engine,
pass its ``store`` facade (a
:class:`~repro.storage.pagestore.PageStoreGroup`) as the *store*
argument — cache clearing and stat snapshots fan out to every shard.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.storage.diskmodel import DiskModel
from repro.storage.pagestore import PageStore
from repro.storage.stats import (
    CATEGORY_METADATA,
    CATEGORY_OBJECT,
    CATEGORY_RTREE_INTERNAL,
    CATEGORY_RTREE_LEAF,
    CATEGORY_SEED_INTERNAL,
)


@dataclass
class QueryRunResult:
    """Aggregated outcome of one benchmark run on one index."""

    index_name: str
    query_count: int = 0
    result_elements: int = 0
    reads_by_category: dict = field(default_factory=dict)
    #: Full page decodes by decode kind ("metadata" / "element").
    decodes_by_kind: dict = field(default_factory=dict)
    #: Decodes absorbed by the decoded-page cache, by decode kind.
    decode_hits_by_kind: dict = field(default_factory=dict)
    cpu_seconds: float = 0.0
    #: Peak BFS bookkeeping bytes per query (FLAT only), for Sec. VII-E.2.
    bookkeeping_bytes: list = field(default_factory=list)
    per_query_reads: list = field(default_factory=list)
    per_query_results: list = field(default_factory=list)
    #: Shards each query was routed to (planner-aware engines only).
    per_query_shards: list = field(default_factory=list)

    # -- totals ----------------------------------------------------------

    @property
    def total_page_reads(self) -> int:
        return sum(self.reads_by_category.values())

    def reads_in(self, *categories: str) -> int:
        return sum(self.reads_by_category.get(c, 0) for c in categories)

    @property
    def total_page_decodes(self) -> int:
        """Full page decodes performed across all decode kinds."""
        return sum(self.decodes_by_kind.values())

    def decodes_in(self, *kinds: str) -> int:
        return sum(self.decodes_by_kind.get(k, 0) for k in kinds)

    @property
    def pages_per_result(self) -> float:
        """Page reads per result element (Figs. 3, 15, 19)."""
        if self.result_elements == 0:
            return float("nan")
        return self.total_page_reads / self.result_elements

    @property
    def mean_shards_touched(self) -> float:
        """Average shards a query was scattered to (sharded engines)."""
        if not self.per_query_shards:
            return float("nan")
        return float(np.mean(self.per_query_shards))

    # -- derived breakdowns ------------------------------------------------

    @property
    def hierarchy_reads(self) -> int:
        """Non-payload reads: R-Tree non-leaf or FLAT seed+metadata pages."""
        return self.reads_in(
            CATEGORY_RTREE_INTERNAL, CATEGORY_SEED_INTERNAL, CATEGORY_METADATA
        )

    @property
    def payload_reads(self) -> int:
        """Payload reads: R-Tree leaf or FLAT object pages."""
        return self.reads_in(CATEGORY_RTREE_LEAF, CATEGORY_OBJECT)

    def simulated_seconds(self, disk: DiskModel | None = None) -> float:
        """End-to-end simulated time (I/O model + measured CPU)."""
        disk = disk or DiskModel()
        return disk.total_seconds(self.total_page_reads, self.cpu_seconds)


def _run_batch(
    index,
    execute,
    store: PageStore,
    items: np.ndarray,
    index_name: str,
    clear_cache_between: bool,
) -> QueryRunResult:
    """The shared accounting loop: cold caches, per-query stat diffs."""
    result = QueryRunResult(index_name=index_name or type(index).__name__)
    for item in items:
        if clear_cache_between:
            store.clear_cache()
        before = store.stats.snapshot()
        t0 = time.perf_counter()
        hits = execute(item)
        result.cpu_seconds += time.perf_counter() - t0
        delta = store.stats.diff(before)

        result.query_count += 1
        result.result_elements += len(hits)
        result.per_query_reads.append(delta.total_reads)
        result.per_query_results.append(len(hits))
        for category, reads in delta.reads.items():
            result.reads_by_category[category] = (
                result.reads_by_category.get(category, 0) + reads
            )
        for kind, decodes in delta.decode_misses.items():
            result.decodes_by_kind[kind] = (
                result.decodes_by_kind.get(kind, 0) + decodes
            )
        for kind, hit_count in delta.decode_hits.items():
            result.decode_hits_by_kind[kind] = (
                result.decode_hits_by_kind.get(kind, 0) + hit_count
            )
        crawl = getattr(index, "last_crawl_stats", None)
        if crawl is not None:
            result.bookkeeping_bytes.append(crawl.bookkeeping_bytes)
        plan = getattr(index, "last_plan", None)
        if plan is not None:
            result.per_query_shards.append(len(plan.shards_selected))
    return result


def run_queries(
    index,
    store: PageStore,
    queries: np.ndarray,
    index_name: str = "",
    clear_cache_between: bool = True,
) -> QueryRunResult:
    """Execute every range query, cold-cached, and aggregate the accounting.

    *index* is any :class:`~repro.query.engine.QueryEngine`; the harness
    only calls ``range_query`` and (optionally) reads
    ``last_crawl_stats`` / ``last_plan``.
    """
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[1] != 6:
        raise ValueError(f"expected (N, 6) query boxes, got {queries.shape}")
    return _run_batch(
        index, index.range_query, store, queries, index_name, clear_cache_between
    )


def run_queries_grouped(
    index,
    store: PageStore,
    queries: np.ndarray,
    group_size: int,
    index_name: str = "",
    clear_cache_between: bool = True,
) -> QueryRunResult:
    """Range harness over the multi-query joint crawl, one group at a time.

    Groups of up to *group_size* queries are served by a single
    :meth:`~repro.core.flat_index.FLATIndex.range_query_multi` BFS.  In
    the cold regime the kernel's differential accounting keeps the
    per-query page-read totals byte-identical to :func:`run_queries`,
    while each touched page is physically decoded once per group — so
    ``per_query_reads`` (a per-*task* diff here, not per-query) is left
    empty, and decode counters legitimately shrink as *group_size*
    grows.
    """
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[1] != 6:
        raise ValueError(f"expected (N, 6) query boxes, got {queries.shape}")
    if not isinstance(group_size, int) or group_size < 1:
        raise ValueError(f"group_size must be a positive int, got {group_size!r}")
    result = QueryRunResult(index_name=index_name or type(index).__name__)
    for first in range(0, len(queries), group_size):
        group = queries[first:first + group_size]
        before = store.stats.snapshot()
        t0 = time.perf_counter()
        hits = index.range_query_multi(group, cold=clear_cache_between)
        result.cpu_seconds += time.perf_counter() - t0
        delta = store.stats.diff(before)

        result.query_count += len(group)
        for ids in hits:
            result.result_elements += len(ids)
            result.per_query_results.append(len(ids))
        for category, reads in delta.reads.items():
            result.reads_by_category[category] = (
                result.reads_by_category.get(category, 0) + reads
            )
        for kind, decodes in delta.decode_misses.items():
            result.decodes_by_kind[kind] = (
                result.decodes_by_kind.get(kind, 0) + decodes
            )
        for kind, hit_count in delta.decode_hits.items():
            result.decode_hits_by_kind[kind] = (
                result.decode_hits_by_kind.get(kind, 0) + hit_count
            )
        crawl = getattr(index, "last_crawl_stats", None)
        if crawl is not None:
            result.bookkeeping_bytes.append(crawl.bookkeeping_bytes)
    return result


def run_point_queries(
    index,
    store: PageStore,
    points: np.ndarray,
    index_name: str = "",
    clear_cache_between: bool = True,
) -> QueryRunResult:
    """Point-query variant (Fig. 2's overlap probe).

    Drives the engine's own ``point_query`` — the same cold-cache
    accounting as range batches, through whatever specialized
    point-lookup path the engine implements.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got {points.shape}")
    return _run_batch(
        index, index.point_query, store, points, index_name, clear_cache_between
    )


def run_knn_queries(
    index,
    store: PageStore,
    points: np.ndarray,
    k: int,
    index_name: str = "",
    clear_cache_between: bool = True,
) -> QueryRunResult:
    """kNN variant: each point through ``knn_query(point, k)``.

    Gives the kNN crawl the same per-category cold-cache accounting as
    the paper's range workloads, so engines compare on page reads.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got {points.shape}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return _run_batch(
        index,
        lambda point: index.knn_query(point, k),
        store,
        points,
        index_name,
        clear_cache_between,
    )
