"""The SN and LSS micro-benchmarks (Sec. VII-A).

* **SN** (structural neighborhood): 200 range queries of
  5 x 10^-7 % of the space volume each — tiny boxes probing the
  immediate neighborhood along fibers.  Overlap-dominated for R-Trees.
* **LSS** (large spatial subvolumes): 200 range queries of
  5 x 10^-4 % each — large boxes for visualization/analysis.
  Hierarchy-traversal-dominated for R-Trees.

At reproduction scale (thousands instead of millions of elements) the
paper's literal fractions would return empty results, so the *scaled*
fractions keep the paper's per-query result-set regime; both are
provided and every harness accepts either.

Every query has *exactly* the spec's volume: since the fixed-volume
clamp fix in :func:`~repro.query.workload.random_range_queries`,
extents clamped to the space span redistribute the lost volume onto the
other axes, so the Fig. 12–19 workloads keep their nominal selectivity
even on anisotropic spaces (an earlier version silently shrank clamped
queries).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.query.workload import random_range_queries

#: The paper's literal volume fractions (Sec. VII-A), as fractions
#: (5 x 10^-7 % == 5e-9).
PAPER_SN_FRACTION = 5e-9
PAPER_LSS_FRACTION = 5e-6

#: Scaled fractions for ~1000x smaller data sets: scaling the fraction
#: by the same 1000x keeps the expected number of elements per query in
#: the paper's regime.
SCALED_SN_FRACTION = 5e-6
SCALED_LSS_FRACTION = 5e-3

#: Queries per benchmark run (Sec. VII-A: "consecutively executes 200
#: spatial range queries").
QUERY_COUNT = 200


@dataclass(frozen=True)
class BenchmarkSpec:
    """One micro-benchmark: a named set of fixed-volume random queries."""

    name: str
    volume_fraction: float
    query_count: int = QUERY_COUNT

    def queries(self, space_mbr: np.ndarray, seed: int = 0) -> np.ndarray:
        """Materialize the query boxes for a given space."""
        return random_range_queries(
            space_mbr, self.volume_fraction, self.query_count, seed=seed
        )


def sn_benchmark(
    fraction: float = SCALED_SN_FRACTION, query_count: int = QUERY_COUNT
) -> BenchmarkSpec:
    """The structural-neighborhood benchmark at the given fraction."""
    return BenchmarkSpec("SN", fraction, query_count)


def lss_benchmark(
    fraction: float = SCALED_LSS_FRACTION, query_count: int = QUERY_COUNT
) -> BenchmarkSpec:
    """The large-spatial-subvolume benchmark at the given fraction."""
    return BenchmarkSpec("LSS", fraction, query_count)
