"""SCOUT-style trajectory prefetching for the serving layer.

Spatial analyses issue *sequences* of range queries that follow latent
anatomical structures (SCOUT, Tauheed et al., PVLDB 2012 — the same
group as the FLAT paper): a session tracing a neuron branch asks for
box after box along the fiber, so consecutive boxes are strongly
correlated.  This module exploits that correlation to warm a worker's
buffer pool *before* the next query arrives:

* :class:`TrajectoryModel` tracks one session's recent query boxes and
  extrapolates the next box from the centroid velocity and the recent
  extents — with confidence gating, so a session whose boxes jump
  around unpredictably prefetches nothing at all;
* :class:`Prefetcher` runs the predicted box through the *existing*
  query machinery — the :class:`~repro.query.planner.QueryPlanner`
  prunes shards for a sharded index, :meth:`FLATIndex.range_query
  <repro.core.flat_index.FLATIndex.range_query>` crawls a monolithic
  one — on a private **staging clone** whose caches are never cleared,
  and stages every page the crawl touches into a :class:`PrefetchArea`;
* demand-side worker stores consult the shared area on every buffer
  miss (:meth:`PageStore.read <repro.storage.pagestore.PageStore.read>`):
  a staged page is consumed without physical I/O and counted as a
  **prefetch hit** in its category, and staged decoded forms seed the
  worker's decoded-page cache.

**Accounting contract.**  Prefetching only ever moves reads *earlier*
— it never changes what a query returns or which pages it logically
touches.  Demand-side counters keep prefetch hits separate from
physical reads, so for any query sequence and any interleaving of
prefetches with queries::

    demand_reads[c] + prefetch_hits[c]  ==  reads[c] of a prefetch-free run

per page category ``c``, and results are byte-identical.  The
prefetcher's own physical reads (typically far fewer — its warm caches
carry overlap from box to box) are reported separately as
``prefetch_reads``, and ``staged - consumed`` counts wasted prefetches.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass

import numpy as np

from repro.geometry.intersect import boxes_intersect_box
from repro.storage.decoded_cache import DECODE_ELEMENT, DECODE_METADATA
from repro.storage.pagestore import PageStore
from repro.storage.serial import decode_node_page
from repro.storage.stats import IOStats


class PrefetchArea:
    """Thread-safe staging area between one prefetcher and many readers.

    Maps page ids to the decoded forms staged with them (the page bytes
    themselves live in the shared backend — memory list or read-only
    mmap — so the area never copies payloads).  ``take`` does *not*
    remove an entry: a trajectory's consecutive boxes overlap, so one
    staged page absorbs the demand reads of several queries until LRU
    eviction pushes it out (the prefetcher staging a multi-step window
    once, instead of re-crawling per query, is where the CPU saving
    comes from).  ``consumed`` counts *distinct* staged pages that
    absorbed at least one demand read, so ``staged - consumed`` is the
    number of prefetched pages that never helped — true waste.

    Entries evict in LRU order past ``capacity``; an evicted entry that
    was never taken simply stays wasted.
    """

    def __init__(self, capacity: int = 8192):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        #: page id -> {decode kind: decoded object}
        self._staged: OrderedDict = OrderedDict()
        #: staged page ids that absorbed at least one demand read.
        self._taken: set = set()
        self.staged = 0
        self.consumed = 0

    def stage(self, page_id: int) -> None:
        """Mark one page as prefetched (idempotent while staged)."""
        with self._lock:
            if page_id in self._staged:
                self._staged.move_to_end(page_id)
                return
            self._staged[page_id] = {}
            self.staged += 1
            while len(self._staged) > self.capacity:
                evicted, _entry = self._staged.popitem(last=False)
                self._taken.discard(evicted)

    def stage_decoded(self, page_id: int, kind: str, decoded) -> None:
        """Attach a decoded form to a staged page (no-op if unstaged)."""
        with self._lock:
            entry = self._staged.get(page_id)
            if entry is not None:
                entry[kind] = decoded

    def take(self, page_id: int):
        """Absorb one demand read: the staged decoded forms, or ``None``."""
        if not self._staged:
            # Cheap common-case exit: an attached-but-idle area must not
            # cost demand reads a lock acquisition per buffer miss.
            return None
        with self._lock:
            entry = self._staged.get(page_id)
            if entry is not None and page_id not in self._taken:
                self._taken.add(page_id)
                self.consumed += 1
            return entry

    def counters(self) -> dict:
        """A snapshot of the staged/consumed totals."""
        with self._lock:
            return {"staged": self.staged, "consumed": self.consumed}

    def __len__(self) -> int:
        return len(self._staged)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._staged


class StagingPageStore(PageStore):
    """The prefetcher's store: every page it reads is staged.

    A warm, never-cleared view over the served backend — consecutive
    predicted boxes overlap heavily along a trajectory, so most staging
    reads are absorbed by this store's own caches and the prefetcher's
    *physical* read count stays far below the pages it stages.  Decoded
    metadata/element pages are staged alongside, so a consuming worker
    skips the decode too (the prefetcher already paid it).
    """

    def __init__(self, backend, area: PrefetchArea):
        super().__init__(backend=backend)
        self.area = area

    def read(self, page_id: int) -> bytes:
        payload = super().read(page_id)
        self.area.stage(page_id)
        return payload

    def read_metadata(self, page_id: int, cached: bool = True) -> list:
        records = super().read_metadata(page_id, cached)
        self.area.stage_decoded(page_id, DECODE_METADATA, records)
        return records

    def read_elements(self, page_id: int, cached: bool = True):
        elements = super().read_elements(page_id, cached)
        self.area.stage_decoded(page_id, DECODE_ELEMENT, elements)
        return elements


@dataclass(frozen=True)
class PrefetchConfig:
    """Knobs of the trajectory model and the staging area."""

    #: Query boxes remembered per session.
    history: int = 5
    #: Observed boxes required before any prediction is attempted.
    min_history: int = 3
    #: Minimum cosine similarity between consecutive step vectors; a
    #: session whose heading flips around stays ungated and prefetches
    #: nothing.
    min_alignment: float = 0.5
    #: Maximum ratio between the fastest and slowest recent step; a
    #: session that teleports is unpredictable however straight the
    #: average heading looks.
    max_speed_ratio: float = 4.0
    #: Predicted extents are inflated by this factor to absorb
    #: prediction error (volume cost is cubic — keep it modest).
    inflate: float = 1.25
    #: Future steps one staging crawl covers (the predicted window is
    #: the union box of this many extrapolated boxes); the serving
    #: layer skips re-prefetching while the next predicted box is
    #: still inside the last staged window.
    lookahead: int = 3
    #: Staged pages kept per area before LRU eviction.
    area_capacity: int = 8192

    def __post_init__(self):
        if self.history < 2 or self.min_history < 2:
            raise ValueError("history and min_history must be >= 2")
        if self.min_history > self.history:
            raise ValueError("min_history cannot exceed history")
        if not -1.0 <= self.min_alignment <= 1.0:
            raise ValueError("min_alignment must be a cosine in [-1, 1]")
        if self.max_speed_ratio < 1.0:
            raise ValueError("max_speed_ratio must be >= 1")
        if self.inflate < 1.0:
            raise ValueError("inflate must be >= 1")
        if self.lookahead < 1:
            raise ValueError("lookahead must be >= 1")


class TrajectoryModel:
    """Per-session next-box predictor: velocity/extent extrapolation.

    Keeps the last ``history`` observed boxes.  A prediction is the
    last centroid advanced by the mean recent step, wrapped in the mean
    recent extents inflated by ``config.inflate`` — but only when the
    session is *confidently* on a trajectory: enough history, steps
    aligned (pairwise cosine above ``min_alignment``) and of comparable
    magnitude.  A stationary session (steps ~0) predicts the current
    box again — re-fetching the same neighborhood is the one prediction
    that is always safe.
    """

    def __init__(self, config: PrefetchConfig | None = None):
        self.config = config or PrefetchConfig()
        self._boxes: deque = deque(maxlen=self.config.history)

    def observe(self, box: np.ndarray) -> None:
        """Record one executed query box of this session."""
        box = np.asarray(box, dtype=np.float64).reshape(6)
        self._boxes.append(tuple(float(v) for v in box))

    @property
    def observed(self) -> int:
        """Boxes seen so far (capped at the history window)."""
        return len(self._boxes)

    def predict(self, lookahead: int = 1) -> np.ndarray | None:
        """The predicted query window, or ``None`` when confidence gates it.

        ``lookahead=1`` is the next box alone; larger values return the
        union box of the next *lookahead* extrapolated steps — one
        staging crawl then covers several future queries, so the
        prefetcher does not have to re-crawl per query.

        Scalar arithmetic throughout: this runs on the foreground path
        for *every* session query — including unpredictable sessions
        that never prefetch — so a handful of boxes must not pay a
        dozen numpy dispatches.
        """
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        cfg = self.config
        boxes = self._boxes
        if len(boxes) < cfg.min_history:
            return None
        centers = [
            (
                (b[0] + b[3]) * 0.5,
                (b[1] + b[4]) * 0.5,
                (b[2] + b[5]) * 0.5,
            )
            for b in boxes
        ]
        steps = [
            (c1[0] - c0[0], c1[1] - c0[1], c1[2] - c0[2])
            for c0, c1 in zip(centers, centers[1:])
        ]
        speeds = [math.sqrt(s[0] * s[0] + s[1] * s[1] + s[2] * s[2]) for s in steps]
        last_box = boxes[-1]
        scale = max(
            last_box[3] - last_box[0],
            last_box[4] - last_box[1],
            last_box[5] - last_box[2],
        )
        fastest = max(speeds)
        if fastest <= 1e-12 * max(scale, 1.0):
            # Stationary session: predict the spot it keeps querying.
            step = (0.0, 0.0, 0.0)
        else:
            slowest = min(speeds)
            if slowest <= 0.0:
                return None
            if fastest / slowest > cfg.max_speed_ratio:
                return None
            for i in range(len(steps) - 1):
                a, b = steps[i], steps[i + 1]
                dot = a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
                if dot < cfg.min_alignment * speeds[i] * speeds[i + 1]:
                    return None
            n = float(len(steps))
            step = (
                sum(s[0] for s in steps) / n,
                sum(s[1] for s in steps) / n,
                sum(s[2] for s in steps) / n,
            )
        m = float(len(boxes))
        scale_half = cfg.inflate * 0.5 / m
        center = centers[-1]
        out = np.empty(6, dtype=np.float64)
        for k in range(3):
            half = sum(b[k + 3] - b[k] for b in boxes) * scale_half
            first = center[k] + step[k]
            last = center[k] + lookahead * step[k]
            if first > last:
                first, last = last, first
            out[k] = first - half
            out[k + 3] = last + half
        return out


class _CrawlMemo:
    """Decoded-record caches of one staging engine (one generation).

    The staging crawl replays the demand BFS's *page* accesses, but the
    index generation it serves is immutable — so every metadata record
    (page MBR, partition MBR, object page id, neighbor ids) is decoded
    into flat arrays exactly once per leaf, and later crawls run the
    BFS as pure numpy gathers over these arrays plus the (cheap, cached)
    staging reads of the touched pages.
    """

    def __init__(self, record_count: int):
        self.page_mbrs = np.empty((record_count, 6), dtype=np.float64)
        self.partition_mbrs = np.empty((record_count, 6), dtype=np.float64)
        self.object_page_ids = np.empty(record_count, dtype=np.int64)
        self.neighbors: list = [None] * record_count
        self.loaded = np.zeros(record_count, dtype=bool)
        #: Decoded internal node pages: page id -> (child ids, child MBRs).
        self.nodes: dict = {}
        #: Per-crawl visited scratch, reused across crawls.
        self.visited = np.zeros(record_count, dtype=bool)

    def load_leaf(self, store, seed, leaf_id: int) -> None:
        """Decode one metadata leaf into the flat record arrays."""
        raw = store.read_metadata(leaf_id)
        ids = seed.leaf_record_ids[leaf_id]
        for slot, (page_mbr, partition_mbr, object_page_id, nbrs) in enumerate(raw):
            rid = int(ids[slot])
            self.page_mbrs[rid] = page_mbr
            self.partition_mbrs[rid] = partition_mbr
            self.object_page_ids[rid] = object_page_id
            self.neighbors[rid] = np.asarray(nbrs, dtype=np.int64)
        self.loaded[ids] = True


class Prefetcher:
    """Warms a generation's buffer pools ahead of a session's next box.

    Owns one staging clone of the served index (monolithic or sharded)
    whose caches are never cleared, plus the :class:`PrefetchArea` (one
    per shard, for a sharded index) that demand-side worker stores
    consume from.  :meth:`attach` wires a worker clone's store(s) to
    the area(s); :meth:`prefetch` crawls one predicted box.

    One prefetcher belongs to one index generation: page ids are only
    meaningful within a generation, so the serving layer builds a fresh
    prefetcher per committed version and retires old ones with the
    worker clones.
    """

    def __init__(self, index, config: PrefetchConfig | None = None):
        self.config = config or PrefetchConfig()
        self._lock = threading.Lock()
        self._sharded = hasattr(index, "shards") and hasattr(index, "with_views")
        if self._sharded:
            self._planner = index.planner
            self.areas = [
                PrefetchArea(self.config.area_capacity) for _ in index.shards
            ]
            self._stores = [
                StagingPageStore(shard.store.backend, area)
                for shard, area in zip(index.shards, self.areas)
            ]
            self._engines = [
                shard.index.with_store(store)
                for shard, store in zip(index.shards, self._stores)
            ]
        else:
            self._planner = None
            self.areas = [PrefetchArea(self.config.area_capacity)]
            self._stores = [StagingPageStore(index.store.backend, self.areas[0])]
            self._engines = [index.with_store(self._stores[0])]
        #: Per-engine :class:`_CrawlMemo`, created lazily on the first
        #: staging crawl — valid for the prefetcher's whole life because
        #: one prefetcher serves exactly one immutable index generation.
        self._crawl_memos: list = [None] * len(self._engines)

    def attach(self, clone) -> None:
        """Point a worker clone's store(s) at the staging area(s)."""
        if self._sharded:
            for shard, area in zip(clone.shards, self.areas):
                shard.store.prefetch_area = area
        else:
            clone.store.prefetch_area = self.areas[0]

    def attach_store(self, store) -> None:
        """Point a bare (monolithic) worker store at the staging area."""
        store.prefetch_area = self.areas[0]

    def prefetch(self, box: np.ndarray) -> int:
        """Crawl *box* on the staging clone, staging every touched page.

        Returns the number of pages newly staged.  Serialized
        internally: the staging clone's caches are not thread-safe, so
        concurrent predictions for different sessions take turns.
        """
        box = np.asarray(box, dtype=np.float64).reshape(6)
        with self._lock:
            before = sum(area.staged for area in self.areas)
            if self._sharded:
                for shard_id in self._planner.shards_for_box(box):
                    sid = int(shard_id)
                    self._stage_crawl(sid, box)
            else:
                self._stage_crawl(0, box)
            return sum(area.staged for area in self.areas) - before

    def _stage_crawl(self, engine_id: int, query: np.ndarray) -> None:
        """Stage every page a demand crawl of *query* could touch.

        Staging needs the *page set* of a crawl, not its result ids, so
        this replays the seed-and-crawl protocol at page granularity
        over memoized record arrays (:class:`_CrawlMemo`):

        1. descend the seed tree, staging every internal page and every
           metadata leaf whose key intersects the window;
        2. run the neighbor-link BFS with *all* records of those leaves
           as the initial frontier — a superset of the demand crawl's
           single seed record — staging each frontier's metadata leaves
           and page-MBR-intersecting object pages.

        Expansion uses the demand rule (partition MBR intersects) with
        the wider window, and BFS closure is monotone in its start set,
        so the staged pages are a **superset** of the pages any demand
        query inside the window reads — including metadata leaves whose
        tree key misses the window but that the BFS reaches over
        neighbor links.  Extras count as waste, never as hits that did
        not happen.  Engines without the FLAT seed-tree internals fall
        back to a full ``range_query``.
        """
        engine = self._engines[engine_id]
        seed = getattr(engine, "seed_index", None)
        if seed is None:
            engine.range_query(query)
            return
        memo = self._crawl_memos[engine_id]
        if memo is None:
            memo = self._crawl_memos[engine_id] = _CrawlMemo(seed.record_count)
        store = engine.store

        stack = [(seed.root_id, seed.height)]
        start_leaves: list = []
        while stack:
            page_id, level = stack.pop()
            if level == 0:
                start_leaves.append(page_id)
                continue
            payload = store.read(page_id)
            node = memo.nodes.get(page_id)
            if node is None:
                child_ids, child_mbrs, _leaf = decode_node_page(payload)
                node = (child_ids, child_mbrs)
                memo.nodes[page_id] = node
            child_ids, child_mbrs = node
            for cid in child_ids[boxes_intersect_box(child_mbrs, query)]:
                stack.append((int(cid), level - 1))
        if not start_leaves:
            return

        visited = memo.visited
        visited.fill(False)
        # The first BFS round below loads and stages the start leaves
        # themselves (they are exactly the first frontier's leaves).
        frontier = np.concatenate(
            [seed.leaf_record_ids[leaf] for leaf in start_leaves]
        )
        visited[frontier] = True
        while frontier.size:
            unloaded = frontier[~memo.loaded[frontier]]
            if unloaded.size:
                for leaf in np.unique(seed.record_page[unloaded]):
                    memo.load_leaf(store, seed, int(leaf))
            # Stage every leaf this frontier sits on — the demand BFS
            # reads them all via fetch_records_batch.
            for leaf in np.unique(seed.record_page[frontier]):
                store.read_metadata(int(leaf))
            page_hits = boxes_intersect_box(memo.page_mbrs[frontier], query)
            store.read_elements_many(memo.object_page_ids[frontier[page_hits]])
            expand = frontier[
                boxes_intersect_box(memo.partition_mbrs[frontier], query)
            ]
            if expand.size:
                candidates = np.unique(
                    np.concatenate([memo.neighbors[int(r)] for r in expand])
                )
                frontier = candidates[~visited[candidates]]
                visited[frontier] = True
            else:
                frontier = np.empty(0, dtype=np.int64)

    # -- reporting -------------------------------------------------------

    def io_stats(self) -> IOStats:
        """The staging clone's physical I/O, merged across shards."""
        merged = IOStats()
        for store in self._stores:
            merged.merge(store.stats)
        return merged

    def counters(self) -> dict:
        """Staged/consumed totals summed over every area."""
        totals = {"staged": 0, "consumed": 0}
        for area in self.areas:
            snap = area.counters()
            totals["staged"] += snap["staged"]
            totals["consumed"] += snap["consumed"]
        return totals
