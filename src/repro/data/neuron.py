"""Synthetic neuron morphologies: branching cylinder fibers.

The BBP microcircuits model each neuron's dendrite and axon arbors as
chains of cylinders (Fig. 1 of the paper).  What matters to a spatial
index is reproduced here: elements that are (a) elongated, (b) strongly
correlated along fibers wandering through the tissue, and (c) packed at
extreme density when many neurons share one volume.

Branches are grown as direction-persistent random walks (an AR(1)
process on the heading vector), vectorized across every branch of every
neuron so that hundreds of thousands of cylinders generate in well under
a second.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.shapes import cylinders_to_mbrs


@dataclass(frozen=True)
class MorphologyConfig:
    """Shape parameters of one synthetic neuron arbor.

    Defaults give fibers resembling the paper's Fig. 1 sketch: tens of
    branches per neuron, segments a few µm long, gentle curvature, and
    radii tapering towards the tips.
    """

    branches_per_neuron: int = 12
    segments_per_branch: int = 25
    segment_length_mean: float = 2.0
    segment_length_jitter: float = 0.3
    direction_persistence: float = 0.82
    radius_base: float = 0.45
    radius_tip: float = 0.12
    #: Fraction of branches that root at the soma (the rest fork off a
    #: random point of an earlier branch, forming higher-order dendrites).
    soma_rooted_fraction: float = 0.4

    def __post_init__(self):
        if self.branches_per_neuron < 1 or self.segments_per_branch < 1:
            raise ValueError("branch and segment counts must be >= 1")
        if not 0.0 <= self.direction_persistence <= 1.0:
            raise ValueError("direction_persistence must be within [0, 1]")
        if self.radius_base <= 0 or self.radius_tip <= 0:
            raise ValueError("radii must be positive")
        if self.segment_length_mean <= 0:
            raise ValueError("segment_length_mean must be positive")

    @property
    def segments_per_neuron(self) -> int:
        return self.branches_per_neuron * self.segments_per_branch


@dataclass(frozen=True)
class CylinderSet:
    """A batch of cylinders: endpoints and per-end radii."""

    p0: np.ndarray
    p1: np.ndarray
    r0: np.ndarray
    r1: np.ndarray

    def __len__(self) -> int:
        return len(self.p0)

    def mbrs(self) -> np.ndarray:
        """Axis-aligned MBRs, the representation every index consumes."""
        return cylinders_to_mbrs(self.p0, self.p1, self.r0, self.r1)


def _random_units(rng: np.random.Generator, n: int) -> np.ndarray:
    """*n* uniformly distributed unit vectors."""
    v = rng.normal(size=(n, 3))
    norm = np.linalg.norm(v, axis=1, keepdims=True)
    # A zero draw is measure-zero but would NaN the whole batch.
    norm[norm == 0] = 1.0
    return v / norm


def _reflect_into(points: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Reflect coordinates at the volume walls (keeps density constant).

    Real arbors are pruned at the tissue boundary; mirroring wandering
    fibers back inside preserves both the fiber-local correlation and
    the constant-volume density the paper's sweeps rely on.
    """
    span = hi - lo
    # Fold onto a 2*span sawtooth, then mirror the upper half.
    folded = np.mod(points - lo, 2 * span)
    folded = np.where(folded > span, 2 * span - folded, folded)
    return lo + folded


def branch_path(
    space_mbr: np.ndarray,
    steps: int,
    step_length: float,
    persistence: float = 0.9,
    rng: np.random.Generator | None = None,
    start: np.ndarray | None = None,
) -> np.ndarray:
    """Waypoints of one direction-persistent fiber walk through the tissue.

    The same AR(1) heading process that grows branch segments in
    :func:`grow_neurons`, exposed standalone: analysis sessions *follow*
    such fibers, so a trajectory workload walks its query boxes along
    exactly this kind of path.  Returns ``(steps + 1, 3)`` points,
    reflected back at the volume walls like the fibers themselves.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if step_length <= 0:
        raise ValueError(f"step_length must be positive, got {step_length}")
    if not 0.0 <= persistence <= 1.0:
        raise ValueError(f"persistence must be within [0, 1], got {persistence}")
    space_mbr = np.asarray(space_mbr, dtype=np.float64)
    lo, hi = space_mbr[:3], space_mbr[3:]
    rng = np.random.default_rng() if rng is None else rng
    if start is None:
        start = rng.uniform(lo, hi)
    start = np.asarray(start, dtype=np.float64).reshape(3)

    direction = _random_units(rng, 1)[0]
    points = np.empty((steps + 1, 3), dtype=np.float64)
    points[0] = start
    for t in range(steps):
        noise = _random_units(rng, 1)[0]
        direction = persistence * direction + (1.0 - persistence) * noise
        norm = np.linalg.norm(direction)
        direction = direction / (norm if norm else 1.0)
        points[t + 1] = points[t] + direction * step_length
    return _reflect_into(points, lo, hi)


def grow_neurons(
    somata: np.ndarray,
    config: MorphologyConfig,
    space_mbr: np.ndarray,
    rng: np.random.Generator,
) -> CylinderSet:
    """Grow arbors for every soma position at once.

    Parameters
    ----------
    somata:
        ``(N_neurons, 3)`` soma positions.
    config:
        Morphology shape parameters.
    space_mbr:
        ``(6,)`` tissue volume; fibers are reflected back at its walls.
    rng:
        Source of randomness (pass a seeded generator for reproducible
        data sets).
    """
    somata = np.asarray(somata, dtype=np.float64)
    if somata.ndim != 2 or somata.shape[1] != 3:
        raise ValueError(f"expected (N, 3) soma positions, got {somata.shape}")
    space_mbr = np.asarray(space_mbr, dtype=np.float64)
    lo, hi = space_mbr[:3], space_mbr[3:]

    n_neurons = len(somata)
    b = config.branches_per_neuron
    k = config.segments_per_branch
    n_branches = n_neurons * b

    # Branch roots: a soma-rooted fraction starts at the soma; the rest
    # will be re-rooted onto a random vertex of a soma-rooted branch of
    # the same neuron after the walk (cheap re-basing keeps everything
    # vectorized).
    roots = np.repeat(somata, b, axis=0)

    # Direction-persistent random walk, all branches in parallel.
    directions = _random_units(rng, n_branches)
    alpha = config.direction_persistence
    lengths = config.segment_length_mean * (
        1.0
        + config.segment_length_jitter * rng.uniform(-1.0, 1.0, size=(n_branches, k))
    )
    steps = np.empty((n_branches, k, 3), dtype=np.float64)
    for t in range(k):
        noise = _random_units(rng, n_branches)
        directions = alpha * directions + (1.0 - alpha) * noise
        norm = np.linalg.norm(directions, axis=1, keepdims=True)
        norm[norm == 0] = 1.0
        directions = directions / norm
        steps[:, t, :] = directions * lengths[:, t, None]

    vertices = np.concatenate(
        [roots[:, None, :], roots[:, None, :] + np.cumsum(steps, axis=1)], axis=1
    )  # (n_branches, k+1, 3)

    # Re-root the non-soma branches onto random vertices of soma-rooted
    # siblings, translating the whole branch.
    n_soma_rooted = max(1, int(round(config.soma_rooted_fraction * b)))
    branch_index = np.arange(n_branches).reshape(n_neurons, b)
    child = branch_index[:, n_soma_rooted:].ravel()
    if len(child):
        parent_choice = rng.integers(0, n_soma_rooted, size=len(child))
        parent = branch_index[
            np.repeat(np.arange(n_neurons), b - n_soma_rooted), parent_choice
        ]
        vertex_choice = rng.integers(0, k + 1, size=len(child))
        new_roots = vertices[parent, vertex_choice]
        shift = new_roots - vertices[child, 0]
        vertices[child] += shift[:, None, :]

    vertices = _reflect_into(vertices, lo, hi)

    p0 = vertices[:, :-1, :].reshape(-1, 3)
    p1 = vertices[:, 1:, :].reshape(-1, 3)
    # Radii taper linearly from base to tip along each branch.
    taper = np.linspace(config.radius_base, config.radius_tip, k + 1)
    r0 = np.tile(taper[:-1], n_branches)
    r1 = np.tile(taper[1:], n_branches)
    return CylinderSet(p0=p0, p1=p1, r0=r0, r1=r1)
