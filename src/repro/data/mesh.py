"""Procedural surface meshes: stand-ins for the scan data (Sec. VIII).

The paper's last two data sets are triangle surface meshes: a brain
section (173 M triangles) and the Lucy statue scan (252 M).  What makes
meshes interesting for a spatial index is that their small triangles are
*dense on a 2-D surface* embedded in 3-D — locally extremely dense,
globally hollow.  We generate closed, deformed-sphere meshes (smooth
trigonometric displacement fields over a UV sphere grid) with the same
property; "blobbier" deformation approximates organic scans.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.shapes import triangles_to_mbrs


def _grid_for(n_triangles: int) -> tuple:
    """Choose a (latitude, longitude) grid yielding ~n_triangles."""
    # A full UV sphere grid of (a, b) quads produces 2*a*b triangles.
    if n_triangles < 8:
        raise ValueError(f"need at least 8 triangles, got {n_triangles}")
    a = max(2, int(math.sqrt(n_triangles / 4.0)))
    b = max(2, int(round(n_triangles / (2.0 * a))))
    return a, b


def deformed_sphere_mesh(
    n_triangles: int,
    radius: float = 100.0,
    deformation: float = 0.3,
    n_modes: int = 6,
    seed: int = 0,
) -> np.ndarray:
    """A closed triangulated surface with smooth random deformation.

    Returns ``(M, 3, 3)`` triangle vertices with ``M`` close to
    *n_triangles*.  ``deformation=0`` gives a sphere; larger values give
    organic, concave blobs (like tissue or statue scans).
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    if deformation < 0:
        raise ValueError(f"deformation must be non-negative, got {deformation}")
    rng = np.random.default_rng(seed)
    n_lat, n_lon = _grid_for(n_triangles)

    theta = np.linspace(0.0, np.pi, n_lat + 1)
    phi = np.linspace(0.0, 2.0 * np.pi, n_lon + 1)
    tt, pp = np.meshgrid(theta, phi, indexing="ij")

    # Smooth radial displacement: a few random low-frequency modes.
    displacement = np.zeros_like(tt)
    for _ in range(n_modes):
        f_t = rng.integers(1, 5)
        f_p = rng.integers(1, 5)
        amp = rng.uniform(0.2, 1.0)
        phase_t, phase_p = rng.uniform(0, 2 * np.pi, size=2)
        displacement += amp * np.sin(f_t * tt + phase_t) * np.cos(f_p * pp + phase_p)
    if n_modes:
        displacement /= np.abs(displacement).max() + 1e-12
    r = radius * (1.0 + deformation * displacement)

    x = r * np.sin(tt) * np.cos(pp)
    y = r * np.sin(tt) * np.sin(pp)
    z = r * np.cos(tt)
    grid = np.stack([x, y, z], axis=-1)  # (n_lat+1, n_lon+1, 3)

    # Two triangles per quad.
    a = grid[:-1, :-1]
    b = grid[1:, :-1]
    c = grid[1:, 1:]
    d = grid[:-1, 1:]
    t1 = np.stack([a, b, c], axis=2).reshape(-1, 3, 3)
    t2 = np.stack([a, c, d], axis=2).reshape(-1, 3, 3)
    return np.concatenate([t1, t2])


def mesh_mbrs(
    n_triangles: int,
    radius: float = 100.0,
    deformation: float = 0.3,
    seed: int = 0,
) -> np.ndarray:
    """MBRs of a deformed-sphere mesh with ~*n_triangles* triangles."""
    return triangles_to_mbrs(
        deformed_sphere_mesh(n_triangles, radius, deformation, seed=seed)
    )
