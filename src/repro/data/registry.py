"""Named data sets matching the paper's Sec. VIII table rows.

The paper's "other data sets" (Figs. 22/23) have fixed element counts:
Nuage dark matter / gas / stars (16.8 M, 16.8 M, 12.4 M vertices), a
brain surface mesh (173 M triangles) and the Lucy statue (252 M
triangles).  The registry reproduces the same *relative* sizes at a
configurable ``scale`` (elements = paper count x scale / 1e3, i.e.
``scale=1.0`` maps millions to thousands).
"""

from __future__ import annotations

import numpy as np

from repro.data.mesh import mesh_mbrs
from repro.data.nbody import NBodyConfig, nbody_mbrs

#: Paper element counts, in millions (Fig. 22's caption and Sec. VIII).
PAPER_DATASET_SIZES_M = {
    "nuage_dark_matter": 16.8,
    "nuage_gas": 16.8,
    "nuage_stars": 12.4,
    "brain_mesh": 173.0,
    "lucy_statue": 252.0,
}

#: Row order used by the paper's tables.
DATASET_ORDER = (
    "nuage_dark_matter",
    "nuage_gas",
    "nuage_stars",
    "brain_mesh",
    "lucy_statue",
)


def dataset_mbrs(name: str, scale: float = 1.0, seed: int = 0) -> np.ndarray:
    """Generate the named data set at ``paper_millions * scale * 1000`` elements."""
    if name not in PAPER_DATASET_SIZES_M:
        raise ValueError(
            f"unknown data set {name!r}; expected one of {sorted(PAPER_DATASET_SIZES_M)}"
        )
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    n = max(100, int(round(PAPER_DATASET_SIZES_M[name] * scale * 1000)))

    if name == "nuage_dark_matter":
        # Dark matter: strongly clustered halos, little background.
        cfg = NBodyConfig(
            n_points=n, n_halos=50, clustered_fraction=0.9, halo_scale=0.015
        )
        return nbody_mbrs(cfg, seed=seed)
    if name == "nuage_gas":
        # Gas: traces the halos but more diffuse (pressure support).
        cfg = NBodyConfig(
            n_points=n, n_halos=50, clustered_fraction=0.65, halo_scale=0.04
        )
        return nbody_mbrs(cfg, seed=seed + 1)
    if name == "nuage_stars":
        # Stars: only inside halos, the most compact component.
        cfg = NBodyConfig(
            n_points=n,
            n_halos=35,
            clustered_fraction=0.98,
            halo_scale=0.008,
            subhalos_per_halo=6,
        )
        return nbody_mbrs(cfg, seed=seed + 2)
    if name == "brain_mesh":
        # Organic scan: strong deformation, relatively coarse lobes.
        return mesh_mbrs(n, radius=150.0, deformation=0.45, seed=seed + 3)
    # lucy_statue: a finer, more elongated scanned surface.
    return mesh_mbrs(n, radius=120.0, deformation=0.25, seed=seed + 4)
