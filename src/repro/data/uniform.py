"""Uniform random box data sets (Sec. VII-E's controlled studies).

The paper isolates the drivers of FLAT's pointer count with synthetic
data: "we generate artificial data sets with 10 million elements which
are uniformly randomly distributed in a volume of 8 mm^3", then vary
(a) element volume and (b) element aspect ratio at constant volume.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.shapes import boxes_from_centers

#: Side of the paper's synthetic volume: 8 mm^3 = (2000 µm)^3.
SYNTHETIC_VOLUME_SIDE_UM = 2000.0


def uniform_centers(
    n: int, side: float = SYNTHETIC_VOLUME_SIDE_UM, seed: int = 0
) -> np.ndarray:
    """*n* element centers uniform in ``[0, side]^3``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, side, size=(n, 3))


def uniform_cubes(
    n: int,
    edge: float,
    side: float = SYNTHETIC_VOLUME_SIDE_UM,
    seed: int = 0,
) -> np.ndarray:
    """*n* axis-aligned cubes of the given *edge* at uniform positions.

    Used for the element-volume study: scaling *edge* scales element
    volume while positions stay fixed (same seed => same centers).
    """
    if edge < 0:
        raise ValueError(f"edge must be non-negative, got {edge}")
    centers = uniform_centers(n, side, seed)
    extents = np.full((n, 3), float(edge))
    return boxes_from_centers(centers, extents)


def uniform_aspect_boxes(
    n: int,
    target_volume: float = 18.0,
    length_range: tuple = (5.0, 35.0),
    side: float = SYNTHETIC_VOLUME_SIDE_UM,
    seed: int = 0,
) -> np.ndarray:
    """Boxes of equal volume but random aspect ratio (Sec. VII-E).

    Implements the paper's construction: "for each element, its length
    in each dimension is randomly set between 5 and 35 µm.  The lengths
    on all axes are normalized (by choosing an axis at random) in order
    to obtain elements of equal volume."  One randomly chosen axis is
    rescaled so every element's volume equals *target_volume*.
    """
    if target_volume <= 0:
        raise ValueError(f"target_volume must be positive, got {target_volume}")
    lo, hi = length_range
    if not 0 < lo <= hi:
        raise ValueError(f"invalid length range {length_range}")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, side, size=(n, 3))
    extents = rng.uniform(lo, hi, size=(n, 3))
    axis = rng.integers(0, 3, size=n)
    rows = np.arange(n)
    others = extents.prod(axis=1) / extents[rows, axis]
    extents[rows, axis] = target_volume / others
    return boxes_from_centers(centers, extents)
