"""Microcircuit builder: the paper's density-sweep data sets.

The paper's evaluation fixes a tissue volume and grows the element
count: "While keeping the volume constant, we increase the number of
elements in the model ... 50 million more cylinders in every step"
(Sec. III-A / VII-A).  We reproduce the same nine-step constant-volume
design at a configurable scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.neuron import CylinderSet, MorphologyConfig, grow_neurons

#: The paper's tissue volume: a cube of side 285 µm (the model
#: "contains 100'000 neurons in a volume of 285 µm^3").
PAPER_VOLUME_SIDE_UM = 285.0

#: The paper's nine density steps, in elements (50 M ... 450 M there;
#: multiply by `scale` here).
PAPER_DENSITY_STEPS = tuple(50 * i for i in range(1, 10))

#: Coordinate grid of the generated geometry, in µm: every endpoint and
#: radius is snapped to a multiple of this power-of-two step.  Real
#: morphology data carries instrument precision (SWC files record a few
#: decimals, well above 1e-3 µm); a raw ``rng.uniform`` draw instead
#: fills all 52 mantissa bits with noise, which misrepresents the
#: entropy of the data every storage codec sees.  2^-16 µm ≈ 15 pm is
#: far below any measurement's precision, so snapping changes nothing
#: physical while giving pages the redundancy real data has.  Being a
#: power of two, the min/max/± MBR arithmetic downstream stays *exact*
#: on the grid (coordinates stay < 2^53 grid steps), so MBRs inherit
#: the alignment.  Pass ``coordinate_grid=None`` for full-entropy
#: coordinates.
COORDINATE_GRID_UM = 2.0**-16


def snap_to_grid(array: np.ndarray, grid: float) -> np.ndarray:
    """Round every value to the nearest multiple of *grid*."""
    if grid <= 0:
        raise ValueError(f"grid must be positive, got {grid}")
    return np.round(array / grid) * grid


@dataclass(frozen=True)
class Microcircuit:
    """A generated brain-tissue model: cylinders in a fixed volume."""

    cylinders: CylinderSet
    space_mbr: np.ndarray
    n_neurons: int

    def __len__(self) -> int:
        return len(self.cylinders)

    def mbrs(self) -> np.ndarray:
        return self.cylinders.mbrs()


def space_box(side: float = PAPER_VOLUME_SIDE_UM) -> np.ndarray:
    """The cubic tissue volume ``[0, side]^3``."""
    if side <= 0:
        raise ValueError(f"volume side must be positive, got {side}")
    return np.array([0.0, 0.0, 0.0, side, side, side])


def build_microcircuit(
    n_elements: int,
    side: float = PAPER_VOLUME_SIDE_UM,
    config: MorphologyConfig | None = None,
    seed: int = 0,
    coordinate_grid: float | None = COORDINATE_GRID_UM,
) -> Microcircuit:
    """Generate a microcircuit of ~*n_elements* cylinders in ``[0, side]^3``.

    Density is controlled exactly as in the paper: the volume stays
    fixed, and more neurons are placed to reach the target element
    count.  The exact count is ``ceil(n / segments_per_neuron)`` neurons
    times the per-neuron segment count, then truncated to *n_elements*.

    Endpoints and radii are snapped to *coordinate_grid*
    (:data:`COORDINATE_GRID_UM` by default — instrument precision, see
    its docstring); ``coordinate_grid=None`` keeps raw RNG doubles.
    """
    if n_elements <= 0:
        raise ValueError(f"n_elements must be positive, got {n_elements}")
    config = config or MorphologyConfig()
    rng = np.random.default_rng(seed)
    space = space_box(side)

    per_neuron = config.segments_per_neuron
    n_neurons = max(1, -(-n_elements // per_neuron))
    somata = rng.uniform(space[:3], space[3:], size=(n_neurons, 3))
    cylinders = grow_neurons(somata, config, space, rng)

    if len(cylinders) > n_elements:
        cylinders = CylinderSet(
            p0=cylinders.p0[:n_elements],
            p1=cylinders.p1[:n_elements],
            r0=cylinders.r0[:n_elements],
            r1=cylinders.r1[:n_elements],
        )
    if coordinate_grid is not None:
        cylinders = CylinderSet(
            p0=snap_to_grid(cylinders.p0, coordinate_grid),
            p1=snap_to_grid(cylinders.p1, coordinate_grid),
            r0=snap_to_grid(cylinders.r0, coordinate_grid),
            r1=snap_to_grid(cylinders.r1, coordinate_grid),
        )
    return Microcircuit(cylinders=cylinders, space_mbr=space, n_neurons=n_neurons)


def density_sweep(
    steps,
    side: float = PAPER_VOLUME_SIDE_UM,
    config: MorphologyConfig | None = None,
    seed: int = 0,
):
    """Yield ``(n_elements, Microcircuit)`` for each density step.

    Each step reuses the same volume and seed lineage, mirroring the
    paper's "add 50 million more cylinders in every step" protocol.
    """
    for i, n_elements in enumerate(steps):
        yield n_elements, build_microcircuit(
            n_elements, side=side, config=config, seed=seed + i
        )
