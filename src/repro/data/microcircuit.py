"""Microcircuit builder: the paper's density-sweep data sets.

The paper's evaluation fixes a tissue volume and grows the element
count: "While keeping the volume constant, we increase the number of
elements in the model ... 50 million more cylinders in every step"
(Sec. III-A / VII-A).  We reproduce the same nine-step constant-volume
design at a configurable scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.neuron import CylinderSet, MorphologyConfig, grow_neurons

#: The paper's tissue volume: a cube of side 285 µm (the model
#: "contains 100'000 neurons in a volume of 285 µm^3").
PAPER_VOLUME_SIDE_UM = 285.0

#: The paper's nine density steps, in elements (50 M ... 450 M there;
#: multiply by `scale` here).
PAPER_DENSITY_STEPS = tuple(50 * i for i in range(1, 10))


@dataclass(frozen=True)
class Microcircuit:
    """A generated brain-tissue model: cylinders in a fixed volume."""

    cylinders: CylinderSet
    space_mbr: np.ndarray
    n_neurons: int

    def __len__(self) -> int:
        return len(self.cylinders)

    def mbrs(self) -> np.ndarray:
        return self.cylinders.mbrs()


def space_box(side: float = PAPER_VOLUME_SIDE_UM) -> np.ndarray:
    """The cubic tissue volume ``[0, side]^3``."""
    if side <= 0:
        raise ValueError(f"volume side must be positive, got {side}")
    return np.array([0.0, 0.0, 0.0, side, side, side])


def build_microcircuit(
    n_elements: int,
    side: float = PAPER_VOLUME_SIDE_UM,
    config: MorphologyConfig | None = None,
    seed: int = 0,
) -> Microcircuit:
    """Generate a microcircuit of ~*n_elements* cylinders in ``[0, side]^3``.

    Density is controlled exactly as in the paper: the volume stays
    fixed, and more neurons are placed to reach the target element
    count.  The exact count is ``ceil(n / segments_per_neuron)`` neurons
    times the per-neuron segment count, then truncated to *n_elements*.
    """
    if n_elements <= 0:
        raise ValueError(f"n_elements must be positive, got {n_elements}")
    config = config or MorphologyConfig()
    rng = np.random.default_rng(seed)
    space = space_box(side)

    per_neuron = config.segments_per_neuron
    n_neurons = max(1, -(-n_elements // per_neuron))
    somata = rng.uniform(space[:3], space[3:], size=(n_neurons, 3))
    cylinders = grow_neurons(somata, config, space, rng)

    if len(cylinders) > n_elements:
        cylinders = CylinderSet(
            p0=cylinders.p0[:n_elements],
            p1=cylinders.p1[:n_elements],
            r0=cylinders.r0[:n_elements],
            r1=cylinders.r1[:n_elements],
        )
    return Microcircuit(cylinders=cylinders, space_mbr=space, n_neurons=n_neurons)


def density_sweep(
    steps,
    side: float = PAPER_VOLUME_SIDE_UM,
    config: MorphologyConfig | None = None,
    seed: int = 0,
):
    """Yield ``(n_elements, Microcircuit)`` for each density step.

    Each step reuses the same volume and seed lineage, mirroring the
    paper's "add 50 million more cylinders in every step" protocol.
    """
    for i, n_elements in enumerate(steps):
        yield n_elements, build_microcircuit(
            n_elements, side=side, config=config, seed=seed + i
        )
