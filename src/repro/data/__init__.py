"""Data generators: every data set the paper evaluates on, synthesized.

* :mod:`~repro.data.neuron` / :mod:`~repro.data.microcircuit` — brain
  tissue models (branching cylinder fibers at controlled density).
* :mod:`~repro.data.uniform` — Sec. VII-E's uniform random boxes with
  controlled element volume / aspect ratio.
* :mod:`~repro.data.nbody` — clustered cosmology point sets (Nuage
  substitutes).
* :mod:`~repro.data.mesh` — dense triangle surface meshes (brain
  mesh / Lucy substitutes).
* :mod:`~repro.data.registry` — the named Sec. VIII data sets at a
  configurable scale.
"""

from repro.data.microcircuit import (
    Microcircuit,
    PAPER_DENSITY_STEPS,
    PAPER_VOLUME_SIDE_UM,
    build_microcircuit,
    density_sweep,
    space_box,
)
from repro.data.neuron import CylinderSet, MorphologyConfig, grow_neurons
from repro.data.nbody import NBodyConfig, nbody_mbrs, nbody_points
from repro.data.mesh import deformed_sphere_mesh, mesh_mbrs
from repro.data.registry import DATASET_ORDER, PAPER_DATASET_SIZES_M, dataset_mbrs
from repro.data.uniform import (
    SYNTHETIC_VOLUME_SIDE_UM,
    uniform_aspect_boxes,
    uniform_centers,
    uniform_cubes,
)

__all__ = [
    "CylinderSet",
    "DATASET_ORDER",
    "Microcircuit",
    "MorphologyConfig",
    "NBodyConfig",
    "PAPER_DATASET_SIZES_M",
    "PAPER_DENSITY_STEPS",
    "PAPER_VOLUME_SIDE_UM",
    "SYNTHETIC_VOLUME_SIDE_UM",
    "build_microcircuit",
    "dataset_mbrs",
    "deformed_sphere_mesh",
    "density_sweep",
    "grow_neurons",
    "mesh_mbrs",
    "nbody_mbrs",
    "nbody_points",
    "space_box",
    "uniform_aspect_boxes",
    "uniform_centers",
    "uniform_cubes",
]
