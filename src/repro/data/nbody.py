"""Clustered n-body point sets: stand-ins for the Nuage data (Sec. VIII).

The paper evaluates FLAT on Nuage cosmology snapshots (dark matter, gas
and stars vertices from an n-body simulation of the universe).  Those
files are not redistributable, so we generate hierarchically clustered
point sets with the same character: gravity collapses matter into halos
(clusters of clusters) with Plummer-like radial profiles, leaving large
voids — moderately dense, highly non-uniform data on which FLAT's edge
over the PR-Tree is real but smaller than on brain models (Fig. 23).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.shapes import spheres_to_mbrs


@dataclass(frozen=True)
class NBodyConfig:
    """Clustering parameters of a synthetic cosmology snapshot."""

    n_points: int
    side: float = 10_000.0
    n_halos: int = 40
    #: Fraction of points in halos; the rest form a diffuse background.
    clustered_fraction: float = 0.8
    #: Plummer scale radius of a halo, as a fraction of the volume side.
    halo_scale: float = 0.02
    #: Sub-halo count per halo (clusters of clusters); 0 disables.
    subhalos_per_halo: int = 4
    #: Softening radius used as the point element's extent.
    softening: float = 1.0

    def __post_init__(self):
        if self.n_points <= 0:
            raise ValueError("n_points must be positive")
        if not 0.0 <= self.clustered_fraction <= 1.0:
            raise ValueError("clustered_fraction must be within [0, 1]")
        if self.n_halos < 1:
            raise ValueError("n_halos must be >= 1")
        if self.softening <= 0:
            raise ValueError("softening must be positive")


def _plummer_offsets(rng: np.random.Generator, n: int, scale: float) -> np.ndarray:
    """Random offsets with a Plummer-sphere radial density profile."""
    u = rng.uniform(0.0, 1.0, size=n)
    # Inverse CDF of the Plummer cumulative mass profile.
    r = scale / np.sqrt(np.clip(u ** (-2.0 / 3.0) - 1.0, 1e-12, None))
    v = rng.normal(size=(n, 3))
    norm = np.linalg.norm(v, axis=1, keepdims=True)
    norm[norm == 0] = 1.0
    return v / norm * r[:, None]


def nbody_points(config: NBodyConfig, seed: int = 0) -> np.ndarray:
    """Generate ``(n_points, 3)`` clustered positions in ``[0, side]^3``."""
    rng = np.random.default_rng(seed)
    n = config.n_points
    n_clustered = int(round(config.clustered_fraction * n))
    n_background = n - n_clustered

    points = []
    if n_clustered:
        halo_centers = rng.uniform(0.0, config.side, size=(config.n_halos, 3))
        assignment = rng.integers(0, config.n_halos, size=n_clustered)
        scale = config.halo_scale * config.side
        offsets = _plummer_offsets(rng, n_clustered, scale)
        positions = halo_centers[assignment] + offsets
        if config.subhalos_per_halo > 0:
            # Second clustering level: pull a fraction of halo members
            # towards sub-halo centers inside their halo.
            sub_fraction = rng.uniform(0.0, 1.0, size=n_clustered) < 0.5
            n_sub = int(sub_fraction.sum())
            if n_sub:
                sub_centers = halo_centers[assignment[sub_fraction]] + _plummer_offsets(
                    rng, n_sub, scale
                )
                positions[sub_fraction] = sub_centers + _plummer_offsets(
                    rng, n_sub, scale * 0.2
                )
        points.append(positions)
    if n_background:
        points.append(rng.uniform(0.0, config.side, size=(n_background, 3)))

    out = np.concatenate(points)
    return np.clip(out, 0.0, config.side)


def nbody_mbrs(config: NBodyConfig, seed: int = 0) -> np.ndarray:
    """MBRs of the snapshot's points (softening-radius spheres)."""
    return spheres_to_mbrs(nbody_points(config, seed), config.softening)
