"""Distribution summaries for FLAT's neighbor-pointer analysis (Fig. 20/21)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PointerDistribution:
    """Summary statistics of a pointer-count distribution."""

    count: int
    mean: float
    median: float
    p25: float
    p75: float
    max: int

    @classmethod
    def from_counts(cls, counts: np.ndarray) -> "PointerDistribution":
        counts = np.asarray(counts)
        if len(counts) == 0:
            raise ValueError("empty pointer-count array")
        return cls(
            count=int(len(counts)),
            mean=float(counts.mean()),
            median=float(np.median(counts)),
            p25=float(np.percentile(counts, 25)),
            p75=float(np.percentile(counts, 75)),
            max=int(counts.max()),
        )


def pointer_histogram(counts: np.ndarray, bin_width: int = 1) -> dict:
    """``pointer count bucket -> number of partitions`` (Fig. 20's axes)."""
    counts = np.asarray(counts)
    if bin_width <= 0:
        raise ValueError(f"bin_width must be positive, got {bin_width}")
    buckets = (counts // bin_width) * bin_width
    values, freq = np.unique(buckets, return_counts=True)
    return {int(v): int(f) for v, f in zip(values, freq)}
