"""Measurement and reporting helpers shared by the experiments."""

from repro.analysis.histograms import PointerDistribution, pointer_histogram
from repro.analysis.overlap import (
    OverlapMeasurement,
    leaf_nonleaf_ratio,
    measure_overlap,
)
from repro.analysis.report import format_table, to_csv

__all__ = [
    "OverlapMeasurement",
    "PointerDistribution",
    "format_table",
    "leaf_nonleaf_ratio",
    "measure_overlap",
    "pointer_histogram",
    "to_csv",
]
