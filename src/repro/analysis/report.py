"""Plain-text table/CSV rendering for experiment output.

Every experiment regenerates one paper figure or table as rows of
numbers; this module renders them readably in a terminal and as CSV for
plotting.
"""

from __future__ import annotations

import io


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: list, rows: list, title: str = "") -> str:
    """Render rows as an aligned ASCII table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    out.write(header_line + "\n")
    out.write("-+-".join("-" * w for w in widths) + "\n")
    for row in cells:
        out.write(" | ".join(c.rjust(w) for c, w in zip(row, widths)) + "\n")
    return out.getvalue()


def to_csv(headers: list, rows: list) -> str:
    """Render rows as CSV (no quoting needed for numeric tables)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(",".join(_fmt(v) for v in row))
    return "\n".join(lines) + "\n"
