"""Overlap analysis: the paper's diagnosis of why R-Trees degrade.

"The point query is an excellent indication of overlap in an R-Tree:
the number of disk pages read to execute this query in an R-Tree
without overlap is equal to the height of the tree." (Sec. III)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.query.executor import run_point_queries
from repro.storage.pagestore import PageStore
from repro.storage.stats import CATEGORY_RTREE_INTERNAL, CATEGORY_RTREE_LEAF


@dataclass(frozen=True)
class OverlapMeasurement:
    """Point-query overlap probe of one R-Tree."""

    variant: str
    tree_height: int
    queries: int
    pages_per_point_query: float
    overlap_factor: float  # pages per query / height; 1.0 == overlap-free

    @property
    def has_overlap(self) -> bool:
        return self.overlap_factor > 1.0


def measure_overlap(
    tree, store: PageStore, points: np.ndarray, variant: str = ""
) -> OverlapMeasurement:
    """Run the paper's point-query probe against one tree."""
    run = run_point_queries(tree, store, points, variant)
    # Height in *pages along one path*: internal levels plus the leaf.
    height_pages = tree.height + 1
    per_query = run.total_page_reads / run.query_count
    return OverlapMeasurement(
        variant=variant or type(tree).__name__,
        tree_height=height_pages,
        queries=run.query_count,
        pages_per_point_query=per_query,
        overlap_factor=per_query / height_pages,
    )


def leaf_nonleaf_ratio(run) -> float:
    """Non-leaf to leaf page-read ratio (the paper's Fig. 14 analysis)."""
    leaf = run.reads_by_category.get(CATEGORY_RTREE_LEAF, 0)
    nonleaf = run.reads_by_category.get(CATEGORY_RTREE_INTERNAL, 0)
    if leaf == 0:
        return float("nan")
    return nonleaf / leaf
