"""Geometry kernel: 3-D minimum bounding rectangles and spatial elements.

Everything in this package operates on plain NumPy arrays for speed.
The canonical MBR representation is a float64 array of shape ``(6,)``
laid out as ``[xmin, ymin, zmin, xmax, ymax, zmax]``; batches are
``(N, 6)`` arrays.  The :class:`~repro.geometry.mbr.MBR` class is a thin
convenience wrapper used at API boundaries.
"""

from repro.geometry.mbr import (
    DIMS,
    MBR,
    mbr_area_surface,
    mbr_center,
    mbr_contains_mbr,
    mbr_contains_point,
    mbr_distance_to_point,
    mbr_empty,
    mbr_from_points,
    mbr_intersection,
    mbr_intersects,
    mbr_margin,
    mbr_overlap_volume,
    mbr_union,
    mbr_union_many,
    mbr_volume,
    point_as_box,
    validate_mbrs,
)
from repro.geometry.shapes import (
    Box,
    Cylinder,
    Sphere,
    Triangle,
    boxes_from_centers,
    cylinders_to_mbrs,
    spheres_to_mbrs,
    triangles_to_mbrs,
)
from repro.geometry.intersect import (
    boxes_contained_in_box,
    boxes_intersect_box,
    boxes_intersect_point,
    pairwise_intersects,
)

__all__ = [
    "DIMS",
    "MBR",
    "Box",
    "Cylinder",
    "Sphere",
    "Triangle",
    "boxes_contained_in_box",
    "boxes_from_centers",
    "boxes_intersect_box",
    "boxes_intersect_point",
    "cylinders_to_mbrs",
    "mbr_area_surface",
    "mbr_center",
    "mbr_contains_mbr",
    "mbr_contains_point",
    "mbr_distance_to_point",
    "mbr_empty",
    "mbr_from_points",
    "mbr_intersection",
    "mbr_intersects",
    "mbr_margin",
    "mbr_overlap_volume",
    "mbr_union",
    "mbr_union_many",
    "mbr_volume",
    "pairwise_intersects",
    "point_as_box",
    "spheres_to_mbrs",
    "triangles_to_mbrs",
    "validate_mbrs",
]
