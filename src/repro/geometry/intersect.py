"""Vectorized intersection predicates used on query hot paths.

Both FLAT and the R-Tree baselines test "does this stored MBR intersect
the query box?" for every candidate on a fetched page (Sec. IV), so
these predicates are the single most executed code in the library.  They
take an ``(N, 6)`` batch plus one query box and return boolean masks.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.mbr import DIMS


def boxes_intersect_box(mbrs: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Mask of batch MBRs that intersect the ``(6,)`` query box (closed)."""
    mbrs = np.asarray(mbrs, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    return np.all(
        (mbrs[:, :DIMS] <= query[DIMS:]) & (query[:DIMS] <= mbrs[:, DIMS:]), axis=1
    )


def boxes_contained_in_box(mbrs: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Mask of batch MBRs fully contained in the query box."""
    mbrs = np.asarray(mbrs, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    return np.all(
        (query[:DIMS] <= mbrs[:, :DIMS]) & (mbrs[:, DIMS:] <= query[DIMS:]), axis=1
    )


def boxes_intersect_point(mbrs: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Mask of batch MBRs containing the ``(3,)`` point (closed intervals)."""
    mbrs = np.asarray(mbrs, dtype=np.float64)
    point = np.asarray(point, dtype=np.float64)
    return np.all((mbrs[:, :DIMS] <= point) & (point <= mbrs[:, DIMS:]), axis=1)


def pairwise_intersects(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(len(a), len(b))`` intersection matrix between two MBR batches.

    Quadratic — intended for the neighbor-discovery unit tests and small
    analysis jobs, not for index construction (which uses the temporary
    R-Tree exactly as Algorithm 1 prescribes).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return np.all(
        (a[:, None, :DIMS] <= b[None, :, DIMS:])
        & (b[None, :, :DIMS] <= a[:, None, DIMS:]),
        axis=2,
    )
