"""Spatial element shapes and their MBR constructors.

The Blue Brain microcircuits model neuron branches as cylinders (two end
points plus a radius at each end, Sec. VII-A of the paper); surface-scan
data sets are triangle meshes; the n-body data sets are points.  FLAT
and the R-Tree baselines only ever see the elements' MBRs, so each shape
provides an exact axis-aligned bounding box and the batch constructors
below produce ``(N, 6)`` arrays directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.mbr import DIMS, MBR, mbr_from_points


@dataclass(frozen=True)
class Cylinder:
    """A (truncated-cone) cylinder: the paper's neuron-branch element.

    Matches the paper's description: "Each cylinder is described by two
    end points and a radius for each endpoint."
    """

    p0: tuple
    p1: tuple
    r0: float
    r1: float

    def mbr(self) -> MBR:
        """Exact AABB of the capsule enclosing the cylinder.

        Sweeping a sphere of radius ``max(r0, r1)`` along the axis gives
        a conservative, axis-exact box: for each axis, the extreme is an
        endpoint coordinate offset by that endpoint's radius.
        """
        p0 = np.asarray(self.p0, dtype=np.float64)
        p1 = np.asarray(self.p1, dtype=np.float64)
        lo = np.minimum(p0 - self.r0, p1 - self.r1)
        hi = np.maximum(p0 + self.r0, p1 + self.r1)
        return MBR(lo, hi)


@dataclass(frozen=True)
class Triangle:
    """A mesh triangle (9 floats, as the paper notes for object pages)."""

    a: tuple
    b: tuple
    c: tuple

    def mbr(self) -> MBR:
        pts = np.array([self.a, self.b, self.c], dtype=np.float64)
        return MBR.from_array(mbr_from_points(pts))


@dataclass(frozen=True)
class Sphere:
    """A sphere; used for point-like n-body elements with softening radius."""

    center: tuple
    radius: float

    def mbr(self) -> MBR:
        c = np.asarray(self.center, dtype=np.float64)
        return MBR(c - self.radius, c + self.radius)


@dataclass(frozen=True)
class Box:
    """An axis-aligned box element (its MBR is itself)."""

    lo: tuple
    hi: tuple

    def mbr(self) -> MBR:
        return MBR(self.lo, self.hi)


def cylinders_to_mbrs(
    p0: np.ndarray, p1: np.ndarray, r0: np.ndarray, r1: np.ndarray
) -> np.ndarray:
    """Batch MBRs for N cylinders.

    Parameters are ``(N, 3)`` endpoint arrays and ``(N,)`` radius arrays.
    Returns an ``(N, 6)`` MBR batch.
    """
    p0 = np.asarray(p0, dtype=np.float64)
    p1 = np.asarray(p1, dtype=np.float64)
    r0 = np.asarray(r0, dtype=np.float64)[:, None]
    r1 = np.asarray(r1, dtype=np.float64)[:, None]
    if p0.shape != p1.shape or p0.ndim != 2 or p0.shape[1] != DIMS:
        raise ValueError(f"expected (N, 3) endpoints, got {p0.shape} and {p1.shape}")
    lo = np.minimum(p0 - r0, p1 - r1)
    hi = np.maximum(p0 + r0, p1 + r1)
    return np.concatenate([lo, hi], axis=1)


def triangles_to_mbrs(vertices: np.ndarray) -> np.ndarray:
    """Batch MBRs for N triangles given as an ``(N, 3, 3)`` vertex array."""
    vertices = np.asarray(vertices, dtype=np.float64)
    if vertices.ndim != 3 or vertices.shape[1:] != (3, DIMS):
        raise ValueError(f"expected (N, 3, 3) vertices, got {vertices.shape}")
    return np.concatenate([vertices.min(axis=1), vertices.max(axis=1)], axis=1)


def spheres_to_mbrs(centers: np.ndarray, radii) -> np.ndarray:
    """Batch MBRs for N spheres: ``(N, 3)`` centers and scalar or ``(N,)`` radii."""
    centers = np.asarray(centers, dtype=np.float64)
    if centers.ndim != 2 or centers.shape[1] != DIMS:
        raise ValueError(f"expected (N, 3) centers, got {centers.shape}")
    radii = np.broadcast_to(np.asarray(radii, dtype=np.float64), (len(centers),))
    r = radii[:, None]
    return np.concatenate([centers - r, centers + r], axis=1)


def boxes_from_centers(centers: np.ndarray, extents: np.ndarray) -> np.ndarray:
    """Batch MBRs for boxes given centers ``(N, 3)`` and full extents ``(N, 3)``.

    Used by the Sec. VII-E synthetic studies, which vary element volume
    and aspect ratio while keeping positions fixed.
    """
    centers = np.asarray(centers, dtype=np.float64)
    extents = np.asarray(extents, dtype=np.float64)
    if centers.shape != extents.shape or centers.ndim != 2 or centers.shape[1] != DIMS:
        raise ValueError(
            f"expected matching (N, 3) centers/extents, got {centers.shape} and {extents.shape}"
        )
    if np.any(extents < 0):
        raise ValueError("extents must be non-negative")
    half = extents * 0.5
    return np.concatenate([centers - half, centers + half], axis=1)
