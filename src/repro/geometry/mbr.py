"""Axis-aligned minimum bounding rectangles (MBRs) in three dimensions.

The FLAT paper (Sec. IV) wraps every spatial element in an axis-aligned
MBR and evaluates range queries purely on MBR intersection tests, so
this module is the arithmetic core of the whole library.

Array conventions
-----------------
A single MBR is a float64 array ``[xmin, ymin, zmin, xmax, ymax, zmax]``
of shape ``(6,)``.  A batch of N MBRs is an ``(N, 6)`` array.  All batch
functions are vectorized and never loop in Python.
"""

from __future__ import annotations

import numpy as np

#: Number of spatial dimensions.  The paper's data are 3-D; keeping this
#: symbolic documents which ``3``\ s in the code are dimensionality.
DIMS = 3


class MBR:
    """A single 3-D minimum bounding rectangle.

    Thin, immutable wrapper over the canonical ``(6,)`` float64 array.
    Used at public API boundaries; internal hot paths use raw arrays.

    >>> MBR((0, 0, 0), (1, 2, 3)).volume()
    6.0
    """

    __slots__ = ("_arr",)

    def __init__(self, lo, hi):
        arr = np.empty(2 * DIMS, dtype=np.float64)
        arr[:DIMS] = lo
        arr[DIMS:] = hi
        if np.any(arr[:DIMS] > arr[DIMS:]):
            raise ValueError(f"MBR lower corner exceeds upper corner: {arr}")
        arr.setflags(write=False)
        self._arr = arr

    @classmethod
    def from_array(cls, arr) -> "MBR":
        """Wrap a ``(6,)`` array-like (validating the corner order)."""
        arr = np.asarray(arr, dtype=np.float64)
        if arr.shape != (2 * DIMS,):
            raise ValueError(f"expected shape (6,), got {arr.shape}")
        return cls(arr[:DIMS], arr[DIMS:])

    @property
    def lo(self) -> np.ndarray:
        """Lower corner ``[xmin, ymin, zmin]``."""
        return self._arr[:DIMS]

    @property
    def hi(self) -> np.ndarray:
        """Upper corner ``[xmax, ymax, zmax]``."""
        return self._arr[DIMS:]

    @property
    def array(self) -> np.ndarray:
        """The underlying read-only ``(6,)`` array."""
        return self._arr

    def volume(self) -> float:
        """Volume of the box (product of the three extents)."""
        return float(mbr_volume(self._arr))

    def center(self) -> np.ndarray:
        """Geometric center of the box."""
        return mbr_center(self._arr)

    def extents(self) -> np.ndarray:
        """Side lengths along each axis."""
        return self.hi - self.lo

    def intersects(self, other: "MBR") -> bool:
        """Closed-interval intersection test (touching boxes intersect)."""
        return bool(mbr_intersects(self._arr, other._arr))

    def contains(self, other: "MBR") -> bool:
        """True when *other* lies entirely inside this box."""
        return bool(mbr_contains_mbr(self._arr, other._arr))

    def contains_point(self, point) -> bool:
        """True when *point* lies inside or on the boundary."""
        return bool(mbr_contains_point(self._arr, np.asarray(point, dtype=np.float64)))

    def union(self, other: "MBR") -> "MBR":
        """Smallest box enclosing both boxes."""
        return MBR.from_array(mbr_union(self._arr, other._arr))

    def stretched_to_include(self, other: "MBR") -> "MBR":
        """Alias of :meth:`union` named after Algorithm 1's stretch step."""
        return self.union(other)

    def __eq__(self, other) -> bool:
        return isinstance(other, MBR) and bool(np.array_equal(self._arr, other._arr))

    def __hash__(self) -> int:
        return hash(self._arr.tobytes())

    def __repr__(self) -> str:
        lo = ", ".join(f"{v:g}" for v in self.lo)
        hi = ", ".join(f"{v:g}" for v in self.hi)
        return f"MBR(({lo}), ({hi}))"


def mbr_empty() -> np.ndarray:
    """An 'impossible' MBR that acts as identity for :func:`mbr_union`."""
    arr = np.empty(2 * DIMS, dtype=np.float64)
    arr[:DIMS] = np.inf
    arr[DIMS:] = -np.inf
    return arr


def point_as_box(point: np.ndarray) -> np.ndarray:
    """The degenerate query box of a point: ``(3,) -> (6,)``, batched
    ``(N, 3) -> (N, 6)``.  Every ``point_query`` is this plus
    ``range_query``."""
    point = np.asarray(point, dtype=np.float64)
    return np.concatenate([point, point], axis=-1)


def mbr_from_points(points: np.ndarray) -> np.ndarray:
    """Bounding box of an ``(N, 3)`` point cloud."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != DIMS or len(points) == 0:
        raise ValueError(f"expected non-empty (N, 3) points, got {points.shape}")
    return np.concatenate([points.min(axis=0), points.max(axis=0)])


def mbr_volume(mbrs: np.ndarray) -> np.ndarray:
    """Volume of one ``(6,)`` MBR or a batch ``(N, 6)``; empty boxes give 0."""
    mbrs = np.asarray(mbrs, dtype=np.float64)
    ext = np.maximum(mbrs[..., DIMS:] - mbrs[..., :DIMS], 0.0)
    return ext.prod(axis=-1)


def mbr_margin(mbrs: np.ndarray) -> np.ndarray:
    """Sum of the edge lengths (the R*-tree 'margin' criterion)."""
    mbrs = np.asarray(mbrs, dtype=np.float64)
    ext = np.maximum(mbrs[..., DIMS:] - mbrs[..., :DIMS], 0.0)
    return ext.sum(axis=-1)


def mbr_area_surface(mbrs: np.ndarray) -> np.ndarray:
    """Surface area of the box(es): ``2*(ab + bc + ca)``."""
    mbrs = np.asarray(mbrs, dtype=np.float64)
    ext = np.maximum(mbrs[..., DIMS:] - mbrs[..., :DIMS], 0.0)
    a, b, c = ext[..., 0], ext[..., 1], ext[..., 2]
    return 2.0 * (a * b + b * c + c * a)


def mbr_center(mbrs: np.ndarray) -> np.ndarray:
    """Center point(s) of one MBR or a batch."""
    mbrs = np.asarray(mbrs, dtype=np.float64)
    return (mbrs[..., :DIMS] + mbrs[..., DIMS:]) * 0.5


def mbr_intersects(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Closed-interval intersection of ``a`` and ``b`` (broadcasting).

    Touching boxes (shared face/edge/corner) count as intersecting, which
    is what makes Algorithm 1's gap-free partitions yield a connected
    neighbor graph.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return np.all(
        (a[..., :DIMS] <= b[..., DIMS:]) & (b[..., :DIMS] <= a[..., DIMS:]), axis=-1
    )


def mbr_contains_mbr(outer: np.ndarray, inner: np.ndarray) -> np.ndarray:
    """True where *outer* fully contains *inner* (broadcasting)."""
    outer = np.asarray(outer, dtype=np.float64)
    inner = np.asarray(inner, dtype=np.float64)
    return np.all(
        (outer[..., :DIMS] <= inner[..., :DIMS])
        & (inner[..., DIMS:] <= outer[..., DIMS:]),
        axis=-1,
    )


def mbr_contains_point(mbrs: np.ndarray, point: np.ndarray) -> np.ndarray:
    """True where the box(es) contain *point* (closed intervals)."""
    mbrs = np.asarray(mbrs, dtype=np.float64)
    point = np.asarray(point, dtype=np.float64)
    return np.all(
        (mbrs[..., :DIMS] <= point) & (point <= mbrs[..., DIMS:]), axis=-1
    )


def mbr_distance_to_point(mbrs: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Euclidean distance from *point* to the closest point of each box.

    Zero when the point lies inside (or on the boundary of) a box.  This
    is the MINDIST metric of classic best-first kNN search over R-Trees
    and the confirmation predicate of FLAT's expanding-radius crawl: an
    element whose MBR has distance ``d`` to the query point intersects
    every box ``[point - r, point + r]`` with ``r >= d`` (the L-inf
    distance is bounded by the Euclidean one), so all elements within
    distance ``r`` are found by a range query of radius ``r``.
    """
    mbrs = np.asarray(mbrs, dtype=np.float64)
    point = np.asarray(point, dtype=np.float64)
    below = mbrs[..., :DIMS] - point
    above = point - mbrs[..., DIMS:]
    delta = np.maximum(np.maximum(below, above), 0.0)
    return np.sqrt((delta * delta).sum(axis=-1))


def mbr_union(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Smallest box enclosing both arguments (broadcasting)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return np.concatenate(
        [
            np.minimum(a[..., :DIMS], b[..., :DIMS]),
            np.maximum(a[..., DIMS:], b[..., DIMS:]),
        ],
        axis=-1,
    )


def mbr_union_many(mbrs: np.ndarray) -> np.ndarray:
    """Union of a non-empty ``(N, 6)`` batch into a single ``(6,)`` MBR."""
    mbrs = np.asarray(mbrs, dtype=np.float64)
    if mbrs.ndim != 2 or len(mbrs) == 0:
        raise ValueError(f"expected non-empty (N, 6) batch, got {mbrs.shape}")
    return np.concatenate([mbrs[:, :DIMS].min(axis=0), mbrs[:, DIMS:].max(axis=0)])


def mbr_intersection(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection box (may be inverted/empty when disjoint)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return np.concatenate(
        [
            np.maximum(a[..., :DIMS], b[..., :DIMS]),
            np.minimum(a[..., DIMS:], b[..., DIMS:]),
        ],
        axis=-1,
    )


def mbr_overlap_volume(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Volume of the intersection of ``a`` and ``b`` (0 when disjoint)."""
    return mbr_volume(mbr_intersection(a, b))


def validate_mbrs(mbrs: np.ndarray) -> np.ndarray:
    """Validate and canonicalize a batch of MBRs.

    Returns a contiguous float64 ``(N, 6)`` array.  Raises ``ValueError``
    on wrong shape, NaNs, or inverted corners — the storage layer relies
    on every persisted MBR being well-formed.
    """
    arr = np.ascontiguousarray(mbrs, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2 * DIMS:
        raise ValueError(f"expected (N, 6) MBR batch, got shape {arr.shape}")
    if np.isnan(arr).any():
        raise ValueError("MBR batch contains NaN coordinates")
    if np.any(arr[:, :DIMS] > arr[:, DIMS:]):
        bad = int(np.argmax(np.any(arr[:, :DIMS] > arr[:, DIMS:], axis=1)))
        raise ValueError(f"MBR {bad} has lower corner above upper corner: {arr[bad]}")
    return arr
