"""Dynamic R*-Tree [3] (Beckmann, Kriegel, Schneider, Seeger).

The paper compares only against *bulkloaded* R-Trees "because bulkloaded
trees outperform other R-Tree variants such as the R*-Tree, primarily
due to better page utilization" (Sec. VII).  We implement the R*-Tree
anyway — with ChooseSubtree's minimum-overlap rule, the margin-driven
split and forced reinsertion — so that this claim itself is
reproducible (see the ablation benchmark).

Trees are built in memory by repeated insertion and then *flushed* to a
page store, yielding the same read-only disk representation as the
bulkloaded variants so that all query-time accounting is identical.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.mbr import (
    mbr_center,
    mbr_margin,
    mbr_overlap_volume,
    mbr_union,
    mbr_union_many,
    mbr_volume,
)
from repro.storage.constants import NODE_FANOUT, OBJECT_PAGE_CAPACITY
from repro.storage.pagestore import PageStore
from repro.storage.serial import encode_element_page, encode_node_page
from repro.rtree.rtree import RTree

#: R* forced-reinsert fraction ("p = 30 % of M performed best").
REINSERT_FRACTION = 0.3
#: Minimum node fill as a fraction of capacity ("m = 40 % performs best").
MIN_FILL_FRACTION = 0.4


class _Node:
    """In-memory R*-Tree node; a leaf holds element ids, an internal
    node holds child nodes."""

    __slots__ = ("mbr", "children", "element_ids", "parent")

    def __init__(self, leaf: bool):
        self.mbr = None
        self.children = None if leaf else []
        self.element_ids = [] if leaf else None
        self.parent = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def entry_count(self) -> int:
        return len(self.element_ids if self.is_leaf else self.children)


class RStarTree:
    """An insertion-built R*-Tree over element MBRs."""

    def __init__(self, element_mbrs: np.ndarray):
        self._mbrs = np.ascontiguousarray(element_mbrs, dtype=np.float64)
        if self._mbrs.ndim != 2 or self._mbrs.shape[1] != 6:
            raise ValueError(f"expected (N, 6) MBRs, got {self._mbrs.shape}")
        self._root = _Node(leaf=True)
        self._height = 1  # levels of nodes, leaves included
        self._count = 0

    # -- public API -------------------------------------------------------

    @classmethod
    def from_mbrs(cls, element_mbrs: np.ndarray) -> "RStarTree":
        """Build by inserting every element in index order."""
        tree = cls(element_mbrs)
        for element_id in range(len(tree._mbrs)):
            tree.insert(element_id)
        return tree

    def insert(self, element_id: int) -> None:
        """Insert one element (R* insertion with forced reinsert)."""
        if not 0 <= element_id < len(self._mbrs):
            raise ValueError(f"element id {element_id} out of range")
        # One forced-reinsert pass is allowed per level per insertion.
        self._overflowed_levels: set = set()
        self._insert_at_level(element_id, self._mbrs[element_id], target_level=0)
        self._count += 1

    def __len__(self) -> int:
        return self._count

    @property
    def height(self) -> int:
        return self._height

    def flush(
        self, store: PageStore, leaf_category: str, internal_category: str
    ) -> RTree:
        """Serialize to a read-only disk R-Tree (one node per page)."""
        if self._count == 0:
            raise ValueError("cannot flush an empty R*-Tree")
        leaf_element_ids = {}

        def write(node: _Node) -> tuple:
            if node.is_leaf:
                ids = np.asarray(node.element_ids, dtype=np.int64)
                page = encode_element_page(self._mbrs[ids])
                page_id = store.allocate(page, leaf_category)
                leaf_element_ids[page_id] = ids
                return page_id, node.mbr
            entries = [write(child) for child in node.children]
            child_ids = np.array([e[0] for e in entries], dtype=np.uint64)
            child_mbrs = np.stack([e[1] for e in entries])
            page = encode_node_page(child_ids, child_mbrs, node.children[0].is_leaf)
            return store.allocate(page, internal_category), node.mbr

        if self._root.is_leaf:
            # Wrap the single leaf in a one-entry root node so the disk
            # tree always has at least one internal level.
            leaf_id, leaf_mbr = write(self._root)
            root_page = encode_node_page(
                np.array([leaf_id], dtype=np.uint64), leaf_mbr[None, :], True
            )
            root_id = store.allocate(root_page, internal_category)
            height = 1
        else:
            root_id, _ = write(self._root)
            height = self._height - 1  # disk height counts internal levels
        return RTree(
            store,
            root_id,
            height,
            leaf_element_ids,
            self._count,
            leaf_category,
            internal_category,
        )

    # -- insertion machinery ------------------------------------------------

    def _node_level(self, node: _Node) -> int:
        """Level of *node*: leaves are level 0."""
        level = 0
        probe = node
        while not probe.is_leaf:
            probe = probe.children[0]
            level += 1
        return level

    def _insert_at_level(self, payload, payload_mbr, target_level: int) -> None:
        node = self._choose_subtree(payload_mbr, target_level)
        if node.is_leaf:
            node.element_ids.append(payload)
        else:
            node.children.append(payload)
            payload.parent = node
        node.mbr = payload_mbr.copy() if node.mbr is None else mbr_union(
            node.mbr, payload_mbr
        )
        self._adjust_upward(node.parent, payload_mbr)
        capacity = OBJECT_PAGE_CAPACITY if node.is_leaf else NODE_FANOUT
        if node.entry_count() > capacity:
            self._overflow_treatment(node, target_level)

    def _adjust_upward(self, node: _Node | None, added_mbr) -> None:
        while node is not None:
            node.mbr = added_mbr.copy() if node.mbr is None else mbr_union(
                node.mbr, added_mbr
            )
            node = node.parent

    def _choose_subtree(self, payload_mbr, target_level: int) -> _Node:
        node = self._root
        level = self._height - 1
        while level > target_level:
            child_mbrs = np.stack([c.mbr for c in node.children])
            enlarged = mbr_union(child_mbrs, payload_mbr)
            if level == target_level + 1 and node.children[0].is_leaf:
                # R* rule: into the child needing the least *overlap*
                # enlargement when children are leaves.
                overlap_delta = np.empty(len(node.children))
                for i in range(len(node.children)):
                    others = np.delete(child_mbrs, i, axis=0)
                    before = mbr_overlap_volume(child_mbrs[i], others).sum()
                    after = mbr_overlap_volume(enlarged[i], others).sum()
                    overlap_delta[i] = after - before
                area_delta = mbr_volume(enlarged) - mbr_volume(child_mbrs)
                best = np.lexsort((mbr_volume(child_mbrs), area_delta, overlap_delta))[0]
            else:
                area_delta = mbr_volume(enlarged) - mbr_volume(child_mbrs)
                best = np.lexsort((mbr_volume(child_mbrs), area_delta))[0]
            node = node.children[int(best)]
            level -= 1
        return node

    def _entry_mbrs(self, node: _Node) -> np.ndarray:
        if node.is_leaf:
            return self._mbrs[np.asarray(node.element_ids, dtype=np.int64)]
        return np.stack([c.mbr for c in node.children])

    def _overflow_treatment(self, node: _Node, level: int) -> None:
        if node is not self._root and level not in self._overflowed_levels:
            self._overflowed_levels.add(level)
            self._reinsert(node, level)
        else:
            self._split(node, level)

    def _reinsert(self, node: _Node, level: int) -> None:
        """R* forced reinsert: re-route the 30 % farthest-from-center entries."""
        entry_mbrs = self._entry_mbrs(node)
        center = mbr_center(node.mbr)
        dist = np.linalg.norm(mbr_center(entry_mbrs) - center, axis=1)
        n_reinsert = max(1, int(REINSERT_FRACTION * node.entry_count()))
        order = np.argsort(dist)  # close first; far entries get reinserted
        keep, expel = order[:-n_reinsert], order[-n_reinsert:]

        if node.is_leaf:
            entries = [node.element_ids[i] for i in expel]
            node.element_ids = [node.element_ids[i] for i in keep]
        else:
            entries = [node.children[i] for i in expel]
            node.children = [node.children[i] for i in keep]
        self._recompute_mbr(node)
        self._recompute_ancestors(node)
        for entry in entries:
            if node.is_leaf:
                self._insert_at_level(entry, self._mbrs[entry], target_level=0)
            else:
                self._insert_at_level(entry, entry.mbr, target_level=level)

    def _split(self, node: _Node, level: int) -> None:
        """R* topological split: axis by min margin sum, distribution by
        min overlap (ties: min area)."""
        entry_mbrs = self._entry_mbrs(node)
        count = len(entry_mbrs)
        capacity = OBJECT_PAGE_CAPACITY if node.is_leaf else NODE_FANOUT
        min_fill = max(1, int(MIN_FILL_FRACTION * capacity))

        best = None  # (overlap, area, axis_order, split_pos)
        for axis in range(3):
            for corner in (axis, axis + 3):
                order = np.argsort(entry_mbrs[:, corner], kind="stable")
                sorted_mbrs = entry_mbrs[order]
                prefix = np.empty_like(sorted_mbrs)
                np.minimum.accumulate(sorted_mbrs[:, :3], axis=0, out=prefix[:, :3])
                np.maximum.accumulate(sorted_mbrs[:, 3:], axis=0, out=prefix[:, 3:])
                suffix = np.empty_like(sorted_mbrs)
                rev = sorted_mbrs[::-1]
                np.minimum.accumulate(rev[:, :3], axis=0, out=suffix[:, :3])
                np.maximum.accumulate(rev[:, 3:], axis=0, out=suffix[:, 3:])
                suffix = suffix[::-1]
                for k in range(min_fill, count - min_fill + 1):
                    left, right = prefix[k - 1], suffix[k]
                    margin = mbr_margin(left) + mbr_margin(right)
                    overlap = mbr_overlap_volume(left, right)
                    area = mbr_volume(left) + mbr_volume(right)
                    key = (float(overlap), float(area), float(margin))
                    if best is None or key < best[0]:
                        best = (key, order, k)
        __, order, k = best
        left_idx, right_idx = order[:k], order[k:]

        sibling = _Node(leaf=node.is_leaf)
        if node.is_leaf:
            ids = node.element_ids
            node.element_ids = [ids[i] for i in left_idx]
            sibling.element_ids = [ids[i] for i in right_idx]
        else:
            children = node.children
            node.children = [children[i] for i in left_idx]
            sibling.children = [children[i] for i in right_idx]
            for child in sibling.children:
                child.parent = sibling
        self._recompute_mbr(node)
        self._recompute_mbr(sibling)

        parent = node.parent
        if parent is None:
            new_root = _Node(leaf=False)
            new_root.children = [node, sibling]
            node.parent = new_root
            sibling.parent = new_root
            self._recompute_mbr(new_root)
            self._root = new_root
            self._height += 1
            return
        parent.children.append(sibling)
        sibling.parent = parent
        self._recompute_ancestors(node)
        if parent.entry_count() > NODE_FANOUT:
            self._overflow_treatment(parent, level + 1)

    def _recompute_mbr(self, node: _Node) -> None:
        node.mbr = mbr_union_many(self._entry_mbrs(node))

    def _recompute_ancestors(self, node: _Node) -> None:
        probe = node.parent
        while probe is not None:
            self._recompute_mbr(probe)
            probe = probe.parent
