"""Priority R-Tree bulkloading [1] (Arge, de Berg, Haverkort, Yi).

The PR-Tree treats each 3-D box as a point in 6-D space
``(xmin, ymin, zmin, -xmax, -ymax, -zmax)`` and builds a *pseudo-PR-tree*:
each node first extracts up to ``capacity`` elements extreme in each of
the six priority directions (smallest xmin, ..., largest zmax) into
*priority leaves*, then splits the remainder at the median of a
round-robin 6-D coordinate and recurses.  Grouping extremes together is
what bounds the worst-case query cost and makes the PR-Tree the paper's
strongest R-Tree baseline.

As in the original paper, the R-Tree itself is obtained by using the
pseudo-PR-tree's leaves as one tree level and recursing on their MBRs.
"""

from __future__ import annotations

import numpy as np

#: The six priority directions: (column into the (N, 6) MBR array,
#: take-maximum?).  Minimal lower corners first, maximal upper corners
#: second, mirroring the 6-D mapping above.
_PRIORITY_DIRECTIONS = (
    (0, False),
    (1, False),
    (2, False),
    (3, True),
    (4, True),
    (5, True),
)


def prtree_groups(mbrs: np.ndarray, capacity: int) -> list:
    """Partition elements into pseudo-PR-tree leaf groups of ≤ *capacity*.

    Returns a list of index arrays into *mbrs*.  Every element appears in
    exactly one group.
    """
    mbrs = np.asarray(mbrs, dtype=np.float64)
    if mbrs.ndim != 2 or mbrs.shape[1] != 6:
        raise ValueError(f"expected (N, 6) MBRs, got {mbrs.shape}")
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    groups: list = []
    if len(mbrs) == 0:
        return groups

    # Iterative recursion over (indices, depth) to survive deep medians.
    stack = [(np.arange(len(mbrs), dtype=np.int64), 0)]
    while stack:
        idx, depth = stack.pop()
        if len(idx) <= capacity:
            groups.append(idx)
            continue

        remaining = idx
        for column, take_max in _PRIORITY_DIRECTIONS:
            if len(remaining) <= capacity:
                break
            keys = mbrs[remaining, column]
            if take_max:
                keys = -keys
            # The `capacity` elements most extreme in this direction form
            # a priority leaf.
            extreme_pos = np.argpartition(keys, capacity - 1)[:capacity]
            groups.append(remaining[extreme_pos])
            mask = np.ones(len(remaining), dtype=bool)
            mask[extreme_pos] = False
            remaining = remaining[mask]

        if len(remaining) == 0:
            continue
        if len(remaining) <= capacity:
            groups.append(remaining)
            continue

        # Median split on the round-robin 6-D coordinate.
        column, take_max = _PRIORITY_DIRECTIONS[depth % len(_PRIORITY_DIRECTIONS)]
        keys = mbrs[remaining, column]
        if take_max:
            keys = -keys
        half = len(remaining) // 2
        order = np.argpartition(keys, half)
        stack.append((remaining[order[:half]], depth + 1))
        stack.append((remaining[order[half:]], depth + 1))
    return groups
