"""R-Tree substrate: the paper's baselines, faithfully bulkloaded.

Variants (Sec. II / VII of the paper):

* ``"str"`` — Sort-Tile-Recursive packing [16], the most commonly used
  bulkloader.
* ``"hilbert"`` — Hilbert-curve packing [12], the first bulkloader.
* ``"prtree"`` — the Priority R-Tree [1], the paper's best baseline.
* ``"tgs"`` — Top-down Greedy Split [7] (extension; not benchmarked in
  the paper's main figures but discussed in related work).
* ``"rstar"`` — the dynamic R*-Tree [3], built by repeated insertion
  (extension; the paper dismisses it in favour of bulkloading).

Use :func:`bulkload_rtree` to build any variant on a page store.
"""

from __future__ import annotations

import numpy as np

from repro.storage.constants import NODE_FANOUT, OBJECT_PAGE_CAPACITY
from repro.storage.pagestore import PageStore
from repro.storage.stats import CATEGORY_RTREE_INTERNAL, CATEGORY_RTREE_LEAF
from repro.rtree.hilbert import (
    DEFAULT_BITS,
    hilbert_decode,
    hilbert_groups,
    hilbert_keys,
    hilbert_sort_order,
    quantize_centers,
)
from repro.rtree.prtree import prtree_groups
from repro.rtree.rstar import RStarTree
from repro.rtree.rtree import RTree, build_rtree, pack_upper_levels
from repro.rtree.str_bulk import str_groups, str_sort_order
from repro.rtree.tgs import tgs_groups

#: Bulkloaded variant name -> per-level grouping function.
GROUPERS = {
    "str": str_groups,
    "hilbert": hilbert_groups,
    "prtree": prtree_groups,
    "tgs": tgs_groups,
}

#: Variants the paper benchmarks in its figures, in figure-legend order.
PAPER_VARIANTS = ("hilbert", "str", "prtree")


def bulkload_rtree(
    store: PageStore,
    element_mbrs: np.ndarray,
    variant: str = "str",
    leaf_category: str = CATEGORY_RTREE_LEAF,
    internal_category: str = CATEGORY_RTREE_INTERNAL,
    leaf_capacity: int = OBJECT_PAGE_CAPACITY,
    fanout: int = NODE_FANOUT,
) -> RTree:
    """Bulkload an R-Tree of the given *variant* onto *store*.

    ``variant="rstar"`` builds the dynamic R*-Tree by repeated insertion
    and flushes it to disk; all other variants are true bulkloaders.
    ``fanout`` caps the internal-node entry count (default: the 72
    entries a 4 K page holds); experiments lower it to depth-match the
    paper's trees at reduced data scale.
    """
    if variant == "rstar":
        tree = RStarTree.from_mbrs(element_mbrs)
        return tree.flush(store, leaf_category, internal_category)
    try:
        grouper = GROUPERS[variant]
    except KeyError:
        raise ValueError(
            f"unknown R-Tree variant {variant!r}; expected one of "
            f"{sorted(GROUPERS)} or 'rstar'"
        ) from None
    return build_rtree(
        store,
        element_mbrs,
        grouper,
        leaf_category,
        internal_category,
        leaf_capacity,
        fanout,
    )


__all__ = [
    "DEFAULT_BITS",
    "GROUPERS",
    "PAPER_VARIANTS",
    "RStarTree",
    "RTree",
    "build_rtree",
    "bulkload_rtree",
    "hilbert_decode",
    "hilbert_groups",
    "hilbert_keys",
    "hilbert_sort_order",
    "pack_upper_levels",
    "prtree_groups",
    "quantize_centers",
    "str_groups",
    "str_sort_order",
    "tgs_groups",
]
