"""Sort-Tile-Recursive (STR) packing [16].

STR tiles 3-D space by sorting on x-centers into vertical slabs, each
slab on y-centers into beams, each beam on z-centers into final tiles of
at most ``capacity`` elements.  The same routine packs upper tree levels
(applied to node MBRs) and is reused verbatim by FLAT's Algorithm 1 —
the paper's partitioning *is* STR ("We use an efficient algorithm based
on STR").
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.mbr import mbr_center


def str_run_sizes(n: int, capacity: int) -> tuple:
    """Canonical STR slab/beam sizes for 100 % page fill.

    With ``P = ceil(n/capacity)`` pages, STR cuts ``ceil(P^(1/3))``
    vertical slabs of ``capacity * ceil(P^(2/3))`` elements each and,
    inside a slab of ``m`` elements (``p = ceil(m/capacity)`` pages),
    ``ceil(p^(1/2))`` beams of ``capacity * ceil(p^(1/2))`` elements.
    All slab/beam sizes are multiples of the page capacity, so only the
    very last tile of each beam can be underfilled — this is what gives
    the paper's 100 % fill factor.
    Returns ``(slab_size, beam_size_fn)``.
    """
    pages = math.ceil(n / capacity)
    slabs = max(1, math.ceil(pages ** (1.0 / 3.0)))
    slab_size = capacity * math.ceil(pages / slabs)

    def beam_size(slab_n: int) -> int:
        slab_pages = math.ceil(slab_n / capacity)
        beams = max(1, math.ceil(math.sqrt(slab_pages)))
        return capacity * math.ceil(slab_pages / beams)

    return slab_size, beam_size


def _runs(order: np.ndarray, run_size: int) -> list:
    """Consecutive runs of *run_size* (last may be shorter)."""
    return [order[i : i + run_size] for i in range(0, len(order), run_size)]


def str_groups(mbrs: np.ndarray, capacity: int) -> list:
    """Partition elements into STR tiles of at most *capacity* elements.

    Returns a list of index arrays (into *mbrs*), each a final tile, in
    tile order (x-slab major, then y, then z).  Every tile except the
    last of each beam holds exactly *capacity* elements (100 % fill, as
    in the paper's setup).
    """
    mbrs = np.asarray(mbrs, dtype=np.float64)
    if mbrs.ndim != 2 or mbrs.shape[1] != 6:
        raise ValueError(f"expected (N, 6) MBRs, got {mbrs.shape}")
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    n = len(mbrs)
    if n == 0:
        return []
    centers = mbr_center(mbrs)
    slab_size, beam_size = str_run_sizes(n, capacity)

    groups = []
    x_order = np.argsort(centers[:, 0], kind="stable")
    for x_slab in _runs(x_order, slab_size):
        y_order = x_slab[np.argsort(centers[x_slab, 1], kind="stable")]
        for y_beam in _runs(y_order, beam_size(len(x_slab))):
            z_order = y_beam[np.argsort(centers[y_beam, 2], kind="stable")]
            groups.extend(_runs(z_order, capacity))
    return groups


def str_sort_order(mbrs: np.ndarray, capacity: int) -> np.ndarray:
    """Element permutation concatenating the STR tiles in tile order."""
    groups = str_groups(mbrs, capacity)
    if not groups:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(groups)
