"""A 3-D Hilbert space-filling curve (vectorized Skilling transform).

The Hilbert R-Tree [12] bulkloads by sorting element centers along the
Hilbert curve and packing consecutive elements onto pages.  This module
implements John Skilling's compact Hilbert transform ("Programming the
Hilbert curve", AIP 2004) vectorized over NumPy arrays so that keys for
hundreds of thousands of elements are computed without Python loops
over elements (only over the ~3·bits bit positions).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.mbr import DIMS, mbr_center

#: Default bits of resolution per dimension; 3 x 16 = 48-bit keys fit
#: comfortably in uint64.
DEFAULT_BITS = 16


def _check(coords: np.ndarray, bits: int) -> np.ndarray:
    coords = np.asarray(coords)
    if coords.ndim != 2 or coords.shape[1] != DIMS:
        raise ValueError(f"expected (N, 3) grid coordinates, got {coords.shape}")
    if not 1 <= bits <= 21:
        raise ValueError(f"bits must be in [1, 21], got {bits}")
    coords = coords.astype(np.uint64)
    return coords


def hilbert_keys(coords: np.ndarray, bits: int = DEFAULT_BITS) -> np.ndarray:
    """Hilbert curve index of integer grid points.

    Parameters
    ----------
    coords:
        ``(N, 3)`` non-negative integers, each ``< 2**bits``.
    bits:
        Grid resolution per dimension.

    Returns
    -------
    ``(N,)`` uint64 Hilbert indices: a bijection from the grid onto
    ``[0, 2**(3*bits))`` along which consecutive indices are adjacent
    grid cells.
    """
    x = _check(coords, bits).copy()
    if np.any(x >> np.uint64(bits)):
        raise ValueError(f"coordinates exceed {bits}-bit grid")
    n = DIMS

    # --- Skilling AxesToTranspose, vectorized over rows -----------------
    q = np.uint64(1) << np.uint64(bits - 1)
    one = np.uint64(1)
    while q > one:
        p = q - one
        for i in range(n):
            hit = (x[:, i] & q).astype(bool)
            # invert low bits of x[:, 0] where this axis has the q bit set
            x[hit, 0] ^= p
            # otherwise exchange low bits of column 0 and column i
            t = (x[~hit, 0] ^ x[~hit, i]) & p
            x[~hit, 0] ^= t
            x[~hit, i] ^= t
        q >>= one

    # Gray encode
    for i in range(1, n):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(len(x), dtype=np.uint64)
    q = np.uint64(1) << np.uint64(bits - 1)
    while q > one:
        hit = (x[:, n - 1] & q).astype(bool)
        t[hit] ^= q - one
        q >>= one
    for i in range(n):
        x[:, i] ^= t

    # --- interleave transpose bits into a single key --------------------
    # Bit j of axis i lands at position (bits-1-j)*n + i counted from the
    # most significant end; axis 0 holds the most significant bits.
    keys = np.zeros(len(x), dtype=np.uint64)
    for j in range(bits - 1, -1, -1):
        for i in range(n):
            keys = (keys << one) | ((x[:, i] >> np.uint64(j)) & one)
    return keys


def hilbert_decode(keys: np.ndarray, bits: int = DEFAULT_BITS) -> np.ndarray:
    """Inverse of :func:`hilbert_keys`: indices back to grid coordinates."""
    keys = np.asarray(keys, dtype=np.uint64)
    if keys.ndim != 1:
        raise ValueError(f"expected (N,) keys, got {keys.shape}")
    if not 1 <= bits <= 21:
        raise ValueError(f"bits must be in [1, 21], got {bits}")
    n = DIMS
    one = np.uint64(1)

    # de-interleave into transpose form
    x = np.zeros((len(keys), n), dtype=np.uint64)
    pos = n * bits - 1
    for j in range(bits - 1, -1, -1):
        for i in range(n):
            x[:, i] |= ((keys >> np.uint64(pos)) & one) << np.uint64(j)
            pos -= 1

    # --- Skilling TransposeToAxes ---------------------------------------
    # Gray decode by H ^ (H/2)
    t = x[:, n - 1] >> one
    for i in range(n - 1, 0, -1):
        x[:, i] ^= x[:, i - 1]
    x[:, 0] ^= t

    q = np.uint64(2)
    top = np.uint64(1) << np.uint64(bits)
    while q != top:
        p = q - one
        for i in range(n - 1, -1, -1):
            hit = (x[:, i] & q).astype(bool)
            x[hit, 0] ^= p
            t2 = (x[~hit, 0] ^ x[~hit, i]) & p
            x[~hit, 0] ^= t2
            x[~hit, i] ^= t2
        q <<= one
    return x


def quantize_centers(mbrs: np.ndarray, bits: int = DEFAULT_BITS) -> np.ndarray:
    """Map element MBR centers onto the ``2**bits`` integer grid."""
    centers = mbr_center(np.asarray(mbrs, dtype=np.float64))
    if len(centers) == 0:
        return np.empty((0, DIMS), dtype=np.uint64)
    lo = centers.min(axis=0)
    hi = centers.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    side = float((1 << bits) - 1)
    grid = np.floor((centers - lo) / span * side).astype(np.uint64)
    return np.minimum(grid, np.uint64((1 << bits) - 1))


def hilbert_sort_order(mbrs: np.ndarray, bits: int = DEFAULT_BITS) -> np.ndarray:
    """Permutation sorting elements by the Hilbert key of their center.

    This is the Hilbert R-Tree's packing order: "each element needs to
    be assigned a Hilbert value, the entire data set is sorted once on
    this value and the tree is built recursively" (Sec. VII-B).
    """
    keys = hilbert_keys(quantize_centers(mbrs, bits), bits)
    return np.argsort(keys, kind="stable")


def hilbert_groups(mbrs: np.ndarray, capacity: int, bits: int = DEFAULT_BITS) -> list:
    """Hilbert packing: sort by key, fill pages to 100 % in curve order.

    Consecutive elements on the curve are spatially close, so packing
    them on the same page preserves locality (Kamel & Faloutsos).
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    order = hilbert_sort_order(mbrs, bits)
    return [order[i : i + capacity] for i in range(0, len(order), capacity)]
