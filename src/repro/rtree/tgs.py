"""Top-down Greedy Split (TGS) bulkloading [7] (García, López, Leutenegger).

TGS recursively splits the data set in two, greedily choosing — over all
three dimensions, both sort keys (lower/upper MBR corner) and all split
positions at multiples of the subtree granularity — the binary cut that
minimizes the summed bounding-box cost of the two halves.  It produces
the tightest packings of the classic bulkloaders at the price of a much
longer build (the paper, Sec. II, notes TGS "takes much longer than
other approaches").
"""

from __future__ import annotations

import math

import numpy as np


def _cumulative_union(sorted_mbrs: np.ndarray) -> np.ndarray:
    """Prefix unions of an ordered MBR batch: row i = union of rows [0..i]."""
    out = np.empty_like(sorted_mbrs)
    np.minimum.accumulate(sorted_mbrs[:, :3], axis=0, out=out[:, :3])
    np.maximum.accumulate(sorted_mbrs[:, 3:], axis=0, out=out[:, 3:])
    return out


def _box_cost(boxes: np.ndarray) -> np.ndarray:
    """Cost of candidate boxes: surface area (robust to flat boxes)."""
    ext = np.maximum(boxes[..., 3:] - boxes[..., :3], 0.0)
    a, b, c = ext[..., 0], ext[..., 1], ext[..., 2]
    return a * b + b * c + c * a


def tgs_groups(mbrs: np.ndarray, capacity: int) -> list:
    """Partition elements into TGS groups of at most *capacity* elements.

    Returns a list of index arrays into *mbrs*; every element appears in
    exactly one group.
    """
    mbrs = np.asarray(mbrs, dtype=np.float64)
    if mbrs.ndim != 2 or mbrs.shape[1] != 6:
        raise ValueError(f"expected (N, 6) MBRs, got {mbrs.shape}")
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    groups: list = []
    if len(mbrs) == 0:
        return groups

    # Precompute the six sort keys: lower and upper corner per dimension.
    sort_keys = [mbrs[:, c] for c in range(6)]

    stack = [np.arange(len(mbrs), dtype=np.int64)]
    while stack:
        idx = stack.pop()
        if len(idx) <= capacity:
            groups.append(idx)
            continue

        # Split positions are multiples of the granularity so both halves
        # pack into whole pages.
        granularity = capacity
        n_slots = math.ceil(len(idx) / granularity)
        best = None  # (cost, ordered_idx, split_at)
        for key_col in range(6):
            order = idx[np.argsort(sort_keys[key_col][idx], kind="stable")]
            boxes = mbrs[order]
            prefix = _cumulative_union(boxes)
            suffix = _cumulative_union(boxes[::-1])[::-1]
            for slot in range(1, n_slots):
                cut = min(slot * granularity, len(order) - 1)
                cost = float(
                    _box_cost(prefix[cut - 1]) + _box_cost(suffix[cut])
                )
                if best is None or cost < best[0]:
                    best = (cost, order, cut)
        __, order, cut = best
        stack.append(order[:cut])
        stack.append(order[cut:])
    return groups
