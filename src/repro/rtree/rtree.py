"""Disk-backed R-Tree: structure, queries and bottom-up packing.

One R-Tree node occupies exactly one page.  Leaf pages store element
MBRs (85 per 4 K page, as in the paper's setup); internal pages store
(child pointer, child MBR) entries.  All query methods charge page reads
to the backing :class:`~repro.storage.pagestore.PageStore`, which is
what every figure of the paper measures.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque

import numpy as np

from repro.geometry.intersect import boxes_intersect_box, boxes_intersect_point
from repro.geometry.mbr import mbr_distance_to_point, mbr_union_many, validate_mbrs
from repro.storage.constants import NODE_FANOUT, OBJECT_PAGE_CAPACITY
from repro.storage.pagestore import PageStore
from repro.storage.serial import (
    decode_element_page,
    decode_node_page,
    encode_element_page,
    encode_node_page,
)

# Leaf element pages are decoded through the store's DecodedPageCache
# (PageStore.read_elements) on the query paths, so repeated visits to a
# leaf within one query cost one decode; validate() keeps the direct
# decoder since read_silent carries no accounting.


class RTree:
    """A bulkloaded, read-only R-Tree over a simulated page store.

    Instances are produced by :func:`build_rtree` (or by flushing a
    dynamic :class:`~repro.rtree.rstar.RStarTree`); they are never
    mutated afterwards, matching the paper's bulkload-only setting.

    Attributes
    ----------
    store:
        The backing page store (shared with other indexes in benchmarks).
    root_id:
        Page id of the root node page.
    height:
        Number of *node* levels; leaf element pages sit below level 1
        internal nodes, so a tree over a single leaf page has height 1.
    leaf_element_ids:
        Mapping ``leaf page id -> (N_leaf,) array`` of original data-set
        element ids, in on-page slot order.  Kept in memory: the paper
        stores bare 48-byte MBRs on pages and uses elements "as primary
        keys to retrieve further information".
    """

    def __init__(
        self,
        store: PageStore,
        root_id: int,
        height: int,
        leaf_element_ids: dict,
        element_count: int,
        leaf_category: str,
        internal_category: str,
    ):
        self.store = store
        self.root_id = root_id
        self.height = height
        self.leaf_element_ids = leaf_element_ids
        self.element_count = element_count
        self.leaf_category = leaf_category
        self.internal_category = internal_category

    # -- queries ---------------------------------------------------------

    def range_query(self, query: np.ndarray) -> np.ndarray:
        """All element ids whose MBR intersects the query box.

        Standard R-Tree descent: every node whose MBR intersects the
        query is read — with dense data many sibling MBRs overlap the
        query region, which is exactly the overlap I/O the paper
        quantifies.
        """
        query = np.asarray(query, dtype=np.float64)
        results: list = []
        queue = deque([(self.root_id, self.height)])
        while queue:
            page_id, level = queue.popleft()
            if level == 0:
                mbrs = self.store.read_elements(page_id)
                mask = boxes_intersect_box(mbrs, query)
                if mask.any():
                    results.append(self.leaf_element_ids[page_id][mask])
                continue
            child_ids, child_mbrs, _leaf = decode_node_page(self.store.read(page_id))
            mask = boxes_intersect_box(child_mbrs, query)
            for cid in child_ids[mask]:
                queue.append((int(cid), level - 1))
        if not results:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(results))

    def point_query(self, point: np.ndarray) -> np.ndarray:
        """All element ids whose MBR contains the point.

        The paper uses point queries as the overlap probe (Fig. 2): in
        an overlap-free tree the pages read equal the tree height.
        """
        point = np.asarray(point, dtype=np.float64)
        results: list = []
        queue = deque([(self.root_id, self.height)])
        while queue:
            page_id, level = queue.popleft()
            if level == 0:
                mbrs = self.store.read_elements(page_id)
                mask = boxes_intersect_point(mbrs, point)
                if mask.any():
                    results.append(self.leaf_element_ids[page_id][mask])
                continue
            child_ids, child_mbrs, _leaf = decode_node_page(self.store.read(page_id))
            mask = boxes_intersect_point(child_mbrs, point)
            for cid in child_ids[mask]:
                queue.append((int(cid), level - 1))
        if not results:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(results))

    def knn_query(
        self, point: np.ndarray, k: int, return_distances: bool = False
    ) -> np.ndarray:
        """The *k* elements nearest to *point*: classic best-first search.

        A priority queue ordered by MINDIST (distance from the point to
        a box) holds tree nodes, leaf pages and individual elements; a
        page is read only when its distance reaches the head of the
        queue, so the search provably reads the fewest pages any
        MBR-based algorithm can.  At equal distance, pages order before
        elements (an unexpanded page could still hide an equally-near
        element) and elements order by id — making ties deterministic
        and identical to the brute-force baseline's ``(distance, id)``
        order.
        """
        point = np.asarray(point, dtype=np.float64).reshape(3)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        #: Heap entries: (distance, kind, tiebreak, payload); kind 0 =
        #: page (payload: (page_id, level)), kind 1 = element (tiebreak
        #: is the element id itself, so equal-distance elements pop in
        #: id order).
        counter = itertools.count()
        heap = [(0.0, 0, next(counter), (self.root_id, self.height))]
        out_ids: list = []
        out_dists: list = []
        while heap and len(out_ids) < k:
            dist, kind, tiebreak, payload = heapq.heappop(heap)
            if kind == 1:
                out_ids.append(tiebreak)
                out_dists.append(dist)
                continue
            page_id, level = payload
            if level == 0:
                mbrs = self.store.read_elements(page_id)
                dists = mbr_distance_to_point(mbrs, point)
                for d, eid in zip(dists, self.leaf_element_ids[page_id]):
                    heapq.heappush(heap, (float(d), 1, int(eid), None))
            else:
                child_ids, child_mbrs, _leaf = decode_node_page(
                    self.store.read(page_id)
                )
                dists = mbr_distance_to_point(child_mbrs, point)
                for d, cid in zip(dists, child_ids):
                    heapq.heappush(
                        heap, (float(d), 0, next(counter), (int(cid), level - 1))
                    )
        ids = np.asarray(out_ids, dtype=np.int64)
        if return_distances:
            return ids, np.asarray(out_dists, dtype=np.float64)
        return ids

    def first_hit(self, query: np.ndarray):
        """Depth-first search for *one* leaf page holding a matching element.

        This is the paper's seed operation: "instead of having to follow
        all paths, only one single path has to be followed from the root
        of the tree to one of the leafs" (Sec. IV).  Returns
        ``(leaf_page_id, element_ids)`` of the first leaf containing an
        intersecting element, or ``None`` for an empty query — in which
        case all ambiguous paths were exhausted (the paper's "rare case
        of nearly or completely empty queries").
        """
        query = np.asarray(query, dtype=np.float64)
        stack = [(self.root_id, self.height)]
        while stack:
            page_id, level = stack.pop()
            if level == 0:
                mbrs = self.store.read_elements(page_id)
                mask = boxes_intersect_box(mbrs, query)
                if mask.any():
                    return page_id, self.leaf_element_ids[page_id][mask]
                continue
            child_ids, child_mbrs, _leaf = decode_node_page(self.store.read(page_id))
            mask = boxes_intersect_box(child_mbrs, query)
            # Push in reverse so the first intersecting child is explored
            # first (plain left-to-right DFS).
            for cid in child_ids[mask][::-1]:
                stack.append((int(cid), level - 1))
        return None

    # -- introspection -----------------------------------------------------

    def node_count(self) -> int:
        """Number of internal node pages (the paper's "non-leaf pages")."""
        count = 0
        queue = deque([(self.root_id, self.height)])
        while queue:
            page_id, level = queue.popleft()
            if level == 0:
                continue
            count += 1
            child_ids, _mbrs, _leaf = decode_node_page(self.store.read_silent(page_id))
            for cid in child_ids:
                queue.append((int(cid), level - 1))
        return count

    def leaf_count(self) -> int:
        """Number of leaf element pages."""
        return len(self.leaf_element_ids)

    def validate(self, element_mbrs: np.ndarray) -> None:
        """Structural soundness check (used by the test suite).

        Verifies: every child MBR is contained in its parent entry's MBR,
        every element appears exactly once, leaf/node capacities hold.
        """
        seen = []
        queue = deque([(self.root_id, self.height, None)])
        while queue:
            page_id, level, parent_mbr = queue.popleft()
            if level == 0:
                mbrs = decode_element_page(self.store.read_silent(page_id))
                ids = self.leaf_element_ids[page_id]
                if len(mbrs) != len(ids):
                    raise AssertionError("leaf id table out of sync with page")
                if len(mbrs) > OBJECT_PAGE_CAPACITY:
                    raise AssertionError("leaf page over capacity")
                if parent_mbr is not None and len(mbrs):
                    enclosing = mbr_union_many(mbrs)
                    if not (
                        np.all(parent_mbr[:3] <= enclosing[:3] + 1e-12)
                        and np.all(enclosing[3:] <= parent_mbr[3:] + 1e-12)
                    ):
                        raise AssertionError("leaf elements escape parent MBR")
                if not np.allclose(mbrs, element_mbrs[ids]):
                    raise AssertionError("leaf page stores wrong element MBRs")
                seen.append(ids)
                continue
            child_ids, child_mbrs, _leaf = decode_node_page(
                self.store.read_silent(page_id)
            )
            if len(child_ids) > NODE_FANOUT:
                raise AssertionError("node page over fanout")
            if parent_mbr is not None:
                if not (
                    np.all(parent_mbr[:3] <= child_mbrs[:, :3].min(axis=0) + 1e-12)
                    and np.all(
                        child_mbrs[:, 3:].max(axis=0) <= parent_mbr[3:] + 1e-12
                    )
                ):
                    raise AssertionError("child MBRs escape parent MBR")
            for cid, cmbr in zip(child_ids, child_mbrs):
                queue.append((int(cid), level - 1, cmbr))
        all_ids = np.sort(np.concatenate(seen)) if seen else np.empty(0, np.int64)
        if len(all_ids) != self.element_count or not np.array_equal(
            all_ids, np.arange(self.element_count)
        ):
            raise AssertionError("tree does not contain every element exactly once")


def pack_upper_levels(
    store: PageStore,
    child_page_ids: list,
    child_mbrs: np.ndarray,
    grouper,
    category: str,
    fanout: int = NODE_FANOUT,
) -> tuple:
    """Build internal levels bottom-up over already-written child pages.

    ``grouper(mbrs, capacity)`` returns the per-level grouping (STR
    tiles, Hilbert runs, PR-Tree priority groups, ...).  ``fanout``
    defaults to the 4 K page's 72 entries; experiments may lower it to
    depth-match the paper's much larger trees (see
    ``ExperimentConfig.node_fanout``).  Returns
    ``(root_page_id, extra_levels)``.
    """
    if not 2 <= fanout <= NODE_FANOUT:
        raise ValueError(f"fanout must be in [2, {NODE_FANOUT}], got {fanout}")
    level_ids = list(child_page_ids)
    level_mbrs = np.asarray(child_mbrs, dtype=np.float64)
    levels = 0
    leaf_flag = True  # the first packed level points at element pages
    while len(level_ids) > 1 or levels == 0:
        groups = grouper(level_mbrs, fanout)
        next_ids = []
        next_mbrs = np.empty((len(groups), 6), dtype=np.float64)
        for g, group in enumerate(groups):
            ids = np.array([level_ids[i] for i in group], dtype=np.uint64)
            mbrs = level_mbrs[group]
            page = encode_node_page(ids, mbrs, leaf_flag)
            next_ids.append(store.allocate(page, category))
            next_mbrs[g] = mbr_union_many(mbrs)
        level_ids = next_ids
        level_mbrs = next_mbrs
        levels += 1
        leaf_flag = False
    return level_ids[0], levels


def build_rtree(
    store: PageStore,
    element_mbrs: np.ndarray,
    grouper,
    leaf_category: str,
    internal_category: str,
    leaf_capacity: int = OBJECT_PAGE_CAPACITY,
    fanout: int = NODE_FANOUT,
) -> RTree:
    """Bulkload an R-Tree: group elements into leaves, pack levels above.

    ``grouper`` defines the variant (see :mod:`repro.rtree.str_bulk`,
    :mod:`repro.rtree.hilbert`, :mod:`repro.rtree.prtree`,
    :mod:`repro.rtree.tgs`); it is applied per level, as each original
    algorithm prescribes.
    """
    element_mbrs = validate_mbrs(element_mbrs)
    if len(element_mbrs) == 0:
        raise ValueError("cannot bulkload an empty data set")

    groups = grouper(element_mbrs, leaf_capacity)
    leaf_ids = []
    leaf_mbrs = np.empty((len(groups), 6), dtype=np.float64)
    leaf_element_ids = {}
    for g, group in enumerate(groups):
        mbrs = element_mbrs[group]
        page_id = store.allocate(encode_element_page(mbrs), leaf_category)
        leaf_ids.append(page_id)
        leaf_element_ids[page_id] = np.asarray(group, dtype=np.int64)
        leaf_mbrs[g] = mbr_union_many(mbrs)

    root_id, levels = pack_upper_levels(
        store, leaf_ids, leaf_mbrs, grouper, internal_category, fanout
    )
    return RTree(
        store,
        root_id,
        levels,
        leaf_element_ids,
        len(element_mbrs),
        leaf_category,
        internal_category,
    )
