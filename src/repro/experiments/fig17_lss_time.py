"""Fig. 17 — Execution time of the LSS benchmark (mirrors Fig. 16)."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.usecase import execution_time

EXPERIMENT_ID = "fig17"
TITLE = "Execution time for the LSS benchmark (simulated I/O + CPU)"


def run(config: ExperimentConfig):
    return execution_time(config, "lss_run", EXPERIMENT_ID, TITLE)
