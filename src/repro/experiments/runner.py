"""Experiment CLI: regenerate any paper figure/table as a printed table.

Usage::

    python -m repro.experiments                # every experiment, default scale
    python -m repro.experiments --exp fig12    # one figure
    python -m repro.experiments --small        # CI-sized configuration
    python -m repro.experiments --full         # the 1/1000-scale sweep
    python -m repro.experiments --csv out/     # also dump CSVs
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments import registry
from repro.experiments.config import (
    DEFAULT_CONFIG,
    DEPTH_MATCHED_CONFIG,
    FULL_CONFIG,
    SMALL_CONFIG,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the FLAT paper's figures and tables.",
    )
    parser.add_argument(
        "--exp",
        action="append",
        choices=sorted(registry.EXPERIMENTS),
        help="experiment id(s) to run; default: all",
    )
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--small", action="store_true", help="CI-sized configuration (seconds)"
    )
    scale.add_argument(
        "--full", action="store_true", help="1/1000-scale paper sweep (slow)"
    )
    scale.add_argument(
        "--depth-matched",
        action="store_true",
        help="default scale with paper-depth trees (internal fanout 9)",
    )
    parser.add_argument(
        "--csv", metavar="DIR", help="also write one CSV per experiment into DIR"
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for experiment_id, (title, _fn) in sorted(registry.EXPERIMENTS.items()):
            print(f"{experiment_id:10s} {title}")
        return 0

    if args.small:
        config = SMALL_CONFIG
    elif args.full:
        config = FULL_CONFIG
    elif args.depth_matched:
        config = DEPTH_MATCHED_CONFIG
    else:
        config = DEFAULT_CONFIG

    ids = args.exp or sorted(registry.EXPERIMENTS)
    failures = 0
    for experiment_id in ids:
        _title, fn = registry.EXPERIMENTS[experiment_id]
        result = fn(config)
        print(result.table())
        if not result.all_checks_pass:
            failures += 1
        if args.csv:
            os.makedirs(args.csv, exist_ok=True)
            path = os.path.join(args.csv, f"{experiment_id}.csv")
            with open(path, "w") as fh:
                fh.write(result.csv())
            print(f"wrote {path}\n")
    if failures:
        print(f"{failures} experiment(s) had failing shape checks", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
