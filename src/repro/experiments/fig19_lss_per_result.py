"""Fig. 19 — Page reads per result element, LSS benchmark.

Paper: as in Fig. 15, FLAT's per-result cost falls with density while
the R-Trees' grows — but the gap is smaller than for SN because the
R-Trees' overlap overhead amortizes over the big result sets.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.usecase import per_result

EXPERIMENT_ID = "fig19"
TITLE = "Pages read per result element for the LSS benchmark"


def run(config: ExperimentConfig):
    return per_result(config, "lss_run", EXPERIMENT_ID, TITLE)
