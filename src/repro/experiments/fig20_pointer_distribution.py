"""Fig. 20 — Distribution of neighbor pointers per partition vs density.

Paper: as density grows the distribution sharpens but its median stays
put (converging around 30 pointers) — metadata size therefore grows
only linearly with element count.
"""

from __future__ import annotations

from repro.analysis.histograms import PointerDistribution
from repro.experiments.base import ExperimentResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import FLAT, cached_sweep

EXPERIMENT_ID = "fig20"
TITLE = "Neighbor pointers per partition across the density sweep"


def run(config: ExperimentConfig) -> ExperimentResult:
    sweep = cached_sweep(config)
    headers = ["elements", "partitions", "mean", "median", "p25", "p75", "max"]
    rows = []
    medians = []
    for n, obs in sweep.series(FLAT):
        dist = PointerDistribution.from_counts(obs.pointer_counts)
        medians.append(dist.median)
        rows.append(
            [n, dist.count, dist.mean, dist.median, dist.p25, dist.p75, dist.max]
        )

    # The paper's claim is that the median converges (near 30) rather
    # than growing with density; we check convergence of the upper half
    # of the sweep and that the final median is in the paper's regime.
    upper = medians[len(medians) // 2 :]
    spread = (max(upper) - min(upper)) / max(max(upper), 1.0)
    checks = {
        "median converges over the upper half of the sweep (<30% spread)": (
            spread < 0.3
        ),
        "final median in the paper's regime (15..45)": 15 <= medians[-1] <= 45,
        "partition count grows with density": rows[-1][1] > rows[0][1],
    }
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        headers,
        rows,
        notes=(
            "Paper: the median stays constant (converging near 30) as the "
            "data set densifies, so metadata grows only linearly."
        ),
        checks=checks,
    )
