"""Fig. 18 — LSS data-retrieved breakdown: FLAT vs PR-Tree.

Paper: for large queries the payload (leaf/object) share dominates for
both approaches, but the PR-Tree's non-leaf overhead is still up to 3x
FLAT's seed+metadata overhead at the densest step.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.usecase import breakdown

EXPERIMENT_ID = "fig18"
TITLE = "Breakdown of data retrieved for the LSS benchmark (MB)"


def run(config: ExperimentConfig):
    return breakdown(config, "lss_run", EXPERIMENT_ID, TITLE)
