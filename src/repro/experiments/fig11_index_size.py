"""Fig. 11 — Index size breakdown vs density, FLAT vs PR-Tree.

Paper: FLAT's object pages equal the R-Tree's leaf pages byte for byte
(same 85-element packing); FLAT is bigger in total only by the metadata
stored in the seed tree; both grow linearly with element count.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import FLAT, cached_sweep

EXPERIMENT_ID = "fig11"
TITLE = "Index size for data sets of increasing density (MB)"


def run(config: ExperimentConfig) -> ExperimentResult:
    # Size figures always report the honest 4 K page layout, even when
    # the query figures run depth-matched (lower fanout) trees.
    from repro.storage.constants import NODE_FANOUT

    config = config.with_overrides(node_fanout=NODE_FANOUT)
    sweep = cached_sweep(config)
    headers = [
        "elements",
        "flat object MB",
        "flat seed+metadata MB",
        "flat total MB",
        "prtree leaf MB",
        "prtree non-leaf MB",
        "prtree total MB",
    ]
    rows = []
    for step in sweep.steps:
        flat_obs = step.indexes[FLAT]
        pr_obs = step.indexes["prtree"]
        rows.append(
            [
                step.n_elements,
                flat_obs.payload_bytes() / 1e6,
                flat_obs.hierarchy_bytes() / 1e6,
                flat_obs.total_bytes / 1e6,
                pr_obs.payload_bytes() / 1e6,
                pr_obs.hierarchy_bytes() / 1e6,
                pr_obs.total_bytes / 1e6,
            ]
        )

    first, last = rows[0], rows[-1]
    n_ratio = last[0] / first[0]
    checks = {
        "flat hierarchy (seed+metadata) exceeds prtree non-leaf bytes": all(
            row[2] > row[5] for row in rows
        ),
        "flat total at least 90% of prtree total": all(
            row[3] >= 0.90 * row[6] for row in rows
        ),
        "object pages track prtree leaf pages closely (<15%)": all(
            abs(row[1] - row[4]) / row[4] < 0.15 for row in rows
        ),
        "flat size grows ~linearly with elements": 0.5 * n_ratio
        <= last[3] / first[3]
        <= 1.5 * n_ratio,
    }
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        headers,
        rows,
        notes=(
            "Paper: total index size depends predominantly on the element "
            "count; FLAT's overhead is the metadata in the seed tree.  In "
            "this implementation the PR-Tree's priority leaves pack a few "
            "percent looser than STR tiles, which offsets part of FLAT's "
            "metadata overhead in the totals."
        ),
        checks=checks,
    )
