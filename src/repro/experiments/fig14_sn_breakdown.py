"""Fig. 14 — SN data-retrieved breakdown: FLAT vs PR-Tree.

Paper: FLAT's seed-tree reads stay constant while metadata+object reads
track the result size; the PR-Tree's non-leaf/leaf ratio grows from 2
to 2.8 with density — the overlap diagnosis.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.usecase import breakdown

EXPERIMENT_ID = "fig14"
TITLE = "Breakdown of data retrieved for the SN benchmark (MB)"


def run(config: ExperimentConfig):
    return breakdown(config, "sn_run", EXPERIMENT_ID, TITLE)
