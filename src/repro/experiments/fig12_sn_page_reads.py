"""Fig. 12 — Total page reads executing the SN benchmark.

Paper: FLAT reads up to 8x fewer pages than the PR-Tree (the best
R-Tree) at 450 M elements; STR beats Hilbert, PR-Tree beats both.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.usecase import total_page_reads

EXPERIMENT_ID = "fig12"
TITLE = "Total page reads executing the SN benchmark"


def run(config: ExperimentConfig):
    return total_page_reads(config, "sn_run", EXPERIMENT_ID, TITLE)
