"""Registry mapping experiment ids to their run functions."""

from __future__ import annotations

from repro.experiments import (
    fig02_point_overlap,
    fig03_sn_per_result_prtree,
    fig04_lss_bytes,
    fig10_build_time,
    fig11_index_size,
    fig12_sn_page_reads,
    fig13_sn_time,
    fig14_sn_breakdown,
    fig15_sn_per_result,
    fig16_lss_page_reads,
    fig17_lss_time,
    fig18_lss_breakdown,
    fig19_lss_per_result,
    fig20_pointer_distribution,
    fig21_partition_size,
    fig22_other_datasets_index,
    fig23_other_datasets_queries,
    sec7e2_overheads,
    sec7e_element_effects,
)

#: experiment id -> (title, run function taking an ExperimentConfig).
EXPERIMENTS = {
    fig02_point_overlap.EXPERIMENT_ID: (
        fig02_point_overlap.TITLE,
        fig02_point_overlap.run,
    ),
    fig03_sn_per_result_prtree.EXPERIMENT_ID: (
        fig03_sn_per_result_prtree.TITLE,
        fig03_sn_per_result_prtree.run,
    ),
    fig04_lss_bytes.EXPERIMENT_ID: (fig04_lss_bytes.TITLE, fig04_lss_bytes.run),
    fig10_build_time.EXPERIMENT_ID: (fig10_build_time.TITLE, fig10_build_time.run),
    fig11_index_size.EXPERIMENT_ID: (fig11_index_size.TITLE, fig11_index_size.run),
    fig12_sn_page_reads.EXPERIMENT_ID: (
        fig12_sn_page_reads.TITLE,
        fig12_sn_page_reads.run,
    ),
    fig13_sn_time.EXPERIMENT_ID: (fig13_sn_time.TITLE, fig13_sn_time.run),
    fig14_sn_breakdown.EXPERIMENT_ID: (
        fig14_sn_breakdown.TITLE,
        fig14_sn_breakdown.run,
    ),
    fig15_sn_per_result.EXPERIMENT_ID: (
        fig15_sn_per_result.TITLE,
        fig15_sn_per_result.run,
    ),
    fig16_lss_page_reads.EXPERIMENT_ID: (
        fig16_lss_page_reads.TITLE,
        fig16_lss_page_reads.run,
    ),
    fig17_lss_time.EXPERIMENT_ID: (fig17_lss_time.TITLE, fig17_lss_time.run),
    fig18_lss_breakdown.EXPERIMENT_ID: (
        fig18_lss_breakdown.TITLE,
        fig18_lss_breakdown.run,
    ),
    fig19_lss_per_result.EXPERIMENT_ID: (
        fig19_lss_per_result.TITLE,
        fig19_lss_per_result.run,
    ),
    fig20_pointer_distribution.EXPERIMENT_ID: (
        fig20_pointer_distribution.TITLE,
        fig20_pointer_distribution.run,
    ),
    fig21_partition_size.EXPERIMENT_ID: (
        fig21_partition_size.TITLE,
        fig21_partition_size.run,
    ),
    sec7e_element_effects.EXPERIMENT_ID_VOLUME: (
        sec7e_element_effects.TITLE_VOLUME,
        sec7e_element_effects.run_element_volume,
    ),
    sec7e_element_effects.EXPERIMENT_ID_ASPECT: (
        sec7e_element_effects.TITLE_ASPECT,
        sec7e_element_effects.run_aspect_ratio,
    ),
    sec7e2_overheads.EXPERIMENT_ID: (sec7e2_overheads.TITLE, sec7e2_overheads.run),
    fig22_other_datasets_index.EXPERIMENT_ID: (
        fig22_other_datasets_index.TITLE,
        fig22_other_datasets_index.run,
    ),
    fig23_other_datasets_queries.EXPERIMENT_ID: (
        fig23_other_datasets_queries.TITLE,
        fig23_other_datasets_queries.run,
    ),
}
