"""Fig. 10 — Index build time vs data-set size.

Paper ordering: Hilbert fastest, then STR, FLAT slightly slower than
STR (it adds the neighbor-finding pass), PR-Tree much slower (sorts the
data at least six times).  FLAT's trend is linear.  We reproduce the
same wall-clock measurement on our bulkloaders, with FLAT split into
its partitioning and finding-neighbors phases exactly as the figure.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import FLAT, cached_sweep

EXPERIMENT_ID = "fig10"
TITLE = "Index build time for data sets of increasing density (seconds)"


def run(config: ExperimentConfig) -> ExperimentResult:
    # Build/size figures always report the honest 4 K page layout, even
    # when the query figures run depth-matched (lower fanout) trees.
    from repro.storage.constants import NODE_FANOUT

    config = config.with_overrides(node_fanout=NODE_FANOUT)
    sweep = cached_sweep(config)
    variants = list(config.variants)
    headers = (
        ["elements"]
        + [f"{v} s" for v in variants]
        + ["flat s", "flat partitioning s", "flat neighbors s"]
    )
    rows = []
    for step in sweep.steps:
        row = [step.n_elements]
        for v in variants:
            row.append(step.indexes[v].build_seconds)
        flat_obs = step.indexes[FLAT]
        row.append(flat_obs.build_seconds)
        row.append(flat_obs.build_breakdown["partitioning"])
        row.append(flat_obs.build_breakdown["finding_neighbors"])
        rows.append(row)

    first, last = rows[0], rows[-1]
    col = {v: 1 + i for i, v in enumerate(variants)}
    flat_col = 1 + len(variants)
    n_ratio = last[0] / first[0]
    checks = {
        "flat costs more than str (the neighbor-finding pass)": last[flat_col]
        > last[col["str"]],
        "flat build trend is ~linear in elements": last[flat_col] / first[flat_col]
        < 3.0 * n_ratio,
        "flat breakdown sums below total": last[flat_col]
        >= last[flat_col + 1] + last[flat_col + 2] - 1e-9,
    }
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        headers,
        rows,
        notes=(
            "Paper: Hilbert < STR <= FLAT << PR-Tree (their PR-Tree sorts "
            "the data at least six times).  Our PR-Tree bulkloader is a "
            "vectorized argpartition implementation, so it does not show "
            "the paper's slowdown; FLAT's extra cost over STR — the "
            "neighbor-finding pass — and its linear trend reproduce."
        ),
        checks=checks,
    )
