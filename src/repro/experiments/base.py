"""Common result type for all figure/table reproduction experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import format_table, to_csv


@dataclass
class ExperimentResult:
    """One regenerated paper figure/table.

    ``checks`` maps a shape-assertion name (e.g. "flat beats every
    R-Tree at the densest step") to whether it held in this run —
    the reproduction criteria from DESIGN.md §4.
    """

    experiment_id: str
    title: str
    headers: list
    rows: list
    notes: str = ""
    checks: dict = field(default_factory=dict)

    def table(self) -> str:
        """Human-readable table, as printed by the CLI."""
        text = format_table(
            self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}"
        )
        if self.notes:
            text += f"\n{self.notes}\n"
        if self.checks:
            text += "shape checks:\n"
            for name, ok in self.checks.items():
                text += f"  [{'ok' if ok else 'FAIL'}] {name}\n"
        return text

    def csv(self) -> str:
        return to_csv(self.headers, self.rows)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())
