"""Fig. 22 (table) — Index size and build time on the other data sets.

Paper: FLAT requires modestly more space (the metadata) and more build
time (neighbor finding) than the PR-Tree's *size*, while building much
faster than the PR-Tree on every data set... precisely: FLAT's index is
slightly larger, and FLAT builds considerably faster than the PR-Tree
(e.g. Lucy: 2954 s vs 21868 s).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.other_datasets import cached_datasets

EXPERIMENT_ID = "fig22"
TITLE = "Index size and building time for the Sec. VIII data sets"


def run(config: ExperimentConfig) -> ExperimentResult:
    # Size/build tables always use the honest 4 K page layout.
    from repro.storage.constants import NODE_FANOUT

    observations = cached_datasets(config.with_overrides(node_fanout=NODE_FANOUT))
    headers = [
        "dataset",
        "elements",
        "flat size MB",
        "prtree size MB",
        "flat build s",
        "prtree build s",
    ]
    rows = [
        [
            obs.name,
            obs.n_elements,
            obs.flat_size_bytes / 1e6,
            obs.prtree_size_bytes / 1e6,
            obs.flat_build_seconds,
            obs.prtree_build_seconds,
        ]
        for obs in observations
    ]
    checks = {
        "flat total at least 95% of prtree total on every data set": all(
            obs.flat_size_bytes >= 0.95 * obs.prtree_size_bytes
            for obs in observations
        ),
        "flat size overhead is modest (<25%)": all(
            obs.flat_size_bytes < 1.25 * obs.prtree_size_bytes
            for obs in observations
        ),
        "flat build within an order of magnitude of the prtree": all(
            obs.flat_build_seconds < 10.0 * max(obs.prtree_build_seconds, 1e-6)
            for obs in observations
        ),
    }
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        headers,
        rows,
        notes=(
            "Paper (Fig. 22): FLAT needs ~5% more space on every data set "
            "and builds several times faster than the PR-Tree.  The size "
            "relation reproduces; build-time ordering depends on the "
            "PR-Tree implementation (ours is vectorized, theirs sorts the "
            "data six times), so only a sanity bound is checked."
        ),
        checks=checks,
    )
