"""The shared density-sweep engine behind Figs. 2–20.

One sweep builds, per density step, every R-Tree variant plus FLAT on
the same microcircuit, then runs the point-query probe and the SN and
LSS benchmarks on each.  All figure modules are thin views over the
sweep result; the sweep itself is memoized per configuration so that
regenerating several figures costs one pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core import FLATIndex
from repro.data.microcircuit import build_microcircuit
from repro.query.benchmarks import BenchmarkSpec
from repro.query.executor import QueryRunResult, run_point_queries, run_queries
from repro.query.workload import random_points
from repro.rtree import bulkload_rtree
from repro.storage.pagestore import PageStore
from repro.storage.stats import (
    CATEGORY_METADATA,
    CATEGORY_OBJECT,
    CATEGORY_RTREE_INTERNAL,
    CATEGORY_RTREE_LEAF,
    CATEGORY_SEED_INTERNAL,
)
from repro.experiments.config import ExperimentConfig

#: Key under which FLAT appears next to the R-Tree variant names.
FLAT = "flat"


@dataclass
class IndexObservation:
    """Everything measured for one index at one density step."""

    name: str
    build_seconds: float
    #: FLAT only: Fig. 10's phase breakdown.
    build_breakdown: dict = field(default_factory=dict)
    bytes_by_category: dict = field(default_factory=dict)
    height: int = 0
    point_run: QueryRunResult | None = None
    sn_run: QueryRunResult | None = None
    lss_run: QueryRunResult | None = None
    #: FLAT only: per-partition neighbor pointer counts (Fig. 20).
    pointer_counts: np.ndarray | None = None

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_category.values())

    def payload_bytes(self) -> int:
        """Leaf/object page bytes."""
        return self.bytes_by_category.get(
            CATEGORY_RTREE_LEAF, 0
        ) + self.bytes_by_category.get(CATEGORY_OBJECT, 0)

    def hierarchy_bytes(self) -> int:
        """Non-leaf / seed+metadata bytes."""
        return (
            self.bytes_by_category.get(CATEGORY_RTREE_INTERNAL, 0)
            + self.bytes_by_category.get(CATEGORY_SEED_INTERNAL, 0)
            + self.bytes_by_category.get(CATEGORY_METADATA, 0)
        )


@dataclass
class DensityObservation:
    """All indexes measured at one density step."""

    n_elements: int
    indexes: dict


@dataclass
class SweepResult:
    """The full density sweep."""

    config: ExperimentConfig
    steps: list

    def series(self, index_name: str):
        """Yield ``(n_elements, IndexObservation)`` for one index."""
        for step in self.steps:
            yield step.n_elements, step.indexes[index_name]

    @property
    def index_names(self):
        return list(self.steps[0].indexes)


def _measure_index(name, index, store, config, space, sn_spec, lss_spec, seed):
    points = random_points(space, config.point_query_count, seed=seed + 101)
    observation = IndexObservation(
        name=name,
        build_seconds=0.0,
        bytes_by_category={
            c: store.pages_in(c) * 4096
            for c in (
                CATEGORY_OBJECT,
                CATEGORY_METADATA,
                CATEGORY_SEED_INTERNAL,
                CATEGORY_RTREE_LEAF,
                CATEGORY_RTREE_INTERNAL,
            )
            if store.pages_in(c)
        },
    )
    observation.point_run = run_point_queries(index, store, points, name)
    observation.sn_run = run_queries(
        index, store, sn_spec.queries(space, seed=seed + 202), name
    )
    observation.lss_run = run_queries(
        index, store, lss_spec.queries(space, seed=seed + 303), name
    )
    return observation


def run_density_sweep(config: ExperimentConfig) -> SweepResult:
    """Build and benchmark every index at every density step."""
    sn_spec = BenchmarkSpec("SN", config.sn_fraction, config.query_count)
    lss_spec = BenchmarkSpec("LSS", config.lss_fraction, config.query_count)

    steps = []
    for step_index, n_elements in enumerate(config.density_steps):
        seed = config.seed + step_index
        circuit = build_microcircuit(
            n_elements, side=config.volume_side, seed=seed
        )
        mbrs = circuit.mbrs()
        space = circuit.space_mbr
        indexes = {}

        for variant in config.variants:
            store = PageStore()
            t0 = time.perf_counter()
            tree = bulkload_rtree(store, mbrs, variant, fanout=config.node_fanout)
            build_seconds = time.perf_counter() - t0
            obs = _measure_index(
                variant, tree, store, config, space, sn_spec, lss_spec, seed
            )
            obs.build_seconds = build_seconds
            obs.height = tree.height + 1  # pages on a root-to-leaf path
            indexes[variant] = obs

        store = PageStore()
        t0 = time.perf_counter()
        flat = FLATIndex.build(
            store, mbrs, space_mbr=space, seed_fanout=config.node_fanout
        )
        build_seconds = time.perf_counter() - t0
        obs = _measure_index(
            FLAT, flat, store, config, space, sn_spec, lss_spec, seed
        )
        obs.build_seconds = build_seconds
        obs.height = flat.seed_index.height + 1
        obs.build_breakdown = {
            "partitioning": flat.build_report.partitioning_seconds,
            "finding_neighbors": flat.build_report.finding_neighbors_seconds,
            "packing": flat.build_report.packing_seconds,
        }
        obs.pointer_counts = flat.build_report.pointer_counts
        indexes[FLAT] = obs

        steps.append(DensityObservation(n_elements=n_elements, indexes=indexes))
    return SweepResult(config=config, steps=steps)


_SWEEP_CACHE: dict = {}


def cached_sweep(config: ExperimentConfig) -> SweepResult:
    """Memoized :func:`run_density_sweep` (figures share one sweep)."""
    key = (
        config.density_steps,
        config.volume_side,
        config.sn_fraction,
        config.lss_fraction,
        config.query_count,
        config.point_query_count,
        config.variants,
        config.node_fanout,
        config.seed,
    )
    if key not in _SWEEP_CACHE:
        _SWEEP_CACHE[key] = run_density_sweep(config)
    return _SWEEP_CACHE[key]


def clear_sweep_cache() -> None:
    """Drop memoized sweeps (tests use this to control memory)."""
    _SWEEP_CACHE.clear()
