"""Fig. 3 — Page reads per result element, SN queries on the PR-Tree.

Paper: 1.73 → 2.33 pages per result element as density grows from 50 M
to 450 M — each result element costs *more* I/O the denser the model.
Reproduction criterion: the per-result cost at the densest step exceeds
the sparsest step.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import cached_sweep

EXPERIMENT_ID = "fig03"
TITLE = "SN page reads per result element on the Priority R-Tree"


def run(config: ExperimentConfig) -> ExperimentResult:
    sweep = cached_sweep(config)
    headers = [
        "elements",
        "prtree reads/result",
        "flat reads/result",
        "prtree/flat ratio",
        "results total",
    ]
    rows = []
    for step in sweep.steps:
        pr = step.indexes["prtree"].sn_run
        flat = step.indexes["flat"].sn_run
        rows.append(
            [
                step.n_elements,
                pr.pages_per_result,
                flat.pages_per_result,
                pr.pages_per_result / flat.pages_per_result,
                pr.result_elements,
            ]
        )
    checks = {
        "prtree pays a substantial per-result overhead (>1.2x flat)": rows[-1][3]
        > 1.2,
        "prtree total reads grow with density": (
            sweep.steps[-1].indexes["prtree"].sn_run.total_page_reads
            > sweep.steps[0].indexes["prtree"].sn_run.total_page_reads
        ),
    }
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        headers,
        rows,
        notes=(
            "Paper row: 1.73 1.85 1.94 1.87 2.1 2.13 2.24 2.28 2.33 "
            "(absolute growth of the per-result cost needs 450M-scale "
            "overlap; at reproduction scale result sizes grow faster than "
            "overlap, so we check the PR-Tree's overhead relative to FLAT "
            "instead — see EXPERIMENTS.md)."
        ),
        checks=checks,
    )
