"""Shared machinery for the Sec. VIII "other data sets" tables.

Builds FLAT and the PR-Tree on the five named data sets (n-body
clusters and surface meshes) once per configuration and derives both
Fig. 22 (index size / build time) and Fig. 23 (query time / speed-up).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core import FLATIndex
from repro.data.registry import DATASET_ORDER, dataset_mbrs
from repro.geometry.mbr import mbr_union_many
from repro.query.benchmarks import BenchmarkSpec
from repro.query.executor import QueryRunResult, run_queries
from repro.rtree import bulkload_rtree
from repro.storage.pagestore import PageStore
from repro.experiments.config import ExperimentConfig

#: Scaled query fractions for the "small" / "large volume queries" sets
#: (the paper uses the SN and LSS fractions on these data sets too).
SMALL_QUERY_FRACTION = 5e-6
LARGE_QUERY_FRACTION = 5e-3


@dataclass
class DatasetObservation:
    """FLAT-vs-PR-Tree measurements on one Sec. VIII data set."""

    name: str
    n_elements: int
    flat_size_bytes: int
    prtree_size_bytes: int
    flat_build_seconds: float
    prtree_build_seconds: float
    flat_small: QueryRunResult
    prtree_small: QueryRunResult
    flat_large: QueryRunResult
    prtree_large: QueryRunResult


def measure_dataset(
    name: str, config: ExperimentConfig, query_count: int | None = None
) -> DatasetObservation:
    """Build both indexes on the named data set and run both query sets."""
    mbrs = dataset_mbrs(name, scale=config.dataset_scale, seed=config.seed)
    space = mbr_union_many(mbrs)
    count = query_count or config.query_count
    small_spec = BenchmarkSpec("small", SMALL_QUERY_FRACTION, count)
    large_spec = BenchmarkSpec("large", LARGE_QUERY_FRACTION, count)
    small_queries = small_spec.queries(space, seed=config.seed + 11)
    large_queries = large_spec.queries(space, seed=config.seed + 12)

    flat_store = PageStore()
    t0 = time.perf_counter()
    flat = FLATIndex.build(
        flat_store, mbrs, space_mbr=space, seed_fanout=config.node_fanout
    )
    flat_build = time.perf_counter() - t0

    pr_store = PageStore()
    t0 = time.perf_counter()
    prtree = bulkload_rtree(pr_store, mbrs, "prtree", fanout=config.node_fanout)
    pr_build = time.perf_counter() - t0

    return DatasetObservation(
        name=name,
        n_elements=len(mbrs),
        flat_size_bytes=flat_store.size_bytes,
        prtree_size_bytes=pr_store.size_bytes,
        flat_build_seconds=flat_build,
        prtree_build_seconds=pr_build,
        flat_small=run_queries(flat, flat_store, small_queries, "flat"),
        prtree_small=run_queries(prtree, pr_store, small_queries, "prtree"),
        flat_large=run_queries(flat, flat_store, large_queries, "flat"),
        prtree_large=run_queries(prtree, pr_store, large_queries, "prtree"),
    )


_DATASET_CACHE: dict = {}


def cached_datasets(config: ExperimentConfig) -> list:
    """Memoized measurements for all five data sets."""
    key = (config.dataset_scale, config.query_count, config.node_fanout, config.seed)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = [
            measure_dataset(name, config) for name in DATASET_ORDER
        ]
    return _DATASET_CACHE[key]


def clear_dataset_cache() -> None:
    _DATASET_CACHE.clear()
