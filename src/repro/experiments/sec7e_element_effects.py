"""Sec. VII-E.1 (text experiments) — element volume and aspect ratio.

Paper, experiment 1: uniform elements, volume increased 5x at fixed
positions => ~10 % more pointers per partition.
Paper, experiment 2: constant 18 µm^3 volume, per-axis lengths random
in [5, 35] µm normalized to equal volume => the average pointer count
grows roughly linearly across the aspect range (17.4 -> 22.9 there).
"""

from __future__ import annotations

import numpy as np

from repro.core.neighbors import compute_neighbors, neighbor_counts
from repro.core.partition import compute_partitions
from repro.data.uniform import (
    SYNTHETIC_VOLUME_SIDE_UM,
    uniform_aspect_boxes,
    uniform_cubes,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.config import ExperimentConfig

EXPERIMENT_ID_VOLUME = "sec7e-vol"
EXPERIMENT_ID_ASPECT = "sec7e-ar"
TITLE_VOLUME = "Average neighbor pointers vs element volume (Sec. VII-E)"
TITLE_ASPECT = "Average neighbor pointers vs element aspect ratio (Sec. VII-E)"


def _avg_pointers(mbrs: np.ndarray) -> float:
    partitions = compute_partitions(mbrs, 85)
    compute_neighbors(partitions)
    return float(neighbor_counts(partitions).mean())


def run_element_volume(config: ExperimentConfig) -> ExperimentResult:
    # The pointer statistics need enough partitions to be stable; use at
    # least 20k elements regardless of the sweep scale (cheap: no queries).
    n = max(20_000, max(config.density_steps) // 2)
    base_edge = 2.6
    # Volume factors 1x..5x <=> edge factors cbrt(1)..cbrt(5).
    volume_factors = (1.0, 2.0, 3.0, 4.0, 5.0)
    headers = ["volume factor", "element edge", "avg neighbor pointers"]
    rows = []
    for factor in volume_factors:
        edge = base_edge * factor ** (1.0 / 3.0)
        mbrs = uniform_cubes(n, edge=edge, side=SYNTHETIC_VOLUME_SIDE_UM,
                             seed=config.seed)
        rows.append([factor, edge, _avg_pointers(mbrs)])

    increase = rows[-1][2] / rows[0][2] - 1.0
    checks = {
        "5x element volume increases pointers": rows[-1][2] > rows[0][2],
        "increase is modest (<35%), as the paper's ~10%": increase < 0.35,
    }
    return ExperimentResult(
        EXPERIMENT_ID_VOLUME,
        TITLE_VOLUME,
        headers,
        rows,
        notes="Paper: increasing object volume 5x incurs ~10% more pointers.",
        checks=checks,
    )


def run_aspect_ratio(config: ExperimentConfig) -> ExperimentResult:
    n = max(20_000, max(config.density_steps) // 2)
    # Sweep the aspect range from cubes to the paper's [5, 35] µm spread;
    # element volume constant at 18 µm^3.
    half_spreads = (0.0, 3.75, 7.5, 11.25, 15.0)
    center = 20.0
    headers = ["length range", "max/min edge ratio", "avg neighbor pointers"]
    rows = []
    for spread in half_spreads:
        lo, hi = center - spread, center + spread
        if spread == 0.0:
            # Degenerate range: cubes whose edge gives the 18 µm^3 volume.
            edge = 18.0 ** (1.0 / 3.0)
            mbrs = uniform_cubes(n, edge=edge, side=SYNTHETIC_VOLUME_SIDE_UM,
                                 seed=config.seed)
        else:
            mbrs = uniform_aspect_boxes(
                n,
                target_volume=18.0,
                length_range=(lo, hi),
                side=SYNTHETIC_VOLUME_SIDE_UM,
                seed=config.seed,
            )
        rows.append([f"[{lo:g}, {hi:g}]", hi / max(lo, 1e-9), _avg_pointers(mbrs)])

    pointer_series = [row[2] for row in rows]
    checks = {
        "pointers grow with aspect spread": pointer_series[-1] > pointer_series[0],
        "growth is roughly monotone": sum(
            1 for a, b in zip(pointer_series, pointer_series[1:]) if b + 0.3 < a
        )
        <= 1,
    }
    return ExperimentResult(
        EXPERIMENT_ID_ASPECT,
        TITLE_ASPECT,
        headers,
        rows,
        notes=(
            "Paper: across the full aspect range the average pointer count "
            "rises linearly from 17.4 to 22.9."
        ),
        checks=checks,
    )
