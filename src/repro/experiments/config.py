"""Shared experiment configuration (scaled-down paper setup).

The paper sweeps nine densities of 50 M…450 M cylinders in a constant
285 µm-side volume.  A pure-Python reproduction runs the same nine-step
constant-volume design at 1/1000–1/2000 of the element count and scales
the query-volume *fractions* up by the corresponding factor, keeping
per-query result sizes in the paper's regime (see
:mod:`repro.query.benchmarks`).  Page geometry (4 K pages, 85 elements)
is untouched, so all per-page effects are at full fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.query.benchmarks import SCALED_LSS_FRACTION, SCALED_SN_FRACTION
from repro.rtree import PAPER_VARIANTS
from repro.storage.constants import NODE_FANOUT


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every figure-reproduction experiment."""

    #: Constant-volume density steps (element counts per step).
    density_steps: tuple = tuple(25_000 * i for i in range(1, 10))
    #: Tissue cube side in µm.  The paper uses a 285 µm cube for
    #: 50M-450M cylinders; at 1/2000 of the element count the side is
    #: scaled so that the *volumetric density regime* (element MBR size
    #: relative to the STR tile size, which drives both R-Tree overlap
    #: and FLAT's partition stretching) spans the same range across the
    #: sweep.
    volume_side: float = 42.0
    #: Internal-node fanout used for every tree (R-Tree internal nodes
    #: and FLAT's seed tree alike).  The default is the full 4 K page
    #: fanout (72).  The paper's trees hold 5.3M leaves and are 5-6
    #: levels deep; at 1/1000 element scale a fanout-72 tree collapses
    #: to 3 levels and hierarchy effects nearly vanish.  Setting
    #: ``node_fanout ~ 9`` restores the paper's tree depth at reduced
    #: scale (see the depth-matched configuration and the fanout
    #: ablation benchmark).
    node_fanout: int = NODE_FANOUT
    #: SN / LSS query-volume fractions (scaled; see module docstring).
    sn_fraction: float = SCALED_SN_FRACTION
    lss_fraction: float = SCALED_LSS_FRACTION
    #: Queries per benchmark (the paper runs 200).
    query_count: int = 200
    #: Point queries for the Fig. 2 overlap probe.
    point_query_count: int = 200
    #: R-Tree variants to compare against FLAT.
    variants: tuple = PAPER_VARIANTS
    #: Scale of the Sec. VIII data sets (1.0 -> paper millions become
    #: thousands).
    dataset_scale: float = 1.0
    #: Base RNG seed; each density step derives its own stream.
    seed: int = 7

    def __post_init__(self):
        if not self.density_steps:
            raise ValueError("density_steps must not be empty")
        if any(n <= 0 for n in self.density_steps):
            raise ValueError("density steps must be positive")
        if self.query_count <= 0 or self.point_query_count <= 0:
            raise ValueError("query counts must be positive")

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Default configuration: nine densities of 25k..225k elements — the
#: paper's design at ~1/2000 scale, runs in minutes.
DEFAULT_CONFIG = ExperimentConfig()

#: The paper's 1/1000 scale (50k..450k); slower, for final numbers.
FULL_CONFIG = ExperimentConfig(
    density_steps=tuple(50_000 * i for i in range(1, 10)),
    volume_side=52.0,
)

#: Tiny configuration used by the pytest-benchmark suite and CI: three
#: densities, fewer queries, smaller Sec. VIII data sets.  Runs
#: depth-matched (fanout 7) so the paper's tree-depth effects are
#: visible even at 9k elements; the size/build figures force the full
#: 4 K fanout internally regardless.
SMALL_CONFIG = ExperimentConfig(
    density_steps=(3_000, 6_000, 9_000),
    volume_side=15.0,
    query_count=30,
    point_query_count=30,
    dataset_scale=0.3,
    node_fanout=7,
)

#: Depth-matched variant of the default: internal fanout lowered so the
#: trees have the paper's 5-6 levels at 1/2000 element scale.  This is
#: where the paper's 2-8x FLAT-vs-PR-Tree factors reappear.
DEPTH_MATCHED_CONFIG = ExperimentConfig(node_fanout=9)
