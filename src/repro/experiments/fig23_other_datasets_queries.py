"""Fig. 23 (table) — Query time and speed-up on the other data sets.

Paper: FLAT speeds queries up by 21–58 % on the small-volume set and
6–44 % on the large-volume set; less speed-up for large queries because
overlap matters less there.
"""

from __future__ import annotations

from repro.storage.diskmodel import DiskModel
from repro.experiments.base import ExperimentResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.other_datasets import cached_datasets

EXPERIMENT_ID = "fig23"
TITLE = "Execution time and speed-up of small/large volume queries"


def _speedup(flat_run, pr_run, disk) -> float:
    flat_t = flat_run.simulated_seconds(disk)
    pr_t = pr_run.simulated_seconds(disk)
    return 100.0 * (pr_t - flat_t) / pr_t if pr_t > 0 else 0.0


def run(config: ExperimentConfig) -> ExperimentResult:
    observations = cached_datasets(config)
    disk = DiskModel()
    headers = [
        "dataset",
        "small flat s",
        "small prtree s",
        "small speedup %",
        "large flat s",
        "large prtree s",
        "large speedup %",
    ]
    rows = []
    for obs in observations:
        rows.append(
            [
                obs.name,
                obs.flat_small.simulated_seconds(disk),
                obs.prtree_small.simulated_seconds(disk),
                _speedup(obs.flat_small, obs.prtree_small, disk),
                obs.flat_large.simulated_seconds(disk),
                obs.prtree_large.simulated_seconds(disk),
                _speedup(obs.flat_large, obs.prtree_large, disk),
            ]
        )

    checks = {
        "flat speeds up small-volume queries on average": (
            sum(row[3] for row in rows) > 0
        ),
        "average small-query speedup exceeds large-query speedup": (
            sum(row[3] for row in rows) > sum(row[6] for row in rows)
        ),
    }
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        headers,
        rows,
        notes=(
            "Paper (Fig. 23): 21-58% speed-up for small volume queries, "
            "6-44% for large — big queries suffer less from overlap.  "
            "Per-data-set positive speed-ups reproduce with paper-depth "
            "trees (depth-matched configurations); with full 4K fanout at "
            "reduced scale the tree hierarchy is nearly free and FLAT's "
            "crawl overhead can exceed it on the most compact data sets."
        ),
        checks=checks,
    )
