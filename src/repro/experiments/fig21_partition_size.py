"""Fig. 21 — Average partition volume vs average neighbor pointers.

Paper protocol: uniform random elements in an 8 mm^3 volume; compute
the partitions, then *incrementally increase the partition size* and
measure the average pointer count.  We inflate every partition MBR
about its center by a growing factor and re-run neighbor discovery.
"""

from __future__ import annotations

import numpy as np

from repro.core.neighbors import compute_neighbors
from repro.core.partition import compute_partitions
from repro.data.uniform import SYNTHETIC_VOLUME_SIDE_UM, uniform_cubes
from repro.geometry.mbr import mbr_center, mbr_volume
from repro.experiments.base import ExperimentResult
from repro.experiments.config import ExperimentConfig

EXPERIMENT_ID = "fig21"
TITLE = "Average partition volume vs average neighbor pointers"

#: Inflation factors applied to the partition boxes.
INFLATION_FACTORS = (1.0, 1.05, 1.1, 1.15, 1.2, 1.25)


def run(config: ExperimentConfig) -> ExperimentResult:
    # Scale the paper's 10M-element uniform set with the density sweep.
    n = max(config.density_steps)
    mbrs = uniform_cubes(n, edge=2.6, side=SYNTHETIC_VOLUME_SIDE_UM, seed=config.seed)
    partitions = compute_partitions(mbrs, 85)

    base_boxes = np.stack([p.partition_mbr for p in partitions])
    centers = mbr_center(base_boxes)
    half = (base_boxes[:, 3:] - base_boxes[:, :3]) * 0.5

    headers = ["inflation", "avg partition volume", "avg neighbor pointers"]
    rows = []
    for factor in INFLATION_FACTORS:
        inflated = np.concatenate(
            [centers - half * factor, centers + half * factor], axis=1
        )
        for p, box in zip(partitions, inflated):
            p.partition_mbr = box
        compute_neighbors(partitions)
        avg_pointers = float(np.mean([len(p.neighbors) for p in partitions]))
        rows.append([factor, float(mbr_volume(inflated).mean()), avg_pointers])

    pointer_series = [row[2] for row in rows]
    checks = {
        "avg pointers grow monotonically with partition volume": all(
            a <= b + 1e-9 for a, b in zip(pointer_series, pointer_series[1:])
        ),
        "largest partitions have strictly more pointers than smallest": (
            pointer_series[-1] > pointer_series[0]
        ),
    }
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        headers,
        rows,
        notes=(
            "Paper: the major factor driving the pointer count is the "
            "partition size; pointers grow with average partition volume."
        ),
        checks=checks,
    )
