"""Sec. VII-E.2 (text) — FLAT's memory and computation overheads.

Paper: the BFS bookkeeping (the queue) stays at ~0.9 % of the result
size, and 97.8–98.8 % of query time is spent on disk operations.  We
measure the same two quantities: peak queue bytes (the paper's metric;
the visited set is tracked separately as
:attr:`~repro.core.flat_index.CrawlStats.visited_bytes`) relative to
the result's on-disk bytes, and the simulated I/O share of total time.
"""

from __future__ import annotations

import numpy as np

from repro.storage.constants import MBR_BYTES
from repro.storage.diskmodel import DiskModel
from repro.experiments.base import ExperimentResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import FLAT, cached_sweep

EXPERIMENT_ID = "sec7e2"
TITLE = "FLAT memory & computation overhead during query evaluation"


def run(config: ExperimentConfig) -> ExperimentResult:
    sweep = cached_sweep(config)
    disk = DiskModel()
    headers = [
        "elements",
        "benchmark",
        "bookkeeping % of result bytes",
        "io share of time %",
    ]
    rows = []
    for step in (sweep.steps[0], sweep.steps[-1]):
        obs = step.indexes[FLAT]
        for label, run_ in (("SN", obs.sn_run), ("LSS", obs.lss_run)):
            result_bytes = max(run_.result_elements * MBR_BYTES, 1)
            bookkeeping = float(np.sum(run_.bookkeeping_bytes))
            io_share = disk.io_bound_share(run_.total_page_reads, run_.cpu_seconds)
            rows.append(
                [
                    step.n_elements,
                    label,
                    100.0 * bookkeeping / result_bytes,
                    100.0 * io_share,
                ]
            )

    # The paper's 0.9% figure is for production-size result sets; the SN
    # benchmark at reproduction scale returns tiny results whose fixed
    # queue cost looks relatively larger, so the memory check uses the
    # LSS rows (large results, the regime the paper measures).
    lss_rows = [row for row in rows if row[1] == "LSS"]
    checks = {
        "LSS bookkeeping below 5% of result size at max density": (
            lss_rows[-1][2] < 5.0
        ),
        "bookkeeping shrinks as results grow": lss_rows[-1][2] <= rows[0][2],
        "simulated time is I/O bound (>90%)": all(row[3] > 90.0 for row in rows),
    }
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        headers,
        rows,
        notes=(
            "Paper: queue bookkeeping stays at 0.9% of the result size; "
            "disk operations take 97.8-98.8% of query time."
        ),
        checks=checks,
    )
