"""Fig. 2 — Point-query page reads on R-Tree variants vs density.

Paper: the tree height is ~5 pages, yet a single point query reads up
to 450+ pages on the densest data set — overlap grows with density.
Reproduction criterion: page reads per point query exceed the tree
height for every variant and grow with density.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import cached_sweep

EXPERIMENT_ID = "fig02"
TITLE = "Point query performance on R-Tree variants (pages/query)"


def run(config: ExperimentConfig) -> ExperimentResult:
    sweep = cached_sweep(config)
    variants = list(config.variants)

    headers = ["elements"] + [f"{v} pages/query" for v in variants] + [
        f"{v} height" for v in variants
    ]
    rows = []
    for step in sweep.steps:
        row = [step.n_elements]
        for v in variants:
            obs = step.indexes[v]
            row.append(obs.point_run.total_page_reads / obs.point_run.query_count)
        for v in variants:
            row.append(step.indexes[v].height)
        rows.append(row)

    checks = {}
    for i, v in enumerate(variants, start=1):
        first, last = rows[0][i], rows[-1][i]
        height_last = rows[-1][1 + len(variants) + i - 1]
        checks[f"{v}: reads exceed height at max density"] = last > height_last
        checks[f"{v}: reads grow with density"] = last > first
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        headers,
        rows,
        notes=(
            "Paper: reads grow to >450 pages at 450M elements while the "
            "height stays at 5 — overlap, not height, drives the cost."
        ),
        checks=checks,
    )
