"""Fig. 4 — Bytes retrieved vs result-set size, LSS queries, R-Trees.

Paper: all R-Tree variants retrieve 3–4x more data than the result set
itself for large subvolume queries, and the ratio of the *best* tree
(PR-Tree) grows with density.  Result bytes are counted as the result
elements' on-disk footprint (48 bytes each).
"""

from __future__ import annotations

from repro.storage.constants import MBR_BYTES
from repro.experiments.base import ExperimentResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import cached_sweep

EXPERIMENT_ID = "fig04"
TITLE = "LSS data retrieved vs result size on R-Tree variants (MB)"


def run(config: ExperimentConfig) -> ExperimentResult:
    sweep = cached_sweep(config)
    variants = list(config.variants)
    headers = ["elements", "result MB"] + [f"{v} MB" for v in variants]
    rows = []
    for step in sweep.steps:
        any_obs = step.indexes[variants[0]]
        result_mb = any_obs.lss_run.result_elements * MBR_BYTES / 1e6
        row = [step.n_elements, result_mb]
        for v in variants:
            run_ = step.indexes[v].lss_run
            row.append(run_.total_page_reads * 4096 / 1e6)
        rows.append(row)

    pr_col = 2 + variants.index("prtree") if "prtree" in variants else 2
    str_col = 2 + variants.index("str") if "str" in variants else 2
    checks = {
        "every tree retrieves more than the result": all(
            row[c] > row[1] for row in rows for c in range(2, 2 + len(variants))
        ),
        "prtree retrieves more than str at max density (packing overhead)": (
            rows[-1][pr_col] > rows[-1][str_col]
        ),
        "retrieved data grows with density for every tree": all(
            rows[-1][c] > rows[0][c] for c in range(2, 2 + len(variants))
        ),
    }
    return ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        headers,
        rows,
        notes=(
            "Paper: the PR-Tree's retrieved/result ratio grows from ~3 to "
            "~4 across the density sweep."
        ),
        checks=checks,
    )
