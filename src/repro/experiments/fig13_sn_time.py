"""Fig. 13 — Execution time of the SN benchmark.

Paper: the time curves mirror Fig. 12's page-read curves because query
execution is I/O bound; FLAT is fastest and scales linearly.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.usecase import execution_time

EXPERIMENT_ID = "fig13"
TITLE = "Execution time for the SN benchmark (simulated I/O + CPU)"


def run(config: ExperimentConfig):
    return execution_time(config, "sn_run", EXPERIMENT_ID, TITLE)
