"""Fig. 16 — Total page reads executing the LSS benchmark.

Paper: FLAT still wins (no hierarchical subtree retrieval) but by a
smaller factor than SN, since overlap matters less for large queries.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.usecase import total_page_reads

EXPERIMENT_ID = "fig16"
TITLE = "Total page reads executing the LSS benchmark"


def run(config: ExperimentConfig):
    return total_page_reads(config, "lss_run", EXPERIMENT_ID, TITLE)
