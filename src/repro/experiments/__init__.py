"""Figure/table reproduction experiments (one module per experiment id).

See DESIGN.md §4 for the experiment index and
``python -m repro.experiments --list`` for the runnable ids.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.config import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    FULL_CONFIG,
    SMALL_CONFIG,
)

__all__ = [
    "DEFAULT_CONFIG",
    "ExperimentConfig",
    "ExperimentResult",
    "FULL_CONFIG",
    "SMALL_CONFIG",
]
