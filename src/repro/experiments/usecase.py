"""Shared builders for the SN/LSS use-case figures (Figs. 12–19).

The eight figures are four views (total page reads, execution time,
retrieved-data breakdown, reads per result element) over two benchmarks
(SN, LSS); these helpers produce each view from the memoized sweep.
"""

from __future__ import annotations

from repro.storage.diskmodel import DiskModel
from repro.storage.stats import (
    CATEGORY_METADATA,
    CATEGORY_OBJECT,
    CATEGORY_RTREE_INTERNAL,
    CATEGORY_RTREE_LEAF,
    CATEGORY_SEED_INTERNAL,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import FLAT, cached_sweep


def _runs(step, which: str):
    return {name: getattr(obs, which) for name, obs in step.indexes.items()}


def total_page_reads(
    config: ExperimentConfig, which: str, experiment_id: str, title: str
) -> ExperimentResult:
    """Figs. 12/16: total page reads per index vs density.

    Page *decodes* (the CPU work of parsing fetched pages, counted by
    the decoded-page cache) are reported next to the reads: FLAT's
    batched crawl decodes each touched page once per query, so its
    decode column tracks its read column instead of its frontier sizes.
    """
    sweep = cached_sweep(config)
    names = [FLAT] + list(config.variants)
    headers = (
        ["elements"]
        + [f"{n} reads" for n in names]
        + [f"{n} decodes" for n in names]
    )
    rows = []
    for step in sweep.steps:
        runs = _runs(step, which)
        rows.append(
            [step.n_elements]
            + [runs[n].total_page_reads for n in names]
            + [runs[n].total_page_decodes for n in names]
        )

    first, last = rows[0], rows[-1]
    col = {n: 1 + i for i, n in enumerate(names)}
    decode_col = {n: 1 + len(names) + i for i, n in enumerate(names)}
    first_factor = first[col["prtree"]] / first[col[FLAT]]
    last_factor = last[col["prtree"]] / last[col[FLAT]]
    checks = {
        "flat reads fewer pages than the prtree at max density": last[col[FLAT]]
        < last[col["prtree"]],
        "flat-vs-prtree advantage does not degrade with density": last_factor
        >= 0.9 * first_factor,
        "flat decodes at most one page per page read": last[decode_col[FLAT]]
        <= last[col[FLAT]],
    }
    return ExperimentResult(
        experiment_id,
        title,
        headers,
        rows,
        notes=(
            "Paper: FLAT reads up to 8x fewer pages than the PR-Tree (its "
            "best baseline) on SN and 2-6x fewer on LSS at 450M elements. "
            f"Here FLAT beats the PR-Tree by {last_factor:.2f}x at the "
            "densest step (the paper-scale factors need paper-depth trees; "
            "see the depth-matched configuration). Clean-room STR/Hilbert "
            "trees share FLAT's exact leaf packing and stay competitive at "
            "reproduction scale."
        ),
        checks=checks,
    )


def execution_time(
    config: ExperimentConfig, which: str, experiment_id: str, title: str
) -> ExperimentResult:
    """Figs. 13/17: simulated execution time (I/O model + measured CPU).

    The paper observes the time curves mirror the page-read curves
    because queries are ~98 % I/O bound; our simulated time reproduces
    exactly that relation (and we report measured CPU separately).
    """
    sweep = cached_sweep(config)
    disk = DiskModel()
    names = [FLAT] + list(config.variants)
    headers = (
        ["elements"]
        + [f"{n} sim s" for n in names]
        + [f"{n} cpu s" for n in names]
    )
    rows = []
    for step in sweep.steps:
        runs = _runs(step, which)
        row = [step.n_elements]
        row += [runs[n].simulated_seconds(disk) for n in names]
        row += [runs[n].cpu_seconds for n in names]
        rows.append(row)

    last = rows[-1]
    col = {n: 1 + i for i, n in enumerate(names)}
    checks = {
        "flat is faster than the prtree at max density": last[col[FLAT]]
        < last[col["prtree"]],
    }
    # Verify the paper's mirror property explicitly: the time ordering
    # matches the page-read ordering because queries are I/O bound.
    reads = {n: _runs(sweep.steps[-1], which)[n].total_page_reads for n in names}
    time_order = sorted(names, key=lambda n: last[col[n]])
    read_order = sorted(names, key=lambda n: reads[n])
    checks["time ordering matches page-read ordering"] = time_order == read_order
    return ExperimentResult(
        experiment_id,
        title,
        headers,
        rows,
        notes=(
            "Simulated time = page reads x 7.5 ms SAS random-read latency "
            "+ measured CPU; the paper's queries are 97.8-98.8% I/O bound."
        ),
        checks=checks,
    )


def breakdown(
    config: ExperimentConfig, which: str, experiment_id: str, title: str
) -> ExperimentResult:
    """Figs. 14/18: retrieved-data breakdown, FLAT vs PR-Tree (MB)."""
    sweep = cached_sweep(config)
    headers = [
        "elements",
        "flat seed MB",
        "flat metadata MB",
        "flat object MB",
        "prtree non-leaf MB",
        "prtree leaf MB",
    ]
    rows = []
    for step in sweep.steps:
        flat_run = getattr(step.indexes[FLAT], which)
        pr_run = getattr(step.indexes["prtree"], which)
        mb = 4096 / 1e6
        rows.append(
            [
                step.n_elements,
                flat_run.reads_by_category.get(CATEGORY_SEED_INTERNAL, 0) * mb,
                flat_run.reads_by_category.get(CATEGORY_METADATA, 0) * mb,
                flat_run.reads_by_category.get(CATEGORY_OBJECT, 0) * mb,
                pr_run.reads_by_category.get(CATEGORY_RTREE_INTERNAL, 0) * mb,
                pr_run.reads_by_category.get(CATEGORY_RTREE_LEAF, 0) * mb,
            ]
        )

    first, last = rows[0], rows[-1]
    flat_hier_ratio_first = (first[1] + first[2]) / max(first[4], 1e-9)
    flat_hier_ratio_last = (last[1] + last[2]) / max(last[4], 1e-9)
    checks = {
        "flat seed reads stay ~constant with density": last[1]
        <= max(2.5 * first[1], first[1] + 0.5),
        "flat object reads grow with density": last[3] > first[3],
        "prtree nonleaf/leaf ratio roughly stable or growing with density": (
            last[4] / max(last[5], 1e-9) >= 0.8 * first[4] / max(first[5], 1e-9)
            if which == "sn_run"
            else True
        ),
        "flat hierarchy overhead does not outgrow prtree's": (
            flat_hier_ratio_last <= 1.3 * flat_hier_ratio_first
        ),
    }
    return ExperimentResult(
        experiment_id,
        title,
        headers,
        rows,
        notes=(
            "Paper (SN): PR-Tree non-leaf/leaf read ratio grows 2 -> 2.8 "
            "with density; FLAT's seed cost is flat and metadata+object "
            "track the result size."
        ),
        checks=checks,
    )


def per_result(
    config: ExperimentConfig, which: str, experiment_id: str, title: str
) -> ExperimentResult:
    """Figs. 15/19: page reads per result element vs density."""
    sweep = cached_sweep(config)
    names = [FLAT] + list(config.variants)
    headers = ["elements"] + [f"{n} reads/result" for n in names]
    rows = []
    for step in sweep.steps:
        runs = _runs(step, which)
        rows.append([step.n_elements] + [runs[n].pages_per_result for n in names])

    col = {n: 1 + i for i, n in enumerate(names)}
    first, last = rows[0], rows[-1]
    checks = {
        "flat per-result cost decreases with density": last[col[FLAT]]
        < first[col[FLAT]],
        "flat per-result cost below the prtree's at max density": last[col[FLAT]]
        < last[col["prtree"]],
    }
    return ExperimentResult(
        experiment_id,
        title,
        headers,
        rows,
        notes=(
            "Paper: FLAT amortizes the fixed seed cost over growing result "
            "sets (cost/result falls); R-Tree overlap makes cost/result rise."
        ),
        checks=checks,
    )
