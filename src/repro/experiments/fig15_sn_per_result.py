"""Fig. 15 — Page reads per result element, SN benchmark, all indexes.

Paper: FLAT's per-result cost *decreases* with density (the seed cost
amortizes over bigger results) while every R-Tree's cost increases
(overlap grows).
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.usecase import per_result

EXPERIMENT_ID = "fig15"
TITLE = "Pages read per result element for the SN benchmark"


def run(config: ExperimentConfig):
    return per_result(config, "sn_run", EXPERIMENT_ID, TITLE)
