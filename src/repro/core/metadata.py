"""FLAT metadata records (Sec. V-B.2).

One record summarizes one object page: a pointer to the object page,
the page MBR, the partition MBR, and pointers to the neighbor records.
Records are variable-size (the neighbor count varies), which is exactly
why the paper stores them separately from the elements — reserving
worst-case space on object pages would leave pages underfilled.

Records live on the *leaf pages of the seed tree*; the in-memory
``record_id -> leaf page`` directory mirrors what an on-disk pointer
(page id, slot) would encode directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.constants import PAGE_HEADER_BYTES, PAGE_SIZE
from repro.storage.serial import metadata_record_bytes


@dataclass(frozen=True)
class MetadataRecord:
    """An in-memory view of one metadata record."""

    record_id: int
    page_mbr: np.ndarray
    partition_mbr: np.ndarray
    object_page_id: int
    neighbor_ids: tuple

    def serialized_bytes(self) -> int:
        """On-disk size of this record."""
        return metadata_record_bytes(len(self.neighbor_ids))


def pack_records_into_pages(record_sizes: list) -> list:
    """Greedily pack consecutive records into seed-leaf pages.

    Used for records that are already in a spatially coherent order;
    fills each 4 K page as far as possible.  Returns a list of
    ``(start, end)`` index ranges.
    """
    budget = PAGE_SIZE - PAGE_HEADER_BYTES
    ranges = []
    start = 0
    used = 0
    for i, size in enumerate(record_sizes):
        if size > budget:
            raise ValueError(
                f"metadata record {i} of {size} bytes exceeds page budget {budget}"
            )
        if used + size > budget:
            ranges.append((start, i))
            start = i
            used = 0
        used += size
    if start < len(record_sizes):
        ranges.append((start, len(record_sizes)))
    return ranges


def group_records_spatially(page_mbrs, record_sizes: list) -> list:
    """Group records into seed-leaf pages by STR tiling of their page MBRs.

    The paper requires that "spatially close records are stored on the
    same leaf page" (Sec. V-B.2).  Tiling the *records* with STR yields
    compact (cubic-ish) leaf regions, so a crawl touching a region reads
    few distinct metadata pages — markedly better than packing records
    in raw partition order, which produces long thin slabs.

    Returns a list of index arrays (groups), each fitting one page.
    """
    import numpy as np

    from repro.rtree.str_bulk import str_groups

    budget = PAGE_SIZE - PAGE_HEADER_BYTES
    sizes = np.asarray(record_sizes, dtype=np.int64)
    if np.any(sizes > budget):
        bad = int(np.argmax(sizes > budget))
        raise ValueError(
            f"metadata record {bad} of {int(sizes[bad])} bytes exceeds "
            f"page budget {budget}"
        )
    # Conservative capacity from the mean record size, then split any
    # group whose actual byte total still overflows.
    capacity = max(1, int(budget // max(sizes.mean(), 1)))
    groups = []
    for group in str_groups(np.asarray(page_mbrs, dtype=float), capacity):
        start = 0
        used = 0
        for i, rid in enumerate(group):
            size = int(sizes[rid])
            if used + size > budget:
                groups.append(group[start:i])
                start = i
                used = 0
            used += size
        if start < len(group):
            groups.append(group[start:])
    return groups
