"""FLAT, horizontally sharded: K spatial shards behind one query planner.

The monolithic :class:`~repro.core.flat_index.FLATIndex` serves one
store; this module scales the same design out.  The space is split into
K *shards* by reusing Algorithm 1's partitioning at coarse granularity
(:func:`~repro.core.partition.compute_partitions` with a per-shard
capacity of ``ceil(n / K)``), which inherits both crawl-critical
properties for free: the shard boxes tile the space gap-free, and every
shard box is stretched to enclose the MBRs of its elements.  Each shard
then gets its own complete FLAT index — its own page store, seed tree
and neighbor graph — over its elements only.

Queries go through a :class:`~repro.query.planner.QueryPlanner`: shards
whose box misses the query are pruned before any I/O (exact, because
element containment in the shard box is guaranteed), the rest crawl
independently, and the per-shard sorted results merge by concatenation
(shards partition the element set).  kNN visits shards in MINDIST
order and stops when the next shard is farther than the current k-th
candidate.  The planner's decision for the most recent query is kept in
:attr:`ShardedFLATIndex.last_plan` so harnesses report pruning next to
the paper's page accounting.

Persistence composes the monolithic machinery: ``snapshot()`` writes a
shard manifest plus one self-describing FLAT snapshot directory per
shard (each with its own ``pages.dat``), and ``restore()`` reopens
every shard over a read-only mmap-backed
:class:`~repro.storage.filestore.FilePageStore`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.geometry.mbr import (
    mbr_center,
    mbr_contains_mbr,
    mbr_contains_point,
    mbr_distance_to_point,
    mbr_volume,
    point_as_box,
    validate_mbrs,
)
from repro.query.planner import QueryPlan, QueryPlanner
from repro.storage.constants import OBJECT_PAGE_CAPACITY
from repro.storage.pagestore import PageStore, PageStoreError, PageStoreGroup
from repro.core.flat_index import CrawlStats, FLATIndex
from repro.core.partition import compute_partitions
from repro.core.snapshot import restore_index, snapshot_index

#: Manifest + array bundle of a sharded snapshot directory.
SHARD_META_FILENAME = "shards.json"
SHARD_ARRAYS_FILENAME = "shards.npz"

#: Bumped on any incompatible change to the shard-set serialization.
#: Version 2 tracks the write path (generational per-shard snapshots,
#: global element-id watermark).
SHARDED_FORMAT_VERSION = 2


def _shard_dirname(shard_id: int) -> str:
    return f"shard-{shard_id:04d}"


@dataclass
class Shard:
    """One spatial shard: a complete FLAT index over its own store.

    ``element_ids`` maps the shard-local ids the inner index returns to
    the data set's global ids; it is kept sorted ascending so local
    ``(distance, id)`` tie-breaks agree with global ones.
    """

    shard_id: int
    #: The shard's gap-free space box (encloses all member element MBRs).
    mbr: np.ndarray
    #: Global element ids of the shard's members, ascending.
    element_ids: np.ndarray
    index: FLATIndex
    store: PageStore

    @property
    def element_count(self) -> int:
        """Live elements in this shard.

        Not ``len(element_ids)`` — that array keeps stale slots for
        deleted elements so local→global lookups stay positional.
        """
        return self.index.element_count

    def to_global(self, local_ids: np.ndarray) -> np.ndarray:
        """Map shard-local result ids to global ids (order-preserving)."""
        return self.element_ids[local_ids]


class ShardedFLATIndex:
    """K spatial FLAT shards behind one scatter–gather query planner."""

    def __init__(self, shards: list, planner: QueryPlanner, element_count: int,
                 next_id: int | None = None):
        self.shards = shards
        self.planner = planner
        #: Live elements across all shards.
        self.element_count = element_count
        #: Global element-id watermark (deleted ids are never reused).
        self._next_id = element_count if next_id is None else next_id
        #: Lazily built ``global element id -> shard position`` map
        #: (the write path's routing directory).
        self._element_shard: dict | None = None
        #: One facade over every shard's store, so single-store harnesses
        #: (``run_queries``, ``QueryService``) drive the shard set as is.
        self.store = PageStoreGroup([shard.store for shard in shards])
        #: Planner decision of the most recent query.
        self.last_plan: QueryPlan | None = None
        #: Crawl bookkeeping of the most recent query, aggregated over
        #: the touched shards.
        self.last_crawl_stats: CrawlStats | None = None
        #: Optional :class:`~repro.core.delta.DeltaIndex` overlaid on
        #: the scatter-gather answers (attached by :meth:`with_delta`).
        #: One delta spans all shards — its ids are global, and its
        #: contribution merges in after the per-shard gather.
        self.delta = None

    # -- construction ----------------------------------------------------

    @classmethod
    def build(
        cls,
        element_mbrs: np.ndarray,
        shard_count: int,
        space_mbr: np.ndarray | None = None,
        page_capacity: int = OBJECT_PAGE_CAPACITY,
        seed_fanout: int | None = None,
        store_factory=None,
    ) -> "ShardedFLATIndex":
        """Shard *element_mbrs* spatially and bulkload FLAT per shard.

        ``shard_count`` is the target; the actual count (``len(shards)``)
        is whatever the coarse STR tiling produces for it — usually the
        target exactly, occasionally off by the cube rounding.
        ``store_factory(shard_id)`` supplies each shard's store (default:
        a fresh in-memory :class:`PageStore` per shard).
        """
        element_mbrs = validate_mbrs(element_mbrs)
        if shard_count <= 0:
            raise ValueError(f"shard_count must be positive, got {shard_count}")
        shard_capacity = max(1, math.ceil(len(element_mbrs) / shard_count))
        coarse = compute_partitions(element_mbrs, shard_capacity, space_mbr)

        shards = []
        for shard_id, partition in enumerate(coarse):
            members = np.sort(partition.element_ids)
            store = (
                PageStore() if store_factory is None else store_factory(shard_id)
            )
            index = FLATIndex.build(
                store,
                element_mbrs[members],
                space_mbr=partition.partition_mbr,
                page_capacity=page_capacity,
                seed_fanout=seed_fanout,
            )
            shards.append(
                Shard(
                    shard_id=shard_id,
                    mbr=np.asarray(partition.partition_mbr, dtype=np.float64),
                    element_ids=members,
                    index=index,
                    store=store,
                )
            )
        planner = QueryPlanner(np.stack([shard.mbr for shard in shards]))
        return cls(shards, planner, len(element_mbrs))

    def with_views(self) -> "ShardedFLATIndex":
        """A shallow clone where every shard serves from a store view.

        The sharded analogue of :meth:`FLATIndex.with_store`: directories
        and page bytes are shared, caches and I/O counters are private
        to the clone — one clone per serving worker.
        """
        shards = []
        for shard in self.shards:
            view = shard.store.view()
            shards.append(
                Shard(
                    shard_id=shard.shard_id,
                    mbr=shard.mbr,
                    element_ids=shard.element_ids,
                    index=shard.index.with_store(view),
                    store=view,
                )
            )
        clone = ShardedFLATIndex(
            shards, self.planner, self.element_count, next_id=self._next_id
        )
        clone.delta = self.delta
        return clone

    def with_delta(self, delta) -> "ShardedFLATIndex":
        """A read clone with *delta* overlaid on the scatter-gather.

        See :meth:`FLATIndex.with_delta` — same contract, one delta for
        the whole shard set (delta batches are buffered globally and
        routed to shards by centroid only when merged into pages).
        """
        clone = self.with_views()
        clone.delta = delta
        return clone

    def fork(self) -> "ShardedFLATIndex":
        """A copy-on-write clone that can be mutated independently.

        Every shard's inner index forks (shared unchanged pages, own
        directories) and the planner's shard boxes are copied, so
        updates on the fork — including shard-box widening — never
        perturb this index or readers still crawling it.
        """
        shards = []
        for shard in self.shards:
            index = shard.index.fork()
            shards.append(
                Shard(
                    shard_id=shard.shard_id,
                    mbr=shard.mbr.copy(),
                    element_ids=shard.element_ids.copy(),
                    index=index,
                    store=index.store,
                )
            )
        clone = ShardedFLATIndex(
            shards, self.planner.copy(), self.element_count, next_id=self._next_id
        )
        if self._element_shard is not None:
            clone._element_shard = dict(self._element_shard)
        return clone

    # -- updates ---------------------------------------------------------

    def _check_mutable(self) -> None:
        """Fail before any routing/planner state is touched when any
        shard's store is read-only (restored sets mutate via fork)."""
        for shard in self.shards:
            if not shard.store.backend.writable:
                raise PageStoreError(
                    f"shard {shard.shard_id} store is read-only (restored "
                    "snapshot); fork() the index and mutate the fork"
                )

    def _routing_directory(self) -> dict:
        """``global element id -> shard position``, built on first use.

        Rebuilt from each shard's *live* local ids (its object-page
        directory), never from ``element_ids`` — that array keeps stale
        slots for deleted elements so ``searchsorted`` stays valid, and
        including them here would let already-deleted ids pass delete
        validation after a snapshot/restore round trip.
        """
        if self._element_shard is None:
            routing = {}
            for pos, shard in enumerate(self.shards):
                for local_ids in shard.index.object_page_element_ids.values():
                    for local in local_ids:
                        routing[int(shard.element_ids[int(local)])] = pos
            self._element_shard = routing
        return self._element_shard

    def insert(self, element_mbrs: np.ndarray) -> np.ndarray:
        """Insert elements; returns their newly assigned global ids.

        Each element routes to the shard whose box contains its
        centroid (smallest such box; the closest box for outliers).
        When the element's MBR protrudes beyond the routed shard's box,
        the box — and the planner's copy of it — widens first, so
        planner pruning stays exact.  Ids are assigned in batch order,
        monotonically increasing, which keeps every shard's
        local-to-global id map sorted and the ``(distance, id)``
        tie-break consistent between local and global views.
        """
        return self.apply_batch(insert_mbrs=element_mbrs)

    def delete(self, element_ids) -> None:
        """Delete elements by global id; unknown ids raise ``KeyError``."""
        self.apply_batch(delete_ids=element_ids)

    def apply_batch(
        self,
        insert_mbrs: np.ndarray | None = None,
        delete_ids=None,
        *,
        insert_ids: np.ndarray | None = None,
        next_id: int | None = None,
    ) -> np.ndarray:
        """Apply one commit's inserts and deletes across the shard set.

        The sharded mirror of :meth:`FLATIndex.apply_batch` — and a
        delta merge's entry point: inserts route to shards by centroid
        (widening protruding shard boxes so planner pruning stays
        exact), deletes route through the global directory, and each
        touched shard absorbs its whole slice of the commit through one
        inner ``apply_batch`` (one link-repair pass and one metadata
        flush per shard per commit).  Same contract as the monolithic
        version: ``delete_ids`` must name live committed elements
        (``KeyError`` names every missing id, duplicates raise
        ``ValueError``, validation precedes any mutation), an empty
        batch is a cheap no-op, and ``insert_ids``/``next_id`` replay a
        drained delta's assigned ids.
        """
        if insert_mbrs is None:
            insert_mbrs = np.empty((0, 6), dtype=np.float64)
        insert_mbrs = validate_mbrs(np.atleast_2d(insert_mbrs))
        if delete_ids is None:
            delete_ids = np.empty(0, dtype=np.int64)
        delete_ids = np.atleast_1d(np.asarray(delete_ids, dtype=np.int64))
        if insert_ids is not None:
            new_ids = np.atleast_1d(np.asarray(insert_ids, dtype=np.int64))
            if len(new_ids) != len(insert_mbrs):
                raise ValueError(
                    f"insert_ids has {len(new_ids)} ids for "
                    f"{len(insert_mbrs)} elements"
                )
        else:
            new_ids = np.arange(
                self._next_id, self._next_id + len(insert_mbrs), dtype=np.int64
            )
        if not len(insert_mbrs) and not len(delete_ids):
            if next_id is not None:
                self._next_id = max(self._next_id, int(next_id))
            return new_ids
        self._check_mutable()
        routing = self._routing_directory()
        # Validate before mutating: a bad id must not strand the valid
        # ids of the batch half-removed from the routing directory.
        if len(delete_ids):
            unique: set = set()
            missing: list = []
            for gid in delete_ids:
                gid = int(gid)
                if gid in unique:
                    raise ValueError(
                        f"duplicate element id {gid} in delete batch"
                    )
                unique.add(gid)
                if gid not in routing:
                    missing.append(gid)
            if missing:
                raise KeyError(f"unknown element ids: {sorted(missing)}")

        per_shard_inserts: dict = {}
        if len(insert_mbrs):
            self._next_id = max(self._next_id, int(new_ids.max()) + 1)
            centers = mbr_center(insert_mbrs)
            boxes = self.planner.shard_mbrs
            for gid, mbr, center in zip(new_ids, insert_mbrs, centers):
                inside = np.flatnonzero(mbr_contains_point(boxes, center))
                if inside.size:
                    pos = int(inside[np.argmin(mbr_volume(boxes[inside]))])
                else:
                    pos = int(np.argmin(mbr_distance_to_point(boxes, center)))
                if not bool(mbr_contains_mbr(boxes[pos], mbr)):
                    self.planner.widen_shard(pos, mbr)
                    self.shards[pos].mbr = self.planner.shard_mbrs[pos]
                per_shard_inserts.setdefault(pos, []).append((int(gid), mbr))
                routing[int(gid)] = pos
        per_shard_deletes: dict = {}
        for gid in delete_ids:
            gid = int(gid)
            per_shard_deletes.setdefault(routing.pop(gid), []).append(gid)

        for pos in sorted(set(per_shard_inserts) | set(per_shard_deletes)):
            shard = self.shards[pos]
            entries = per_shard_inserts.get(pos, [])
            gids = np.array([gid for gid, _mbr in entries], dtype=np.int64)
            local_mbrs = (
                np.stack([mbr for _gid, mbr in entries])
                if entries
                else np.empty((0, 6), dtype=np.float64)
            )
            # element_ids stays sorted (ids are assigned monotonically
            # and deleted slots keep their stale values), so the local
            # id of a live global id is its searchsorted position — and
            # appends leave existing positions untouched, so the delete
            # slice stays valid while the same call inserts.
            local_deletes = np.searchsorted(
                shard.element_ids,
                np.asarray(per_shard_deletes.get(pos, []), dtype=np.int64),
            )
            local = shard.index.apply_batch(
                insert_mbrs=local_mbrs, delete_ids=local_deletes
            )
            if entries:
                expected = np.arange(
                    len(shard.element_ids), len(shard.element_ids) + len(gids)
                )
                if not np.array_equal(local, expected):
                    raise AssertionError("shard-local id assignment drifted")
                shard.element_ids = np.append(shard.element_ids, gids)
        self.element_count += len(new_ids) - len(delete_ids)
        if next_id is not None:
            self._next_id = max(self._next_id, int(next_id))
        return new_ids

    # -- querying --------------------------------------------------------

    def range_query(self, query: np.ndarray) -> np.ndarray:
        """Scatter the box to intersecting shards, gather sorted ids."""
        query = np.asarray(query, dtype=np.float64)
        selected = self.planner.shards_for_box(query)
        plan = QueryPlan(len(self.shards), [int(sid) for sid in selected])
        stats = CrawlStats()
        parts = []
        for sid in selected:
            shard = self.shards[sid]
            local = shard.index.range_query(query)
            _merge_crawl_stats(stats, shard.index.last_crawl_stats)
            if local.size:
                parts.append(shard.to_global(local))
        out = QueryPlanner.merge_sorted_ids(parts, delta=self.delta, query=query)
        stats.result_count = len(out)
        self.last_plan = plan
        self.last_crawl_stats = stats
        return out

    def point_query(self, point: np.ndarray) -> np.ndarray:
        """Element ids whose MBR contains *point* (degenerate range query)."""
        return self.range_query(point_as_box(point))

    def knn_query(
        self, point: np.ndarray, k: int, return_distances: bool = False
    ) -> np.ndarray:
        """The *k* nearest elements across shards, best-first over shards.

        Shards are visited in MINDIST order; each contributes its local
        top k (exact, via FLAT's expanding-radius crawl), and the walk
        stops when the next shard's box is strictly farther than the
        current k-th candidate — it cannot contain anything closer, nor
        an equal-distance element that would win the id tie-break from
        a *strictly* farther box.
        """
        point = np.asarray(point, dtype=np.float64).reshape(3)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        order, shard_dists = self.planner.shards_by_distance(point)
        best_ids = np.empty(0, dtype=np.int64)
        best_dists = np.empty(0, dtype=np.float64)
        delta = self.delta if self.delta is not None and not self.delta.is_empty else None
        shard_k = k
        if delta is not None:
            # Tombstones can hollow out a shard's local top k, hiding
            # live elements sitting just behind them — ask each shard
            # for enough extras to survive the global mask.
            shard_k = k + delta.tombstone_count
            ids, dists = delta.knn_candidates(point)
            keep = np.lexsort((ids, dists))[:k]
            best_ids, best_dists = ids[keep], dists[keep]
        selected = []
        stats = CrawlStats()
        for sid, shard_dist in zip(order, shard_dists):
            if len(best_ids) >= k and shard_dist > best_dists[-1]:
                break
            shard = self.shards[sid]
            local, local_dists = shard.index.knn_query(
                point, shard_k, return_distances=True
            )
            _merge_crawl_stats(stats, shard.index.last_crawl_stats)
            selected.append(int(sid))
            hit_ids = shard.to_global(local)
            if delta is not None:
                alive = ~delta.tombstoned(hit_ids)
                hit_ids, local_dists = hit_ids[alive], local_dists[alive]
            ids = np.concatenate([best_ids, hit_ids])
            dists = np.concatenate([best_dists, local_dists])
            keep = np.lexsort((ids, dists))[:k]
            best_ids, best_dists = ids[keep], dists[keep]
        stats.result_count = len(best_ids)
        self.last_plan = QueryPlan(len(self.shards), selected)
        self.last_crawl_stats = stats
        if return_distances:
            return best_ids, best_dists
        return best_ids

    # -- persistence -----------------------------------------------------

    @staticmethod
    def shard_directory(root, shard_id: int) -> Path:
        """The snapshot subdirectory of one shard under a sharded root.

        Each shard's directory is a complete, self-describing FLAT
        snapshot (its own ``pages.dat`` and numbered generations) — the
        unit the distributed serving tier ships to replicas and hands
        to shard servers.
        """
        return Path(root) / _shard_dirname(shard_id)

    def snapshot(self, directory, codec="raw") -> Path:
        """Serialize the shard set: manifest + one FLAT snapshot per shard.

        *codec* selects every shard store's physical page codec (see
        :mod:`repro.storage.codec`).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for shard in self.shards:
            snapshot_index(
                shard.index,
                directory / _shard_dirname(shard.shard_id),
                codec=codec,
            )
        self.write_shard_manifest(directory)
        return directory

    def write_shard_manifest(self, directory) -> Path:
        """Publish just the root manifest + array bundle into *directory*.

        The per-shard snapshot directories version themselves (numbered
        generations published in place by the write path), but the
        root-level shard boxes, id maps and watermark live here.  The
        cluster's rolling update calls this after publishing per-shard
        generations so a fresh :meth:`restore` of the root sees the
        updated shard set — each shard at its latest generation.
        """
        directory = Path(directory)
        offsets = np.zeros(len(self.shards) + 1, dtype=np.int64)
        # Offsets over the raw id maps (stale slots included) — the
        # restored arrays must be positionally identical.
        np.cumsum([len(shard.element_ids) for shard in self.shards], out=offsets[1:])
        np.savez_compressed(
            directory / SHARD_ARRAYS_FILENAME,
            shard_mbrs=np.stack([shard.mbr for shard in self.shards]),
            element_offsets=offsets,
            element_ids=np.concatenate(
                [shard.element_ids for shard in self.shards]
            ),
        )
        meta = {
            "format_version": SHARDED_FORMAT_VERSION,
            "index": "ShardedFLAT",
            "shard_count": len(self.shards),
            "element_count": int(self.element_count),
            "next_element_id": int(self._next_id),
        }
        (directory / SHARD_META_FILENAME).write_text(json.dumps(meta, indent=2) + "\n")
        return directory

    @classmethod
    def restore(cls, directory) -> "ShardedFLATIndex":
        """Reopen a sharded snapshot, every shard over a read-only mmap.

        Each shard restores at its own *latest* published generation —
        after the cluster's rolling updates publish per-shard
        generations and :meth:`write_shard_manifest` refreshes the
        root, a restore here reproduces the fleet's committed state.
        """
        directory = Path(directory)
        meta_path = directory / SHARD_META_FILENAME
        if not meta_path.exists():
            raise PageStoreError(f"no sharded-index snapshot in {directory}")
        meta = json.loads(meta_path.read_text())
        if meta.get("format_version") != SHARDED_FORMAT_VERSION:
            raise PageStoreError(
                f"unsupported sharded snapshot format {meta.get('format_version')!r}"
            )
        with np.load(directory / SHARD_ARRAYS_FILENAME) as bundle:
            shard_mbrs = bundle["shard_mbrs"]
            offsets = bundle["element_offsets"]
            element_ids = bundle["element_ids"]

        shards = []
        for shard_id in range(int(meta["shard_count"])):
            index = restore_index(directory / _shard_dirname(shard_id))
            shards.append(
                Shard(
                    shard_id=shard_id,
                    mbr=shard_mbrs[shard_id],
                    element_ids=element_ids[offsets[shard_id]:offsets[shard_id + 1]],
                    index=index,
                    store=index.store,
                )
            )
        planner = QueryPlanner(shard_mbrs)
        element_count = int(meta["element_count"])
        return cls(
            shards,
            planner,
            element_count,
            next_id=int(meta.get("next_element_id", element_count)),
        )

    def close(self) -> None:
        """Close every shard store that supports closing (restored sets)."""
        self.store.close()

    # -- introspection ---------------------------------------------------

    @property
    def next_element_id(self) -> int:
        """The global id watermark (deleted ids are never reused)."""
        return self._next_id

    @property
    def live_element_count(self) -> int:
        """Committed live elements plus the attached delta's net change."""
        if self.delta is None:
            return self.element_count
        return self.element_count + self.delta.element_delta

    def contains_elements(self, element_ids) -> np.ndarray:
        """Boolean mask of which global ids are live committed elements.

        Pure in-RAM lookup against the routing directory (built lazily,
        then cached); the attached delta is *not* consulted — see
        :meth:`FLATIndex.contains_elements`.
        """
        element_ids = np.atleast_1d(np.asarray(element_ids, dtype=np.int64))
        routing = self._routing_directory()
        return np.fromiter(
            (int(gid) in routing for gid in element_ids),
            dtype=bool,
            count=len(element_ids),
        )

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_element_counts(self) -> list:
        """Elements per shard, in shard-id order (balance diagnostics)."""
        return [shard.element_count for shard in self.shards]


def _merge_crawl_stats(total: CrawlStats, part: CrawlStats | None) -> None:
    """Fold one shard's per-query crawl bookkeeping into the aggregate.

    Sums are taken where shards own disjoint resources (records, pages,
    visited sets); the queue peak is a max because shard crawls run one
    at a time within a single query.
    """
    if part is None:
        return
    total.seeded = total.seeded or part.seeded
    total.records_dequeued += part.records_dequeued
    total.object_pages_read += part.object_pages_read
    total.max_queue_length = max(total.max_queue_length, part.max_queue_length)
    total.visited_bytes += part.visited_bytes
