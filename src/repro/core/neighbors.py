"""Algorithm 1, second half: neighborhood discovery.

"All partition MBRs are inserted into a temporary R-Tree, used solely to
compute the neighborhood information.  Finally, for each partition, a
range query with the partition MBR is executed, and all intersecting
partitions, the neighbors, are retrieved." (Sec. V-A)

The temporary R-Tree lives on a throwaway page store whose I/O is *not*
charged to query statistics (it exists only at build time; the paper's
Fig. 10 accounts for this phase as wall-clock "Finding Neighbors" time,
which we measure the same way).
"""

from __future__ import annotations

import numpy as np

from repro.storage.pagestore import PageStore
from repro.storage.stats import CATEGORY_RTREE_INTERNAL, CATEGORY_RTREE_LEAF
from repro.rtree.rtree import build_rtree
from repro.rtree.str_bulk import str_groups


def compute_neighbors(partitions: list) -> None:
    """Fill each partition's ``neighbors`` with intersecting partitions.

    Mutates the partitions in place.  A partition is not its own
    neighbor; the relation is symmetric because box intersection is.
    """
    boxes = np.stack([p.partition_mbr for p in partitions])
    temp_store = PageStore()
    temp_tree = build_rtree(
        temp_store,
        boxes,
        str_groups,
        CATEGORY_RTREE_LEAF,
        CATEGORY_RTREE_INTERNAL,
    )
    for i, partition in enumerate(partitions):
        hits = temp_tree.range_query(partition.partition_mbr)
        partition.neighbors = [int(h) for h in hits if h != i]


def neighbor_counts(partitions: list) -> np.ndarray:
    """Number of neighbor pointers per partition (Fig. 20's histogram)."""
    return np.array([len(p.neighbors) for p in partitions], dtype=np.int64)
