"""Algorithm 1: FLAT's space partitioning.

FLAT segments the entire space into partitions, one disk page per
partition, with two properties required for correct crawling
(Sec. V-B / VI):

1. **No empty space** — the union of all partition boxes covers the
   whole (bounding) space, so neighbor pointers exist across any gap a
   range query could fall into.
2. **Partition MBR encloses page MBR** — each partition box is
   stretched to contain the MBR of the elements stored on its page, so
   a page whose elements protrude beyond its tile can never be missed.

The partitioning itself is STR (Sec. V-A): sort element centers on x,
cut into ``pn = ceil((n/pagesize)^(1/3))`` slabs at midpoints between
adjacent centers; recurse on y within each slab and z within each beam.
Because the cuts are made in *center space* and extended to the space
bounds, the raw tiles form an exact, gap-free tiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.mbr import mbr_center, mbr_union, mbr_union_many, validate_mbrs
from repro.rtree.str_bulk import str_run_sizes


@dataclass
class Partition:
    """One FLAT partition: a disk page worth of elements plus its boxes.

    Attributes
    ----------
    element_ids:
        Indices into the data set of the elements stored on this page.
    page_mbr:
        MBR of the elements on the page (solid boxes in the paper's
        Fig. 6).
    partition_mbr:
        The tile box stretched to enclose ``page_mbr`` (dashed boxes).
    neighbors:
        Partition indices whose partition MBRs intersect this one
        (filled by :mod:`repro.core.neighbors`).
    """

    element_ids: np.ndarray
    page_mbr: np.ndarray
    partition_mbr: np.ndarray
    neighbors: list = field(default_factory=list)


def _cut_points(sorted_values: np.ndarray, run_size: int, lo: float, hi: float):
    """Boundaries of consecutive runs of *run_size* over sorted keys.

    The outer boundaries are the space bounds; interior boundaries fall
    at the midpoint between the adjacent centers of consecutive runs, so
    the resulting intervals tile ``[lo, hi]`` exactly.  Run sizes are
    multiples of the page capacity (canonical STR), so only the last
    run is smaller — the 100 % fill factor of the paper's setup.
    """
    n = len(sorted_values)
    run_size = max(1, run_size)
    sizes = [min(run_size, n - at) for at in range(0, n, run_size)]
    bounds = [lo]
    at = 0
    for size in sizes[:-1]:
        at += size
        bounds.append(0.5 * (sorted_values[at - 1] + sorted_values[at]))
    bounds.append(hi)
    return bounds, sizes


def compute_partitions(
    element_mbrs: np.ndarray,
    page_capacity: int,
    space_mbr: np.ndarray | None = None,
) -> list:
    """Run Algorithm 1's partitioning step (no neighbors yet).

    Returns the partitions in STR tile order — the order in which FLAT
    also packs object pages, preserving spatial locality (Sec. V-B.3).
    """
    element_mbrs = validate_mbrs(element_mbrs)
    if page_capacity <= 0:
        raise ValueError(f"page_capacity must be positive, got {page_capacity}")
    n = len(element_mbrs)
    if n == 0:
        raise ValueError("cannot partition an empty data set")

    if space_mbr is None:
        space_mbr = mbr_union_many(element_mbrs)
    else:
        space_mbr = np.asarray(space_mbr, dtype=np.float64)
        enclosing = mbr_union_many(element_mbrs)
        # The space box must cover the data; otherwise tiles would not.
        space_mbr = mbr_union(space_mbr, enclosing)

    centers = mbr_center(element_mbrs)
    slab_size, beam_size = str_run_sizes(n, page_capacity)

    partitions: list = []

    x_order = np.argsort(centers[:, 0], kind="stable")
    x_bounds, x_sizes = _cut_points(
        centers[x_order, 0], slab_size, float(space_mbr[0]), float(space_mbr[3])
    )
    x_at = 0
    for xi, x_size in enumerate(x_sizes):
        x_slab = x_order[x_at : x_at + x_size]
        x_at += x_size
        y_order = x_slab[np.argsort(centers[x_slab, 1], kind="stable")]
        y_bounds, y_sizes = _cut_points(
            centers[y_order, 1],
            beam_size(len(x_slab)),
            float(space_mbr[1]),
            float(space_mbr[4]),
        )
        y_at = 0
        for yi, y_size in enumerate(y_sizes):
            y_beam = y_order[y_at : y_at + y_size]
            y_at += y_size
            z_order = y_beam[np.argsort(centers[y_beam, 2], kind="stable")]
            z_bounds, z_sizes = _cut_points(
                centers[z_order, 2],
                page_capacity,
                float(space_mbr[2]),
                float(space_mbr[5]),
            )
            z_at = 0
            for zi, z_size in enumerate(z_sizes):
                tile = z_order[z_at : z_at + z_size]
                z_at += z_size
                page_mbr = mbr_union_many(element_mbrs[tile])
                tile_box = np.array(
                    [
                        x_bounds[xi],
                        y_bounds[yi],
                        z_bounds[zi],
                        x_bounds[xi + 1],
                        y_bounds[yi + 1],
                        z_bounds[zi + 1],
                    ]
                )
                # Algorithm 1: "stretch partitionMBR to contain pageMBR".
                partition_mbr = mbr_union(tile_box, page_mbr)
                partitions.append(
                    Partition(
                        element_ids=np.asarray(tile, dtype=np.int64),
                        page_mbr=page_mbr,
                        partition_mbr=partition_mbr,
                    )
                )
    return partitions


def coverage_gaps_exist(partitions: list, space_mbr: np.ndarray, samples: int = 4096,
                        seed: int = 0) -> bool:
    """Monte-Carlo check of the no-empty-space property (test helper).

    Samples random points in the space box and reports whether any point
    falls outside every partition MBR.
    """
    rng = np.random.default_rng(seed)
    space_mbr = np.asarray(space_mbr, dtype=np.float64)
    pts = rng.uniform(space_mbr[:3], space_mbr[3:], size=(samples, 3))
    boxes = np.stack([p.partition_mbr for p in partitions])
    lo_ok = boxes[None, :, :3] <= pts[:, None, :]
    hi_ok = pts[:, None, :] <= boxes[None, :, 3:]
    covered = np.any(np.all(lo_ok & hi_ok, axis=2), axis=1)
    return not bool(covered.all())
