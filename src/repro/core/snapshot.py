"""Persist a built FLAT index to a directory and reopen it from disk.

A snapshot directory holds numbered, copy-on-write *generations*:

* ``pages.dat`` / ``categories.bin`` / ``manifest-NNNNNN.json`` — the
  page store (see :mod:`repro.storage.filestore`): the data file is
  append-only, each generation's manifest carries the page-translation
  table of that moment, so unchanged pages are shared byte-for-byte
  between generations and older generations stay restorable.
* ``index-NNNNNN.npz`` — that generation's in-RAM directories: the
  record directory (``record_page`` / ``record_slot``), the seed tree's
  leaf page ids, the object-page → element-id mapping (CSR form) and
  the build report's pointer-count histogram.
* ``index-NNNNNN.json`` — scalars: element count, id watermark, page
  capacity, seed root/height/fanout, build timings, a format version.

``snapshot_index`` exports an index into a fresh directory as
generation 0; ``snapshot_generation`` publishes the current state of an
index living on a *writable* file store as the next generation in
place (rewritten pages were already append-redirected, so this is the
cheap path the mutable serving stack uses).  ``restore_index`` reopens
the latest generation — or any older one — over a read-only
``mmap``-backed :class:`~repro.storage.filestore.FilePageStore`;
queries against the restored index read the same pages and return the
same elements as against the original (pinned by tests on the Fig. 13
SN workload).  Malformed directories surface as
:class:`~repro.storage.pagestore.SnapshotError`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.storage.codec import DEFAULT_CODEC
from repro.storage.filestore import (
    FilePageBackend,
    FilePageStore,
    append_overlay_generation,
    latest_generation,
    list_generations,
)
from repro.storage.pagestore import OverlayPageBackend, PageStoreError, SnapshotError

#: Bumped on any incompatible change to the index serialization.
#: Version 2 introduced numbered generations and the write-path fields
#: (id watermark, page capacity, seed fanout, dead-record slots).
INDEX_FORMAT_VERSION = 2


def index_meta_filename(generation: int) -> str:
    """Scalar manifest of one index generation."""
    return f"index-{generation:06d}.json"


def index_arrays_filename(generation: int) -> str:
    """Array bundle of one index generation."""
    return f"index-{generation:06d}.npz"


def _write_index_files(flat, directory: Path, generation: int) -> None:
    """Write one generation's ``index-*.npz``/``index-*.json`` pair."""
    seed = flat.seed_index
    object_page_ids = np.fromiter(
        flat.object_page_element_ids.keys(),
        dtype=np.int64,
        count=len(flat.object_page_element_ids),
    )
    element_id_lists = [
        np.asarray(flat.object_page_element_ids[int(pid)], dtype=np.int64)
        for pid in object_page_ids
    ]
    offsets = np.zeros(len(element_id_lists) + 1, dtype=np.int64)
    if element_id_lists:
        np.cumsum([len(ids) for ids in element_id_lists], out=offsets[1:])
        values = (
            np.concatenate(element_id_lists)
            if offsets[-1]
            else np.empty(0, dtype=np.int64)
        )
    else:
        values = np.empty(0, dtype=np.int64)

    np.savez_compressed(
        directory / index_arrays_filename(generation),
        record_page=seed.record_page,
        record_slot=seed.record_slot,
        leaf_page_ids=np.asarray(seed.leaf_page_ids, dtype=np.int64),
        object_page_ids=object_page_ids,
        object_page_offsets=offsets,
        object_page_element_ids=values,
        pointer_counts=np.asarray(flat.build_report.pointer_counts, dtype=np.int64),
    )

    report = flat.build_report
    meta = {
        "format_version": INDEX_FORMAT_VERSION,
        "index": "FLAT",
        "generation": generation,
        "element_count": int(flat.element_count),
        "next_element_id": int(flat._next_id),
        "page_capacity": int(flat.page_capacity),
        "seed_root_id": int(seed.root_id),
        "seed_height": int(seed.height),
        "seed_fanout": seed.fanout,
        "build_report": {
            "partitioning_seconds": report.partitioning_seconds,
            "finding_neighbors_seconds": report.finding_neighbors_seconds,
            "packing_seconds": report.packing_seconds,
            "partition_count": int(report.partition_count),
        },
    }
    (directory / index_meta_filename(generation)).write_text(
        json.dumps(meta, indent=2) + "\n"
    )


def snapshot_index(flat, directory, codec=DEFAULT_CODEC) -> Path:
    """Export *flat* (a built ``FLATIndex``) into *directory* as generation 0.

    *codec* selects the physical page codec of the target store (see
    :mod:`repro.storage.codec`); the logical pages — and therefore every
    query answer and read count — are codec-invariant, so exporting the
    same index under ``raw`` and ``delta64`` yields byte-identical
    restores over very differently sized ``pages.dat`` files.  The
    index files are written before the store manifest is atomically
    published, so a crash mid-export leaves no generation behind.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    store = flat.store
    source_dir = getattr(store.backend, "directory", None)
    if source_dir is not None and Path(source_dir).resolve() == directory.resolve():
        raise PageStoreError(
            f"cannot export a snapshot into the index's own directory "
            f"{directory}; use snapshot_generation() to publish in place"
        )
    target = FilePageBackend.create(directory, codec=codec)
    try:
        for page_id in range(len(store)):
            target.append(store.read_silent(page_id), store.category(page_id))
        _write_index_files(flat, directory, generation=0)
    except BaseException:
        target.discard()
        raise
    target.close()
    return directory


def snapshot_generation(flat) -> int:
    """Publish the current state of a file-backed index as a new generation.

    Requires ``flat.store`` to be a *writable*
    :class:`~repro.storage.filestore.FilePageStore` (an index built
    directly on disk).  Unchanged pages are shared with every earlier
    generation; the store manifest is published last, atomically, so a
    partial write never becomes restorable.  Returns the generation.
    """
    backend = flat.store.backend
    if not isinstance(backend, FilePageBackend) or not backend.writable:
        raise PageStoreError(
            "snapshot_generation() needs an index built on a writable "
            "FilePageStore; use snapshot_index() to export other stores"
        )
    generation = 0 if backend.generation is None else backend.generation + 1
    _write_index_files(flat, backend.directory, generation)
    committed = backend.commit_generation()
    assert committed == generation
    return generation


def publish_fork_generation(flat, expected_base: int | None = None) -> tuple:
    """Publish a forked index as the next on-disk generation of its base.

    *flat* must be a fork of a restored snapshot — an index whose store
    is an :class:`~repro.storage.pagestore.OverlayPageBackend` over a
    read-only mmap-backed :class:`~repro.storage.filestore.FilePageBackend`.
    The overlay's changed pages are appended to the base directory
    (copy-on-write: the fork's parent generation and every older one
    stay restorable) together with this generation's index files, and
    the manifest is published last, atomically.  Returns ``(directory,
    generation)`` — the spec a reader in *any* process needs to restore
    exactly this committed state.

    *expected_base* pins the generation this commit believes is the
    directory's latest: if another publisher advanced the directory in
    the meantime, the commit is refused with
    :class:`~repro.storage.pagestore.SnapshotError` instead of silently
    forking the lineage (a serial publisher passes the generation of
    its own last publish — or of its original restore, before the
    first one).

    This is how cross-process serving propagates update commits: the
    committing process publishes, worker processes lazily
    :meth:`~repro.core.flat_index.FLATIndex.restore` the named
    generation on their first post-commit task.
    """
    backend = flat.store.backend
    base = getattr(backend, "base", None)
    if not isinstance(backend, OverlayPageBackend) or not isinstance(
        base, FilePageBackend
    ):
        raise PageStoreError(
            "publish_fork_generation() needs a fork of a restored snapshot "
            "(an overlay over a read-only file store); snapshot the index "
            "to disk and fork the restored copy instead"
        )
    directory = base.directory
    latest = latest_generation(directory)
    if expected_base is not None and latest != expected_base:
        raise SnapshotError(
            f"snapshot directory {directory}: commit built on generation "
            f"{expected_base} but the directory has advanced to {latest}; "
            "generation publishing is single-writer per directory"
        )
    generation = latest + 1
    _write_index_files(flat, directory, generation)
    committed = append_overlay_generation(backend)
    if committed != generation:
        raise SnapshotError(
            f"snapshot directory {directory}: generation moved from "
            f"{generation} to {committed} mid-publish — publishing must be "
            "single-writer"
        )
    return directory, generation


def ship_index_generation(source_dir, dest_dir, generation=None):
    """Replicate one *index* generation into a replica directory.

    The index-level face of
    :func:`~repro.storage.filestore.ship_store_generation`: ships the
    store's incremental page tail, then copies the shipped generation's
    ``index-NNNNNN.json``/``.npz`` pair so the replica directory is
    restorable with :func:`restore_index` at exactly that generation.
    The index files land *before* the store manifest publishes (inside
    the store ship they land after the page bytes but the manifest is
    last), preserving the crash rule: a half-shipped replica never
    exposes a restorable generation it does not fully hold.

    Returns the store ship's
    :class:`~repro.storage.filestore.ShipStats` with the index-file
    bytes filled into ``index_bytes_sent``.
    """
    from repro.storage.filestore import ship_store_generation, latest_generation

    source_dir = Path(source_dir)
    dest_dir = Path(dest_dir)
    if generation is None:
        generation = latest_generation(source_dir)
        if generation is None:
            raise SnapshotError(
                f"no page-store manifest generations in {source_dir}"
            )
    index_bytes = 0
    dest_dir.mkdir(parents=True, exist_ok=True)
    for name in (index_meta_filename(generation), index_arrays_filename(generation)):
        source_path = source_dir / name
        if not source_path.exists():
            raise SnapshotError(
                f"snapshot directory {source_dir} has no index files for "
                f"generation {generation} (missing {name})"
            )
        payload = source_path.read_bytes()
        scratch = dest_dir / (name + ".tmp")
        scratch.write_bytes(payload)
        os.replace(scratch, dest_dir / name)
        index_bytes += len(payload)
    report = ship_store_generation(source_dir, dest_dir, generation)
    report.index_bytes_sent = index_bytes
    return report


def restore_index(directory, generation=None, buffer=None, decoded=None):
    """Reopen a snapshot generation as a ``FLATIndex`` over an mmap store.

    ``generation=None`` picks the latest published generation.
    ``buffer`` / ``decoded`` configure the restored store's caches,
    exactly as in the :class:`~repro.storage.pagestore.PageStore`
    constructor.  The heavy page payloads stay on disk; only the
    directories (a few arrays) are loaded into RAM.
    """
    from repro.core.flat_index import BuildReport, FLATIndex
    from repro.core.seed_index import SeedIndex

    directory = Path(directory)
    if generation is None:
        # Latest generation carrying index files.  A plain store flush
        # (e.g. FilePageStore.close after unmanifested mutations) may
        # publish a store-only generation; skip those rather than fail.
        candidates = [
            g
            for g in list_generations(directory)
            if (directory / index_meta_filename(g)).exists()
        ]
        if not candidates:
            raise SnapshotError(f"no index snapshot generations in {directory}")
        generation = candidates[-1]
    meta_path = directory / index_meta_filename(generation)
    if not meta_path.exists():
        raise SnapshotError(
            f"snapshot directory {directory} has no index manifest for "
            f"generation {generation} (missing {meta_path.name})"
        )
    try:
        meta = json.loads(meta_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SnapshotError(
            f"snapshot directory {directory}: index manifest {meta_path.name} "
            f"is truncated or not valid JSON ({exc})"
        ) from None
    version = meta.get("format_version")
    if version != INDEX_FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot directory {directory}: index snapshot format "
            f"{version!r} in {meta_path.name} does not match this build's "
            f"{INDEX_FORMAT_VERSION}"
        )
    arrays_path = directory / index_arrays_filename(generation)
    if not arrays_path.exists():
        raise SnapshotError(
            f"snapshot directory {directory}: missing index array bundle "
            f"{arrays_path.name}"
        )

    with np.load(arrays_path) as bundle:
        record_page = bundle["record_page"]
        record_slot = bundle["record_slot"]
        leaf_page_ids = [int(pid) for pid in bundle["leaf_page_ids"]]
        object_page_ids = bundle["object_page_ids"]
        offsets = bundle["object_page_offsets"]
        values = bundle["object_page_element_ids"]
        pointer_counts = bundle["pointer_counts"]

    # Leaf page id -> record ids in slot order, rebuilt from the record
    # directory (one lexsort instead of a per-leaf scan).  Records
    # retired by merges carry a -1 leaf and are skipped.
    alive = np.flatnonzero(record_page >= 0)
    order = alive[np.lexsort((record_slot[alive], record_page[alive]))]
    boundaries = np.flatnonzero(np.diff(record_page[order])) + 1
    leaf_record_ids = {
        int(record_page[group[0]]): group
        for group in (np.split(order, boundaries) if len(order) else [])
    }

    object_page_element_ids = {
        int(pid): values[offsets[i]:offsets[i + 1]]
        for i, pid in enumerate(object_page_ids)
    }

    store = FilePageStore.open(
        directory, generation=generation, buffer=buffer, decoded=decoded
    )
    seed_fanout = meta.get("seed_fanout")
    seed = SeedIndex(
        store,
        root_id=int(meta["seed_root_id"]),
        height=int(meta["seed_height"]),
        leaf_page_ids=leaf_page_ids,
        record_page=record_page,
        record_slot=record_slot,
        leaf_record_ids=leaf_record_ids,
        fanout=None if seed_fanout is None else int(seed_fanout),
    )
    report_meta = meta.get("build_report", {})
    report = BuildReport(
        partitioning_seconds=float(report_meta.get("partitioning_seconds", 0.0)),
        finding_neighbors_seconds=float(
            report_meta.get("finding_neighbors_seconds", 0.0)
        ),
        packing_seconds=float(report_meta.get("packing_seconds", 0.0)),
        partition_count=int(report_meta.get("partition_count", 0)),
        pointer_counts=pointer_counts,
    )
    element_count = int(meta["element_count"])
    from repro.storage.constants import OBJECT_PAGE_CAPACITY

    return FLATIndex(
        store,
        seed,
        object_page_element_ids,
        element_count,
        report,
        page_capacity=int(meta.get("page_capacity", OBJECT_PAGE_CAPACITY)),
        next_id=int(meta.get("next_element_id", element_count)),
    )
