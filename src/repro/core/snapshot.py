"""Persist a built FLAT index to a directory and reopen it from disk.

A snapshot directory is fully self-describing:

* ``pages.dat`` / ``categories.bin`` / ``manifest.json`` — every page
  of the backing store, byte-identical and in the same page-id order
  (see :mod:`repro.storage.filestore`), so all pointers baked into the
  serialized pages stay valid verbatim.
* ``index.npz`` — the in-RAM directories: the record directory
  (``record_page`` / ``record_slot``), the seed tree's leaf page ids,
  the object-page → element-id mapping (CSR form) and the build
  report's pointer-count histogram.
* ``index.json`` — scalars: element count, seed root/height, build
  timings and a format version.

``restore`` reopens the pages through a read-only ``mmap``-backed
:class:`~repro.storage.filestore.FilePageStore`; queries against the
restored index read the same pages and return the same elements as
against the original in-memory build (pinned by tests on the Fig. 13
SN workload).  Restoring is the cheap path — no partitioning, neighbor
discovery or packing — which is what lets a serving process reopen a
prebuilt index in milliseconds.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.storage.filestore import FilePageStore, write_store_snapshot
from repro.storage.pagestore import PageStoreError

#: Array bundle and scalar manifest inside a snapshot directory.
INDEX_ARRAYS_FILENAME = "index.npz"
INDEX_META_FILENAME = "index.json"

#: Bumped on any incompatible change to the index serialization.
INDEX_FORMAT_VERSION = 1


def snapshot_index(flat, directory) -> Path:
    """Serialize *flat* (a built ``FLATIndex``) into *directory*."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_store_snapshot(flat.store, directory)

    seed = flat.seed_index
    object_page_ids = np.fromiter(
        flat.object_page_element_ids.keys(),
        dtype=np.int64,
        count=len(flat.object_page_element_ids),
    )
    element_id_lists = [
        np.asarray(flat.object_page_element_ids[int(pid)], dtype=np.int64)
        for pid in object_page_ids
    ]
    offsets = np.zeros(len(element_id_lists) + 1, dtype=np.int64)
    if element_id_lists:
        np.cumsum([len(ids) for ids in element_id_lists], out=offsets[1:])
        values = np.concatenate(element_id_lists)
    else:
        values = np.empty(0, dtype=np.int64)

    np.savez_compressed(
        directory / INDEX_ARRAYS_FILENAME,
        record_page=seed.record_page,
        record_slot=seed.record_slot,
        leaf_page_ids=np.asarray(seed.leaf_page_ids, dtype=np.int64),
        object_page_ids=object_page_ids,
        object_page_offsets=offsets,
        object_page_element_ids=values,
        pointer_counts=np.asarray(flat.build_report.pointer_counts, dtype=np.int64),
    )

    report = flat.build_report
    meta = {
        "format_version": INDEX_FORMAT_VERSION,
        "index": "FLAT",
        "element_count": int(flat.element_count),
        "seed_root_id": int(seed.root_id),
        "seed_height": int(seed.height),
        "build_report": {
            "partitioning_seconds": report.partitioning_seconds,
            "finding_neighbors_seconds": report.finding_neighbors_seconds,
            "packing_seconds": report.packing_seconds,
            "partition_count": int(report.partition_count),
        },
    }
    (directory / INDEX_META_FILENAME).write_text(json.dumps(meta, indent=2) + "\n")
    return directory


def restore_index(directory, buffer=None, decoded=None):
    """Reopen a snapshot as a ``FLATIndex`` over an mmap-backed store.

    ``buffer`` / ``decoded`` configure the restored store's caches,
    exactly as in the :class:`~repro.storage.pagestore.PageStore`
    constructor.  The heavy page payloads stay on disk; only the
    directories (a few arrays) are loaded into RAM.
    """
    from repro.core.flat_index import BuildReport, FLATIndex
    from repro.core.seed_index import SeedIndex

    directory = Path(directory)
    meta_path = directory / INDEX_META_FILENAME
    if not meta_path.exists():
        raise PageStoreError(f"no index snapshot in {directory}")
    meta = json.loads(meta_path.read_text())
    if meta.get("format_version") != INDEX_FORMAT_VERSION:
        raise PageStoreError(
            f"unsupported index snapshot format {meta.get('format_version')!r}"
        )

    with np.load(directory / INDEX_ARRAYS_FILENAME) as bundle:
        record_page = bundle["record_page"]
        record_slot = bundle["record_slot"]
        leaf_page_ids = [int(pid) for pid in bundle["leaf_page_ids"]]
        object_page_ids = bundle["object_page_ids"]
        offsets = bundle["object_page_offsets"]
        values = bundle["object_page_element_ids"]
        pointer_counts = bundle["pointer_counts"]

    # Leaf page id -> record ids in slot order, rebuilt from the record
    # directory (one lexsort instead of a per-leaf scan).
    order = np.lexsort((record_slot, record_page))
    boundaries = np.flatnonzero(np.diff(record_page[order])) + 1
    leaf_record_ids = {
        int(record_page[group[0]]): group
        for group in (np.split(order, boundaries) if len(order) else [])
    }

    object_page_element_ids = {
        int(pid): values[offsets[i]:offsets[i + 1]]
        for i, pid in enumerate(object_page_ids)
    }

    store = FilePageStore.open(directory, buffer=buffer, decoded=decoded)
    seed = SeedIndex(
        store,
        root_id=int(meta["seed_root_id"]),
        height=int(meta["seed_height"]),
        leaf_page_ids=leaf_page_ids,
        record_page=record_page,
        record_slot=record_slot,
        leaf_record_ids=leaf_record_ids,
    )
    report_meta = meta.get("build_report", {})
    report = BuildReport(
        partitioning_seconds=float(report_meta.get("partitioning_seconds", 0.0)),
        finding_neighbors_seconds=float(
            report_meta.get("finding_neighbors_seconds", 0.0)
        ),
        packing_seconds=float(report_meta.get("packing_seconds", 0.0)),
        partition_count=int(report_meta.get("partition_count", 0)),
        pointer_counts=pointer_counts,
    )
    return FLATIndex(
        store,
        seed,
        object_page_element_ids,
        int(meta["element_count"]),
        report,
    )
