"""Multi-query batched crawl: one BFS pass serving many range queries.

PR 1 vectorized the crawl *within* one query (whole frontiers per
step); this module vectorizes *across* queries.  A group of in-flight
queries is crawled as one joint BFS over ``(record, query)`` pairs:
every touched metadata leaf is decoded once per group (not once per
query), every touched object page is decoded once per group, and both
MBR guards run as single vectorized predicates over the whole pair
frontier.  On a GIL-bound interpreter this is where cold-serving
throughput comes from — the per-page Python overhead (decode, CSR
rebuild, numpy call dispatch) amortizes over every query that touches
the page.

**Accounting stays per-query.**  The paper's metric is per-query
physical page reads on cold caches, and the serving layer pins the
batched engine byte-identical to the serial harness.  The kernel
therefore separates *physical* work (one decode per touched page per
group) from *charged* work (a read recorded for every ``(query, page)``
pair, exactly the unique-pages-per-query accounting the serial
cold-cache loop produces):

* the seed phase runs per query on the real store with a cache clear
  before each seed — identical reads, charged natively;
* the crawl phase reads pages silently, marks ``(page, query)`` charges
  in a boolean matrix, and bulk-charges the matrix (minus the pages the
  seed phase already charged) into the store's ``IOStats`` at the end.

Buffer cache-hit and decoded-cache counters are *not* reproduced —
physically there are fewer repeated touches, which is the whole point —
so only results and physical read totals are pinned.
"""

from __future__ import annotations

import numpy as np

from repro.core.flat_index import CrawlStats
from repro.geometry.intersect import boxes_intersect_box
from repro.storage.decoded_cache import DECODE_ELEMENT, DECODE_METADATA
from repro.storage.serial import decode_element_page, decode_metadata_page
from repro.storage.stats import ALL_CATEGORIES


class _ColdIO:
    """Crawl-phase I/O with per-(query, page) charging.

    Physical reads go through ``read_silent`` and a group-local decoded
    dictionary; charges accumulate in a ``(pages, queries)`` boolean
    matrix.  ``finalize`` bulk-records every charge the seed phase did
    not already pay, per page category, in deterministic
    :data:`~repro.storage.stats.ALL_CATEGORIES` order.
    """

    def __init__(self, store, query_count: int):
        self.store = store
        page_count = len(store)
        self._charged = np.zeros((page_count, query_count), dtype=bool)
        self._seeded = np.zeros((page_count, query_count), dtype=bool)
        self._decoded_meta: dict = {}
        self._decoded_elem: dict = {}
        codes = np.empty(page_count, dtype=np.int8)
        lookup = {name: code for code, name in enumerate(ALL_CATEGORIES)}
        for page_id, category in enumerate(store.backend.iter_categories()):
            codes[page_id] = lookup[category]
        self._codes = codes

    def begin_seed(self, query_index: int) -> None:
        self.store.clear_cache()

    def end_seed(self, query_index: int) -> None:
        # The unbounded buffer was cleared just before this seed, so its
        # residents are exactly the pages the seed descent physically
        # read — and charged natively — for this query.
        pages = self.store.buffer.page_ids()
        self._charged[pages, query_index] = True
        self._seeded[pages, query_index] = True

    def charge(self, page_ids, query_ids) -> None:
        """Mark ``(page, query)`` touches; duplicates collapse for free."""
        self._charged[page_ids, query_ids] = True

    def read_metadata(self, page_id: int) -> list:
        records = self._decoded_meta.get(page_id)
        if records is None:
            records = decode_metadata_page(self.store.read_silent(page_id))
            self._decoded_meta[page_id] = records
            self.store.stats.record_decode(DECODE_METADATA, hit=False)
        return records

    def read_elements(self, page_id: int) -> np.ndarray:
        elements = self._decoded_elem.get(page_id)
        if elements is None:
            elements = decode_element_page(self.store.read_silent(page_id))
            self._decoded_elem[page_id] = elements
            self.store.stats.record_decode(DECODE_ELEMENT, hit=False)
        return elements

    def finalize(self) -> None:
        """Charge every crawl-phase ``(query, page)`` read into the stats."""
        crawl_only = self._charged & ~self._seeded
        per_page = crawl_only.sum(axis=1)
        totals = np.bincount(
            self._codes, weights=per_page, minlength=len(ALL_CATEGORIES)
        ).astype(np.int64)
        for code, count in enumerate(totals):
            if count:
                self.store.stats.record_read(ALL_CATEGORIES[code], pages=int(count))


class _WarmIO:
    """Warm-regime I/O: everything flows through the store's own caches.

    No per-query charging — physical reads, buffer hits and decode
    counters land natively as the joint crawl touches pages, and caches
    persist across groups exactly as warm serving expects.
    """

    def __init__(self, store):
        self.store = store

    def begin_seed(self, query_index: int) -> None:
        pass

    def end_seed(self, query_index: int) -> None:
        pass

    def charge(self, page_ids, query_ids) -> None:
        pass

    def read_metadata(self, page_id: int) -> list:
        return self.store.read_metadata(page_id)

    def read_elements(self, page_id: int) -> np.ndarray:
        return self.store.read_elements(page_id)

    def finalize(self) -> None:
        pass


def crawl_multi(flat, queries: np.ndarray, cold: bool = True) -> list:
    """Serve *queries* with one joint BFS; per-query sorted result ids.

    ``cold=True`` reproduces the paper's regime per query: caches are
    cleared before each query's seed and every query is charged exactly
    the unique pages it touches (byte-identical totals to running
    ``range_query`` per query on cold caches).  ``cold=False`` serves
    the group warm through the store's persistent caches.

    Each query's result is exactly ``flat.range_query(query)``'s: the
    joint BFS explores the pair ``(record, query)`` exactly when the
    per-query BFS would visit the record, and both guards depend only
    on the record and the query box.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    query_count = len(queries)
    if query_count == 0:
        return []
    store = flat.store
    seed = flat.seed_index
    record_count = seed.record_count
    io = _ColdIO(store, query_count) if cold else _WarmIO(store)
    stats = CrawlStats()
    flat.last_crawl_stats = stats

    # -- seed phase: per query, exactly the serial descent ---------------
    start_records = np.full(query_count, -1, dtype=np.int64)
    object_page_touches: set = set()
    for qi in range(query_count):
        io.begin_seed(qi)
        seeded = seed.seed_query(queries[qi])
        io.end_seed(qi)
        object_page_touches.update(
            (qi, int(page_id)) for page_id in seed.last_probe_object_page_ids
        )
        if seeded is not None:
            start_records[qi] = seeded[0].record_id
            stats.seeded = True

    # -- group-level record directory, filled leaf by leaf ---------------
    record_leaf = seed.record_page
    loaded = np.zeros(record_count, dtype=bool)
    page_mbrs = np.empty((record_count, 6), dtype=np.float64)
    partition_mbrs = np.empty((record_count, 6), dtype=np.float64)
    object_pages = np.empty(record_count, dtype=np.int64)
    neighbor_arrays: list = [None] * record_count
    neighbor_counts = np.zeros(record_count, dtype=np.int64)

    def load_records(rids: np.ndarray) -> None:
        missing = rids[~loaded[rids]]
        if not missing.size:
            return
        for leaf in np.unique(record_leaf[missing]):
            slot_ids = seed.leaf_record_ids[int(leaf)]
            for slot, raw in enumerate(io.read_metadata(int(leaf))):
                rid = int(slot_ids[slot])
                page_mbr, partition_mbr, object_page_id, nbrs = raw
                page_mbrs[rid] = page_mbr
                partition_mbrs[rid] = partition_mbr
                object_pages[rid] = object_page_id
                nbr_array = np.asarray(nbrs, dtype=np.int64)
                neighbor_arrays[rid] = nbr_array
                neighbor_counts[rid] = len(nbr_array)
            loaded[slot_ids] = True

    # -- joint BFS over (record, query) pairs -----------------------------
    results: list = [[] for _ in range(query_count)]
    visited = np.zeros(record_count * query_count, dtype=bool)
    alive = start_records >= 0
    rids = start_records[alive]
    qids = np.flatnonzero(alive).astype(np.int64)
    visited[rids * query_count + qids] = True
    while rids.size:
        stats.max_queue_length = max(stats.max_queue_length, len(rids))
        stats.records_dequeued += len(rids)
        load_records(rids)
        # Every dequeued pair costs its record's leaf, as in the serial
        # crawl's fetch (buffered there, set-deduplicated here).
        io.charge(record_leaf[rids], qids)

        query_boxes = queries[qids]
        pair_pages = page_mbrs[rids]
        page_hits = np.all(
            (pair_pages[:, :3] <= query_boxes[:, 3:])
            & (query_boxes[:, :3] <= pair_pages[:, 3:]),
            axis=1,
        )
        if page_hits.any():
            hit_pages = object_pages[rids[page_hits]]
            hit_queries = qids[page_hits]
            io.charge(hit_pages, hit_queries)
            for page_id, qi in zip(hit_pages.tolist(), hit_queries.tolist()):
                object_page_touches.add((qi, page_id))
                elements = io.read_elements(page_id)
                mask = boxes_intersect_box(elements, queries[qi])
                if mask.any():
                    results[qi].append(flat.object_page_element_ids[page_id][mask])

        pair_partitions = partition_mbrs[rids]
        partition_hits = np.all(
            (pair_partitions[:, :3] <= query_boxes[:, 3:])
            & (query_boxes[:, :3] <= pair_partitions[:, 3:]),
            axis=1,
        )
        if not partition_hits.any():
            break
        expand_rids = rids[partition_hits]
        expand_qids = qids[partition_hits]
        unique_rids, inverse = np.unique(expand_rids, return_inverse=True)
        counts = neighbor_counts[unique_rids]
        if not counts.sum():
            break
        flat_neighbors = np.concatenate(
            [neighbor_arrays[int(rid)] for rid in unique_rids]
        )
        offsets = np.zeros(len(unique_rids) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        # Vectorized CSR gather per pair (cf. RecordBatch.neighbors_of):
        # each pair expands its record's full neighbor row.
        pair_counts = counts[inverse]
        total = int(pair_counts.sum())
        if not total:
            break
        pair_ends = np.cumsum(pair_counts)
        shift = np.repeat(offsets[inverse] - (pair_ends - pair_counts), pair_counts)
        next_rids = flat_neighbors[np.arange(total, dtype=np.int64) + shift]
        next_qids = np.repeat(expand_qids, pair_counts)
        keys = np.unique(next_rids * query_count + next_qids)
        fresh = ~visited[keys]
        keys = keys[fresh]
        visited[keys] = True
        rids = keys // query_count
        qids = keys % query_count

    io.finalize()
    stats.visited_bytes = stats.records_dequeued * 8
    # Unique (query, object page) touches, seed probes included once —
    # the serial per-query object_pages_read metric, summed over the
    # group (deterministic: derived from sets of crawled pairs).
    stats.object_pages_read = len(object_page_touches)

    out: list = []
    for qi in range(query_count):
        if results[qi]:
            ids = np.sort(np.concatenate(results[qi]))
        else:
            ids = np.empty(0, dtype=np.int64)
        out.append(ids)
    stats.result_count = sum(len(ids) for ids in out)
    return out
